"""Compressor tests: masking, cost bookkeeping, consumer-graph cleanup."""

import numpy as np
import pytest

from repro.compress import CompressionSpec, Compressor, LayerCompression, make_uniform_spec
from repro.errors import CompressionError
from repro.nn import profile_network
from tests.conftest import make_tiny_two_exit


@pytest.fixture
def compressor():
    return Compressor(input_shape=(2, 8, 8))


@pytest.fixture
def identity_spec(tiny_net):
    return CompressionSpec.identity([ly.name for ly in tiny_net.weighted_layers()])


class TestIdentitySpec:
    def test_output_unchanged(self, tiny_net, compressor, identity_spec, rng):
        model = compressor.apply(tiny_net, identity_spec)
        x = rng.normal(size=(2, 2, 8, 8))
        for k in range(2):
            np.testing.assert_allclose(
                model.net.forward_to_exit(x, k), tiny_net.forward_to_exit(x, k)
            )

    def test_costs_unchanged(self, tiny_net, compressor, identity_spec):
        model = compressor.apply(tiny_net, identity_spec)
        prof = profile_network(tiny_net, (2, 8, 8))
        np.testing.assert_allclose(model.exit_flops, prof.exit_flops)
        assert model.model_size_bits == prof.model_size_bits()

    def test_original_net_never_modified(self, tiny_net, compressor, rng):
        spec = make_uniform_spec(tiny_net, 0.5, 2, 2)
        x = rng.normal(size=(2, 2, 8, 8))
        before = tiny_net.forward_to_exit(x, 1)
        compressor.apply(tiny_net, spec, calibration_x=x)
        np.testing.assert_allclose(tiny_net.forward_to_exit(x, 1), before)


class TestPruningBookkeeping:
    def test_kept_counts_match_spec(self, tiny_net, compressor):
        spec = make_uniform_spec(tiny_net, 0.5)
        model = compressor.apply(tiny_net, spec)
        for record in model.records:
            assert record.kept_in == max(1, int(np.ceil(0.5 * record.in_channels)))

    def test_flops_decrease_monotonically_with_alpha(self, tiny_net, compressor):
        totals = []
        for alpha in (1.0, 0.75, 0.5, 0.25):
            model = compressor.apply(tiny_net, make_uniform_spec(tiny_net, alpha))
            totals.append(sum(r.flops_effective for r in model.records))
        assert totals == sorted(totals, reverse=True)

    def test_producer_cleanup_two_fold_reduction(self):
        """In a conv->conv chain, pruning the consumer's inputs must also
        shrink the producer's effective outputs (the paper's two-fold rule)."""
        from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
        from repro.nn.network import MultiExitNetwork, Sequential

        net = MultiExitNetwork(
            segments=[
                Sequential([Conv2d(2, 8, 3, padding=1, name="p.c1", rng=0), ReLU(),
                            Conv2d(8, 4, 3, padding=1, name="p.c2", rng=1), ReLU()])
            ],
            branches=[Sequential([Flatten(), Linear(4 * 8 * 8, 5, name="p.f", rng=2)])],
        )
        spec = CompressionSpec(
            {
                "p.c1": LayerCompression(),
                "p.c2": LayerCompression(preserve_ratio=0.5),
                "p.f": LayerCompression(),
            }
        )
        model = Compressor(input_shape=(2, 8, 8)).apply(net, spec)
        assert model.record("p.c2").kept_in == 4
        assert model.record("p.c1").kept_out == 4  # shrunk by its only consumer
        # FLOPs of the producer scale by kept_out / out_channels.
        rec = model.record("p.c1")
        assert rec.flops_effective == pytest.approx(rec.flops_orig * 0.5)

    def test_flatten_consumer_keeps_producer_outputs(self, compressor):
        """A conv feeding a Linear through Flatten keeps all its outputs
        unless an entire channel block is pruned (opaque consumer)."""
        net = make_tiny_two_exit(seed=0)
        spec = CompressionSpec(
            {
                "t.c1": LayerCompression(),
                "t.c2": LayerCompression(preserve_ratio=0.3),
                "t.f1": LayerCompression(),
                "t.f2": LayerCompression(),
            }
        )
        model = compressor.apply(net, spec)
        assert model.record("t.c2").kept_in == 1  # ceil(0.3 * 3)
        assert model.record("t.c1").kept_out == 3  # t.f1 (flatten) keeps all blocks

    def test_logits_layers_keep_all_outputs(self, tiny_net, compressor):
        model = compressor.apply(tiny_net, make_uniform_spec(tiny_net, 0.3))
        assert model.record("t.f1").kept_out == 5
        assert model.record("t.f2").kept_out == 5

    def test_exit_flops_sum_layer_contributions(self, tiny_net, compressor):
        model = compressor.apply(tiny_net, make_uniform_spec(tiny_net, 0.5))
        eff = {r.name: r.flops_effective for r in model.records}
        exit0 = eff["t.c1"] + eff["t.f1"]
        np.testing.assert_allclose(model.exit_flops[0], exit0)

    def test_missing_layer_in_spec_raises(self, tiny_net, compressor):
        spec = CompressionSpec({"t.c1": LayerCompression()})
        with pytest.raises(CompressionError):
            compressor.apply(tiny_net, spec)


class TestQuantizationBookkeeping:
    def test_size_uses_bitwidths(self, tiny_net, compressor):
        full = compressor.apply(tiny_net, make_uniform_spec(tiny_net, 1.0, 32, 32))
        quant = compressor.apply(tiny_net, make_uniform_spec(tiny_net, 1.0, 8, 32))
        # Weights at 8/32 of the size; biases unchanged at 32-bit.
        weight_bits_full = sum(r.weight_count_effective * 32 for r in full.records)
        weight_bits_quant = sum(r.weight_count_effective * 8 for r in quant.records)
        assert quant.model_size_bits - (full.model_size_bits - weight_bits_full) == pytest.approx(
            weight_bits_quant
        )

    def test_quantizers_attached_only_when_compressed(self, tiny_net, compressor):
        spec = CompressionSpec(
            {
                "t.c1": LayerCompression(1.0, 8, 8),
                "t.c2": LayerCompression(1.0, 32, 32),
                "t.f1": LayerCompression(1.0, 4, 32),
                "t.f2": LayerCompression(1.0, 32, 4),
            }
        )
        model = compressor.apply(tiny_net, spec)
        by_name = {ly.name: ly for ly in model.net.weighted_layers()}
        assert by_name["t.c1"].weight_quantizer is not None
        assert by_name["t.c1"].input_quantizer is not None
        assert by_name["t.c2"].weight_quantizer is None
        assert by_name["t.c2"].input_quantizer is None
        assert by_name["t.f1"].weight_quantizer is not None
        assert by_name["t.f1"].input_quantizer is None
        assert by_name["t.f2"].weight_quantizer is None
        assert by_name["t.f2"].input_quantizer is not None

    def test_first_layer_quantizer_is_signed(self, tiny_net, compressor, rng):
        spec = make_uniform_spec(tiny_net, 1.0, 32, 8)
        model = compressor.apply(tiny_net, spec, calibration_x=rng.normal(size=(8, 2, 8, 8)))
        by_name = {ly.name: ly for ly in model.net.weighted_layers()}
        assert by_name["t.c1"].input_quantizer.signed
        assert not by_name["t.c2"].input_quantizer.signed

    def test_calibration_sets_scales(self, tiny_net, compressor, rng):
        spec = make_uniform_spec(tiny_net, 1.0, 32, 8)
        x = rng.normal(size=(8, 2, 8, 8))
        model = compressor.apply(tiny_net, spec, calibration_x=x)
        for layer in model.net.weighted_layers():
            assert layer.input_quantizer.scale is not None

    def test_8bit_output_close_to_full_precision(self, tiny_net, compressor, rng):
        x = rng.normal(size=(4, 2, 8, 8))
        spec = make_uniform_spec(tiny_net, 1.0, 8, 8)
        model = compressor.apply(tiny_net, spec, calibration_x=x)
        full = tiny_net.forward_to_exit(x, 1)
        quant = model.net.forward_to_exit(x, 1)
        # 8-bit linear quantization should track fp closely at this scale.
        assert np.abs(full - quant).max() < 0.25 * np.abs(full).max() + 0.1


class TestIncrementalFlops:
    def test_marginal_cost_less_than_restart(self, tiny_net, compressor):
        model = compressor.apply(tiny_net, make_uniform_spec(tiny_net, 0.6, 8, 8))
        inc = model.incremental_exit_flops()
        assert len(inc) == 1
        assert 0 < inc[0] < model.exit_flops[1]

    def test_identity_matches_static_profile(self, tiny_net, compressor, identity_spec):
        from repro.nn.flops import incremental_flops

        model = compressor.apply(tiny_net, identity_spec)
        prof = profile_network(tiny_net, (2, 8, 8))
        np.testing.assert_allclose(model.incremental_exit_flops(), incremental_flops(prof))
