"""Tests for the analysis helpers."""

import pytest

from repro.analysis import bar_chart, compare_to_paper, learning_curve, sparkline, sweep
from repro.errors import ConfigError
from repro.sim.results import EventRecord, SimulationResult


class TestBarChart:
    def test_scales_to_max(self):
        out = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").startswith("== T ==")

    def test_zero_values(self):
        out = bar_chart({"a": 0.0, "b": 0.0}, width=8)
        assert "#" not in out

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart({})
        with pytest.raises(ConfigError):
            bar_chart({"a": -1.0})
        with pytest.raises(ConfigError):
            bar_chart({"a": 1.0}, width=0)


class TestSparkline:
    def test_length_preserved_when_short(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_compressed_when_long(self):
        assert len(sparkline(range(500), width=50)) == 50

    def test_monotone_series_monotone_blocks(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert list(line) == sorted(line, key=line.index)  # order preserved
        assert line[0] != line[-1]

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])


class TestLearningCurve:
    def test_renders_metric(self):
        results = [
            SimulationResult(
                [EventRecord(time=0.0, exit_index=0, correct=(i > 2))],
                1.0, 0.1, 10.0,
            )
            for i in range(6)
        ]
        out = learning_curve(results)
        assert "average_accuracy" in out
        assert "0.000 -> 1.000" in out


class TestSweep:
    def test_cartesian_product(self):
        results = sweep(lambda a, b: a * b, {"a": [1, 2], "b": [10, 20]})
        assert len(results) == 4
        assert ({"a": 2, "b": 10}, 20) in results

    def test_deterministic_order(self):
        r1 = sweep(lambda a, b: (a, b), {"b": [1, 2], "a": [3]})
        r2 = sweep(lambda a, b: (a, b), {"a": [3], "b": [1, 2]})
        assert r1 == r2

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            sweep(lambda: None, {})


class TestCompareToPaper:
    def test_ratio_column(self):
        out = compare_to_paper({"iepmj": 0.9}, {"iepmj": 0.45})
        assert "2.00" in out

    def test_no_overlap_rejected(self):
        with pytest.raises(ConfigError):
            compare_to_paper({"a": 1}, {"b": 2})
