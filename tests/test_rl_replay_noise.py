"""Replay buffer and exploration-noise tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl import OUNoise, ReplayBuffer, Transition, TruncatedNormalNoise


def transition(i):
    return Transition(
        state=np.array([float(i)]),
        action=np.array([0.5]),
        reward=float(i),
        next_state=np.array([float(i + 1)]),
        done=False,
    )


class TestReplayBuffer:
    def test_push_and_len(self):
        buf = ReplayBuffer(10, rng=0)
        for i in range(5):
            buf.push(transition(i))
        assert len(buf) == 5

    def test_ring_overwrite(self):
        buf = ReplayBuffer(3, rng=0)
        for i in range(7):
            buf.push(transition(i))
        assert len(buf) == 3
        states, _, rewards, _, _ = buf.sample(3)
        assert set(rewards.tolist()) == {4.0, 5.0, 6.0}

    def test_sample_shapes(self):
        buf = ReplayBuffer(10, rng=0)
        for i in range(8):
            buf.push(transition(i))
        states, actions, rewards, next_states, dones = buf.sample(4)
        assert states.shape == (4, 1)
        assert actions.shape == (4, 1)
        assert rewards.shape == (4,)
        assert dones.shape == (4,)

    def test_sample_too_early_raises(self):
        buf = ReplayBuffer(10, rng=0)
        buf.push(transition(0))
        with pytest.raises(ConfigError):
            buf.sample(2)

    def test_clear(self):
        buf = ReplayBuffer(5, rng=0)
        buf.push(transition(0))
        buf.clear()
        assert len(buf) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            ReplayBuffer(0)


class TestOUNoise:
    def test_temporal_correlation(self):
        noise = OUNoise(1, theta=0.05, sigma=0.1, rng=0)
        samples = np.array([noise.sample()[0] for _ in range(500)])
        lag1 = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lag1 > 0.5  # strongly correlated by construction

    def test_reset_zeroes_state(self):
        noise = OUNoise(2, rng=0)
        noise.sample()
        noise.reset()
        assert (noise.state == 0).all()

    def test_validation(self):
        with pytest.raises(ConfigError):
            OUNoise(0)


class TestTruncatedNormalNoise:
    def test_decay(self):
        noise = TruncatedNormalNoise(1, sigma=0.4, decay=0.5, sigma_min=0.05, rng=0)
        noise.end_episode()
        assert noise.sigma == pytest.approx(0.2)
        for _ in range(10):
            noise.end_episode()
        assert noise.sigma == pytest.approx(0.05)

    def test_scale_follows_sigma(self):
        noise = TruncatedNormalNoise(1, sigma=1.0, rng=0)
        big = np.std([noise.sample()[0] for _ in range(2000)])
        noise.sigma = 0.01
        small = np.std([noise.sample()[0] for _ in range(2000)])
        assert big > 10 * small
