"""Shared fixtures: small deterministic datasets, networks, and traces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SyntheticConfig, make_cifar_like
from repro.energy import solar_trace, uniform_random_events
from repro.models import make_multi_exit_lenet
from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.network import MultiExitNetwork, Sequential


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small, easy dataset (fast to learn in a couple of epochs)."""
    return make_cifar_like(
        num_train=200,
        num_val=80,
        num_test=80,
        config=SyntheticConfig(noise_std=0.8),
        seed=7,
    )


@pytest.fixture(scope="session")
def lenet():
    """The paper's multi-exit LeNet, untrained, fixed seed."""
    return make_multi_exit_lenet(seed=3)


def make_tiny_two_exit(seed: int = 0, num_classes: int = 5) -> MultiExitNetwork:
    """A minimal 2-exit network on 2x8x8 inputs for fast gradient tests."""
    return MultiExitNetwork(
        segments=[
            Sequential(
                [Conv2d(2, 3, 3, padding=1, name="t.c1", rng=seed), ReLU(), MaxPool2d(2)],
                name="t.seg0",
            ),
            Sequential([Conv2d(3, 4, 3, name="t.c2", rng=seed + 1), ReLU()], name="t.seg1"),
        ],
        branches=[
            Sequential([Flatten(), Linear(3 * 4 * 4, num_classes, name="t.f1", rng=seed + 2)]),
            Sequential([Flatten(), Linear(4 * 2 * 2, num_classes, name="t.f2", rng=seed + 3)]),
        ],
        name="tiny_two_exit",
        num_classes=num_classes,
    )


@pytest.fixture
def tiny_net():
    return make_tiny_two_exit()


@pytest.fixture(scope="session")
def short_trace():
    """A 2000-second solar trace for fast simulator tests."""
    return solar_trace(duration=2000.0, dt=1.0, seed=5)


@pytest.fixture(scope="session")
def short_events(short_trace):
    return uniform_random_events(40, short_trace.duration, rng=9)
