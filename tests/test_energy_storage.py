"""Energy-storage invariants, including a property-based random walk."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import EnergyStorage
from repro.errors import ConfigError, EnergyError


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EnergyStorage(0.0)
        with pytest.raises(ConfigError):
            EnergyStorage(1.0, efficiency=0.0)
        with pytest.raises(ConfigError):
            EnergyStorage(1.0, efficiency=1.5)
        with pytest.raises(ConfigError):
            EnergyStorage(1.0, leakage_mw=-1.0)
        with pytest.raises(ConfigError):
            EnergyStorage(1.0, initial_mj=2.0)


class TestCharge:
    def test_efficiency_applies(self):
        storage = EnergyStorage(10.0, efficiency=0.5)
        stored = storage.charge(2.0)
        assert stored == pytest.approx(1.0)
        assert storage.level_mj == pytest.approx(1.0)

    def test_capacity_caps_and_counts_waste(self):
        storage = EnergyStorage(1.0, efficiency=1.0, initial_mj=0.8)
        stored = storage.charge(1.0)
        assert stored == pytest.approx(0.2)
        assert storage.level_mj == pytest.approx(1.0)
        assert storage.total_wasted_mj == pytest.approx(0.8)

    def test_negative_charge_rejected(self):
        with pytest.raises(EnergyError):
            EnergyStorage(1.0).charge(-0.1)


class TestDraw:
    def test_draw_reduces_level(self):
        storage = EnergyStorage(2.0, initial_mj=1.5)
        storage.draw(0.5)
        assert storage.level_mj == pytest.approx(1.0)
        assert storage.total_drawn_mj == pytest.approx(0.5)

    def test_insufficient_raises(self):
        storage = EnergyStorage(2.0, initial_mj=0.1)
        with pytest.raises(EnergyError):
            storage.draw(0.5)

    def test_can_afford_tolerates_rounding(self):
        storage = EnergyStorage(1.0, initial_mj=0.5)
        assert storage.can_afford(0.5)
        assert not storage.can_afford(0.5001)

    def test_negative_draw_rejected(self):
        with pytest.raises(EnergyError):
            EnergyStorage(1.0, initial_mj=1.0).draw(-0.1)


class TestLeak:
    def test_leak_rate(self):
        storage = EnergyStorage(2.0, leakage_mw=0.1, initial_mj=1.0)
        lost = storage.leak(5.0)
        assert lost == pytest.approx(0.5)
        assert storage.level_mj == pytest.approx(0.5)

    def test_leak_cannot_go_negative(self):
        storage = EnergyStorage(2.0, leakage_mw=1.0, initial_mj=0.3)
        storage.leak(10.0)
        assert storage.level_mj == 0.0

    def test_negative_time_rejected(self):
        with pytest.raises(EnergyError):
            EnergyStorage(1.0).leak(-1.0)


class TestReset:
    def test_restores_initial_state(self):
        storage = EnergyStorage(2.0, initial_mj=1.0)
        storage.charge(0.5)
        storage.draw(0.2)
        storage.reset()
        assert storage.level_mj == pytest.approx(1.0)
        assert storage.total_charged_mj == 0.0
        assert storage.total_drawn_mj == 0.0


@given(
    st.lists(
        st.tuples(st.sampled_from(["charge", "draw", "leak"]), st.floats(0, 3)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_level_always_within_bounds(ops):
    """Property: level stays in [0, capacity] under any operation sequence."""
    storage = EnergyStorage(2.0, efficiency=0.8, leakage_mw=0.01, initial_mj=1.0)
    for op, amount in ops:
        if op == "charge":
            storage.charge(amount)
        elif op == "leak":
            storage.leak(amount)
        elif storage.can_afford(amount):
            storage.draw(amount)
        assert -1e-9 <= storage.level_mj <= storage.capacity_mj + 1e-9
