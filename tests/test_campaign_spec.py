"""CampaignSpec validation + Hypothesis properties of grid expansion."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CAMPAIGNS, CampaignSpec
from repro.errors import ConfigError
from repro.runtime.controller import preset_names


def tiny_campaign(**overrides) -> CampaignSpec:
    base = dict(
        name="tiny",
        scenarios=["dev-smoke"],
        controllers=["greedy", "fixed-first"],
        seeds=[1, 2],
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestValidation:
    def test_string_axes_normalize(self):
        spec = tiny_campaign()
        assert spec.scenarios[0]["label"] == "dev-smoke"
        assert spec.controllers[0]["controller"]["kind"] == "greedy"
        assert spec.baseline == "greedy"  # defaults to the first entry

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="atlantis"):
            tiny_campaign(scenarios=["atlantis"])

    def test_unknown_preset_rejected(self):
        with pytest.raises(ConfigError, match="unknown controller preset"):
            tiny_campaign(controllers=["warp-drive"])

    def test_inline_controller_needs_valid_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            tiny_campaign(
                controllers=[{"name": "x", "controller": {"kind": "bandit"}}]
            )

    def test_empty_axes_rejected(self):
        for axis in ("scenarios", "controllers", "seeds"):
            with pytest.raises(ConfigError, match="empty"):
                tiny_campaign(**{axis: []})

    def test_duplicate_entries_rejected(self):
        with pytest.raises(ConfigError, match="duplicate controller"):
            tiny_campaign(controllers=["greedy", "greedy"])
        with pytest.raises(ConfigError, match="duplicate seeds"):
            tiny_campaign(seeds=[1, 1])
        with pytest.raises(ConfigError, match="duplicate scenario"):
            tiny_campaign(scenarios=["dev-smoke", "dev-smoke"])

    def test_seed_axis_owns_the_seed(self):
        with pytest.raises(ConfigError, match="seed axis"):
            tiny_campaign(
                scenarios=[{"scenario": "dev-smoke", "overrides": {"seed": 3}}]
            )

    def test_unsafe_labels_rejected(self):
        # Keys become checkpoint filenames; separators must not sneak in.
        with pytest.raises(ConfigError, match="label"):
            tiny_campaign(
                scenarios=[{"scenario": "dev-smoke", "label": "a/b"}]
            )

    def test_trailing_newline_label_rejected(self):
        # re '$' would accept "smoke\n"; the check must use fullmatch.
        with pytest.raises(ConfigError, match="label"):
            tiny_campaign(
                scenarios=[{"scenario": "dev-smoke", "label": "smoke\n"}]
            )

    def test_key_separator_in_labels_rejected(self):
        # "--" joins key parts: a label containing it could alias two
        # distinct cells onto one checkpoint file.
        with pytest.raises(ConfigError, match="--"):
            tiny_campaign(
                scenarios=[{"scenario": "dev-smoke", "label": "a--b"}]
            )
        with pytest.raises(ConfigError, match="--"):
            tiny_campaign(
                controllers=[{"name": "x--y", "controller": {"kind": "greedy"}}]
            )

    def test_baseline_must_be_on_the_axis(self):
        with pytest.raises(ConfigError, match="baseline"):
            tiny_campaign(baseline="qlearning")

    def test_non_int_seeds_rejected(self):
        with pytest.raises(ConfigError, match="seeds must be ints"):
            tiny_campaign(seeds=[1, "2"])
        with pytest.raises(ConfigError, match="seeds must be ints"):
            tiny_campaign(seeds=[True])


class TestBuiltinCampaigns:
    def test_registered(self):
        for name in ("policy-shootout", "harvester-ablation",
                     "seed-robustness", "dev-smoke"):
            assert name in CAMPAIGNS.names()

    def test_all_builtins_expand(self):
        for name in CAMPAIGNS.names():
            spec = CAMPAIGNS.build(name)
            assert spec.num_cells == len(spec.cells()) >= 2

    def test_policy_shootout_covers_every_preset(self):
        """The registry blurb says 'every controller preset' — keep it true."""
        spec = CAMPAIGNS.build("policy-shootout")
        assert {c["name"] for c in spec.controllers} == set(preset_names())

    def test_smoke_mode_shrinks_grids(self, monkeypatch):
        full = CAMPAIGNS.build("seed-robustness").num_cells
        monkeypatch.setenv("BENCH_SMOKE", "1")
        assert CAMPAIGNS.build("seed-robustness").num_cells < full


# ---------------------------------------------------------------------- #
# Hypothesis: grid expansion over arbitrary (valid) axes
# ---------------------------------------------------------------------- #
SCENARIO_AXIS = st.lists(
    st.sampled_from(
        ["dev-smoke", "solar-farm-100", "indoor-rf-swarm", "mixed-harvester-city"]
    ),
    min_size=1, max_size=4, unique=True,
)
CONTROLLER_AXIS = st.lists(
    st.sampled_from(preset_names()), min_size=1, max_size=5, unique=True
)
SEED_AXIS = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=6, unique=True
)


@st.composite
def campaign_specs(draw):
    return CampaignSpec(
        name="prop",
        scenarios=draw(SCENARIO_AXIS),
        controllers=draw(CONTROLLER_AXIS),
        seeds=draw(SEED_AXIS),
    )


@given(spec=campaign_specs())
@settings(max_examples=80, deadline=None)
def test_cell_count_is_product_of_axes(spec):
    cells = spec.cells()
    assert len(cells) == spec.num_cells
    assert spec.num_cells == (
        len(spec.scenarios) * len(spec.controllers) * len(spec.seeds)
    )


@given(spec=campaign_specs())
@settings(max_examples=80, deadline=None)
def test_cell_keys_are_unique_and_safe(spec):
    keys = [c.key for c in spec.cells()]
    assert len(set(keys)) == len(keys)
    for key in keys:
        assert "/" not in key and "\\" not in key and not key.startswith(".")


@given(spec=campaign_specs())
@settings(max_examples=60, deadline=None)
def test_json_roundtrip_is_exact(spec, tmp_path_factory):
    clone = CampaignSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert clone.to_dict() == spec.to_dict()
    assert clone.canonical_json() == spec.canonical_json()
    assert clone.digest() == spec.digest()
    assert [c.key for c in clone.cells()] == [c.key for c in spec.cells()]


def test_json_file_roundtrip(tmp_path):
    spec = CAMPAIGNS.build("policy-shootout")
    path = tmp_path / "grid.json"
    spec.to_json(str(path))
    clone = CampaignSpec.from_json(str(path))
    assert clone.to_dict() == spec.to_dict()


def test_unknown_fields_rejected():
    data = tiny_campaign().to_dict()
    data["sedds"] = [1]
    with pytest.raises(ConfigError, match="sedds"):
        CampaignSpec.from_dict(data)
    with pytest.raises(ConfigError, match="missing"):
        CampaignSpec.from_dict({"name": "x"})
