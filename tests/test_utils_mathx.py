"""Tests for repro.utils.mathx, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.mathx import (
    clamp,
    entropy,
    log_softmax,
    moving_average,
    normalized_entropy,
    one_hot,
    softmax,
)

finite_rows = arrays(
    np.float64,
    (3, 5),
    elements=st.floats(-50, 50, allow_nan=False, allow_infinity=False),
)


class TestSoftmax:
    @given(finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_rows_sum_to_one(self, logits):
        probs = softmax(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
        assert np.all(probs >= 0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))

    def test_handles_large_values(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()
        assert probs[0, 0] > 0.999

    @given(finite_rows)
    @settings(max_examples=30, deadline=None)
    def test_log_softmax_consistent(self, logits):
        np.testing.assert_allclose(
            np.exp(log_softmax(logits, axis=1)), softmax(logits, axis=1), atol=1e-9
        )


class TestEntropy:
    def test_uniform_is_log_k(self):
        p = np.full((1, 4), 0.25)
        np.testing.assert_allclose(entropy(p), np.log(4))

    def test_one_hot_is_zero(self):
        p = np.array([[1.0, 0.0, 0.0]])
        np.testing.assert_allclose(entropy(p), 0.0, atol=1e-9)

    def test_normalized_range(self):
        p = softmax(np.random.default_rng(0).normal(size=(10, 7)), axis=1)
        ne = normalized_entropy(p)
        assert np.all(ne >= 0) and np.all(ne <= 1 + 1e-12)

    def test_normalized_uniform_is_one(self):
        p = np.full((1, 6), 1 / 6)
        np.testing.assert_allclose(normalized_entropy(p), 1.0)

    def test_single_class_is_zero(self):
        assert normalized_entropy(np.ones((2, 1))).tolist() == [0.0, 0.0]


class TestClamp:
    @given(st.floats(-100, 100, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_within_bounds(self, x):
        assert -1.0 <= clamp(x, -1.0, 1.0) <= 1.0

    def test_identity_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_array_input(self):
        out = clamp(np.array([-2.0, 0.5, 2.0]), 0.0, 1.0)
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0])


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            one_hot(np.zeros((2, 2), dtype=int), 3)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        vals = [1.0, 2.0, 3.0]
        np.testing.assert_allclose(moving_average(vals, 1), vals)

    def test_trailing_mean(self):
        out = moving_average([1.0, 2.0, 3.0, 4.0], 2)
        np.testing.assert_allclose(out, [1.0, 1.5, 2.5, 3.5])

    def test_ramp_up(self):
        out = moving_average([2.0, 4.0], 10)
        np.testing.assert_allclose(out, [2.0, 3.0])

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_empty(self):
        assert moving_average([], 3).size == 0
