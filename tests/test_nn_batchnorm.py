"""BatchNorm2d tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import BatchNorm2d


class TestForward:
    def test_normalizes_training_batch(self, rng):
        bn = BatchNorm2d(4)
        x = rng.normal(size=(8, 4, 6, 6)) * 3.0 + 5.0
        out = bn.forward(x, train=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_gamma_beta_affect_output(self, rng):
        bn = BatchNorm2d(2)
        bn.gamma.data[:] = 2.0
        bn.beta.data[:] = 1.0
        x = rng.normal(size=(4, 2, 3, 3))
        out = bn.forward(x, train=True)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 1.0, atol=1e-9)

    def test_running_stats_converge(self, rng):
        bn = BatchNorm2d(3, momentum=0.2)
        for _ in range(100):
            bn.forward(rng.normal(size=(16, 3, 4, 4)) * 2.0 + 3.0, train=True)
        np.testing.assert_allclose(bn.running_mean, 3.0, atol=0.3)
        np.testing.assert_allclose(bn.running_var, 4.0, atol=0.8)

    def test_inference_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn.forward(rng.normal(size=(16, 2, 4, 4)), train=True)
        # A wildly shifted eval batch must NOT be renormalized to zero mean.
        x = rng.normal(size=(4, 2, 4, 4)) + 100.0
        out = bn.forward(x, train=False)
        assert out.mean() > 10.0

    def test_shape_validation(self, rng):
        bn = BatchNorm2d(3)
        with pytest.raises(ShapeError):
            bn.forward(rng.normal(size=(4, 2, 3, 3)))
        with pytest.raises(ShapeError):
            bn.forward(rng.normal(size=(4, 3)))
        with pytest.raises(ShapeError):
            BatchNorm2d(0)


class TestBackward:
    def test_gradients_numerically(self, rng):
        bn = BatchNorm2d(2)
        # check_layer_gradients uses forward(train=False) for the loss probe,
        # which would freeze statistics; probe manually with train=True.
        x = rng.normal(size=(3, 2, 4, 4))
        out = bn.forward(x, train=True)
        dout = rng.normal(size=out.shape)
        bn.zero_grad()
        dx = bn.backward(dout)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (2, 1, 3, 3), (1, 0, 2, 1)]:
            xp, xm = x.copy(), x.copy()
            xp[idx] += eps
            xm[idx] -= eps
            fp = float(np.sum(bn.forward(xp, train=True) * dout))
            fm = float(np.sum(bn.forward(xm, train=True) * dout))
            np.testing.assert_allclose(dx[idx], (fp - fm) / (2 * eps), rtol=1e-4, atol=1e-8)

    def test_parameter_gradients(self, rng):
        bn = BatchNorm2d(2)
        x = rng.normal(size=(3, 2, 4, 4))
        out = bn.forward(x, train=True)
        dout = rng.normal(size=out.shape)
        bn.zero_grad()
        bn.backward(dout)
        eps = 1e-6
        for p in (bn.gamma, bn.beta):
            i = 1
            orig = p.data[i]
            p.data[i] = orig + eps
            fp = float(np.sum(bn.forward(x, train=True) * dout))
            p.data[i] = orig - eps
            fm = float(np.sum(bn.forward(x, train=True) * dout))
            p.data[i] = orig
            np.testing.assert_allclose(p.grad[i], (fp - fm) / (2 * eps), rtol=1e-4)

    def test_backward_before_forward_raises(self, rng):
        with pytest.raises(RuntimeError):
            BatchNorm2d(2).backward(rng.normal(size=(1, 2, 2, 2)))

    def test_trains_inside_a_network(self, rng):
        """A conv+BN+ReLU stack must train end to end."""
        from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
        from repro.nn.losses import MultiExitCrossEntropy
        from repro.nn.network import MultiExitNetwork, Sequential
        from repro.nn.optim import SGD

        net = MultiExitNetwork(
            segments=[Sequential([
                Conv2d(2, 4, 3, padding=1, name="c", rng=0),
                BatchNorm2d(4, name="bn"),
                ReLU(),
            ])],
            branches=[Sequential([Flatten(), Linear(4 * 6 * 6, 3, name="f", rng=1)])],
            num_classes=3,
        )
        x = rng.normal(size=(30, 2, 6, 6))
        y = (x.mean(axis=(1, 2, 3)) > 0).astype(np.int64) + 1
        y[x.std(axis=(1, 2, 3)) > 1.05] = 0
        crit = MultiExitCrossEntropy(1)
        opt = SGD(net.parameters(), lr=0.05)
        losses = []
        for _ in range(60):
            opt.zero_grad()
            losses.append(crit(net.forward_all(x, train=True), y))
            net.backward_all(crit.backward())
            opt.step()
        assert losses[-1] < losses[0] * 0.7
