"""Unit tests for the repro.obs primitives.

Covers the metrics registry (instruments, wire round-trip, merge
semantics), the span/TraceWriter tracing layer, the phase profiler, the
provenance manifest, and recorder scoping.  The merge property the whole
parallel story rests on — splitting one serial observation stream across
worker registries and merging them in dispatch order reproduces the
serial registry bit-for-bit — is locked in with hypothesis.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    MANIFEST_SCHEMA,
    NULL_RECORDER,
    MetricsRegistry,
    PhaseProfiler,
    Recorder,
    TraceWriter,
    build_manifest,
    get_recorder,
    memory_snapshot,
    obs_enabled,
    recording,
    set_recorder,
    span,
    write_manifest,
)

# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #


def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.inc("c")
    reg.inc("c", 4)
    assert reg.counter_value("c") == 5
    assert reg.counter_value("missing") == 0
    assert reg.counter_value("missing", default=-1) == -1

    reg.set_gauge("g", 3)
    reg.set_gauge("g", 7)  # last write wins
    assert reg.gauge_value("g") == 7
    assert reg.gauge_value("missing") is None

    reg.observe("h", 1.0)
    reg.observe_many("h", [2.0, 3.0, 10.0])
    s = reg.histogram("h").summary()
    arr = np.array([1.0, 2.0, 3.0, 10.0])
    assert s["count"] == 4
    assert s["total"] == arr.sum()
    assert s["mean"] == arr.mean()
    assert s["min"] == 1.0 and s["max"] == 10.0
    assert s["p50"] == np.percentile(arr, 50.0)
    assert s["p95"] == np.percentile(arr, 95.0)


def test_empty_histogram_summary_is_count_zero():
    reg = MetricsRegistry()
    assert reg.histogram("h").summary() == {"count": 0}
    assert reg.to_dict()["histograms"]["h"] == {"count": 0}


def test_registry_names_sorted():
    reg = MetricsRegistry()
    reg.inc("z")
    reg.inc("a")
    reg.set_gauge("g", 1)
    reg.observe("h", 0.5)
    assert reg.names() == {
        "counters": ["a", "z"],
        "gauges": ["g"],
        "histograms": ["h"],
    }


def test_wire_round_trip_preserves_everything():
    reg = MetricsRegistry()
    reg.inc("c", 3)
    reg.set_gauge("g", "batched")
    reg.observe_many("h", [0.25, 0.5])
    fresh = MetricsRegistry()
    fresh.merge_wire(reg.to_wire())
    assert fresh.to_dict() == reg.to_dict()


def test_merge_semantics():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.set_gauge("g", 1)
    a.observe("h", 1.0)
    b = MetricsRegistry()
    b.inc("c", 5)
    b.observe("h", 2.0)
    # b never set the gauge: its wire carries nothing to overwrite with.
    a.merge(b)
    assert a.counter_value("c") == 7
    assert a.gauge_value("g") == 1
    # Concatenation order: a's observations first, then b's.
    assert list(a.histogram("h").values()) == [1.0, 2.0]

    c = MetricsRegistry()
    c.set_gauge("g", 9)
    a.merge(c)
    assert a.gauge_value("g") == 9  # last write wins across merges


_CHUNKS = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["lat", "wall"]),
            st.floats(
                min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
            ),
        ),
        max_size=8,
    ),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(chunks=_CHUNKS)
def test_merged_worker_registries_equal_serial(chunks):
    """Dispatch-order merge of per-chunk registries == one serial registry.

    This is exactly the fleet dispatcher's contract: each worker chunk
    builds its own registry, ships the wire form home, and the parent
    merges in dispatch order (see repro.fleet.runner._merge_worker_obs).
    """
    serial = MetricsRegistry()
    for chunk in chunks:
        serial.inc("chunks")
        for name, value in chunk:
            serial.inc(f"obs.{name}")
            serial.observe(name, value)

    merged = MetricsRegistry()
    for chunk in chunks:
        worker = MetricsRegistry()
        worker.inc("chunks")
        for name, value in chunk:
            worker.inc(f"obs.{name}")
            worker.observe(name, value)
        merged.merge_wire(worker.to_wire())

    # Bit-for-bit: summaries are floats computed from the raw columns,
    # so dict equality is exact float equality.
    assert merged.to_dict() == serial.to_dict()


# --------------------------------------------------------------------- #
# Tracing
# --------------------------------------------------------------------- #


def test_trace_writer_needs_exactly_one_sink(tmp_path):
    with pytest.raises(ValueError):
        TraceWriter()
    with pytest.raises(ValueError):
        TraceWriter(path=tmp_path / "t.jsonl", stream=io.StringIO())


def test_trace_writer_path_lazy_and_jsonl(tmp_path):
    path = tmp_path / "trace.jsonl"
    writer = TraceWriter(path)
    assert not path.exists()  # lazy: nothing until the first record
    writer.emit({"type": "manifest", "b": 1, "a": 2})
    writer.emit({"type": "span", "name": "x"})
    writer.close()
    lines = path.read_text().splitlines()
    assert writer.records_written == 2
    assert [json.loads(line)["type"] for line in lines] == ["manifest", "span"]
    # Compact separators, sorted keys: stable byte form.
    assert lines[0] == '{"a":2,"b":1,"type":"manifest"}'


def test_span_is_noop_without_recorder():
    assert get_recorder() is NULL_RECORDER
    with span("nothing", tag=1):
        pass  # must not raise, must not record anywhere


def test_span_nesting_depth_parent_and_metrics_mirror():
    stream = io.StringIO()
    rec = Recorder(metrics=True, trace=TraceWriter(stream=stream))
    with recording(rec):
        with span("outer", fleet="f"):
            with span("inner"):
                pass
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    # Inner closes first.
    inner, outer = records
    assert inner["name"] == "inner" and inner["depth"] == 1
    assert inner["parent"] == "outer"
    assert outer["name"] == "outer" and outer["depth"] == 0
    assert outer["parent"] is None
    assert outer["tags"] == {"fleet": "f"}
    assert inner["dur_s"] >= 0.0 and outer["dur_s"] >= inner["dur_s"]
    assert rec.metrics.histogram("span.outer.s").count == 1
    assert rec.metrics.histogram("span.inner.s").count == 1


def test_span_metrics_only_records_no_trace():
    rec = Recorder(metrics=True)
    with recording(rec):
        with span("solo"):
            pass
    assert rec.metrics.histogram("span.solo.s").count == 1


# --------------------------------------------------------------------- #
# Profiler
# --------------------------------------------------------------------- #


def test_profiler_phase_tally_and_wire():
    prof = PhaseProfiler()
    with prof.phase("build"):
        pass
    prof.add_wall("run", 0.5, calls=2)
    prof.tally("passes", 3)
    prof.tally("passes")
    wire = prof.to_wire()
    assert wire["phases"]["build"]["calls"] == 1
    assert wire["phases"]["build"]["wall_s"] >= 0.0
    assert wire["phases"]["run"] == {"wall_s": 0.5, "calls": 2}
    assert wire["counts"] == {"passes": 4}
    # JSON-safe by contract.
    json.dumps(wire)


def test_profiler_merge_adds_walls_and_maxes_memory():
    a = PhaseProfiler()
    a.add_wall("run", 1.0)
    a.tally("lanes", 10)
    a.memory["peak"] = {"peak_rss_mb": 100.0, "note": "a"}
    b = PhaseProfiler()
    b.add_wall("run", 2.0, calls=3)
    b.tally("lanes", 5)
    b.tally("passes", 1)
    b.memory["peak"] = {"peak_rss_mb": 250.0, "note": "b"}
    a.merge_wire(b.to_wire())
    assert a.phase_wall["run"] == 3.0
    assert a.phase_calls["run"] == 4
    assert a.counts == {"lanes": 15, "passes": 1}
    assert a.memory["peak"]["peak_rss_mb"] == 250.0
    assert a.memory["peak"]["note"] == "a"  # non-numeric: first wins


def test_memory_snapshot_reports_rss():
    snap = memory_snapshot()
    assert snap["peak_rss_mb"] > 0


# --------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------- #


def test_build_manifest_fields_and_extras():
    manifest = build_manifest(fleet="solar-farm-100", devices=32)
    assert manifest["schema"] == MANIFEST_SCHEMA
    for key in (
        "git_sha",
        "git_dirty",
        "python",
        "numpy",
        "platform",
        "hostname",
        "cpu_count",
        "usable_cpus",
        "pid",
        "created_unix",
        "created_utc",
        "bench_smoke",
    ):
        assert key in manifest, key
    assert manifest["fleet"] == "solar-farm-100"
    assert manifest["devices"] == 32
    assert manifest["numpy"] == np.__version__
    json.dumps(manifest)  # JSON-safe by contract


def test_manifest_bench_smoke_tracks_env(monkeypatch):
    monkeypatch.setenv("BENCH_SMOKE", "1")
    assert build_manifest()["bench_smoke"] is True
    monkeypatch.setenv("BENCH_SMOKE", "")
    assert build_manifest()["bench_smoke"] is False


def test_write_manifest(tmp_path):
    path = tmp_path / "manifest.json"
    written = write_manifest(path, campaign="shootout")
    with open(path) as fh:
        on_disk = json.load(fh)
    assert on_disk == json.loads(json.dumps(written))
    assert on_disk["campaign"] == "shootout"


# --------------------------------------------------------------------- #
# Recorder scoping
# --------------------------------------------------------------------- #


def test_default_recorder_is_null():
    rec = get_recorder()
    assert rec is NULL_RECORDER
    assert not obs_enabled()
    assert rec.metrics is None and rec.trace is None and rec.profiler is None
    rec.close()  # harmless


def test_recording_scopes_and_restores():
    assert get_recorder() is NULL_RECORDER
    with recording(profile=True) as rec:
        assert get_recorder() is rec
        assert obs_enabled()
        assert rec.metrics is not None and rec.profiler is not None
        with recording() as inner:
            assert get_recorder() is inner
        assert get_recorder() is rec  # nested scope restored the outer one
    assert get_recorder() is NULL_RECORDER


def test_recording_closes_owned_trace_only(tmp_path):
    owned_path = tmp_path / "owned.jsonl"
    with recording(trace_path=owned_path):
        with span("x"):
            pass
    # Owned recorder: closed (and flushed) on exit.
    assert owned_path.exists()

    stream = io.StringIO()
    mine = Recorder(metrics=False, trace=TraceWriter(stream=stream))
    with recording(mine):
        with span("y"):
            pass
    assert not stream.closed  # caller-supplied recorder is not closed
    mine.close()


def test_set_recorder_returns_previous():
    rec = Recorder()
    previous = set_recorder(rec)
    try:
        assert previous is NULL_RECORDER
        assert get_recorder() is rec
    finally:
        assert set_recorder(None) is rec
    assert get_recorder() is NULL_RECORDER
