"""Training-loop tests on a small learnable task."""

import numpy as np
import pytest

from repro.nn.trainer import TrainConfig, Trainer, evaluate_exit_accuracies
from tests.conftest import make_tiny_two_exit


class TestEvaluateExitAccuracies:
    def test_untrained_near_chance(self, tiny_net, tiny_dataset):
        x = tiny_dataset.test.x[:40, :2, :8, :8]
        y = tiny_dataset.test.y[:40] % 5
        accs = evaluate_exit_accuracies(tiny_net, x, y)
        assert len(accs) == 2
        assert all(0.0 <= a <= 0.6 for a in accs)

    def test_batched_equals_unbatched(self, tiny_net, rng):
        x = rng.normal(size=(30, 2, 8, 8))
        y = rng.integers(0, 5, 30)
        a1 = evaluate_exit_accuracies(tiny_net, x, y, batch_size=7)
        a2 = evaluate_exit_accuracies(tiny_net, x, y, batch_size=30)
        assert a1 == a2


class TestTrainer:
    def test_loss_decreases_and_accuracy_improves(self, tiny_dataset):
        net = make_tiny_two_exit(seed=4, num_classes=10)
        x = tiny_dataset.train.x[:150, :2, :8, :8]
        y = tiny_dataset.train.y[:150]
        config = TrainConfig(epochs=6, batch_size=32, lr=0.02, seed=0)
        history = Trainer(config).fit(net, x, y, x, y)
        assert history.loss[-1] < history.loss[0]
        assert max(history.final_val_accuracy) > 0.3  # well above 10% chance

    def test_history_shapes(self, tiny_dataset):
        net = make_tiny_two_exit(seed=4, num_classes=10)
        x = tiny_dataset.train.x[:60, :2, :8, :8]
        y = tiny_dataset.train.y[:60]
        history = Trainer(TrainConfig(epochs=2, batch_size=16, seed=0)).fit(net, x, y, x, y)
        assert len(history.loss) == 2
        assert len(history.exit_losses[0]) == 2
        assert len(history.val_exit_accuracy) == 2

    def test_no_validation_data(self, tiny_dataset):
        net = make_tiny_two_exit(seed=4, num_classes=10)
        x = tiny_dataset.train.x[:40, :2, :8, :8]
        y = tiny_dataset.train.y[:40]
        history = Trainer(TrainConfig(epochs=1, batch_size=16, seed=0)).fit(net, x, y)
        assert history.val_exit_accuracy == []

    def test_deterministic_given_seed(self, tiny_dataset):
        x = tiny_dataset.train.x[:40, :2, :8, :8]
        y = tiny_dataset.train.y[:40]
        losses = []
        for _ in range(2):
            net = make_tiny_two_exit(seed=4, num_classes=10)
            history = Trainer(TrainConfig(epochs=2, batch_size=16, seed=5)).fit(net, x, y)
            losses.append(history.loss)
        np.testing.assert_allclose(losses[0], losses[1])

    def test_adam_optimizer_path(self, tiny_dataset):
        net = make_tiny_two_exit(seed=4, num_classes=10)
        x = tiny_dataset.train.x[:40, :2, :8, :8]
        y = tiny_dataset.train.y[:40]
        config = TrainConfig(epochs=2, batch_size=16, lr=1e-3, optimizer="adam", seed=0)
        history = Trainer(config).fit(net, x, y)
        assert history.loss[-1] < history.loss[0]

    def test_unknown_optimizer_raises(self, tiny_dataset):
        net = make_tiny_two_exit(seed=4, num_classes=10)
        with pytest.raises(ValueError):
            Trainer(TrainConfig(optimizer="rmsprop")).fit(
                net, tiny_dataset.train.x[:8, :2, :8, :8], tiny_dataset.train.y[:8]
            )

    def test_exit_weights_bias_training(self, tiny_dataset):
        # Zero weight on exit 1 must leave its private branch untouched.
        net = make_tiny_two_exit(seed=4, num_classes=10)
        before = net.layer_by_name("t.f2").weight.data.copy()
        x = tiny_dataset.train.x[:40, :2, :8, :8]
        y = tiny_dataset.train.y[:40]
        config = TrainConfig(
            epochs=1, batch_size=16, exit_weights=[1.0, 0.0], weight_decay=0.0, seed=0
        )
        Trainer(config).fit(net, x, y)
        np.testing.assert_allclose(net.layer_by_name("t.f2").weight.data, before)
