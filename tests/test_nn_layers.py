"""Layer-level tests: shapes, gradients, hooks, and edge cases."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Parameter,
    ReLU,
    Sigmoid,
    Tanh,
)


def check_layer_gradients(layer, x, rng, atol=1e-6):
    """Numerical gradient check for input and all parameters."""
    out = layer.forward(x, train=True)
    dout = rng.normal(size=out.shape)
    layer.zero_grad()
    dx = layer.backward(dout)
    eps = 1e-6

    def loss(xx):
        return float(np.sum(layer.forward(xx, train=False) * dout))

    flat_idx = rng.choice(x.size, size=min(5, x.size), replace=False)
    for i in flat_idx:
        xp, xm = x.copy().ravel(), x.copy().ravel()
        xp[i] += eps
        xm[i] -= eps
        num = (loss(xp.reshape(x.shape)) - loss(xm.reshape(x.shape))) / (2 * eps)
        np.testing.assert_allclose(dx.ravel()[i], num, atol=atol, rtol=1e-4)
    for p in layer.parameters():
        idx = rng.choice(p.data.size, size=min(4, p.data.size), replace=False)
        for i in idx:
            orig = p.data.ravel()[i]
            p.data.ravel()[i] = orig + eps
            lp = loss(x)
            p.data.ravel()[i] = orig - eps
            lm = loss(x)
            p.data.ravel()[i] = orig
            np.testing.assert_allclose(
                p.grad.ravel()[i], (lp - lm) / (2 * eps), atol=atol, rtol=1e-4
            )


class TestParameter:
    def test_zero_grad(self):
        p = Parameter("w", np.ones((2, 2)))
        p.grad += 3.0
        p.zero_grad()
        assert (p.grad == 0).all()

    def test_size(self):
        assert Parameter("w", np.ones((3, 4))).size == 12


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 5, padding=2, rng=0)
        out = layer.forward(rng.normal(size=(2, 3, 16, 16)))
        assert out.shape == (2, 8, 16, 16)

    def test_gradients(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=0)
        check_layer_gradients(layer, rng.normal(size=(2, 2, 5, 5)), rng)

    def test_backward_before_forward_raises(self, rng):
        layer = Conv2d(2, 3, 3, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(rng.normal(size=(1, 3, 3, 3)))

    def test_weight_quantizer_hook_applied(self, rng):
        layer = Conv2d(2, 3, 3, rng=0)
        x = rng.normal(size=(1, 2, 5, 5))
        base = layer.forward(x)
        layer.weight_quantizer = lambda w: np.zeros_like(w)
        quantized = layer.forward(x)
        assert not np.allclose(base, quantized)
        np.testing.assert_allclose(quantized, layer.bias.data[None, :, None, None] * np.ones_like(quantized))

    def test_input_quantizer_hook_applied(self, rng):
        layer = Conv2d(2, 3, 3, bias=False, rng=0)
        layer.input_quantizer = lambda a: np.zeros_like(a)
        out = layer.forward(rng.normal(size=(1, 2, 5, 5)))
        np.testing.assert_allclose(out, 0.0)

    def test_invalid_dims_raise(self):
        with pytest.raises(ShapeError):
            Conv2d(0, 3, 3)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(10, 4, rng=0)
        assert layer.forward(rng.normal(size=(3, 10))).shape == (3, 4)

    def test_gradients(self, rng):
        layer = Linear(6, 4, rng=0)
        check_layer_gradients(layer, rng.normal(size=(3, 6)), rng)

    def test_feature_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            Linear(6, 4, rng=0).forward(rng.normal(size=(3, 7)))

    def test_rank_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            Linear(6, 4, rng=0).forward(rng.normal(size=(3, 6, 1)))

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestActivations:
    def test_relu_forward(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_relu_gradients(self, rng):
        check_layer_gradients(ReLU(), rng.normal(size=(3, 4)) + 0.1, rng)

    def test_sigmoid_range(self, rng):
        out = Sigmoid().forward(rng.normal(size=(5, 5)) * 10)
        assert (out > 0).all() and (out < 1).all()

    def test_sigmoid_gradients(self, rng):
        check_layer_gradients(Sigmoid(), rng.normal(size=(3, 4)), rng)

    def test_tanh_gradients(self, rng):
        check_layer_gradients(Tanh(), rng.normal(size=(3, 4)), rng)


class TestPoolingLayers:
    def test_maxpool_gradients(self, rng):
        check_layer_gradients(MaxPool2d(2), rng.normal(size=(2, 2, 4, 4)), rng)

    def test_avgpool_gradients(self, rng):
        check_layer_gradients(AvgPool2d(2), rng.normal(size=(2, 2, 4, 4)), rng)

    def test_default_stride_equals_kernel(self):
        assert MaxPool2d(3).stride == 3
        assert MaxPool2d(3, stride=1).stride == 1

    def test_rejects_degenerate_kernel(self):
        for pool in (MaxPool2d, AvgPool2d):
            with pytest.raises(ShapeError):
                pool(0)
            with pytest.raises(ShapeError):
                pool(-2)
            with pytest.raises(ShapeError):
                pool(2, stride=-1)


class TestFlatten:
    def test_shape(self, rng):
        out = Flatten().forward(rng.normal(size=(2, 3, 4, 4)))
        assert out.shape == (2, 48)

    def test_backward_restores_shape(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        layer.forward(x, train=True)
        assert layer.backward(rng.normal(size=(2, 48))).shape == x.shape


class TestDropout:
    def test_identity_at_inference(self, rng):
        x = rng.normal(size=(4, 10))
        np.testing.assert_array_equal(Dropout(0.5, rng=0).forward(x, train=False), x)

    def test_scales_kept_units(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((1, 1000))
        out = layer.forward(x, train=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # Expected keep fraction near 0.5.
        assert 0.4 < (out != 0).mean() < 0.6

    def test_zero_probability_is_identity(self, rng):
        x = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(Dropout(0.0, rng=0).forward(x, train=True), x)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_backward_before_forward_raises(self):
        # Every layer raises here; Dropout used to silently pass dout through.
        with pytest.raises(RuntimeError):
            Dropout(0.5, rng=0).backward(np.ones((2, 2)))

    def test_backward_is_identity_when_p_zero(self, rng):
        layer = Dropout(0.0, rng=0)
        x = rng.normal(size=(3, 3))
        layer.forward(x, train=True)
        dout = rng.normal(size=(3, 3))
        np.testing.assert_array_equal(layer.backward(dout), dout)
