"""Static FLOPs/size profiling tests, including the paper's constants."""

import pytest

from repro.errors import ShapeError
from repro.models import (
    MULTI_EXIT_LENET_LAYERS,
    PAPER_EXIT_FLOPS,
    make_sonic_net,
    make_sparse_net,
    make_lenet_cifar,
)
from repro.nn.flops import incremental_flops, profile_network
from repro.nn.layers import Conv2d, Flatten, Linear
from repro.nn.network import MultiExitNetwork, Sequential


class TestLayerProfiles:
    def test_conv_macs_formula(self):
        net = MultiExitNetwork(
            segments=[Sequential([Conv2d(3, 8, 5, name="c", rng=0)])],
            branches=[Sequential([Flatten(), Linear(8 * 28 * 28, 10, name="f", rng=1)])],
        )
        prof = profile_network(net, (3, 32, 32))
        conv = prof.layer("c")
        assert conv.flops == 8 * 3 * 25 * 28 * 28
        assert conv.out_shape == (8, 28, 28)

    def test_linear_macs_formula(self):
        net = MultiExitNetwork(
            segments=[Sequential([Flatten()])],
            branches=[Sequential([Linear(48, 10, name="f", rng=0)])],
        )
        prof = profile_network(net, (3, 4, 4))
        assert prof.layer("f").flops == 480

    def test_channel_mismatch_detected(self):
        net = MultiExitNetwork(
            segments=[Sequential([Conv2d(4, 8, 3, name="c", rng=0)])],
            branches=[Sequential([Flatten(), Linear(10, 10, name="f", rng=1)])],
        )
        with pytest.raises(ShapeError):
            profile_network(net, (3, 8, 8))

    def test_weight_bits_accounting(self):
        net = MultiExitNetwork(
            segments=[Sequential([Conv2d(1, 2, 3, name="c", rng=0)])],
            branches=[Sequential([Flatten(), Linear(2 * 6 * 6, 4, name="f", rng=1)])],
        )
        prof = profile_network(net, (1, 8, 8))
        fp32 = prof.model_size_bits()
        mixed = prof.model_size_bits({"c": 8, "f": 4})
        weights_c, weights_f = 2 * 1 * 9, 72 * 4
        assert fp32 == (weights_c + weights_f) * 32 + (2 + 4) * 32
        assert mixed == weights_c * 8 + weights_f * 4 + (2 + 4) * 32


class TestMultiExitLenetProfile:
    """Section V-A constants: the model must match the paper's cost profile."""

    def test_exit_flops_match_paper_within_2_percent(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        for measured, paper in zip(prof.exit_flops, PAPER_EXIT_FLOPS):
            assert abs(measured - paper) / paper < 0.02

    def test_exit_flops_monotonically_increase(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        assert prof.exit_flops[0] < prof.exit_flops[1] < prof.exit_flops[2]

    def test_layer_names_match_figure4(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        assert {lp.name for lp in prof.layers} == set(MULTI_EXIT_LENET_LAYERS)

    def test_model_exceeds_mcu_storage_uncompressed(self, lenet):
        # The premise of the paper: the fp32 model cannot fit in 16 KB.
        prof = profile_network(lenet, (3, 32, 32))
        assert prof.model_size_kb() > 100.0

    def test_exit_dependency_sets_nest(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        backbone0 = set(prof.exits[0].layer_names) - {"ConvB1", "FC-B1"}
        assert backbone0 <= set(prof.exits[1].layer_names)

    def test_incremental_cheaper_than_full_restart(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        inc = incremental_flops(prof)
        assert len(inc) == 2
        # Continuing must cost less than running the deeper exit from scratch.
        assert inc[0] < prof.exit_flops[1]
        assert inc[1] < prof.exit_flops[2]


class TestBaselineProfiles:
    @pytest.mark.parametrize(
        "maker,target,tolerance",
        [
            (make_sonic_net, 2.0e6, 0.05),
            (make_sparse_net, 11.4e6, 0.05),
            (make_lenet_cifar, 0.23e6, 0.10),
        ],
    )
    def test_flops_near_paper_values(self, maker, target, tolerance):
        prof = profile_network(maker(), (3, 32, 32))
        assert abs(prof.total_flops - target) / target < tolerance

    def test_baselines_are_single_exit(self):
        for maker in (make_sonic_net, make_sparse_net, make_lenet_cifar):
            assert maker().num_exits == 1
