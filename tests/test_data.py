"""Dataset container and synthetic generator tests."""

import numpy as np
import pytest

from repro.data import Dataset, SyntheticConfig, make_cifar_like
from repro.errors import ShapeError


class TestDataset:
    def test_validates_rank(self):
        with pytest.raises(ShapeError):
            Dataset(np.zeros((4, 3, 8)), np.zeros(4, dtype=int))

    def test_validates_alignment(self):
        with pytest.raises(ShapeError):
            Dataset(np.zeros((4, 3, 8, 8)), np.zeros(5, dtype=int))

    def test_subset(self):
        ds = Dataset(np.arange(4 * 3 * 2 * 2, dtype=float).reshape(4, 3, 2, 2), np.arange(4))
        sub = ds.subset([1, 3])
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.y, [1, 3])

    def test_subset_is_a_copy(self):
        ds = Dataset(np.zeros((4, 1, 2, 2)), np.zeros(4, dtype=int))
        sub = ds.subset([0])
        sub.x += 1.0
        assert ds.x.sum() == 0

    def test_sample_without_replacement(self):
        ds = Dataset(np.zeros((10, 1, 2, 2)), np.arange(10))
        sample = ds.sample(10, rng=0)
        assert sorted(sample.y.tolist()) == list(range(10))

    def test_sample_too_many_raises(self):
        ds = Dataset(np.zeros((3, 1, 2, 2)), np.arange(3))
        with pytest.raises(ValueError):
            ds.sample(4, rng=0)

    def test_properties(self):
        ds = Dataset(np.zeros((6, 3, 8, 8)), np.array([0, 1, 2, 0, 1, 2]))
        assert ds.image_shape == (3, 8, 8)
        assert ds.num_classes == 3


class TestSyntheticGenerator:
    def test_shapes_and_dtypes(self, tiny_dataset):
        assert tiny_dataset.train.x.shape == (200, 3, 32, 32)
        assert tiny_dataset.val.x.shape == (80, 3, 32, 32)
        assert tiny_dataset.test.x.shape == (80, 3, 32, 32)
        assert tiny_dataset.train.y.dtype == np.int64

    def test_deterministic_in_seed(self):
        a = make_cifar_like(num_train=20, num_val=10, num_test=10, seed=3)
        b = make_cifar_like(num_train=20, num_val=10, num_test=10, seed=3)
        np.testing.assert_array_equal(a.train.x, b.train.x)
        np.testing.assert_array_equal(a.test.y, b.test.y)

    def test_different_seeds_differ(self):
        a = make_cifar_like(num_train=20, num_val=10, num_test=10, seed=3)
        b = make_cifar_like(num_train=20, num_val=10, num_test=10, seed=4)
        assert not np.allclose(a.train.x, b.train.x)

    def test_standardized(self, tiny_dataset):
        assert abs(tiny_dataset.train.x.mean()) < 0.05
        assert abs(tiny_dataset.train.x.std() - 1.0) < 0.05

    def test_all_classes_present(self, tiny_dataset):
        assert set(tiny_dataset.train.y.tolist()) == set(range(10))

    def test_noise_controls_class_separability(self):
        """Within-class distance should grow with the noise knob."""
        def within_class_spread(noise):
            splits = make_cifar_like(
                num_train=100, num_val=10, num_test=10,
                config=SyntheticConfig(noise_std=noise, max_shift=0, occlusion_prob=0.0),
                seed=5,
            )
            x, y = splits.train.x, splits.train.y
            spreads = []
            for cls in range(10):
                imgs = x[y == cls]
                if len(imgs) > 1:
                    spreads.append(imgs.std(axis=0).mean())
            return np.mean(spreads)

        assert within_class_spread(0.2) < within_class_spread(2.0)

    def test_splits_share_prototypes(self):
        """Train/test must be the same task: a class mean in train should be
        closer to the same class's test mean than to other classes'."""
        splits = make_cifar_like(
            num_train=300, num_val=10, num_test=300,
            config=SyntheticConfig(noise_std=0.5, max_shift=0, occlusion_prob=0.0),
            seed=6,
        )
        hits = 0
        for cls in range(10):
            train_mean = splits.train.x[splits.train.y == cls].mean(axis=0).ravel()
            dists = []
            for other in range(10):
                test_imgs = splits.test.x[splits.test.y == other]
                dists.append(np.linalg.norm(test_imgs.mean(axis=0).ravel() - train_mean))
            if int(np.argmin(dists)) == cls:
                hits += 1
        assert hits >= 8
