"""Hypothesis property suite for the vectorized intermittent kernel.

The batched fleet engine routes SONIC-style devices through
:class:`repro.intermittent.kernel.IntermittentFleetKernel`, whose
multi-cycle loop re-implements the :class:`EnergyStorage` ledger as raw
column arithmetic.  Two families of properties keep that honest:

* **equivalence** — a kernel episode is bit-identical to the scalar
  :func:`repro.intermittent.kernel.run_job_scalar` loop driven over the
  same devices (state columns, draws-free outcomes, finish times);
* **conservation** — across arbitrary harvest/capacity/job regimes, the
  kernel's energy accounting never invents or loses energy across
  power-loss boundaries:
  ``level == initial + charged - drawn - leaked`` (the scalar storage
  invariant from ``test_property_storage.py``), every charge splits into
  banked + wasted, and the level stays inside ``[0, capacity]``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.storage import EnergyStorage
from repro.energy.traces import constant_trace, rf_trace
from repro.intermittent.kernel import (
    REASON_ENERGY,
    REASON_NONE,
    IntermittentFleetKernel,
    run_job_scalar,
)
from repro.intermittent.mcu import MSP432
from repro.utils.rng import DrawBatch


class _KernelDevice:
    """The duck-typed device view IntermittentFleetKernel consumes."""

    class _Profile:
        num_exits = 1
        name = "prop"

    def __init__(self, trace, storage, job_mj, acc=0.8):
        self.trace = trace
        self.storage = storage
        self.mcu = MSP432
        self.profile = self._Profile()
        self.exit_energy = [float(job_mj)]
        self.exit_acc = [float(acc)]


def _make_trace(kind, power_mw, duration, seed):
    if kind == "constant":
        return constant_trace(power_mw, duration, dt=1.0)
    return rf_trace(duration=duration, dt=1.0, mean_mw=power_mw, seed=seed)


CASES = st.lists(
    st.tuples(
        st.sampled_from(["constant", "rf"]),
        st.floats(0.001, 0.08, allow_nan=False),  # harvest power (mW)
        st.floats(0.5, 4.0, allow_nan=False),  # capacity (mJ)
        st.floats(0.0, 1.0, allow_nan=False),  # initial fraction
        st.floats(0.05, 3.0, allow_nan=False),  # job energy (mJ)
        st.floats(0.0, 0.002, allow_nan=False),  # leakage (mW)
        st.floats(0.0, 300.0, allow_nan=False),  # event time (s)
    ),
    min_size=1,
    max_size=5,
)


def _build(cases, seed):
    devices = []
    storages = []
    for i, (kind, p, cap, frac, job, leak, _te) in enumerate(cases):
        trace = _make_trace(kind, p, 600.0, seed + i)
        storage = EnergyStorage(
            cap, efficiency=0.8, leakage_mw=leak, initial_mj=cap * frac
        )
        storages.append(storage)
        devices.append(_KernelDevice(trace, storage, job))
    kernel = IntermittentFleetKernel(np.arange(len(devices)), devices)
    return kernel, devices, storages


def _run_kernel_episode(kernel, devices, cases, seed):
    k = len(devices)
    events = np.array([[c[6] for c in cases]])
    cum = np.array(
        [
            [
                d.trace._cum_at(d.trace._clip_time(c[6]))
                for d, c in zip(devices, cases)
            ]
        ]
    )
    n_events = np.ones(k, np.int64)
    level = np.array([d.storage._initial_mj for d in devices])
    drawn = np.zeros(k)
    t_charged = np.zeros(k)
    cum_charged = np.zeros(k)
    busy_until = np.zeros(k)
    draws = DrawBatch([np.random.default_rng(seed + 100 + i) for i in range(k)])
    rec = kernel.run_episode(
        np.ones(k, bool),
        events,
        cum,
        n_events,
        level,
        drawn,
        t_charged,
        cum_charged,
        busy_until,
        draws,
    )
    return rec, level, drawn, busy_until


@given(cases=CASES, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_kernel_matches_scalar_loop_bit_for_bit(cases, seed):
    """One event per device: the kernel's outcome must be the scalar
    charge-to-event + run_job_scalar sequence, value for value."""
    kernel, devices, _ = _build(cases, seed)
    rec, level, drawn, busy_until = _run_kernel_episode(kernel, devices, cases, seed)
    for i, (device, case) in enumerate(zip(devices, cases)):
        te = case[6]
        storage = device.storage
        trace = device.trace
        # Scalar reference: the simulator's charge-to-event block, then
        # the shared scalar loop.
        if te > 0.0:
            storage.charge(max(trace._cum_at(trace._clip_time(te)) - 0.0, 0.0))
            storage.leak(te - 0.0)
        run = run_job_scalar(
            trace,
            MSP432,
            trace.dt,
            device.exit_energy[0],
            te,
            storage,
            deadline=trace.duration,
        )
        assert busy_until[i] == run.finish_time
        assert level[i] == storage.level_mj
        assert drawn[i] == storage.total_drawn_mj
        if run.completed:
            assert rec["reason"][0, i] == REASON_NONE
            assert rec["energy"][0, i] == (
                run.energy_consumed_mj + run.overhead_energy_mj
            )
        else:
            assert rec["reason"][0, i] == REASON_ENERGY
        assert rec["cycles"][0, i] == run.power_cycles
        assert rec["latency"][0, i] == run.latency_s


@given(cases=CASES, seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_kernel_conserves_energy_ledger(cases, seed):
    """Across power-loss boundaries (checkpoint, off, restore), the
    column ledger must balance exactly like EnergyStorage's."""
    kernel, devices, _ = _build(cases, seed)
    initial = np.array([d.storage._initial_mj for d in devices])
    capacity = np.array([d.storage.capacity_mj for d in devices])
    rec, level, drawn, _ = _run_kernel_episode(kernel, devices, cases, seed)
    reconstructed = initial + rec["charged"] - drawn - rec["leaked"]
    assert level == pytest.approx(reconstructed, abs=1e-9)
    assert np.all(rec["wasted"] >= -1e-12)
    assert np.all(level >= 0.0)
    assert np.all(level <= capacity + 1e-9)
    assert np.all(np.isfinite(level))


@given(cases=CASES, seed=st.integers(0, 2**16))
@settings(max_examples=20, deadline=None)
def test_kernel_never_overdraws(cases, seed):
    """Total drawn energy never exceeds what was ever available:
    initial charge plus everything banked."""
    kernel, devices, _ = _build(cases, seed)
    initial = np.array([d.storage._initial_mj for d in devices])
    rec, level, drawn, _ = _run_kernel_episode(kernel, devices, cases, seed)
    assert np.all(drawn <= initial + rec["charged"] + 1e-9)
