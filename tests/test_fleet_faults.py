"""Fault-tolerant fleet dispatch: retries, watchdog, degradation, quarantine.

The contract under test: for any *recoverable* injected fault schedule —
worker crashes, raised exceptions, hangs past the watchdog, transient
OSErrors, corrupted wire payloads — the completed :class:`FleetResult`
is bit-identical to a fault-free run, with the recovery visible only in
``fleet.retry.*`` / ``fault.injected.*`` counters.  Truly unrecoverable
devices are quarantined as :class:`DeviceFailure` records instead of
aborting the fleet, and spec problems (:class:`ConfigError`) are never
retried.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.errors import ConfigError, IntegrityError
from repro.faults import Fault, FaultPlan, RetryPolicy, chaos
from repro.fleet import DeviceSpec, FleetRunner, FleetSpec
from repro.fleet.results import (
    DeviceFailure,
    pack_device_results,
    payload_digest,
    seal_payload,
    verify_payload,
)
from repro.fleet.runner import LazyPool, run_device_batch
from repro.obs import Recorder, recording


def tiny_device(name: str) -> DeviceSpec:
    return DeviceSpec(
        name=name,
        trace={"family": "solar", "duration": 400.0, "dt": 1.0, "peak_mw": 0.03},
        controller={"kind": "greedy"},
        events={"kind": "uniform", "count": 15},
    )


def tiny_fleet(n=6, seed=7) -> FleetSpec:
    return FleetSpec(
        name="faults", seed=seed, devices=[tiny_device(f"dev-{i}") for i in range(n)]
    )


def run_clean(spec: FleetSpec) -> dict:
    agg = FleetRunner(spec).run().aggregate()
    agg.pop("wall_s", None)
    return agg


def aggregate_of(result) -> dict:
    agg = result.aggregate()
    agg.pop("wall_s", None)
    return agg


FAST = RetryPolicy(max_retries=3, backoff_s=0.0)


# --------------------------------------------------------------------- #
# Payload integrity primitives
# --------------------------------------------------------------------- #


class TestPayloadIntegrity:
    def test_seal_and_verify_roundtrip(self):
        tasks = [(i, d, 7) for i, d in enumerate(tiny_fleet(2).devices)]
        payload = seal_payload(pack_device_results(run_device_batch(tasks)))
        verify_payload(payload)  # must not raise

    def test_digest_ignores_volatile_keys(self):
        tasks = [(i, d, 7) for i, d in enumerate(tiny_fleet(2).devices)]
        payload = pack_device_results(run_device_batch(tasks))
        base = payload_digest(payload)
        payload["obs"] = {"metrics": {"anything": 1}}
        payload["wall_s"] = 123.4
        assert payload_digest(payload) == base

    def test_corruption_detected(self):
        tasks = [(i, d, 7) for i, d in enumerate(tiny_fleet(2).devices)]
        payload = seal_payload(pack_device_results(run_device_batch(tasks)))
        payload["iepmj"].view("u8")[0] ^= 0xFF
        with pytest.raises(IntegrityError, match="digest"):
            verify_payload(payload)

    def test_missing_digest_detected(self):
        tasks = [(i, d, 7) for i, d in enumerate(tiny_fleet(2).devices)]
        payload = pack_device_results(run_device_batch(tasks))
        with pytest.raises(IntegrityError, match="without a content digest"):
            verify_payload(payload)


# --------------------------------------------------------------------- #
# Serial dispatch under chaos
# --------------------------------------------------------------------- #


class TestSerialChaos:
    @pytest.mark.parametrize(
        "op", ["exception", "oserror", "crash", "hang", "corrupt_payload"]
    )
    def test_single_fault_recovers_bit_identical(self, op):
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, op)])
        with chaos(plan) as injector:
            result = FleetRunner(spec, retry=FAST).run()
        assert injector.fired_summary() == {f"fleet.chunk.{op}": 1}
        assert aggregate_of(result) == clean
        assert result.failures == []

    def test_retry_counters_emitted(self):
        spec = tiny_fleet()
        plan = FaultPlan([Fault("fleet.chunk", 0, "exception")])
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            FleetRunner(spec, retry=FAST).run()
        assert rec.metrics.counter_value("fleet.retry.failures") == 1
        assert rec.metrics.counter_value("fleet.retry.attempts") == 1
        assert rec.metrics.counter_value("fault.injected.fleet.chunk.exception") == 1

    def test_config_error_never_retried(self):
        spec = FleetSpec(
            name="bad",
            seed=1,
            devices=[tiny_device("ok"), tiny_device("bad-profile")],
        )
        # An unknown profile only explodes at execution time, inside the
        # chunk — exactly where retry must NOT mask it.
        object.__setattr__(spec.devices[1], "profile", "mystery-net")
        plan = FaultPlan([])
        with chaos(plan) as injector, pytest.raises(ConfigError):
            FleetRunner(spec, retry=FAST).run()
        # one dispatch attempt, no retries
        assert injector.occurrences("fleet.chunk") == 1

    def test_quarantine_after_ladder_exhausted(self):
        spec = tiny_fleet(n=1, seed=3)
        # Retry budget 0 → attempts: chunk (occurrence 0) then the final
        # in-parent serial attempt (occurrence 1); fault both.
        plan = FaultPlan(
            [
                Fault("fleet.chunk", 0, "exception"),
                Fault("fleet.chunk", 1, "exception"),
            ]
        )
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(
                spec, retry=RetryPolicy(max_retries=0, backoff_s=0.0)
            ).run()
        assert result.num_devices == 0
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, DeviceFailure)
        assert failure.index == 0 and failure.name == "dev-0"
        assert failure.stage == "serial"
        assert "InjectedFault" in failure.error
        assert rec.metrics.counter_value("fleet.devices.quarantined") == 1
        agg = result.aggregate()
        assert agg["failures"][0]["name"] == "dev-0"

    def test_fully_quarantined_fleet_aggregates_to_documented_zeros(self):
        """Losing EVERY device must degrade to a well-formed zero report.

        The aggregate's divisions (fleet IEpmJ, accuracy, exit depth) and
        percentile tables all hit their empty-input branches at once; each
        must produce its documented zero instead of raising.
        """
        spec = tiny_fleet(n=2, seed=5)
        plan = FaultPlan(
            [Fault("fleet.chunk", i, "exception") for i in range(8)]
        )
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(
                spec, retry=RetryPolicy(max_retries=0, backoff_s=0.0)
            ).run()
        assert result.num_devices == 0
        assert len(result.failures) == 2
        assert rec.metrics.counter_value("fleet.devices.quarantined") == 2
        agg = result.aggregate()
        assert agg["devices"] == 0
        assert agg["events"] == 0
        assert agg["fleet_iepmj"] == 0.0
        assert agg["average_accuracy"] == 0.0
        assert agg["mean_exit_depth"] == 0.0
        assert agg["exit_counts"] == []
        assert agg["miss_counts"] == {}
        assert agg["device_iepmj_percentiles"] == {
            "p10": 0.0, "p50": 0.0, "p90": 0.0
        }
        assert sorted(f["name"] for f in agg["failures"]) == ["dev-0", "dev-1"]
        # The zero report must survive serialization and re-aggregation.
        json.dumps(result.to_dict(include_timing=True))

    def test_multi_device_chunk_splits_before_quarantine(self):
        spec = tiny_fleet(n=4, seed=9)
        clean = run_clean(spec)
        # Exhaust the whole-chunk budget (occurrences 0 and 1), forcing a
        # split; the per-device re-runs (occurrences 2..5) run clean.
        plan = FaultPlan(
            [
                Fault("fleet.chunk", 0, "exception"),
                Fault("fleet.chunk", 1, "exception"),
            ]
        )
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(
                spec, retry=RetryPolicy(max_retries=1, backoff_s=0.0)
            ).run()
        assert rec.metrics.counter_value("fleet.retry.splits") == 1
        assert aggregate_of(result) == clean

    def test_fault_free_plan_changes_nothing(self):
        spec = tiny_fleet()
        clean = run_clean(spec)
        with chaos(FaultPlan([])):
            result = FleetRunner(spec, retry=FAST).run()
        assert aggregate_of(result) == clean


# --------------------------------------------------------------------- #
# Pooled dispatch under chaos
# --------------------------------------------------------------------- #


POOLED = dict(workers=2, parallel_threshold=1)


class TestPooledChaos:
    def test_worker_crash_recovers_bit_identical(self):
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, "crash")])
        policy = RetryPolicy(max_retries=2, worker_timeout=2.0, backoff_s=0.0)
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(spec, retry=policy, **POOLED).run()
        assert aggregate_of(result) == clean
        assert rec.metrics.counter_value("fleet.retry.timeouts") >= 1
        assert rec.metrics.counter_value("fleet.retry.attempts") >= 1

    def test_hang_straggler_verified_bit_identical(self):
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, "hang", {"seconds": 1.0})])
        policy = RetryPolicy(
            max_retries=2, worker_timeout=0.3, backoff_s=0.0, straggler_grace_s=3.0
        )
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(spec, retry=policy, **POOLED).run()
        assert aggregate_of(result) == clean
        # the sleeping attempt finished late and its payload matched the
        # accepted re-execution — the production determinism assert fired
        assert rec.metrics.counter_value("fleet.straggler.verified") >= 1

    def test_corrupt_payload_detected_and_retried(self):
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, "corrupt_payload")])
        with recording(Recorder(metrics=True)) as rec, chaos(plan):
            result = FleetRunner(spec, retry=FAST, **POOLED).run()
        assert aggregate_of(result) == clean
        assert rec.metrics.counter_value("fleet.retry.failures") >= 1

    def test_sigkill_a_pool_child_mid_run(self):
        """The integration test: a child process is SIGKILLed from outside
        mid-dispatch; the fleet must complete bit-identically with the
        retries visible in counters (and the pool must not wedge)."""
        # Slow devices (20k events of q-learning each, ~0.4s per chunk)
        # keep both workers busy long enough that the kill lands mid-chunk.
        devices = [
            DeviceSpec(
                name=f"slow-{i}",
                trace={
                    "family": "solar",
                    "duration": 40000.0,
                    "dt": 1.0,
                    "peak_mw": 0.03,
                },
                controller={"kind": "qlearning"},
                events={"kind": "uniform", "count": 20000},
            )
            for i in range(8)
        ]
        spec = FleetSpec(name="sigkill", seed=21, devices=devices)
        clean = run_clean(spec)

        # A SIGKILL can take the pool's shared task-queue lock down with
        # the worker, wedging every later dispatch — the ladder then walks
        # each chunk down to the in-parent serial attempt.  A short
        # watchdog keeps that worst case fast; recovery must still be
        # bit-identical.
        def run_with_assassin():
            runner = FleetRunner(
                spec,
                workers=2,
                parallel_threshold=1,
                chunksize=2,
                retry=RetryPolicy(max_retries=1, worker_timeout=0.5, backoff_s=0.0),
            )
            stop = threading.Event()

            def assassin():
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline and not stop.is_set():
                    children = multiprocessing.active_children()
                    if children:
                        time.sleep(0.15)  # let the child pick up its chunk
                        victims = multiprocessing.active_children()
                        if victims:
                            os.kill(victims[0].pid, signal.SIGKILL)
                        return
                    time.sleep(0.001)

            thread = threading.Thread(target=assassin)
            with recording(Recorder(metrics=True)) as rec:
                thread.start()
                try:
                    result = runner.run()
                finally:
                    stop.set()
                    thread.join()
            return result, rec

        # A kill can land on a worker that has not picked up a chunk yet
        # (the pool just respawns it and nothing is lost), so allow a few
        # attempts for the murder to hit mid-chunk. Every attempt must be
        # bit-identical regardless of where the kill landed.
        for _ in range(3):
            result, rec = run_with_assassin()
            assert aggregate_of(result) == clean
            if rec.metrics.counter_value("fleet.retry.timeouts") >= 1:
                break
        # the murdered chunk timed out and was re-dispatched
        assert rec.metrics.counter_value("fleet.retry.timeouts") >= 1
        assert rec.metrics.counter_value("fleet.retry.attempts") >= 1

    def test_pool_children_reaped_when_run_raises(self):
        """Regression: a run that raises mid-dispatch must not leak live
        worker processes from its self-owned pool."""
        spec = FleetSpec(
            name="leak", seed=1, devices=[tiny_device(f"d{i}") for i in range(4)]
        )
        object.__setattr__(spec.devices[2], "profile", "mystery-net")
        before = {p.pid for p in multiprocessing.active_children()}
        with pytest.raises(ConfigError):
            FleetRunner(spec, workers=2, parallel_threshold=1, chunksize=1).run()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = {p.pid for p in multiprocessing.active_children()} - before
            if not leaked:
                break
            time.sleep(0.01)
        assert not leaked, f"leaked pool children: {leaked}"

    def test_external_lazy_pool_survives_chaos(self):
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, "exception")])
        pool = LazyPool(2)
        runner = FleetRunner(spec, parallel_threshold=1, retry=FAST)
        try:
            with chaos(plan):
                result = runner.run(pool=pool)
        finally:
            pool.shutdown()
        assert aggregate_of(result) == clean

    def test_abandoned_straggler_recycles_the_pool(self):
        """A straggler that never surfaces means a wedged/dead worker; the
        dispatcher must force-terminate the pool on the spot (instead of
        letting teardown stall on a join the workers can no longer reach)
        and a long-lived LazyPool must respawn cleanly on its next run."""
        spec = tiny_fleet()
        clean = run_clean(spec)
        plan = FaultPlan([Fault("fleet.chunk", 0, "hang", {"seconds": 30.0})])
        policy = RetryPolicy(
            max_retries=2, worker_timeout=0.2, backoff_s=0.0, straggler_grace_s=0.1
        )
        pool = LazyPool(2)
        runner = FleetRunner(spec, parallel_threshold=1, retry=policy)
        try:
            with recording(Recorder(metrics=True)) as rec, chaos(plan):
                result = runner.run(pool=pool)
            assert aggregate_of(result) == clean
            assert rec.metrics.counter_value("fleet.straggler.abandoned") >= 1
            assert rec.metrics.counter_value("fleet.pool.recycled") == 1
            # the sleeping worker was terminated with its pool, not leaked
            assert pool._pool is None
            # ... and the same LazyPool respawns for the next fleet
            assert aggregate_of(runner.run(pool=pool)) == clean
        finally:
            pool.shutdown()


# --------------------------------------------------------------------- #
# Plan replay determinism end to end
# --------------------------------------------------------------------- #


def test_replayed_plan_reproduces_fault_schedule(tmp_path):
    spec = tiny_fleet()
    plan = FaultPlan(
        [
            Fault("fleet.chunk", 0, "exception"),
            Fault("fleet.chunk", 1, "corrupt_payload"),
        ]
    )
    path = tmp_path / "plan.json"
    plan.to_json(str(path))

    def run_once():
        with chaos(FaultPlan.from_json(str(path))) as injector:
            result = FleetRunner(spec, retry=FAST).run()
        return injector.fired_summary(), aggregate_of(result)

    first, second = run_once(), run_once()
    assert first == second
    assert first[0] == {
        "fleet.chunk.exception": 1,
        "fleet.chunk.corrupt_payload": 1,
    }
    clean_json = json.dumps(run_clean(spec), sort_keys=True, default=str)
    assert json.dumps(first[1], sort_keys=True, default=str) == clean_json
