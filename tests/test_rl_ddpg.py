"""DDPG agent tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl import DDPGAgent, DDPGConfig


def small_config(**overrides):
    kwargs = dict(
        hidden_sizes=(16, 16),
        batch_size=16,
        warmup=16,
        buffer_capacity=1000,
        noise_sigma=0.2,
    )
    kwargs.update(overrides)
    return DDPGConfig(**kwargs)


class TestActing:
    def test_action_in_unit_box(self):
        agent = DDPGAgent(4, 2, small_config(), rng=0)
        for _ in range(20):
            a = agent.act(np.random.default_rng(0).normal(size=4), explore=True)
            assert a.shape == (2,)
            assert np.all((a >= 0) & (a <= 1))

    def test_deterministic_without_exploration(self):
        agent = DDPGAgent(4, 2, small_config(), rng=0)
        s = np.ones(4)
        np.testing.assert_array_equal(agent.act(s, explore=False), agent.act(s, explore=False))

    def test_exploration_adds_noise(self):
        agent = DDPGAgent(4, 2, small_config(), rng=0)
        s = np.ones(4)
        base = agent.act(s, explore=False)
        noisy = [agent.act(s, explore=True) for _ in range(10)]
        assert any(not np.allclose(n, base) for n in noisy)


class TestUpdate:
    def test_no_update_before_warmup(self):
        agent = DDPGAgent(2, 1, small_config(warmup=100), rng=0)
        agent.remember(np.zeros(2), np.zeros(1), 0.0, np.zeros(2), False)
        assert agent.update() == {}

    def test_critic_loss_decreases_on_fixed_problem(self):
        """Critic must learn a constant reward signal."""
        agent = DDPGAgent(2, 1, small_config(gamma=0.0, critic_lr=5e-3), rng=0)
        rng = np.random.default_rng(1)
        for _ in range(64):
            s = rng.normal(size=2)
            a = rng.random(1)
            agent.remember(s, a, 1.0, rng.normal(size=2), True)
        losses = []
        for _ in range(150):
            stats = agent.update()
            losses.append(stats["critic_loss"])
        assert np.mean(losses[-10:]) < np.mean(losses[:10]) / 2

    def test_actor_moves_toward_rewarded_actions(self):
        """Reward = action value: the actor should drift upward."""
        agent = DDPGAgent(2, 1, small_config(gamma=0.0, actor_lr=3e-3), rng=0)
        rng = np.random.default_rng(1)
        state = np.ones(2)
        before = agent.act(state, explore=False)[0]
        for _ in range(64):
            a = rng.random(1)
            agent.remember(state, a, float(a[0]), state, True)
        for _ in range(300):
            agent.update()
        after = agent.act(state, explore=False)[0]
        assert after > before or after > 0.9

    def test_target_networks_track_slowly(self):
        agent = DDPGAgent(2, 1, small_config(tau=0.01), rng=0)
        rng = np.random.default_rng(1)
        target_before = [p.data.copy() for p in agent.target_critic.parameters()]
        for _ in range(32):
            agent.remember(rng.normal(size=2), rng.random(1), 1.0, rng.normal(size=2), True)
        agent.update()
        for p_before, p_now, p_live in zip(
            target_before, agent.target_critic.parameters(), agent.critic.parameters()
        ):
            # Target moved, but less than the live network.
            target_delta = np.abs(p_now.data - p_before).max()
            live_delta = np.abs(p_live.data - p_before).max()
            if live_delta > 1e-9:
                assert target_delta < live_delta

    def test_end_episode_decays_noise(self):
        agent = DDPGAgent(2, 1, small_config(noise_decay=0.5), rng=0)
        sigma = agent.noise.sigma
        agent.end_episode()
        assert agent.noise.sigma == pytest.approx(sigma * 0.5)


class TestValidation:
    def test_dims(self):
        with pytest.raises(ConfigError):
            DDPGAgent(0, 1)
        with pytest.raises(ConfigError):
            DDPGAgent(1, 0)

    def test_config(self):
        with pytest.raises(ConfigError):
            DDPGConfig(gamma=1.5)
        with pytest.raises(ConfigError):
            DDPGConfig(tau=0.0)
