"""Controller wiring tests: pending transitions and learning hooks."""

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    GreedyEnergyPolicy,
    QLearningController,
    StaticController,
)
from repro.runtime.incremental import IncrementalDecider, ThresholdContinue
from repro.runtime.state import RuntimeState

ENERGIES = [0.2, 0.8, 1.6]


def state(energy_mj, power=0.01):
    return RuntimeState(0.0, energy_mj, 2.0, power, 0.03)


class TestStaticController:
    def test_delegates_to_policy(self):
        controller = StaticController(GreedyEnergyPolicy())
        assert controller.select_exit(state(1.0), ENERGIES) == 1

    def test_rejects_non_policy(self):
        with pytest.raises(ConfigError):
            StaticController(policy="greedy")

    def test_default_rule_never_continues(self):
        controller = StaticController(GreedyEnergyPolicy())
        assert not controller.decide_continue(0.99, 0.99, affordable=True)

    def test_threshold_rule_plumbed_through(self):
        controller = StaticController(GreedyEnergyPolicy(), ThresholdContinue(0.5))
        assert controller.decide_continue(0.9, 0.5, affordable=True)
        assert not controller.decide_continue(0.1, 0.5, affordable=True)


class TestQLearningController:
    def test_pending_transition_updates_on_next_event(self):
        controller = QLearningController(3, epsilon=0.0, rng=0)
        table_before = controller.qtable.table.copy()
        controller.select_exit(state(1.0), ENERGIES)
        controller.report_event(1.0)
        # Update happens when the NEXT state is observed.
        assert (controller.qtable.table == table_before).all()
        controller.select_exit(state(0.5), ENERGIES)
        assert not (controller.qtable.table == table_before).all()

    def test_end_episode_flushes_terminal(self):
        controller = QLearningController(3, epsilon=0.0, rng=0)
        controller.select_exit(state(1.0), ENERGIES)
        controller.report_event(1.0)
        before = controller.qtable.table.copy()
        controller.end_episode()
        assert not (controller.qtable.table == before).all()

    def test_end_episode_decays_epsilon(self):
        controller = QLearningController(3, epsilon=0.4, epsilon_decay=0.5, rng=0)
        controller.end_episode()
        assert controller.qtable.epsilon == pytest.approx(0.2)

    def test_learns_affordable_actions(self):
        """Choosing unaffordable exits gives 0 reward; Q must move away."""
        # gamma=0 makes this a contextual bandit with a clean optimum; the
        # same state repeats forever, so bootstrapping (gamma>0) would mix
        # action values through max Q(s, .) and slow the ordering down.
        controller = QLearningController(
            3, energy_bins=4, power_bins=2, epsilon=0.3, alpha=0.3, gamma=0.0, rng=0
        )
        low = state(0.3)  # only exit 0 affordable
        for _ in range(400):
            a = controller.select_exit(low, ENERGIES)
            reward = 0.9 if a == 0 else 0.0  # exit 0 succeeds, others miss
            controller.report_event(reward)
        controller.end_episode()
        controller.qtable.epsilon = 0.0
        assert controller.select_exit(low, ENERGIES) == 0

    def test_incremental_trajectory_forwarded(self):
        decider = IncrementalDecider(epsilon=0.0, rng=0)
        controller = QLearningController(3, continue_rule=decider, rng=0)
        controller.select_exit(state(1.9), ENERGIES)
        controller.decide_continue(0.9, 0.9, affordable=True)
        before = decider.qtable.table.copy()
        controller.report_event(1.0)
        assert not (decider.qtable.table == before).all()

    def test_validation(self):
        with pytest.raises(ConfigError):
            QLearningController(0)


class TestMakeController:
    def test_qlearning(self):
        from repro.runtime import QLearningController, make_controller

        controller = make_controller("qlearning", 3, rng=0, epsilon=0.1)
        assert isinstance(controller, QLearningController)
        assert controller.num_exits == 3
        assert controller.qtable.epsilon == 0.1

    def test_static_lut_needs_profile_context(self):
        from repro.runtime import make_controller

        with pytest.raises(ConfigError):
            make_controller("static-lut", 3)
        controller = make_controller(
            "static-lut", 3, exit_energies_mj=ENERGIES, capacity_mj=2.0
        )
        assert controller.select_exit(state(1.0), ENERGIES) >= 0

    def test_greedy_and_fixed(self):
        from repro.runtime import make_controller

        greedy = make_controller("greedy", 3, reserve_fraction=0.25)
        assert greedy.select_exit(state(1.9), ENERGIES) == 1
        fixed = make_controller("fixed", 3, exit_index=2)
        assert fixed.select_exit(state(1.9), ENERGIES) == 2
        assert fixed.select_exit(state(0.1), ENERGIES) == -1

    def test_unknown_kind_names_value(self):
        from repro.runtime import make_controller

        with pytest.raises(ConfigError, match="bandit"):
            make_controller("bandit", 3)


class TestControllerPresets:
    def test_builtin_presets_resolve_to_valid_specs(self):
        from repro.runtime import CONTROLLER_KINDS, CONTROLLER_PRESETS, controller_preset

        for name in CONTROLLER_PRESETS:
            spec = controller_preset(name)
            assert spec["kind"] in CONTROLLER_KINDS

    def test_preset_lookup_returns_a_copy(self):
        from repro.runtime import controller_preset

        controller_preset("greedy")["reserve_fraction"] = 0.99
        assert controller_preset("greedy")["reserve_fraction"] == 0.2

    def test_unknown_preset_raises(self):
        from repro.runtime import controller_preset

        with pytest.raises(ConfigError, match="unknown controller preset"):
            controller_preset("warp-drive")

    def test_duplicate_registration_rejected(self):
        from repro.runtime import register_controller_preset

        with pytest.raises(ConfigError, match="already registered"):
            register_controller_preset("greedy", {"kind": "greedy"})

    def test_preset_with_bad_kind_rejected(self):
        from repro.runtime import register_controller_preset

        with pytest.raises(ConfigError, match="kind"):
            register_controller_preset("new-one", {"kind": "bandit"})

    def test_presets_build_through_make_controller(self):
        from repro.runtime import controller_preset, make_controller

        spec = controller_preset("fixed-first")
        kind = spec.pop("kind")
        controller = make_controller(kind, 3, rng=0, **spec)
        assert controller.policy.exit_index == 0
