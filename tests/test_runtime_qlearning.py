"""Tabular Q-learning tests (Eq. 16 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.runtime import QTable, discretize


class TestDiscretize:
    def test_edges(self):
        assert discretize(0.0, 10) == 0
        assert discretize(1.0, 10) == 9
        assert discretize(0.999, 10) == 9

    def test_out_of_range_clamped(self):
        assert discretize(-5.0, 10) == 0
        assert discretize(5.0, 10) == 9

    @given(st.floats(0, 1, allow_nan=False), st.integers(1, 32))
    @settings(max_examples=60, deadline=None)
    def test_always_valid_bin(self, value, bins):
        assert 0 <= discretize(value, bins) < bins

    def test_custom_range(self):
        assert discretize(5.0, 4, lo=0.0, hi=8.0) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            discretize(0.5, 0)
        with pytest.raises(ConfigError):
            discretize(0.5, 4, lo=1.0, hi=1.0)


class TestQTableUpdate:
    def test_eq16_by_hand(self):
        q = QTable((2, 2), 2, alpha=0.5, gamma=0.9, epsilon=0.0)
        q.table[(0, 0, 1)] = 1.0
        q.table[(1, 1, 0)] = 2.0
        # Q(s,a) += alpha * (r + gamma * max_a Q(s',a) - Q(s,a))
        new = q.update((0, 0), 1, reward=1.0, next_state=(1, 1))
        assert new == pytest.approx(1.0 + 0.5 * (1.0 + 0.9 * 2.0 - 1.0))

    def test_terminal_update_has_no_bootstrap(self):
        q = QTable((2,), 2, alpha=1.0, gamma=0.9, epsilon=0.0)
        new = q.update((0,), 0, reward=0.7, next_state=None)
        assert new == pytest.approx(0.7)

    def test_repeated_updates_converge_to_reward(self):
        q = QTable((1,), 1, alpha=0.3, gamma=0.0, epsilon=0.0)
        for _ in range(200):
            q.update((0,), 0, reward=0.5, next_state=None)
        assert q.table[(0, 0)] == pytest.approx(0.5, abs=1e-4)

    def test_float_states_normalized_on_every_call(self):
        """The validated-state fast path must keep returning the int-tuple
        form: float tuples hash equal to their int twins, so a naive memo
        would hand the raw floats to numpy indexing on the second call."""
        q = QTable((2, 2), 2)
        for _ in range(3):
            assert q.q_values((1.0, 0.0)).shape == (2,)
            q.update((1.0, 0.0), 1, reward=0.5, next_state=(0.0, 1.0))

    def test_list_states_accepted_repeatedly(self):
        q = QTable((2, 2), 2)
        for _ in range(2):
            assert q.q_values([0, 1]).shape == (2,)

    def test_invalid_state_or_action(self):
        q = QTable((2, 2), 2)
        with pytest.raises(ConfigError):
            q.update((2, 0), 0, 1.0)
        with pytest.raises(ConfigError):
            q.update((0, 0), 5, 1.0)
        with pytest.raises(ConfigError):
            q.q_values((0,))


class TestActionSelection:
    def test_greedy_when_epsilon_zero(self):
        q = QTable((1,), 3, epsilon=0.0, rng=0)
        q.table[(0, 2)] = 1.0
        assert all(q.select_action((0,)) == 2 for _ in range(20))

    def test_explores_when_epsilon_one(self):
        q = QTable((1,), 3, epsilon=1.0, rng=0)
        actions = {q.select_action((0,)) for _ in range(100)}
        assert actions == {0, 1, 2}

    def test_tie_breaks_to_lowest_index(self):
        q = QTable((1,), 3, epsilon=0.0)
        assert q.best_action((0,)) == 0

    def test_epsilon_decay(self):
        q = QTable((1,), 2, epsilon=0.5, epsilon_decay=0.5, epsilon_min=0.1)
        q.decay_epsilon()
        assert q.epsilon == pytest.approx(0.25)
        for _ in range(10):
            q.decay_epsilon()
        assert q.epsilon == pytest.approx(0.1)


class TestLUTSize:
    def test_size_is_grid_times_actions(self):
        # The paper's "negligible overhead" LUT: small and explicit.
        q = QTable((10, 5), 3)
        assert q.size == 150

    def test_validation(self):
        with pytest.raises(ConfigError):
            QTable((0,), 2)
        with pytest.raises(ConfigError):
            QTable((2,), 0)
        with pytest.raises(ConfigError):
            QTable((2,), 2, alpha=0.0)
        with pytest.raises(ConfigError):
            QTable((2,), 2, gamma=1.5)


def test_gridworld_convergence():
    """Q-learning must find the better arm of a 2-armed bandit per state."""
    rng = np.random.default_rng(0)
    q = QTable((2,), 2, alpha=0.1, gamma=0.0, epsilon=0.2, rng=1)
    probs = {(0, 0): 0.2, (0, 1): 0.8, (1, 0): 0.9, (1, 1): 0.1}
    for _ in range(3000):
        s = int(rng.integers(2))
        a = q.select_action((s,))
        r = float(rng.random() < probs[(s, a)])
        q.update((s,), a, r, None)
    assert q.best_action((0,)) == 1
    assert q.best_action((1,)) == 0
