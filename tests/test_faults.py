"""Unit tests for repro.faults: plans, the injector, and retry policy.

The execution-level behavior (retries, quarantine, checkpoint recovery)
lives in ``test_fleet_faults.py`` / ``test_campaign_faults.py``; this
file locks the data layer — JSON round-trips, (site, occurrence)
matching, seeded plan determinism, injector scoping, and backoff math.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.faults import (
    DEFAULT_CHAOS_TIMEOUT_S,
    FAULT_SITES,
    Fault,
    FaultInjector,
    FaultPlan,
    NULL_INJECTOR,
    RetryPolicy,
    chaos,
    get_fault_injector,
    set_fault_injector,
)


class TestFault:
    def test_roundtrip(self):
        fault = Fault("fleet.chunk", 3, "hang", {"seconds": 0.2})
        clone = Fault.from_dict(fault.to_dict())
        assert clone == fault
        assert clone.directive() == {"op": "hang", "seconds": 0.2}

    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault site"):
            Fault("fleet.meteor", 0, "crash")

    def test_unsupported_op_rejected(self):
        with pytest.raises(ConfigError, match="does not support"):
            Fault("campaign.cell.save", 0, "crash")

    def test_negative_when_rejected(self):
        with pytest.raises(ConfigError, match="'when'"):
            Fault("fleet.chunk", -1, "crash")

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault field"):
            Fault.from_dict(
                {"site": "fleet.chunk", "when": 0, "op": "crash", "severity": "high"}
            )

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigError, match="missing"):
            Fault.from_dict({"site": "fleet.chunk", "op": "crash"})

    def test_every_registered_op_constructs(self):
        for site, ops in FAULT_SITES.items():
            for op in ops:
                Fault(site, 0, op)


class TestFaultPlan:
    def test_json_roundtrip(self, tmp_path):
        plan = FaultPlan(
            [
                Fault("fleet.chunk", 0, "crash"),
                Fault("campaign.cell.save", 2, "truncate", {"keep_frac": 0.3}),
            ],
            seed=11,
            note="pr7",
        )
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        clone = FaultPlan.from_json(str(path))
        assert clone.to_dict() == plan.to_dict()
        assert clone.seed == 11 and clone.note == "pr7"

    def test_at_matches_site_and_occurrence_only(self):
        plan = FaultPlan([Fault("fleet.chunk", 2, "exception")])
        assert plan.at("fleet.chunk", 2)[0].op == "exception"
        assert plan.at("fleet.chunk", 1) == []
        assert plan.at("campaign.cell.save", 2) == []

    def test_multiple_faults_same_slot(self):
        plan = FaultPlan(
            [
                Fault("fleet.chunk", 0, "exception"),
                Fault("fleet.chunk", 0, "corrupt_payload"),
            ]
        )
        assert [f.op for f in plan.at("fleet.chunk", 0)] == [
            "exception",
            "corrupt_payload",
        ]

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault plan field"):
            FaultPlan.from_dict({"faults": [], "schedule": "aggressive"})

    def test_non_fault_entry_rejected(self):
        with pytest.raises(ConfigError, match="Fault entries"):
            FaultPlan([{"site": "fleet.chunk"}])

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(123, faults=8)
        b = FaultPlan.random(123, faults=8)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != FaultPlan.random(124, faults=8).to_dict()
        assert len(a) == 8

    def test_random_restricted_sites(self):
        plan = FaultPlan.random(5, faults=10, sites=["fleet.chunk"])
        assert plan.sites() == {"fleet.chunk"}
        with pytest.raises(ConfigError, match="unknown fault site"):
            FaultPlan.random(5, sites=["fleet.nope"])


class TestInjector:
    def test_null_injector_is_default_and_free(self):
        injector = get_fault_injector()
        assert injector is NULL_INJECTOR
        assert injector.enabled is False
        assert injector.poll("fleet.chunk") == ()

    def test_poll_counts_occurrences_and_fires(self):
        injector = FaultInjector(FaultPlan([Fault("fleet.chunk", 1, "crash")]))
        assert injector.poll("fleet.chunk") == []
        fired = injector.poll("fleet.chunk")
        assert [f.op for f in fired] == ["crash"]
        assert injector.occurrences("fleet.chunk") == 2
        assert injector.occurrences("campaign.cell.save") == 0
        assert injector.fired_summary() == {"fleet.chunk.crash": 1}

    def test_chaos_scopes_and_restores(self):
        plan = FaultPlan([Fault("fleet.chunk", 0, "exception")])
        assert get_fault_injector() is NULL_INJECTOR
        with chaos(plan) as injector:
            assert get_fault_injector() is injector
            assert injector.enabled
        assert get_fault_injector() is NULL_INJECTOR

    def test_chaos_none_is_noop(self):
        with chaos(None) as injector:
            assert injector is NULL_INJECTOR

    def test_chaos_accepts_prebuilt_injector(self):
        injector = FaultInjector(FaultPlan([]))
        with chaos(injector) as scoped:
            assert scoped is injector

    def test_set_injector_returns_previous(self):
        injector = FaultInjector(FaultPlan([]))
        previous = set_fault_injector(injector)
        try:
            assert previous is NULL_INJECTOR
            assert get_fault_injector() is injector
        finally:
            set_fault_injector(previous)

    def test_fired_counter_reaches_metrics(self):
        from repro.obs import Recorder, recording

        plan = FaultPlan([Fault("fleet.chunk", 0, "exception")])
        with recording(Recorder(metrics=True)) as rec, chaos(plan) as injector:
            injector.poll("fleet.chunk")
        assert rec.metrics.counter_value(
            "fault.injected.fleet.chunk.exception") == 1


class TestRetryPolicy:
    def test_defaults_validate(self):
        policy = RetryPolicy()
        assert policy.max_retries == 2
        assert policy.worker_timeout is None

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"worker_timeout": 0.0},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"straggler_grace_s": -1.0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.backoff(0) == pytest.approx(0.1)
        assert policy.backoff(1) == pytest.approx(0.3)
        assert policy.backoff(2) == pytest.approx(0.9)

    def test_effective_timeout(self):
        assert RetryPolicy().effective_timeout(False) is None
        assert RetryPolicy().effective_timeout(True) == DEFAULT_CHAOS_TIMEOUT_S
        assert RetryPolicy(worker_timeout=2.5).effective_timeout(False) == 2.5
        assert RetryPolicy(worker_timeout=2.5).effective_timeout(True) == 2.5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            RetryPolicy().max_retries = 5  # type: ignore[misc]

    def test_roundtrip_plan_and_policy_are_cli_compatible(self, tmp_path):
        # the exact artifact shape --chaos consumes
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({
            "faults": [{"site": "fleet.chunk", "when": 0, "op": "crash"}]}))
        plan = FaultPlan.from_json(str(path))
        assert len(plan) == 1
