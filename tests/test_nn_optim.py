"""Optimizer tests on analytically simple objectives."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_step(params, optimizer, steps=200):
    """Minimize sum of squares; returns the final loss."""
    for _ in range(steps):
        optimizer.zero_grad()
        for p in params:
            p.grad += 2.0 * p.data
        optimizer.step()
    return sum(float(np.sum(p.data ** 2)) for p in params)


class TestSGD:
    def test_minimizes_quadratic(self):
        p = Parameter("w", np.array([3.0, -2.0]))
        assert quadratic_step([p], SGD([p], lr=0.05, momentum=0.0)) < 1e-8

    def test_momentum_accelerates(self):
        p1 = Parameter("a", np.array([5.0]))
        p2 = Parameter("b", np.array([5.0]))
        loss_plain = quadratic_step([p1], SGD([p1], lr=0.01, momentum=0.0), steps=50)
        loss_momentum = quadratic_step([p2], SGD([p2], lr=0.01, momentum=0.9), steps=50)
        assert loss_momentum < loss_plain

    def test_weight_decay_shrinks_weights(self):
        p = Parameter("w", np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.0, weight_decay=1.0)
        opt.zero_grad()  # gradient stays zero; only decay acts
        opt.step()
        assert abs(p.data[0]) < 1.0

    def test_single_step_matches_formula(self):
        p = Parameter("w", np.array([2.0]))
        opt = SGD([p], lr=0.5, momentum=0.0)
        p.grad[:] = 3.0
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.5 * 3.0])

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter("w", np.zeros(1))], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = Parameter("w", np.array([3.0, -2.0]))
        assert quadratic_step([p], Adam([p], lr=0.05), steps=500) < 1e-6

    def test_first_step_size_is_lr(self):
        # With bias correction, |step 1| == lr regardless of gradient scale.
        p = Parameter("w", np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad[:] = 12345.0
        opt.step()
        np.testing.assert_allclose(abs(p.data[0]), 0.1, rtol=1e-6)

    def test_zero_grad(self):
        p = Parameter("w", np.zeros(3))
        opt = Adam([p])
        p.grad += 1.0
        opt.zero_grad()
        assert (p.grad == 0).all()

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter("w", np.zeros(1))], lr=-1.0)
