"""Event-driven simulator tests on analytically controlled scenarios."""

import numpy as np
import pytest

from repro.energy import EnergyStorage, constant_trace
from repro.errors import ConfigError, SimulationError
from repro.intermittent import MSP432
from repro.runtime import (
    FixedExitPolicy,
    GreedyEnergyPolicy,
    QLearningController,
    StaticController,
)
from repro.runtime.incremental import ThresholdContinue
from repro.sim import InferenceProfile, Simulator, SimulatorConfig
from repro.sim.results import MISS_BUSY, MISS_ENERGY


def profile3(net=None):
    return InferenceProfile(
        name="p3",
        exit_accuracies=[0.6, 0.7, 0.8],
        exit_energy_mj=[0.2, 0.8, 1.6],
        exit_flops=[0.2e6 / 1.5, 0.8e6 / 1.5, 1.6e6 / 1.5],
        incremental_energy_mj=[0.7, 0.9],
        incremental_flops=[0.7e6 / 1.5, 0.9e6 / 1.5],
        net=net,
    )


def storage(cap=2.0, init=2.0):
    return EnergyStorage(cap, efficiency=1.0, initial_mj=init)


class TestSingleCycle:
    def test_rich_energy_processes_every_event(self):
        trace = constant_trace(1.0, 1000.0)  # abundant power
        events = np.arange(50.0, 1000.0, 50.0)
        sim = Simulator(
            trace, profile3(), StaticController(GreedyEnergyPolicy()),
            storage=storage(), config=SimulatorConfig(seed=0),
        )
        result = sim.run(events)
        assert result.num_missed == 0
        # With a full capacitor every event should reach the deepest exit.
        assert result.exit_counts(3)[2] == result.num_events

    def test_no_energy_misses_every_event(self):
        trace = constant_trace(0.0, 1000.0)
        events = np.arange(50.0, 1000.0, 50.0)
        sim = Simulator(
            trace, profile3(), StaticController(GreedyEnergyPolicy()),
            storage=storage(init=0.0), config=SimulatorConfig(seed=0),
        )
        result = sim.run(events)
        assert result.num_processed == 0
        assert result.miss_counts() == {MISS_ENERGY: len(events)}

    def test_busy_device_misses_overlapping_events(self):
        trace = constant_trace(1.0, 1000.0)
        # Exit 3 compute time = 1.6 mJ / 0.075 mW = 21.3 s; events 1 s apart.
        events = np.array([10.0, 11.0, 12.0])
        sim = Simulator(
            trace, profile3(), StaticController(GreedyEnergyPolicy()),
            storage=storage(), config=SimulatorConfig(seed=0),
        )
        result = sim.run(events)
        assert result.records[0].processed
        assert result.records[1].miss_reason == MISS_BUSY
        assert result.records[2].miss_reason == MISS_BUSY

    def test_latency_is_compute_time(self):
        trace = constant_trace(1.0, 1000.0)
        sim = Simulator(
            trace, profile3(), StaticController(FixedExitPolicy(0)),
            storage=storage(), config=SimulatorConfig(seed=0),
        )
        result = sim.run(np.array([100.0]))
        expected = MSP432.inference_time_s(profile3().exit_flops[0])
        assert result.records[0].latency_s == pytest.approx(expected)

    def test_energy_ledger(self):
        trace = constant_trace(0.001, 1000.0)
        sim = Simulator(
            trace, profile3(), StaticController(FixedExitPolicy(0)),
            storage=storage(init=1.0), config=SimulatorConfig(seed=0),
        )
        result = sim.run(np.array([100.0, 200.0, 300.0]))
        spent = sum(r.energy_mj for r in result.records if r.processed)
        assert result.total_consumed_mj == pytest.approx(spent)

    def test_events_must_be_sorted(self):
        trace = constant_trace(1.0, 100.0)
        sim = Simulator(
            trace, profile3(), StaticController(GreedyEnergyPolicy()),
            storage=storage(), config=SimulatorConfig(seed=0),
        )
        with pytest.raises(SimulationError):
            sim.run(np.array([5.0, 2.0]))

    def test_deterministic_given_seed(self, short_trace, short_events):
        results = []
        for _ in range(2):
            sim = Simulator(
                short_trace, profile3(), StaticController(GreedyEnergyPolicy()),
                storage=storage(init=1.0), config=SimulatorConfig(seed=3),
            )
            results.append(sim.run(short_events).summary())
        assert results[0] == results[1]


class TestIncrementalInSimulator:
    def test_threshold_rule_continues_on_low_confidence(self):
        trace = constant_trace(1.0, 1000.0)
        sim = Simulator(
            trace,
            profile3(),
            StaticController(FixedExitPolicy(0), ThresholdContinue(0.0)),
            storage=storage(),
            config=SimulatorConfig(seed=0),
        )
        # Threshold 0 -> always continue while affordable: exit 0 becomes 2.
        result = sim.run(np.array([100.0]))
        record = result.records[0]
        assert record.first_exit_index == 0
        assert record.exit_index == 2
        assert record.continued == 2
        assert record.energy_mj == pytest.approx(0.2 + 0.7 + 0.9)

    def test_never_continue_by_default(self):
        trace = constant_trace(1.0, 1000.0)
        sim = Simulator(
            trace, profile3(), StaticController(FixedExitPolicy(0)),
            storage=storage(), config=SimulatorConfig(seed=0),
        )
        assert sim.run(np.array([100.0])).records[0].continued == 0

    def test_continue_blocked_when_unaffordable(self):
        trace = constant_trace(0.0, 1000.0)
        sim = Simulator(
            trace,
            profile3(),
            StaticController(FixedExitPolicy(0), ThresholdContinue(0.0)),
            storage=storage(cap=2.0, init=0.3),  # only exit 0 affordable
            config=SimulatorConfig(seed=0),
        )
        record = sim.run(np.array([100.0])).records[0]
        assert record.exit_index == 0
        assert record.continued == 0


class TestIntermittentMode:
    def test_single_exit_baseline_spans_cycles(self):
        profile = InferenceProfile("sonic", [0.75], [3.0], [2e6], [], [])
        trace = constant_trace(0.02, 5000.0)
        sim = Simulator(
            trace, profile, StaticController(FixedExitPolicy(0)),
            storage=EnergyStorage(0.5, efficiency=1.0, initial_mj=0.5),
            config=SimulatorConfig(execution="intermittent", seed=0),
        )
        result = sim.run(np.array([10.0]))
        record = result.records[0]
        assert record.processed
        assert record.power_cycles > 1
        assert record.latency_s > MSP432.inference_time_s(2e6)

    def test_events_during_long_inference_are_missed(self):
        profile = InferenceProfile("sonic", [0.75], [3.0], [2e6], [], [])
        trace = constant_trace(0.02, 5000.0)
        sim = Simulator(
            trace, profile, StaticController(FixedExitPolicy(0)),
            storage=EnergyStorage(0.5, efficiency=1.0, initial_mj=0.5),
            config=SimulatorConfig(execution="intermittent", seed=0),
        )
        result = sim.run(np.array([10.0, 20.0, 30.0]))
        assert result.records[0].processed
        assert result.records[1].miss_reason == MISS_BUSY
        assert result.records[2].miss_reason == MISS_BUSY

    def test_incomplete_at_trace_end_is_energy_miss(self):
        profile = InferenceProfile("big", [0.8], [50.0], [33e6], [], [])
        trace = constant_trace(0.001, 200.0)
        sim = Simulator(
            trace, profile, StaticController(FixedExitPolicy(0)),
            storage=EnergyStorage(0.5, efficiency=1.0, initial_mj=0.5),
            config=SimulatorConfig(execution="intermittent", seed=0),
        )
        result = sim.run(np.array([10.0]))
        assert result.records[0].miss_reason == MISS_ENERGY


class TestDatasetMode:
    def test_requires_dataset_and_net(self, short_trace):
        with pytest.raises(ConfigError):
            Simulator(
                short_trace, profile3(), StaticController(GreedyEnergyPolicy()),
                config=SimulatorConfig(mode="dataset", seed=0),
            )

    def test_runs_real_forward_passes(self, short_trace, tiny_dataset, tiny_net):
        from repro.data import Dataset

        data = Dataset(tiny_dataset.test.x[:30, :2, :8, :8], tiny_dataset.test.y[:30] % 5)
        profile = InferenceProfile.from_network(
            tiny_net, [0.5, 0.6], MSP432, input_shape=(2, 8, 8)
        )
        sim = Simulator(
            short_trace, profile, StaticController(GreedyEnergyPolicy()),
            storage=storage(init=1.0), dataset=data,
            config=SimulatorConfig(mode="dataset", seed=0),
        )
        result = sim.run(np.arange(100.0, 1900.0, 100.0))
        assert result.num_processed > 0
        processed = [r for r in result.records if r.processed]
        assert all(0.0 <= r.confidence_entropy <= 1.0 for r in processed)


class TestQLearningIntegration:
    def test_learning_does_not_degrade_below_static(self, short_trace, short_events):
        static = Simulator(
            short_trace, profile3(), StaticController(GreedyEnergyPolicy()),
            storage=storage(init=1.0), config=SimulatorConfig(seed=3),
        ).run(short_events)
        controller = QLearningController(3, epsilon=0.3, epsilon_decay=0.9, rng=7)
        sim = Simulator(
            short_trace, profile3(), controller,
            storage=storage(init=1.0), config=SimulatorConfig(seed=3),
        )
        last = None
        for _ in range(12):
            last = sim.run(short_events)
        assert last.average_accuracy >= static.average_accuracy - 0.1
