"""Weight serialization tests."""

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.nn.io import load_state_dict, load_weights, save_weights, state_dict
from tests.conftest import make_tiny_two_exit


class TestStateDict:
    def test_contains_every_parameter(self, tiny_net):
        state = state_dict(tiny_net)
        assert len(state) == len(tiny_net.parameters())

    def test_returns_copies(self, tiny_net):
        state = state_dict(tiny_net)
        name = next(iter(state))
        state[name] += 100.0
        param = {p.name: p for p in tiny_net.parameters()}[name]
        assert not np.allclose(param.data, state[name])


class TestLoadStateDict:
    def test_roundtrip(self, tiny_net, rng):
        other = make_tiny_two_exit(seed=9)
        x = rng.normal(size=(2, 2, 8, 8))
        assert not np.allclose(
            tiny_net.forward_to_exit(x, 1), other.forward_to_exit(x, 1)
        )
        load_state_dict(other, state_dict(tiny_net))
        np.testing.assert_allclose(
            tiny_net.forward_to_exit(x, 1), other.forward_to_exit(x, 1)
        )

    def test_strict_missing_raises(self, tiny_net):
        state = state_dict(tiny_net)
        state.pop(next(iter(state)))
        with pytest.raises(SerializationError):
            load_state_dict(tiny_net, state, strict=True)

    def test_non_strict_partial_load(self, tiny_net):
        state = state_dict(tiny_net)
        removed = next(iter(state))
        state.pop(removed)
        load_state_dict(tiny_net, state, strict=False)  # must not raise

    def test_shape_mismatch_raises(self, tiny_net):
        state = state_dict(tiny_net)
        name = next(iter(state))
        state[name] = np.zeros((1, 1))
        with pytest.raises(SerializationError):
            load_state_dict(tiny_net, state, strict=False)


class TestFileRoundtrip:
    def test_save_load(self, tiny_net, tmp_path, rng):
        path = str(tmp_path / "weights.npz")
        save_weights(tiny_net, path)
        other = make_tiny_two_exit(seed=42)
        load_weights(other, path)
        x = rng.normal(size=(2, 2, 8, 8))
        np.testing.assert_allclose(
            tiny_net.forward_to_exit(x, 1), other.forward_to_exit(x, 1)
        )

    def test_missing_file_raises(self, tiny_net, tmp_path):
        with pytest.raises(SerializationError):
            load_weights(tiny_net, str(tmp_path / "absent.npz"))

    def test_creates_directories(self, tiny_net, tmp_path):
        path = str(tmp_path / "deep" / "dir" / "w.npz")
        save_weights(tiny_net, path)
        load_weights(tiny_net, path)
