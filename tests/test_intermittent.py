"""MCU model and SONIC-style intermittent execution tests."""

import pytest

from repro.energy import EnergyStorage, constant_trace
from repro.errors import ConfigError, SimulationError
from repro.intermittent import MSP432, IntermittentExecutionEngine, MCUSpec


class TestMCUSpec:
    def test_paper_energy_constant(self):
        # Section V-A: 1.5 mJ per million FLOPs.
        assert MSP432.inference_energy_mj(1_000_000) == pytest.approx(1.5)

    def test_inference_time_scales_with_flops(self):
        t1 = MSP432.inference_time_s(500_000)
        t2 = MSP432.inference_time_s(1_000_000)
        assert t2 == pytest.approx(2 * t1)

    def test_active_power_consistency(self):
        # Computing for t seconds must cost exactly active_power * t.
        flops = 2_000_000
        energy = MSP432.inference_energy_mj(flops)
        time = MSP432.inference_time_s(flops)
        assert MSP432.active_power_mw * time == pytest.approx(energy)

    def test_validation(self):
        with pytest.raises(ConfigError):
            MCUSpec(energy_per_mflop_mj=0.0)
        with pytest.raises(ConfigError):
            MCUSpec(throughput_mflops=-1.0)
        with pytest.raises(ConfigError):
            MCUSpec(wakeup_threshold=0.1, shutdown_threshold=0.5)


class TestIntermittentEngine:
    def make_engine(self, power_mw=1.0, duration=10_000.0):
        trace = constant_trace(power_mw, duration, dt=1.0)
        return IntermittentExecutionEngine(trace, MSP432), trace

    def test_completes_in_one_cycle_with_full_storage(self):
        engine, _ = self.make_engine()
        storage = EnergyStorage(10.0, efficiency=1.0, initial_mj=10.0)
        run = engine.run_inference(1.0, t_start=0.0, storage=storage)
        assert run.completed
        assert run.power_cycles == 1
        assert run.energy_consumed_mj == pytest.approx(1.0)
        # Latency at least the pure compute time.
        assert run.latency_s >= MSP432.inference_time_s(1.0 / MSP432.energy_per_mflop_mj * 1e6) * 0.9

    def test_splits_across_power_cycles_with_small_storage(self):
        engine, _ = self.make_engine(power_mw=0.02)
        storage = EnergyStorage(0.5, efficiency=1.0, initial_mj=0.5)
        run = engine.run_inference(2.0, t_start=0.0, storage=storage)
        assert run.completed
        assert run.power_cycles > 1
        assert run.overhead_energy_mj > 0.0

    def test_recharge_dominates_latency_under_weak_power(self):
        engine, _ = self.make_engine(power_mw=0.005)
        storage = EnergyStorage(0.5, efficiency=1.0, initial_mj=0.5)
        run = engine.run_inference(1.0, t_start=0.0, storage=storage)
        compute_time = 1.0 / MSP432.active_power_mw
        assert run.completed
        assert run.latency_s > 3 * compute_time

    def test_incomplete_at_deadline(self):
        engine, _ = self.make_engine(power_mw=0.001, duration=100.0)
        storage = EnergyStorage(0.5, efficiency=1.0, initial_mj=0.1)
        run = engine.run_inference(5.0, t_start=0.0, storage=storage)
        assert not run.completed
        assert run.finish_time >= 100.0
        assert run.energy_consumed_mj < 5.0

    def test_zero_energy_job_is_instant(self):
        engine, _ = self.make_engine()
        storage = EnergyStorage(1.0, initial_mj=1.0)
        run = engine.run_inference(0.0, t_start=5.0, storage=storage)
        assert run.completed
        assert run.finish_time == pytest.approx(5.0)

    def test_negative_energy_rejected(self):
        engine, _ = self.make_engine()
        with pytest.raises(SimulationError):
            engine.run_inference(-1.0, 0.0, EnergyStorage(1.0))

    def test_energy_ledger_consistent(self):
        engine, _ = self.make_engine(power_mw=0.05)
        storage = EnergyStorage(1.0, efficiency=1.0, initial_mj=1.0)
        run = engine.run_inference(3.0, t_start=0.0, storage=storage)
        assert run.completed
        drawn = storage.total_drawn_mj
        assert drawn == pytest.approx(run.energy_consumed_mj + run.overhead_energy_mj, rel=1e-6)

    def test_harvesting_continues_during_compute(self):
        """With harvest ~ active power, one cycle suffices despite small storage."""
        mcu = MSP432
        engine = IntermittentExecutionEngine(
            constant_trace(mcu.active_power_mw, 10_000.0, dt=1.0), mcu
        )
        storage = EnergyStorage(0.5, efficiency=1.0, initial_mj=0.4)
        run = engine.run_inference(2.0, t_start=0.0, storage=storage)
        assert run.completed
        assert run.power_cycles == 1
