"""CompressionSpec container tests."""

import pytest

from repro.compress import CompressionSpec, LayerCompression
from repro.errors import CompressionError


class TestLayerCompression:
    def test_defaults_are_identity(self):
        assert LayerCompression().is_identity

    def test_validation(self):
        with pytest.raises(CompressionError):
            LayerCompression(preserve_ratio=0.0)
        with pytest.raises(CompressionError):
            LayerCompression(preserve_ratio=1.5)
        with pytest.raises(CompressionError):
            LayerCompression(weight_bits=0)
        with pytest.raises(CompressionError):
            LayerCompression(act_bits=64)
        with pytest.raises(CompressionError):
            LayerCompression(weight_bits=4.5)

    def test_not_identity_when_compressed(self):
        assert not LayerCompression(preserve_ratio=0.5).is_identity
        assert not LayerCompression(weight_bits=8).is_identity


class TestCompressionSpec:
    def test_lookup(self):
        spec = CompressionSpec({"a": LayerCompression(0.5, 8, 8)})
        assert spec["a"].preserve_ratio == 0.5
        assert "a" in spec
        assert "b" not in spec
        with pytest.raises(CompressionError):
            spec["b"]

    def test_identity_constructor(self):
        spec = CompressionSpec.identity(["x", "y"])
        assert spec["x"].is_identity and spec["y"].is_identity

    def test_uniform_constructor(self):
        spec = CompressionSpec.uniform(["x", "y"], 0.6, 4, 8)
        assert spec["x"] == spec["y"] == LayerCompression(0.6, 4, 8)

    def test_weight_bitwidths_map(self):
        spec = CompressionSpec(
            {"a": LayerCompression(1.0, 8, 32), "b": LayerCompression(1.0, 2, 32)}
        )
        assert spec.weight_bitwidths() == {"a": 8, "b": 2}

    def test_rejects_non_layercompression_values(self):
        with pytest.raises(CompressionError):
            CompressionSpec({"a": (0.5, 8, 8)})

    def test_dict_roundtrip(self):
        spec = CompressionSpec(
            {"a": LayerCompression(0.45, 3, 7), "b": LayerCompression(1.0, 32, 32)}
        )
        again = CompressionSpec.from_dict(spec.to_dict())
        assert again["a"] == spec["a"]
        assert again["b"] == spec["b"]

    def test_json_roundtrip(self, tmp_path):
        spec = CompressionSpec.uniform(["Conv1", "FC-B1"], 0.35, 5, 6)
        path = str(tmp_path / "spec.json")
        spec.to_json(path)
        again = CompressionSpec.from_json(path)
        assert again.to_dict() == spec.to_dict()
