"""Canonical experiment config and zoo caching tests."""

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.experiment import PAPER
from repro import zoo


class TestPaperExperiment:
    def test_targets_match_figure4_caption(self):
        assert PAPER.flops_target == pytest.approx(1.15e6)
        assert PAPER.size_target_kb == pytest.approx(16.0)
        assert PAPER.num_events == 500

    def test_trace_is_deterministic(self):
        t1, t2 = PAPER.make_trace(), PAPER.make_trace()
        np.testing.assert_array_equal(t1.samples_mw, t2.samples_mw)

    def test_events_span_trace(self):
        trace = PAPER.make_trace()
        events = PAPER.make_events(trace)
        assert len(events) == 500
        assert events[-1] <= trace.duration

    def test_storage_fits_deepest_exit(self):
        # The capacitor must be able to fund the full-depth compressed exit
        # (~1.6 mJ), otherwise exit 3 could never be selected.
        storage = PAPER.make_storage()
        assert storage.capacity_mj >= 1.7

    def test_mcu_is_msp432_class(self):
        assert PAPER.mcu.energy_per_mflop_mj == pytest.approx(1.5)


class TestZoo:
    def test_dataset_deterministic(self):
        a = zoo.get_dataset()
        b = zoo.get_dataset()
        np.testing.assert_array_equal(a.test.x, b.test.x)

    def test_artifact_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path / "cache"))
        path = zoo.artifact_dir()
        assert path == str(tmp_path / "cache")
        assert os.path.isdir(path)

    def test_unknown_network_rejected(self):
        with pytest.raises(ConfigError):
            zoo.get_trained_network("resnet50")

    def test_training_cached_roundtrip(self, tmp_path, monkeypatch):
        """Train a throwaway tiny recipe once; the second call must hit cache."""
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        monkeypatch.setitem(
            zoo._TRAIN_RECIPES,
            "tiny_test_net",
            dict(maker=lambda seed=3: __import__("tests.conftest", fromlist=["x"]).make_tiny_two_exit(seed),
                 epochs=1, train_size=0, lr=0.01),
        )
        # train_size=0 -> min(0, len) = 0 rows would break; use a tiny slice.
        zoo._TRAIN_RECIPES["tiny_test_net"]["train_size"] = 16

        # The tiny net expects 2x8x8 inputs, so intercept get_dataset too.
        from repro.data import Dataset, DatasetSplits

        full = zoo.get_dataset()

        def small_dataset(*args, **kwargs):
            def cut(ds):
                return Dataset(ds.x[:16, :2, :8, :8], ds.y[:16] % 5)
            return DatasetSplits(cut(full.train), cut(full.val), cut(full.test))

        monkeypatch.setattr(zoo, "get_dataset", small_dataset)
        net1, acc1 = zoo.get_trained_network("tiny_test_net")
        assert os.path.exists(os.path.join(str(tmp_path), "tiny_test_net.weights.npz"))
        net2, acc2 = zoo.get_trained_network("tiny_test_net")
        assert acc1 == acc2
        w1 = net1.weighted_layers()[0].weight.data
        w2 = net2.weighted_layers()[0].weight.data
        np.testing.assert_allclose(w1, w2)

    def test_meta_file_contents(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        from tests.conftest import make_tiny_two_exit
        from repro.data import Dataset, DatasetSplits

        monkeypatch.setitem(
            zoo._TRAIN_RECIPES,
            "tiny_meta_net",
            dict(maker=lambda seed=3: make_tiny_two_exit(seed), epochs=1, train_size=16, lr=0.01),
        )
        full = zoo.get_dataset()

        def small_dataset(*args, **kwargs):
            def cut(ds):
                return Dataset(ds.x[:16, :2, :8, :8], ds.y[:16] % 5)
            return DatasetSplits(cut(full.train), cut(full.val), cut(full.test))

        monkeypatch.setattr(zoo, "get_dataset", small_dataset)
        zoo.get_trained_network("tiny_meta_net")
        with open(os.path.join(str(tmp_path), "tiny_meta_net.meta.json")) as fh:
            meta = json.load(fh)
        assert meta["name"] == "tiny_meta_net"
        assert len(meta["test_accuracies"]) == 2
