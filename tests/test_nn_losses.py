"""Loss function tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.losses import CrossEntropyLoss, MultiExitCrossEntropy
from repro.utils.mathx import softmax


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((4, 10))
        labels = np.arange(4)
        np.testing.assert_allclose(loss(logits, labels), np.log(10))

    def test_perfect_prediction_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        assert loss(logits, np.array([1, 2])) < 1e-6

    def test_gradient_formula(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, 5)
        loss(logits, labels)
        grad = loss.backward()
        expected = softmax(logits, axis=1)
        expected[np.arange(5), labels] -= 1.0
        np.testing.assert_allclose(grad, expected / 5)

    def test_gradient_rows_sum_to_zero(self, rng):
        loss = CrossEntropyLoss()
        logits = rng.normal(size=(3, 6))
        loss(logits, rng.integers(0, 6, 3))
        np.testing.assert_allclose(loss.backward().sum(axis=1), 0.0, atol=1e-12)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            CrossEntropyLoss()(rng.normal(size=(3,)), np.array([0]))
        with pytest.raises(ShapeError):
            CrossEntropyLoss()(rng.normal(size=(3, 2)), np.array([0]))


class TestMultiExitCrossEntropy:
    def test_weighted_sum(self, rng):
        logits = [rng.normal(size=(4, 3)) for _ in range(2)]
        labels = rng.integers(0, 3, 4)
        joint = MultiExitCrossEntropy(2, [1.0, 0.5])
        total = joint(logits, labels)
        individual = [CrossEntropyLoss()(ly, labels) for ly in logits]
        np.testing.assert_allclose(total, individual[0] + 0.5 * individual[1])

    def test_last_exit_losses_recorded(self, rng):
        logits = [rng.normal(size=(4, 3)) for _ in range(3)]
        labels = rng.integers(0, 3, 4)
        joint = MultiExitCrossEntropy(3)
        joint(logits, labels)
        assert len(joint.last_exit_losses) == 3
        assert all(ly > 0 for ly in joint.last_exit_losses)

    def test_backward_scales_by_weight(self, rng):
        logits = [rng.normal(size=(2, 3)) for _ in range(2)]
        labels = rng.integers(0, 3, 2)
        joint = MultiExitCrossEntropy(2, [1.0, 0.0])
        joint(logits, labels)
        grads = joint.backward()
        np.testing.assert_allclose(grads[1], 0.0)
        assert np.abs(grads[0]).max() > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiExitCrossEntropy(0)
        with pytest.raises(ValueError):
            MultiExitCrossEntropy(2, [1.0])
        with pytest.raises(ValueError):
            MultiExitCrossEntropy(2, [1.0, -1.0])

    def test_logits_count_checked(self, rng):
        joint = MultiExitCrossEntropy(2)
        with pytest.raises(ShapeError):
            joint([rng.normal(size=(2, 3))], rng.integers(0, 3, 2))
