"""InferenceProfile tests."""

import pytest

from repro.compress import Compressor, make_uniform_spec
from repro.compress.evaluator import evaluate_exits
from repro.data import Dataset
from repro.errors import ConfigError
from repro.intermittent import MSP432
from repro.sim import InferenceProfile



def valid_profile(**overrides):
    kwargs = dict(
        name="p",
        exit_accuracies=[0.6, 0.7],
        exit_energy_mj=[0.2, 0.8],
        exit_flops=[1e5, 5e5],
        incremental_energy_mj=[0.7],
        incremental_flops=[4.5e5],
    )
    kwargs.update(overrides)
    return InferenceProfile(**kwargs)


class TestValidation:
    def test_valid(self):
        assert valid_profile().num_exits == 2

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            valid_profile(exit_energy_mj=[0.2])
        with pytest.raises(ConfigError):
            valid_profile(incremental_energy_mj=[])

    def test_accuracy_range(self):
        with pytest.raises(ConfigError):
            valid_profile(exit_accuracies=[0.5, 1.2])

    def test_negative_energy(self):
        with pytest.raises(ConfigError):
            valid_profile(exit_energy_mj=[-0.1, 0.5])

    def test_min_energy(self):
        assert valid_profile().min_energy_mj == pytest.approx(0.2)


class TestFromNetwork:
    def test_energies_follow_mcu_constant(self, tiny_net):
        profile = InferenceProfile.from_network(
            tiny_net, [0.5, 0.6], MSP432, input_shape=(2, 8, 8)
        )
        for energy, flops in zip(profile.exit_energy_mj, profile.exit_flops):
            assert energy == pytest.approx(flops / 1e6 * 1.5)

    def test_accuracy_count_checked(self, tiny_net):
        with pytest.raises(ConfigError):
            InferenceProfile.from_network(tiny_net, [0.5], MSP432, input_shape=(2, 8, 8))

    def test_net_attached_by_default(self, tiny_net):
        profile = InferenceProfile.from_network(
            tiny_net, [0.5, 0.6], MSP432, input_shape=(2, 8, 8)
        )
        assert profile.net is tiny_net


class TestFromCompressed:
    def test_consistent_with_evaluation(self, tiny_net, rng):
        spec = make_uniform_spec(tiny_net, 0.6, 8, 8)
        model = Compressor(input_shape=(2, 8, 8)).apply(tiny_net, spec)
        data = Dataset(rng.normal(size=(20, 2, 8, 8)), rng.integers(0, 5, 20))
        evaluation = evaluate_exits(model, data)
        profile = InferenceProfile.from_compressed(model, evaluation, MSP432)
        assert profile.exit_accuracies == evaluation.accuracies
        assert profile.exit_flops == pytest.approx(model.exit_flops)
        assert len(profile.incremental_energy_mj) == 1
