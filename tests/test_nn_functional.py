"""Tests for the conv/pool primitives, including a naive-reference check."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.nn import functional as F


def naive_conv2d(x, w, b, stride, padding):
    """Straightforward quadruple-loop convolution used as ground truth."""
    n, c, h, ww = x.shape
    oc, ic, k, _ = w.shape
    oh, ow = F.conv_output_hw(h, ww, k, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, oc, oh, ow))
    for ni in range(n):
        for oi in range(oc):
            for yi in range(oh):
                for xi in range(ow):
                    patch = x[ni, :, yi * stride:yi * stride + k, xi * stride:xi * stride + k]
                    out[ni, oi, yi, xi] = np.sum(patch * w[oi])
            if b is not None:
                out[ni, oi] += b[oi]
    return out


class TestConvOutputShape:
    def test_valid_conv(self):
        assert F.conv_output_hw(32, 32, 5, 1, 0) == (28, 28)

    def test_same_padding(self):
        assert F.conv_output_hw(14, 14, 3, 1, 1) == (14, 14)

    def test_stride(self):
        assert F.conv_output_hw(32, 32, 5, 2, 2) == (16, 16)

    def test_too_large_kernel_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_hw(4, 4, 7, 1, 0)


class TestIm2col:
    def test_roundtrip_against_ones(self):
        # col2im(im2col(x)) counts how many windows cover each pixel.
        x = np.ones((1, 1, 4, 4))
        cols = F.im2col(x, 2, 1, 0)
        back = F.col2im(cols, x.shape, 2, 1, 0)
        # Corner pixels are covered once, center pixels four times.
        assert back[0, 0, 0, 0] == 1
        assert back[0, 0, 1, 1] == 4

    def test_column_contents(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = F.im2col(x, 2, 2, 0)
        np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])
        np.testing.assert_array_equal(cols[0, :, 3], [10, 11, 14, 15])


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 2), (2, 0)])
    def test_matches_naive(self, stride, padding, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out, _ = F.conv2d_forward(x, w, b, stride, padding)
        np.testing.assert_allclose(out, naive_conv2d(x, w, b, stride, padding), atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d_forward(rng.normal(size=(1, 2, 8, 8)), rng.normal(size=(4, 3, 3, 3)), None, 1, 0)

    def test_non_square_kernel_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d_forward(rng.normal(size=(1, 3, 8, 8)), rng.normal(size=(4, 3, 3, 5)), None, 1, 0)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out, _ = F.conv2d_forward(x, w, None, 1, 0)
        np.testing.assert_allclose(out, naive_conv2d(x, w, None, 1, 0), atol=1e-10)


class TestConv2dBackward:
    def test_numerical_gradient_wrt_input(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, cols = F.conv2d_forward(x, w, b, 1, 1)
        dout = rng.normal(size=out.shape)
        dx, dw, db = F.conv2d_backward(dout, x.shape, w, cols, 1, 1)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (0, 1, 2, 3), (0, 0, 4, 4)]:
            xp = x.copy(); xp[idx] += eps
            xm = x.copy(); xm[idx] -= eps
            fp = np.sum(F.conv2d_forward(xp, w, b, 1, 1)[0] * dout)
            fm = np.sum(F.conv2d_forward(xm, w, b, 1, 1)[0] * dout)
            np.testing.assert_allclose(dx[idx], (fp - fm) / (2 * eps), rtol=1e-5)

    def test_numerical_gradient_wrt_weight(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        out, cols = F.conv2d_forward(x, w, None, 1, 0)
        dout = rng.normal(size=out.shape)
        _, dw, _ = F.conv2d_backward(dout, x.shape, w, cols, 1, 0)
        eps = 1e-6
        for idx in [(0, 0, 0, 0), (2, 1, 2, 2)]:
            wp = w.copy(); wp[idx] += eps
            wm = w.copy(); wm[idx] -= eps
            fp = np.sum(F.conv2d_forward(x, wp, None, 1, 0)[0] * dout)
            fm = np.sum(F.conv2d_forward(x, wm, None, 1, 0)[0] * dout)
            np.testing.assert_allclose(dw[idx], (fp - fm) / (2 * eps), rtol=1e-5)

    def test_bias_gradient_is_sum(self, rng):
        x = rng.normal(size=(2, 2, 4, 4))
        w = rng.normal(size=(3, 2, 3, 3))
        out, cols = F.conv2d_forward(x, w, np.zeros(3), 1, 0)
        dout = rng.normal(size=out.shape)
        _, _, db = F.conv2d_backward(dout, x.shape, w, cols, 1, 0)
        np.testing.assert_allclose(db, dout.sum(axis=(0, 2, 3)))


class TestMaxPool:
    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_floor_division_drops_tail(self):
        x = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
        out, _ = F.maxpool2d_forward(x, 2, 2)
        assert out.shape == (1, 1, 2, 2)

    def test_backward_routes_to_argmax(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out, argmax = F.maxpool2d_forward(x, 2, 2)
        dout = np.ones_like(out)
        dx = F.maxpool2d_backward(dout, x.shape, argmax, 2, 2)
        # Each window routes its gradient to exactly one element.
        assert dx.sum() == out.size
        assert ((dx == 0) | (dx == 1)).all()

    def test_backward_numerical(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out, argmax = F.maxpool2d_forward(x, 2, 2)
        dout = rng.normal(size=out.shape)
        dx = F.maxpool2d_backward(dout, x.shape, argmax, 2, 2)
        eps = 1e-6
        idx = (0, 0, 1, 1)
        xp = x.copy(); xp[idx] += eps
        xm = x.copy(); xm[idx] -= eps
        fp = np.sum(F.maxpool2d_forward(xp, 2, 2)[0] * dout)
        fm = np.sum(F.maxpool2d_forward(xm, 2, 2)[0] * dout)
        np.testing.assert_allclose(dx[idx], (fp - fm) / (2 * eps), atol=1e-5)

    def test_kernel_too_large_raises(self):
        with pytest.raises(ShapeError):
            F.maxpool2d_forward(np.zeros((1, 1, 3, 3)), 4, 4)


class TestAvgPool:
    def test_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.avgpool2d_forward(x, 2, 2)
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_backward_spreads_uniformly(self):
        dout = np.ones((1, 1, 2, 2))
        dx = F.avgpool2d_backward(dout, (1, 1, 4, 4), 2, 2)
        np.testing.assert_allclose(dx, 0.25)

    @given(st.integers(2, 4))
    @settings(max_examples=10, deadline=None)
    def test_mean_preserved(self, k):
        rng = np.random.default_rng(1)
        size = k * 3
        x = rng.normal(size=(1, 1, size, size))
        out, _ = F.avgpool2d_forward(x, k, k)
        np.testing.assert_allclose(out.mean(), x.mean(), rtol=1e-9)
