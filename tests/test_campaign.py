"""Campaign engine tests: store atomicity, runner, resume, report, CLI.

Everything here drives the 2-cell ``dev-smoke`` campaign (2 devices,
300 s traces) so the whole file stays in the seconds range; the full-grid
sweep lives behind the ``campaign_heavy`` marker at the bottom.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.campaign import (
    CAMPAIGNS,
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    build_cell_fleet,
    report_from_store,
    run_campaign,
)
from repro.campaign import runner as campaign_runner
from repro.campaign.store import atomic_write_json
from repro.errors import ConfigError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def smoke_spec() -> CampaignSpec:
    return CAMPAIGNS.build("dev-smoke")


class TestStore:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(str(path), {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}
        assert os.listdir(tmp_path) == ["x.json"]

    def test_initialize_claims_and_validates(self, tmp_path):
        store = CampaignStore(str(tmp_path / "run"))
        spec = smoke_spec()
        store.initialize(spec)
        assert store.load_spec().digest() == spec.digest()
        # A different grid cannot take over the directory.
        other = CAMPAIGNS.build("policy-shootout")
        with pytest.raises(ConfigError, match="differs"):
            store.initialize(other)

    def test_populated_store_requires_resume(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        spec = smoke_spec()
        store.initialize(spec)
        store.save_cell("some-cell", {"key": "some-cell"})
        with pytest.raises(ConfigError, match="--resume"):
            store.initialize(spec, resume=False)
        store.initialize(spec, resume=True)  # and resume accepts it

    def test_completed_keys_ignores_foreign_files(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {})
        (tmp_path / "cells" / "junk.txt").write_text("not a cell")
        assert store.completed_keys() == {"a"}

    def test_corrupt_cell_is_a_config_error(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.cell_path("bad")
        (tmp_path / "cells" / "bad.json").write_text("{notjson")
        with pytest.raises(ConfigError, match="cell artifact"):
            store.load_cell("bad")


class TestCellFleet:
    def test_controller_swapped_on_every_device(self):
        cell = next(
            c for c in CAMPAIGNS.build("policy-shootout").cells()
            if c.controller_name == "qlearning"
        )
        fleet = build_cell_fleet(cell)
        assert fleet.seed == cell.seed
        assert all(d.controller["kind"] == "qlearning" for d in fleet.devices)

    def test_same_seed_same_environment_across_controllers(self):
        """The comparison contract: only the controller differs per seed."""
        cells = [c for c in smoke_spec().cells()]
        a, b = (build_cell_fleet(c) for c in cells[:2])
        assert a.seed == b.seed
        assert [d.trace for d in a.devices] == [d.trace for d in b.devices]
        assert [d.events for d in a.devices] == [d.events for d in b.devices]
        assert [d.controller for d in a.devices] != [d.controller for d in b.devices]


class TestRunner:
    def test_run_without_store(self):
        result = run_campaign(smoke_spec())
        assert len(result.cells) == 2
        for payload in result.cells:
            assert payload["fleet"]["devices"] == 2
            assert "mean_exit_depth" in payload["fleet"]

    def test_report_is_deterministic(self):
        a = run_campaign(smoke_spec()).to_dict()
        b = run_campaign(smoke_spec()).to_dict()
        assert a == b

    def test_store_checkpoints_every_cell(self, tmp_path):
        spec = smoke_spec()
        result = run_campaign(spec, out=str(tmp_path))
        store = CampaignStore(str(tmp_path))
        assert store.completed_keys() == {c.key for c in spec.cells()}
        assert store.load_report() == result.to_dict()

    def test_marginals_match_cell_arithmetic(self):
        result = run_campaign(smoke_spec())
        by_key = {c["key"]: c for c in result.cells}
        marg = result.marginals()["dev-smoke"]["fixed-first"]
        base = by_key["dev-smoke--greedy--s3"]["fleet"]
        other = by_key["dev-smoke--fixed-first--s3"]["fleet"]
        assert marg["per_seed"]["3"]["average_accuracy"] == pytest.approx(
            other["average_accuracy"] - base["average_accuracy"]
        )
        assert marg["per_seed"]["3"]["mean_exit_depth"] == pytest.approx(
            other["mean_exit_depth"] - base["mean_exit_depth"]
        )

    def test_seed_spread_has_percentiles_per_controller(self):
        result = run_campaign(smoke_spec())
        spread = result.seed_spread()["dev-smoke"]
        assert set(spread) == {"greedy", "fixed-first"}
        assert set(spread["greedy"]["fleet_iepmj"]) == {"p10", "p50", "p90"}

    def test_schema_invalid_cell_artifact_is_a_config_error(self, tmp_path):
        """Hand-edited / cross-version checkpoints must not KeyError."""
        spec = smoke_spec()
        run_campaign(spec, out=str(tmp_path))
        store = CampaignStore(str(tmp_path))
        first = spec.cells()[0]
        payload = store.load_cell(first.key)
        del payload["fleet"]["mean_exit_depth"]
        store.save_cell(first.key, payload)
        with pytest.raises(ConfigError, match="mean_exit_depth"):
            report_from_store(store)

    def test_incomplete_store_report_raises(self, tmp_path):
        spec = smoke_spec()
        store = CampaignStore(str(tmp_path))
        store.initialize(spec)
        first = spec.cells()[0]
        store.save_cell(first.key, {"key": first.key, "fleet": {}})
        with pytest.raises(ConfigError, match="missing"):
            report_from_store(store)


class TestResume:
    """The acceptance contract: kill mid-grid, resume, identical report."""

    class _KillingStore(CampaignStore):
        """Raises KeyboardInterrupt after the Nth successful checkpoint."""

        def __init__(self, root, kill_after):
            super().__init__(root)
            self.kill_after = kill_after
            self.saves = 0

        def save_cell(self, key, payload):
            super().save_cell(key, payload)
            self.saves += 1
            if self.saves >= self.kill_after:
                raise KeyboardInterrupt

    def test_resume_skips_completed_cells_and_matches_uninterrupted(
        self, tmp_path, monkeypatch
    ):
        spec = smoke_spec()
        reference = run_campaign(spec, out=str(tmp_path / "ref")).to_dict()

        killing = self._KillingStore(str(tmp_path / "int"), kill_after=1)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(spec, store=killing).run()
        assert killing.completed_keys() == {spec.cells()[0].key}

        executed = []
        original = campaign_runner.run_cell

        def counting_run_cell(cell, **kwargs):
            executed.append(cell.key)
            return original(cell, **kwargs)

        monkeypatch.setattr(campaign_runner, "run_cell", counting_run_cell)
        runner = CampaignRunner(
            spec, store=CampaignStore(str(tmp_path / "int")), resume=True
        )
        result = runner.run()
        # Completed cells were loaded, not re-executed...
        assert executed == [spec.cells()[1].key]
        assert runner.skipped == 1 and runner.executed == 1
        # ...and the final report equals the uninterrupted run exactly.
        assert result.to_dict() == reference
        assert (tmp_path / "int" / "report.json").read_bytes() == (
            tmp_path / "ref" / "report.json"
        ).read_bytes()

    def test_interrupted_checkpoint_leaves_no_partial_artifacts(self, tmp_path):
        killing = self._KillingStore(str(tmp_path), kill_after=2)
        with pytest.raises(KeyboardInterrupt):
            CampaignRunner(smoke_spec(), store=killing).run()
        leftovers = [
            f for f in os.listdir(killing.cells_dir) if not f.endswith(".json")
        ]
        assert leftovers == []


class TestCLI:
    def _run(self, *argv, env_extra=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.update(env_extra or {})
        return subprocess.run(
            [sys.executable, "-m", "repro.campaign", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )

    def test_list(self):
        proc = self._run("list")
        assert proc.returncode == 0
        assert "policy-shootout" in proc.stdout

    def test_show_exports_spec(self, tmp_path):
        path = tmp_path / "grid.json"
        proc = self._run("show", "policy-shootout", "--spec-json", str(path))
        assert proc.returncode == 0, proc.stderr
        assert CampaignSpec.from_json(str(path)).name == "policy-shootout"

    def test_run_report_resume_cycle(self, tmp_path):
        out = tmp_path / "run"
        proc = self._run("run", "dev-smoke", "--out", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "2 cell(s) executed" in proc.stdout
        report_bytes = (out / "report.json").read_bytes()

        # `report` re-aggregates from checkpoints without executing.
        proc = self._run("report", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "dev-smoke--greedy--s3" in proc.stdout

        # `resume` on a finished store executes nothing, rewrites the
        # byte-identical report.
        proc = self._run("resume", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "0 cell(s) executed" in proc.stdout
        assert (out / "report.json").read_bytes() == report_bytes

    def test_rerun_without_resume_is_refused(self, tmp_path):
        out = tmp_path / "run"
        assert self._run("run", "dev-smoke", "--out", str(out)).returncode == 0
        proc = self._run("run", "dev-smoke", "--out", str(out))
        assert proc.returncode == 2
        assert "--resume" in proc.stderr

    def test_unknown_campaign_exits_nonzero(self, tmp_path):
        proc = self._run("run", "atlantis", "--out", str(tmp_path / "x"))
        assert proc.returncode == 2
        assert "unknown campaign" in proc.stderr

    def test_spec_file_and_name_conflict(self, tmp_path):
        grid = tmp_path / "grid.json"
        smoke_spec().to_json(str(grid))
        proc = self._run(
            "run", "dev-smoke", "--spec", str(grid), "--out", str(tmp_path / "x")
        )
        assert proc.returncode == 2
        assert "pick one" in proc.stderr


@pytest.mark.campaign_heavy
class TestFullGrid:
    def test_policy_shootout_parallel_equals_serial(self, tmp_path):
        spec = CAMPAIGNS.build("policy-shootout")
        serial = run_campaign(spec, out=str(tmp_path / "serial"), workers=1)
        parallel = run_campaign(spec, out=str(tmp_path / "parallel"), workers=4)
        assert serial.to_dict() == parallel.to_dict()
        assert (tmp_path / "serial" / "report.json").read_bytes() == (
            tmp_path / "parallel" / "report.json"
        ).read_bytes()

    def test_harvester_ablation_completes(self, tmp_path):
        spec = CAMPAIGNS.build("harvester-ablation", num_devices=2, num_seeds=1)
        result = run_campaign(spec, out=str(tmp_path), workers=2)
        assert len(result.cells) == spec.num_cells == 6
        assert set(result.marginals()) == {"solar", "indoor-rf", "mixed-city"}
