"""Crash-safe sharded fleet execution: ledger, leases, merge, identity.

The load-bearing contract: per-device streams are seeded by *global*
device index, so splitting a fleet into shards — any widths, any
execution order, any number of deaths and re-runs in between — merges to
an aggregate byte-identical to the unsharded run.  Everything here
(publish-once artifacts, lease stealing, corruption quarantine, RSS
degradation, SIGKILL resume) is tested against that identity.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.errors import ConfigError, CorruptShardError, IntegrityError
from repro.faults import Fault, FaultPlan, chaos
from repro.fleet.results import (
    ShardAggregator,
    jsonable_to_packed,
    pack_device_results,
    packed_to_jsonable,
)
from repro.fleet.runner import FleetRunner, run_device
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.shards import (
    FleetShardSource,
    ScenarioShardSource,
    ShardLedger,
    ShardPlan,
    run_sharded,
    shard_key,
)
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.obs import Recorder, recording


def tiny_device(name="dev", **overrides) -> DeviceSpec:
    base = dict(
        name=name,
        trace={"family": "solar", "duration": 400.0, "dt": 1.0, "peak_mw": 0.03},
        controller={"kind": "greedy"},
        events={"kind": "uniform", "count": 15},
    )
    base.update(overrides)
    return DeviceSpec(**base)


def tiny_fleet(n=6, seed=5) -> FleetSpec:
    return FleetSpec(
        name="tiny", seed=seed,
        devices=[tiny_device(f"dev-{i}") for i in range(n)],
    )


def canonical(aggregate: dict) -> str:
    return json.dumps(aggregate, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def baseline():
    """Unsharded aggregate of the shared 6-device fleet."""
    spec = tiny_fleet()
    return spec, canonical(FleetRunner(spec).run().aggregate())


# --------------------------------------------------------------------- #
# ShardPlan
# --------------------------------------------------------------------- #
class TestShardPlan:
    def test_from_shard_count(self):
        plan = ShardPlan.from_counts(10, shards=3)
        assert plan.shards == [(0, 4), (4, 8), (8, 10)]
        assert plan.num_shards == 3

    def test_from_width(self):
        plan = ShardPlan.from_counts(10, width=4)
        assert plan.shards == [(0, 4), (4, 8), (8, 10)]

    def test_width_larger_than_fleet_is_one_shard(self):
        assert ShardPlan.from_counts(3, width=100).shards == [(0, 3)]

    def test_uneven_explicit_edges(self):
        plan = ShardPlan(7, [0, 1, 5, 7])
        assert plan.shards == [(0, 1), (1, 5), (5, 7)]
        assert plan.keys() == ["s0000000-0000001", "s0000001-0000005",
                               "s0000005-0000007"]

    def test_roundtrip(self):
        plan = ShardPlan(9, [0, 2, 9])
        assert ShardPlan.from_dict(plan.to_dict()).shards == plan.shards

    @pytest.mark.parametrize("edges", [[0], [1, 5], [0, 3], [0, 5, 3, 7],
                                       [0, 0, 7]])
    def test_bad_edges_rejected(self, edges):
        with pytest.raises(ConfigError, match="edges"):
            ShardPlan(7, edges)

    def test_exactly_one_of_shards_or_width(self):
        with pytest.raises(ConfigError, match="exactly one"):
            ShardPlan.from_counts(10)
        with pytest.raises(ConfigError, match="exactly one"):
            ShardPlan.from_counts(10, shards=2, width=5)


# --------------------------------------------------------------------- #
# JSON-safe packed round-trip
# --------------------------------------------------------------------- #
class TestPackedJsonable:
    def test_roundtrip_is_exact_through_json(self):
        results = [
            run_device((i, tiny_device(f"dev-{i}"), 5)) for i in range(3)
        ]
        packed = pack_device_results(results)
        wire = json.loads(json.dumps(packed_to_jsonable(packed)))
        restored = jsonable_to_packed(wire)
        agg_a, agg_b = (ShardAggregator("t", 5) for _ in range(2))
        agg_a.add_packed(packed)
        agg_b.add_packed(restored)
        # float repr round-trips float64 bit-exactly, so the aggregates
        # (percentiles included) must be byte-equal, not just close.
        assert canonical(agg_a.aggregate()) == canonical(agg_b.aggregate())


# --------------------------------------------------------------------- #
# Ledger mechanics
# --------------------------------------------------------------------- #
class TestShardLedger:
    def payload(self, key="s0000000-0000002"):
        results = [run_device((i, tiny_device(f"dev-{i}"), 5)) for i in range(2)]
        packed = pack_device_results(results)
        packed["wall_s"] = [0.0] * len(results)  # as the executor publishes
        return {
            "key": key, "start": 0, "end": 2, "fleet": "tiny", "seed": 5,
            "devices": packed_to_jsonable(packed),
        }

    def test_save_load_roundtrip(self, tmp_path):
        ledger = ShardLedger(str(tmp_path))
        key = "s0000000-0000002"
        assert ledger.save_shard(key, self.payload()) == "published"
        body = ledger.load_shard(key)
        assert body["start"] == 0 and body["end"] == 2
        assert "integrity" not in body  # seal stripped after verification

    def test_republish_identical_is_verified(self, tmp_path):
        ledger = ShardLedger(str(tmp_path))
        key = "s0000000-0000002"
        ledger.save_shard(key, self.payload())
        # A stolen-lease victim that finished anyway republishes the same
        # bytes: publish-once resolves it as a verified straggler.
        assert ledger.save_shard(key, self.payload()) == "verified"

    def test_republish_divergent_raises_integrity(self, tmp_path):
        ledger = ShardLedger(str(tmp_path))
        key = "s0000000-0000002"
        ledger.save_shard(key, self.payload())
        mutated = self.payload()
        mutated["seed"] = 6
        with pytest.raises(IntegrityError, match="determinism"):
            ledger.save_shard(key, mutated)

    @pytest.mark.parametrize("damage", ["empty", "truncate", "bitflip", "torn"])
    def test_corruption_detected_and_quarantined(self, tmp_path, damage):
        ledger = ShardLedger(str(tmp_path))
        key = "s0000000-0000002"
        ledger.save_shard(key, self.payload())
        path = ledger.shard_path(key)
        if damage == "empty":
            open(path, "w").close()
        elif damage == "truncate":
            os.truncate(path, os.path.getsize(path) // 2)
        elif damage == "bitflip":
            with open(path, "r+b") as fh:
                fh.seek(os.path.getsize(path) // 2)
                byte = fh.read(1)
                fh.seek(-1, os.SEEK_CUR)
                fh.write(bytes([byte[0] ^ 0xFF]))
        else:
            with open(path, "w") as fh:
                fh.write('{"key": "torn-off-mid-')
        with pytest.raises(CorruptShardError, match="corrupt shard"):
            ledger.load_shard(key)
        ledger.quarantine_shard(key)
        assert not ledger.has_shard(key)
        assert os.path.exists(
            os.path.join(ledger.quarantine_dir, f"{key}.json")
        )

    def test_wrong_range_in_artifact_is_corrupt(self, tmp_path, baseline):
        spec, expected = baseline
        ledger_dir = str(tmp_path / "led")
        run_sharded(FleetShardSource(spec), ledger_dir, shards=3)
        ledger = ShardLedger(ledger_dir)
        # Swap two artifacts' file names: content no longer matches the
        # range its key promises; the merge must refuse and heal.
        keys = ShardPlan.from_counts(spec.num_devices, shards=3).keys()
        a, b = ledger.shard_path(keys[0]), ledger.shard_path(keys[1])
        tmp = a + ".swap"
        os.rename(a, tmp); os.rename(b, a); os.rename(tmp, b)
        result = run_sharded(FleetShardSource(spec), ledger_dir, resume=True)
        assert canonical(result.aggregate()) == expected

    def test_lease_claim_and_release(self, tmp_path):
        ledger = ShardLedger(str(tmp_path))
        os.makedirs(ledger.leases_dir)
        assert ledger.claim("s0000000-0000002", ttl_s=60.0) == "fresh"
        # A second claimer (different owner) sees a live lease.
        other = ShardLedger(str(tmp_path))
        assert other.claim("s0000000-0000002", ttl_s=60.0) is None
        ledger.release("s0000000-0000002")
        assert other.claim("s0000000-0000002", ttl_s=60.0) == "fresh"

    def test_release_leaves_strangers_lease_alone(self, tmp_path):
        a, b = ShardLedger(str(tmp_path)), ShardLedger(str(tmp_path))
        os.makedirs(a.leases_dir)
        assert a.claim("k", ttl_s=60.0) == "fresh"
        b.release("k")  # not b's lease: must be a no-op
        assert os.path.exists(a.lease_path("k"))

    def test_expired_lease_is_stolen(self, tmp_path):
        # The caller's TTL governs expiry (an operator setting, uniform
        # across workers) — a dead owner cannot pin a shard forever.
        a, b = ShardLedger(str(tmp_path)), ShardLedger(str(tmp_path))
        os.makedirs(a.leases_dir)
        assert a.claim("k", ttl_s=120.0) == "fresh"
        time.sleep(0.05)
        assert b.claim("k", ttl_s=60.0) is None  # still live on b's clock
        assert b.claim("k", ttl_s=0.01) == "stolen"

    def test_torn_lease_steals_after_caller_ttl(self, tmp_path):
        ledger = ShardLedger(str(tmp_path))
        os.makedirs(ledger.leases_dir)
        # Owner died between O_EXCL create and the JSON write.
        open(ledger.lease_path("k"), "w").close()
        time.sleep(0.05)
        assert ledger.claim("k", ttl_s=0.01) == "stolen"

    def test_initialize_rejects_foreign_ledger(self, tmp_path, baseline):
        spec, _ = baseline
        ledger_dir = str(tmp_path / "led")
        run_sharded(FleetShardSource(spec), ledger_dir, shards=2)
        other = FleetSpec(
            name="other", seed=9, devices=[tiny_device("x"), tiny_device("y")]
        )
        with pytest.raises(ConfigError, match="belongs to fleet"):
            run_sharded(FleetShardSource(other), ledger_dir, shards=2)

    def test_complete_ledger_requires_resume(self, tmp_path, baseline):
        spec, expected = baseline
        ledger_dir = str(tmp_path / "led")
        run_sharded(FleetShardSource(spec), ledger_dir, shards=2)
        with pytest.raises(ConfigError, match="--resume"):
            run_sharded(FleetShardSource(spec), ledger_dir, shards=2)
        remerged = run_sharded(
            FleetShardSource(spec), ledger_dir, shards=2, resume=True
        )
        assert remerged.shards_executed == 0
        assert remerged.shards_resumed == 2
        assert canonical(remerged.aggregate()) == expected


# --------------------------------------------------------------------- #
# Sharded == unsharded
# --------------------------------------------------------------------- #
class TestShardedIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 3, 6])
    def test_any_shard_count_is_identical(self, tmp_path, baseline, shards):
        spec, expected = baseline
        result = run_sharded(
            FleetShardSource(spec), str(tmp_path / "led"), shards=shards
        )
        assert canonical(result.aggregate()) == expected
        assert result.shards_executed == result.num_shards

    def test_uneven_plan_is_identical(self, tmp_path, baseline):
        spec, expected = baseline
        plan = ShardPlan(spec.num_devices, [0, 1, 2, 6])
        result = run_sharded(FleetShardSource(spec), str(tmp_path / "led"),
                             plan=plan)
        assert canonical(result.aggregate()) == expected

    def test_multiworker_drain_is_identical(self, tmp_path, baseline):
        spec, expected = baseline
        result = run_sharded(
            FleetShardSource(spec), str(tmp_path / "led"), shards=6, workers=3
        )
        assert canonical(result.aggregate()) == expected

    def test_resume_runs_only_missing_shards(self, tmp_path, baseline):
        spec, expected = baseline
        ledger_dir = str(tmp_path / "led")
        run_sharded(FleetShardSource(spec), ledger_dir, shards=6)
        victim = shard_key(2, 3)
        os.unlink(ShardLedger(ledger_dir).shard_path(victim))
        result = run_sharded(FleetShardSource(spec), ledger_dir)
        assert result.shards_executed == 1  # only the victim
        assert result.shards_resumed == 5
        assert canonical(result.aggregate()) == expected

    def test_rss_degradation_preserves_identity(self, tmp_path, baseline):
        spec, expected = baseline
        # An absurdly small budget: peak RSS is already above it, so the
        # executor halves its width down to 1 and keeps going.
        result = run_sharded(
            FleetShardSource(spec), str(tmp_path / "led"), shards=2,
            max_rss_mb=1.0,
        )
        assert result.degraded >= 1
        assert canonical(result.aggregate()) == expected

    def test_megacity_slice_runs_shard_by_shard(self, tmp_path):
        source = ScenarioShardSource("megacity-1m", {"num_devices": 8})
        assert source.ranged  # never materializes the full fleet
        result = run_sharded(source, str(tmp_path / "led"), shard_width=3)
        assert result.num_shards == 3
        full = SCENARIOS.build("megacity-1m", device_range=(0, 8),
                               num_devices=8)
        unsharded = FleetRunner(full).run().aggregate()
        assert canonical(result.aggregate()) == canonical(unsharded)

    def test_outcome_metrics_match_unsharded(self, tmp_path, baseline):
        spec, _ = baseline
        rec_a, rec_b = Recorder(metrics=True), Recorder(metrics=True)
        with recording(rec_a):
            FleetRunner(spec).run()
        with recording(rec_b):
            run_sharded(FleetShardSource(spec), str(tmp_path / "led"), shards=3)
        a, b = rec_a.to_dict()["metrics"], rec_b.to_dict()["metrics"]
        outcome = ("fleet.runs", "fleet.devices", "fleet.events",
                   "fleet.events.processed", "fleet.events.missed",
                   "fleet.events.correct")
        for name in outcome:
            assert a["counters"][name] == b["counters"][name], name
        # Per-device iepmj histogram: same devices, same values — the
        # whole summary (percentiles included) must agree exactly.
        assert (a["histograms"]["fleet.device.iepmj"]
                == b["histograms"]["fleet.device.iepmj"])


# --------------------------------------------------------------------- #
# Chaos at the new shard sites
# --------------------------------------------------------------------- #
class TestShardChaos:
    def test_new_sites_registered(self):
        for site in ("fleet.shard.claim", "fleet.shard.save",
                     "fleet.shard.merge"):
            FaultPlan([Fault(site=site, when=0,
                             op="oserror" if "save" not in site else "bitflip")])

    def test_save_corruption_heals_to_identity(self, tmp_path, baseline):
        spec, expected = baseline
        plan = FaultPlan([
            Fault(site="fleet.shard.save", when=1, op="bitflip",
                  params={"offset_frac": 0.4}),
            Fault(site="fleet.shard.save", when=2, op="empty"),
        ])
        with chaos(plan):
            result = run_sharded(
                FleetShardSource(spec), str(tmp_path / "led"), shards=4
            )
        assert canonical(result.aggregate()) == expected
        # The damaged artifacts were quarantined, then re-executed.
        assert os.path.isdir(str(tmp_path / "led" / "quarantine"))

    def test_claim_faults_skip_then_recover(self, tmp_path, baseline):
        spec, expected = baseline
        plan = FaultPlan([
            Fault(site="fleet.shard.claim", when=0, op="oserror"),
            Fault(site="fleet.shard.claim", when=2, op="exception"),
        ])
        with chaos(plan):
            result = run_sharded(
                FleetShardSource(spec), str(tmp_path / "led"), shards=3
            )
        assert canonical(result.aggregate()) == expected

    def test_merge_oserror_is_retried(self, tmp_path, baseline):
        spec, expected = baseline
        plan = FaultPlan([
            Fault(site="fleet.shard.merge", when=0, op="oserror"),
            Fault(site="fleet.shard.merge", when=1, op="oserror"),
        ])
        with chaos(plan):
            result = run_sharded(
                FleetShardSource(spec), str(tmp_path / "led"), shards=3
            )
        assert canonical(result.aggregate()) == expected


# --------------------------------------------------------------------- #
# Campaign routing
# --------------------------------------------------------------------- #
class TestCampaignShardRouting:
    def test_sharded_campaign_report_is_byte_identical(self, tmp_path):
        from repro.campaign import CAMPAIGNS, run_campaign

        spec = CAMPAIGNS.build("dev-smoke")
        plain = tmp_path / "plain"
        sharded = tmp_path / "sharded"
        run_campaign(spec, out=str(plain))
        run_campaign(spec, out=str(sharded), shard_devices=1)
        with open(plain / "report.json", "rb") as fh:
            a = fh.read()
        with open(sharded / "report.json", "rb") as fh:
            b = fh.read()
        assert a == b
        # Every oversized cell left a ledger behind.
        ledgers = os.listdir(sharded / "shard-ledgers")
        assert len(ledgers) == spec.num_cells

    def test_sharded_cell_resumes_at_shard_granularity(self, tmp_path):
        from repro.campaign import CAMPAIGNS, run_campaign
        from repro.campaign.store import CampaignStore

        spec = CAMPAIGNS.build("dev-smoke")
        out = tmp_path / "camp"
        run_campaign(spec, out=str(out), shard_devices=1)
        store = CampaignStore(str(out))
        baseline_report = open(out / "report.json", "rb").read()
        # Lose a cell checkpoint but keep its shard ledger: the re-run
        # must merge from shards (0 executed) instead of re-simulating.
        victim = sorted(store.completed_keys())[0]
        os.unlink(store.cell_path(victim))
        with recording(Recorder(metrics=True)) :
            run_campaign(spec, out=str(out), resume=True, shard_devices=1)
        assert open(out / "report.json", "rb").read() == baseline_report


# --------------------------------------------------------------------- #
# SIGKILL crash recovery
# --------------------------------------------------------------------- #
KILL_SCRIPT = textwrap.dedent("""
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.fleet.shards import FleetShardSource, ShardLedger, run_sharded
    from repro.fleet.spec import FleetSpec

    spec = FleetSpec.from_json({spec_path!r})
    ledger = ShardLedger({ledger_dir!r})
    publishes = []
    original = ShardLedger.save_shard

    def kill_after_two(self, key, payload):
        out = original(self, key, payload)
        publishes.append(key)
        if len(publishes) == 2:
            os.kill(os.getpid(), signal.SIGKILL)  # crash mid-run
        return out

    ShardLedger.save_shard = kill_after_two
    run_sharded(FleetShardSource(spec), {ledger_dir!r}, shards=6)
""")

LEASE_HOLDER_SCRIPT = textwrap.dedent("""
    import os, signal, sys
    sys.path.insert(0, {src!r})
    from repro.fleet.shards import ShardLedger

    ledger = ShardLedger({ledger_dir!r})
    os.makedirs(ledger.leases_dir, exist_ok=True)
    assert ledger.claim({key!r}, ttl_s=120.0) == "fresh"
    os.kill(os.getpid(), signal.SIGKILL)  # die holding the lease
""")

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


class TestSigkillRecovery:
    def test_sigkill_mid_run_then_resume_is_byte_identical(
        self, tmp_path, baseline
    ):
        spec, expected = baseline
        spec_path = str(tmp_path / "fleet.json")
        spec.to_json(spec_path)
        ledger_dir = str(tmp_path / "led")
        script = KILL_SCRIPT.format(
            src=SRC, spec_path=spec_path, ledger_dir=ledger_dir
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, timeout=120
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        survivors = ShardLedger(ledger_dir).completed_keys()
        assert len(survivors) == 2  # died right after the second publish
        result = run_sharded(FleetShardSource(spec), ledger_dir)
        assert result.shards_resumed == 2
        assert result.shards_executed == 4  # only the unfinished shards
        assert canonical(result.aggregate()) == expected

    def test_dead_workers_lease_is_stolen_and_shard_rerun(
        self, tmp_path, baseline
    ):
        spec, expected = baseline
        ledger_dir = str(tmp_path / "led")
        key = shard_key(0, 3)
        script = LEASE_HOLDER_SCRIPT.format(
            src=SRC, ledger_dir=ledger_dir, key=key
        )
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, timeout=120
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert os.path.exists(ShardLedger(ledger_dir).lease_path(key))
        time.sleep(0.05)
        result = run_sharded(
            FleetShardSource(spec), ledger_dir, shards=2, lease_ttl_s=0.01
        )
        assert result.shards_stolen >= 1
        assert canonical(result.aggregate()) == expected


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestShardCLI:
    def run_cli(self, *argv):
        from repro.fleet.__main__ import main

        return main(list(argv))

    def test_sharded_cli_matches_plain_cli(self, tmp_path, capsys):
        plain, sharded = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert self.run_cli("run", "dev-smoke", "--quiet",
                            "--json", plain) == 0
        assert self.run_cli("run", "dev-smoke", "--quiet", "--shards", "2",
                            "--ledger", str(tmp_path / "led"),
                            "--json", sharded) == 0
        a, b = json.load(open(plain)), json.load(open(sharded))
        assert canonical(a["aggregate"]) == canonical(b["aggregate"])

    def test_cli_resume_reads_plan_from_ledger(self, tmp_path, capsys):
        ledger = str(tmp_path / "led")
        out = str(tmp_path / "a.json")
        assert self.run_cli("run", "dev-smoke", "--quiet", "--shards", "2",
                            "--ledger", ledger, "--json", out) == 0
        # No --shards this time: the plan comes back from ledger.json.
        out2 = str(tmp_path / "b.json")
        assert self.run_cli("run", "dev-smoke", "--quiet", "--ledger", ledger,
                            "--resume", "--json", out2) == 0
        assert open(out).read() == open(out2).read()
        assert "2 resumed from ledger" in capsys.readouterr().out

    def test_sharding_requires_ledger(self, tmp_path, capsys):
        assert self.run_cli("run", "dev-smoke", "--shards", "2") == 2
        assert "--ledger" in capsys.readouterr().err

    def test_workers_flag_conflicts_with_sharding(self, tmp_path, capsys):
        assert self.run_cli("run", "dev-smoke", "--shards", "2",
                            "--ledger", str(tmp_path / "led"),
                            "--workers", "4") == 2
        assert "--shard-workers" in capsys.readouterr().err

    def test_explain_with_chaos_validates_and_lists_sites(
        self, tmp_path, capsys
    ):
        plan_path = str(tmp_path / "plan.json")
        FaultPlan([
            Fault(site="fleet.shard.save", when=0, op="empty"),
            Fault(site="fleet.chunk", when=1, op="oserror"),
        ]).to_json(plan_path)
        assert self.run_cli("run", "dev-smoke", "--explain",
                            "--chaos", plan_path) == 0
        out = capsys.readouterr().out
        assert "2 fault(s) armed" in out
        assert "fleet.chunk" in out and "fleet.shard.save" in out

    def test_explain_with_bad_chaos_site_fails_loudly(self, tmp_path, capsys):
        plan_path = str(tmp_path / "plan.json")
        with open(plan_path, "w") as fh:
            json.dump({"faults": [
                {"site": "fleet.shard.nope", "when": 0, "op": "oserror"}
            ]}, fh)
        assert self.run_cli("run", "dev-smoke", "--explain",
                            "--chaos", plan_path) == 2
        assert "fleet.shard.nope" in capsys.readouterr().err

    def test_max_rss_and_lease_ttl_flags_accepted(self, tmp_path, capsys):
        assert self.run_cli("run", "dev-smoke", "--quiet", "--shards", "2",
                            "--ledger", str(tmp_path / "led"),
                            "--max-rss-mb", "1", "--lease-ttl", "60") == 0
        assert "degradation(s)" in capsys.readouterr().out
