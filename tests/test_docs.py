"""The docs are part of the contract: links resolve, examples execute.

Wraps ``tools/check_docs.py`` as tier-1 tests (CI's ``docs-check`` step
runs the same module), plus negative cases proving the checker actually
catches rot — a green lane from a checker that cannot fail is worse
than no lane.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "tools"))

import check_docs  # noqa: E402


def test_repo_docs_links_and_anchors():
    assert check_docs.check_links() == []


def test_protocol_doctests_execute():
    assert check_docs.run_doctests() == []


def test_github_slugification():
    assert check_docs.github_slug("Framing and envelopes") == \
        "framing-and-envelopes"
    assert check_docs.github_slug("Kernel lanes (`REPRO_KERNEL`)") == \
        "kernel-lanes-repro_kernel"


def test_checker_catches_broken_link(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("[gone](docs/MISSING.md)\n")
    (tmp_path / "docs" / "A.md").write_text("# A\n")
    findings = check_docs.check_links(
        str(tmp_path), ("README.md", "docs/A.md")
    )
    assert any("broken link" in f for f in findings)


def test_checker_catches_broken_anchor(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text("# Top\n[x](docs/A.md#nope)\n")
    (tmp_path / "docs" / "A.md").write_text("# Real heading\n")
    findings = check_docs.check_links(
        str(tmp_path), ("README.md", "docs/A.md")
    )
    assert any("broken anchor" in f for f in findings)
    ok = check_docs.check_links(str(tmp_path), ("README.md",))
    # the same link with a real anchor passes
    (tmp_path / "README.md").write_text("[x](docs/A.md#real-heading)\n")
    ok = check_docs.check_links(str(tmp_path), ("README.md", "docs/A.md"))
    assert ok == []


def test_checker_catches_failing_doctest(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "P.md").write_text(
        "# P\n\n```python\n>>> 1 + 1\n3\n\n```\n"
    )
    findings = check_docs.run_doctests(str(tmp_path), ("docs/P.md",))
    assert any("failed" in f for f in findings)


def test_checker_ignores_links_inside_code_fences(tmp_path):
    (tmp_path / "README.md").write_text(
        "# Top\n\n```bash\ncat [not](a-link.md)\n```\n"
    )
    assert check_docs.check_links(str(tmp_path), ("README.md",)) == []


@pytest.mark.parametrize("rel", ["docs/ARCHITECTURE.md", "docs/PROTOCOL.md"])
def test_docs_exist_and_are_nontrivial(rel):
    path = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), rel)
    with open(path) as fh:
        assert len(fh.read()) > 2000
