"""Multi-exit network container tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.layers import Linear, ReLU
from repro.nn.losses import MultiExitCrossEntropy
from repro.nn.network import MultiExitNetwork, Sequential
from tests.conftest import make_tiny_two_exit


@pytest.fixture
def x(rng):
    return rng.normal(size=(4, 2, 8, 8))


@pytest.fixture
def labels(rng):
    return rng.integers(0, 5, size=4)


class TestConstruction:
    def test_segment_branch_count_mismatch(self):
        with pytest.raises(ConfigError):
            MultiExitNetwork(segments=[Sequential([])], branches=[])

    def test_empty_network_rejected(self):
        with pytest.raises(ConfigError):
            MultiExitNetwork(segments=[], branches=[])

    def test_plain_lists_wrapped(self):
        net = MultiExitNetwork(
            segments=[[Linear(4, 4, name="a", rng=0), ReLU()]],
            branches=[[Linear(4, 2, name="b", rng=1)]],
        )
        assert isinstance(net.segments[0], Sequential)


class TestForward:
    def test_forward_all_returns_one_logits_per_exit(self, tiny_net, x):
        logits = tiny_net.forward_all(x)
        assert len(logits) == 2
        assert all(ly.shape == (4, 5) for ly in logits)

    def test_forward_to_exit_matches_forward_all(self, tiny_net, x):
        logits = tiny_net.forward_all(x)
        for k in range(tiny_net.num_exits):
            np.testing.assert_allclose(tiny_net.forward_to_exit(x, k), logits[k])

    def test_forward_to_exit_bounds(self, tiny_net, x):
        with pytest.raises(ConfigError):
            tiny_net.forward_to_exit(x, 2)

    def test_predict_uses_final_exit_by_default(self, tiny_net, x):
        pred = tiny_net.predict(x)
        np.testing.assert_array_equal(pred, tiny_net.forward_to_exit(x, 1).argmax(axis=1))


class TestIncrementalInference:
    def test_matches_direct_forward(self, tiny_net, x):
        cursor = tiny_net.begin_incremental(x)
        logits0 = cursor.run_to_exit(0)
        np.testing.assert_allclose(logits0, tiny_net.forward_to_exit(x, 0))
        logits1 = cursor.run_to_exit(1)
        np.testing.assert_allclose(logits1, tiny_net.forward_to_exit(x, 1))

    def test_cannot_go_backwards(self, tiny_net, x):
        cursor = tiny_net.begin_incremental(x)
        cursor.run_to_exit(1)
        with pytest.raises(ConfigError):
            cursor.run_to_exit(0)

    def test_can_continue_flag(self, tiny_net, x):
        cursor = tiny_net.begin_incremental(x)
        cursor.run_to_exit(0)
        assert cursor.can_continue
        cursor.run_to_exit(1)
        assert not cursor.can_continue

    def test_skipping_an_exit_is_allowed(self, tiny_net, x):
        cursor = tiny_net.begin_incremental(x)
        logits = cursor.run_to_exit(1)  # straight to the final exit
        np.testing.assert_allclose(logits, tiny_net.forward_to_exit(x, 1))


class TestBackwardAll:
    def test_joint_gradient_matches_numerical(self, x, labels):
        net = make_tiny_two_exit(seed=1)
        criterion = MultiExitCrossEntropy(2, [1.0, 0.5])

        def loss_value():
            return criterion(net.forward_all(x, train=True), labels)

        loss_value()
        net.zero_grad()
        net.backward_all(criterion.backward())
        rng = np.random.default_rng(2)
        eps = 1e-6
        for p in net.parameters()[:4]:
            i = int(rng.integers(p.data.size))
            orig = p.data.ravel()[i]
            p.data.ravel()[i] = orig + eps
            lp = loss_value()
            p.data.ravel()[i] = orig - eps
            lm = loss_value()
            p.data.ravel()[i] = orig
            np.testing.assert_allclose(
                p.grad.ravel()[i], (lp - lm) / (2 * eps), rtol=1e-4, atol=1e-7
            )

    def test_wrong_gradient_count_raises(self, tiny_net, x, labels):
        criterion = MultiExitCrossEntropy(2)
        criterion(tiny_net.forward_all(x, train=True), labels)
        with pytest.raises(ConfigError):
            tiny_net.backward_all(criterion.backward()[:1])


class TestIntrospection:
    def test_weighted_layers_order(self, tiny_net):
        names = [ly.name for ly in tiny_net.weighted_layers()]
        assert names == ["t.c1", "t.c2", "t.f1", "t.f2"]

    def test_layer_by_name(self, tiny_net):
        assert tiny_net.layer_by_name("t.c2").name == "t.c2"
        with pytest.raises(KeyError):
            tiny_net.layer_by_name("missing")

    def test_exit_layer_names(self, tiny_net):
        assert tiny_net.exit_layer_names(0) == ["t.c1", "t.f1"]
        assert tiny_net.exit_layer_names(1) == ["t.c1", "t.c2", "t.f2"]

    def test_zero_grad_clears_all(self, tiny_net, x, labels):
        criterion = MultiExitCrossEntropy(2)
        criterion(tiny_net.forward_all(x, train=True), labels)
        tiny_net.backward_all(criterion.backward())
        tiny_net.zero_grad()
        assert all((p.grad == 0).all() for p in tiny_net.parameters())
