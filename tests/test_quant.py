"""Linear quantization tests (Eq. 3 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.quant import (
    ActivationQuantizer,
    WeightQuantizer,
    optimal_weight_scale,
    quantize_activations,
    quantize_weights,
)


class TestQuantizeWeights:
    def test_eq3_by_hand(self):
        # With s=1 and 3 bits the grid is {-4..3}.
        w = np.array([-10.0, -1.4, 0.4, 2.6, 10.0])
        out = quantize_weights(w, 3, scale=1.0)
        np.testing.assert_allclose(out, [-4.0, -1.0, 0.0, 3.0, 3.0])

    def test_full_precision_is_identity(self, rng):
        w = rng.normal(size=(4, 4))
        np.testing.assert_array_equal(quantize_weights(w, 32), w)

    def test_idempotent(self, rng):
        w = rng.normal(size=(8, 8))
        q1 = quantize_weights(w, 4, scale=0.1)
        q2 = quantize_weights(q1, 4, scale=0.1)
        np.testing.assert_allclose(q1, q2)

    @given(st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_values_on_grid(self, bits):
        rng = np.random.default_rng(0)
        w = rng.normal(size=100)
        s = optimal_weight_scale(w, bits)
        q = quantize_weights(w, bits, scale=s)
        levels = np.round(q / s)
        assert np.all(levels >= -(2 ** (bits - 1)))
        assert np.all(levels <= 2 ** (bits - 1) - 1)
        np.testing.assert_allclose(levels, np.round(levels), atol=1e-9)

    def test_error_decreases_with_bits(self, rng):
        w = rng.normal(size=500)
        errors = [np.sum((quantize_weights(w, b) - w) ** 2) for b in (2, 4, 6, 8)]
        assert errors == sorted(errors, reverse=True)

    def test_one_bit_is_xnor_style(self, rng):
        w = rng.normal(size=200)
        q = quantize_weights(w, 1)
        s = np.abs(w).mean()
        np.testing.assert_allclose(np.abs(q), s)
        np.testing.assert_array_equal(np.sign(q), np.where(w >= 0, 1.0, -1.0))

    def test_invalid_bits(self):
        for bad in (0, 33, 2.5):
            with pytest.raises(ConfigError):
                quantize_weights(np.ones(3), bad)

    def test_invalid_scale(self):
        with pytest.raises(ConfigError):
            quantize_weights(np.ones(3), 4, scale=0.0)

    def test_zero_tensor(self):
        np.testing.assert_array_equal(quantize_weights(np.zeros(5), 4), np.zeros(5))


class TestOptimalScale:
    def test_beats_max_based_scale(self, rng):
        # Heavy-tailed weights: clipping outliers reduces total error.
        w = rng.standard_t(df=2, size=2000)
        s_opt = optimal_weight_scale(w, 4)
        s_max = np.abs(w).max() / (2 ** 3 - 1)
        err_opt = np.sum((quantize_weights(w, 4, s_opt) - w) ** 2)
        err_max = np.sum((quantize_weights(w, 4, s_max) - w) ** 2)
        assert err_opt <= err_max

    def test_one_bit_scale_is_mean_abs(self, rng):
        w = rng.normal(size=100)
        assert optimal_weight_scale(w, 1) == pytest.approx(np.abs(w).mean())


class TestQuantizeActivations:
    def test_unsigned_range(self):
        a = np.array([-1.0, 0.3, 5.0, 100.0])
        out = quantize_activations(a, 3, scale=1.0)
        np.testing.assert_allclose(out, [0.0, 0.0, 5.0, 7.0])

    def test_signed_range(self):
        a = np.array([-100.0, -1.0, 1.0, 100.0])
        out = quantize_activations(a, 3, scale=1.0, signed=True)
        np.testing.assert_allclose(out, [-4.0, -1.0, 1.0, 3.0])

    def test_full_precision_identity(self, rng):
        a = rng.normal(size=10)
        np.testing.assert_array_equal(quantize_activations(a, 32, 1.0), a)

    def test_bad_scale(self):
        with pytest.raises(ConfigError):
            quantize_activations(np.ones(3), 4, scale=-1.0)


class TestQuantizerObjects:
    def test_weight_quantizer_tracks_weight_updates(self, rng):
        q = WeightQuantizer(4)
        w1 = rng.normal(size=50)
        w2 = w1 * 10.0  # scale recomputed per call, so grids differ
        assert np.abs(q(w2)).max() > np.abs(q(w1)).max() * 5

    def test_activation_quantizer_calibration(self, rng):
        q = ActivationQuantizer(8)
        samples = rng.uniform(0, 4.0, size=10_000)
        q.calibrate(samples)
        assert q.scale == pytest.approx(4.0 / 255, rel=0.05)
        out = q(np.array([2.0]))
        np.testing.assert_allclose(out, 2.0, atol=2 * q.scale)

    def test_uncalibrated_falls_back_to_dynamic(self):
        q = ActivationQuantizer(8)
        out = q(np.array([0.0, 1.0, 2.0]))
        assert np.isfinite(out).all()
        assert out.max() == pytest.approx(2.0, rel=0.05)

    def test_quantization_error_bounded_by_half_step(self, rng):
        q = ActivationQuantizer(8)
        q.calibrate(rng.uniform(0, 1, 1000))
        a = rng.uniform(0, 0.9, 100)
        assert np.abs(q(a) - a).max() <= q.scale / 2 + 1e-12

    def test_full_precision_pass_through(self, rng):
        q = ActivationQuantizer(32)
        a = rng.normal(size=5)
        np.testing.assert_array_equal(q(a), a)
