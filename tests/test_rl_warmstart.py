"""Warm-started search tests."""

import pytest

from repro.compress import CompressionSpec, LayerCompression
from repro.data import Dataset
from repro.energy import constant_trace, uniform_random_events
from repro.rl import (
    CompressionObjective,
    LayerwiseCompressionEnv,
    NonuniformSearch,
    SearchConfig,
)
from repro.rl.ddpg import DDPGConfig


@pytest.fixture
def env(tiny_net, tiny_dataset):
    data = Dataset(tiny_dataset.val.x[:30, :2, :8, :8], tiny_dataset.val.y[:30] % 5)
    trace = constant_trace(0.02, 300.0)
    events = uniform_random_events(12, trace.duration, rng=1)
    objective = CompressionObjective(
        net=tiny_net,
        val_data=data,
        trace=trace,
        events=events,
        flops_target=3_500,
        size_target_kb=0.6,
        input_shape=(2, 8, 8),
    )
    return LayerwiseCompressionEnv(objective)


def seed_spec():
    """A feasible hand spec for the tiny 2-exit network."""
    return CompressionSpec(
        {
            "t.c1": LayerCompression(1.0, 8, 8),
            "t.c2": LayerCompression(0.65, 4, 8),
            "t.f1": LayerCompression(0.5, 2, 8),
            "t.f2": LayerCompression(0.5, 2, 8),
        }
    )


def config(episodes):
    return SearchConfig(
        episodes=episodes, seed=0, ddpg=DDPGConfig(hidden_sizes=(16, 16), batch_size=8, warmup=8)
    )


class TestWarmStart:
    def test_warm_episode_counted_in_history(self, env):
        search = NonuniformSearch(env, config(2), warm_start_specs=[seed_spec()])
        result = search.run()
        assert len(result.history) == 3  # 1 warm + 2 exploration
        assert result.episodes == 3

    def test_best_at_least_as_good_as_seed(self, env):
        seed_result = env.objective.evaluate(seed_spec())
        search = NonuniformSearch(env, config(3), warm_start_specs=[seed_spec()])
        result = search.run()
        if seed_result.feasible:
            assert result.best.feasible
            assert result.best.racc >= seed_result.racc - 1e-9

    def test_seed_trajectory_replayed_exactly(self, env):
        """The warm episode's logged spec must equal the seed spec."""
        search = NonuniformSearch(env, config(1), warm_start_specs=[seed_spec()])
        search.run()
        actions = search._actions_for_spec(seed_spec())
        env.reset()
        for prune_action, quant_action in actions:
            env.step(prune_action, quant_action)
        rebuilt = env.build_spec()
        assert rebuilt.to_dict() == seed_spec().to_dict()

    def test_no_warm_start_behaves_as_before(self, env):
        result = NonuniformSearch(env, config(2)).run()
        assert len(result.history) == 2
