"""Hypothesis property suite for :mod:`repro.energy.storage`.

The simulator's entire energy ledger flows through this class, and the
campaign layer's cross-controller energy deltas assume it never invents
or loses energy.  Properties enforced over arbitrary operation sequences:

* the charge level stays inside ``[0, capacity]``;
* the accounting conserves: ``level == initial + charged - drawn - leaked``
  and every charge splits exactly into banked + wasted;
* affordability is truthful: ``draw`` succeeds iff ``can_afford`` said so.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.storage import EnergyStorage
from repro.errors import EnergyError

#: One storage op: ("charge", mJ) | ("leak", seconds) | ("draw", fraction
#: of the *current* level, so draws are usually affordable but sometimes
#: overshoot thanks to the >1 upper bound).
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("charge"), st.floats(0.0, 5.0, allow_nan=False)),
        st.tuples(st.just("leak"), st.floats(0.0, 100.0, allow_nan=False)),
        st.tuples(st.just("draw"), st.floats(0.0, 1.3, allow_nan=False)),
    ),
    max_size=60,
)

STORAGES = st.builds(
    EnergyStorage,
    capacity_mj=st.floats(0.5, 10.0, allow_nan=False),
    efficiency=st.floats(0.1, 1.0, exclude_min=True, allow_nan=False),
    leakage_mw=st.floats(0.0, 0.1, allow_nan=False),
)


def _apply(storage, ops):
    """Replay an op sequence; returns (leaked_total, wasted_checks_ok)."""
    leaked = 0.0
    for op, value in ops:
        if op == "charge":
            before_level = storage.level_mj
            before_wasted = storage.total_wasted_mj
            stored = storage.charge(value)
            banked = value * storage.efficiency
            # Every charge splits exactly into banked-into-store + shed.
            assert stored == pytest.approx(storage.level_mj - before_level)
            assert stored + (storage.total_wasted_mj - before_wasted) == (
                pytest.approx(banked)
            )
        elif op == "leak":
            leaked += storage.leak(value)
        else:
            amount = value * storage.level_mj
            if storage.can_afford(amount):
                storage.draw(amount)
            else:
                with pytest.raises(EnergyError):
                    storage.draw(amount)
    return leaked


@given(storage=STORAGES, ops=OPS)
@settings(max_examples=150, deadline=None)
def test_level_stays_within_capacity(storage, ops):
    _apply(storage, ops)
    assert 0.0 <= storage.level_mj <= storage.capacity_mj + 1e-9


@given(storage=STORAGES, ops=OPS)
@settings(max_examples=150, deadline=None)
def test_energy_ledger_conserves(storage, ops):
    initial = storage.level_mj
    leaked = _apply(storage, ops)
    reconstructed = (
        initial + storage.total_charged_mj - storage.total_drawn_mj - leaked
    )
    assert storage.level_mj == pytest.approx(reconstructed, abs=1e-9)
    assert storage.total_wasted_mj >= -1e-12
    assert math.isfinite(storage.level_mj)


@given(storage=STORAGES, ops=OPS)
@settings(max_examples=100, deadline=None)
def test_reset_restores_initial_state(storage, ops):
    initial = storage.level_mj
    _apply(storage, ops)
    storage.reset()
    assert storage.level_mj == initial
    assert storage.total_charged_mj == 0.0
    assert storage.total_drawn_mj == 0.0
    assert storage.total_wasted_mj == 0.0


@given(
    storage=STORAGES,
    fractions=st.lists(st.floats(0.0, 1.0, allow_nan=False), max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_affordable_draws_never_raise(storage, fractions):
    """``can_afford`` is a guarantee, not a hint."""
    storage.charge(storage.capacity_mj)  # start with something in the bank
    for f in fractions:
        amount = f * storage.level_mj
        assert storage.can_afford(amount)
        storage.draw(amount)  # must not raise
