"""Golden-fleet regression tests.

The fleet layer promises that a (scenario, seed) pair pins results
bit-for-bit: across runs, across worker counts, and across refactors of
the trace/simulator/aggregation hot path.  The campaign layer's resume
guarantee (interrupted == uninterrupted, byte-identical reports) is built
directly on that promise, so it gets locked in here against committed
reference aggregates under ``tests/golden/``.

Aggregates are compared **exactly** — including float bits.  JSON numbers
round-trip exactly through Python floats (``repr`` <-> parse), so any
mismatch means the simulation arithmetic actually changed.  If a change
is intentional, regenerate every golden with::

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.fleet import SCENARIOS, FleetRunner
    CASES = [("dev-smoke", {}), ("dev-smoke", {"num_devices": 4}),
             ("solar-farm-100", {"num_devices": 4}),
             ("indoor-rf-swarm", {"num_devices": 4}),
             ("mixed-harvester-city", {"num_devices": 4}),
             ("city-block-1k", {"num_devices": 4}),
             ("brownout-grid-256", {"num_devices": 4}),
             ("duty-cycle-farm-512", {"num_devices": 4}),
             ("megacity-1m", {"num_devices": 4})]
    for scenario, overrides in CASES:
        result = FleetRunner(SCENARIOS.build(scenario, **overrides), workers=1).run()
        suffix = f"{overrides['num_devices']}dev" if overrides else "default"
        with open(f"tests/golden/fleet_{scenario}_{suffix}.json", "w") as fh:
            json.dump({"scenario": scenario, "overrides": overrides,
                       "aggregate": result.aggregate()}, fh, indent=2, sort_keys=True)
            fh.write("\n")
    EOF

and say why in the commit message — a silent regeneration defeats the net.
"""

import glob
import json
import os

import pytest

from repro.fleet import SCENARIOS, FleetRunner

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
GOLDEN_FILES = sorted(glob.glob(os.path.join(GOLDEN_DIR, "fleet_*.json")))


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def _case_id(path):
    return os.path.basename(path)[len("fleet_"):-len(".json")]


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=_case_id)
def test_serial_aggregate_matches_golden(path):
    golden = _load(path)
    spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
    result = FleetRunner(spec, workers=1).run()
    # json round-trip normalizes int/float types the same way the golden
    # file stores them, so == is an exact (bit-stable) comparison.
    assert json.loads(json.dumps(result.aggregate())) == golden["aggregate"]


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=_case_id)
@pytest.mark.parametrize("engine", ["batched", "device"])
def test_engine_choice_matches_golden(path, engine):
    """The lockstep batched engine must reproduce the same bits as the
    per-device path on every golden (the PR-4 determinism contract)."""
    golden = _load(path)
    spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
    # Every registered scenario is fully batch-eligible since PR 5
    # (intermittent execution and continue rules batch too), so the
    # strict "batched" engine must reproduce every golden directly.
    result = FleetRunner(spec, workers=1, engine=engine).run()
    assert json.loads(json.dumps(result.aggregate())) == golden["aggregate"]


@pytest.mark.parametrize(
    "path",
    [p for p in GOLDEN_FILES if "dev-smoke" in p or "mixed" in p],
    ids=_case_id,
)
def test_parallel_aggregate_matches_golden(path):
    """Worker processes must reproduce the same bits as the serial run.

    ``parallel_threshold=1`` forces the pool path (these fleets are below
    the auto fallback floor, and the whole point here is to exercise the
    chunked batch dispatch + packed wire form end to end).
    """
    golden = _load(path)
    spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
    result = FleetRunner(spec, workers=2, chunksize=1, parallel_threshold=1).run()
    assert json.loads(json.dumps(result.aggregate())) == golden["aggregate"]


def test_goldens_exist_for_every_scenario():
    """Adding a scenario to the registry requires committing its golden."""
    covered = {_load(p)["scenario"] for p in GOLDEN_FILES}
    assert covered == set(SCENARIOS.names())
