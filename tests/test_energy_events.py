"""Event-generator tests."""

import numpy as np
import pytest

from repro.energy import burst_events, poisson_events, uniform_random_events
from repro.errors import ConfigError


class TestUniformRandomEvents:
    def test_count_range_and_order(self):
        events = uniform_random_events(100, 500.0, rng=0)
        assert len(events) == 100
        assert np.all(events >= 0) and np.all(events < 500.0)
        assert np.all(np.diff(events) >= 0)

    def test_deterministic(self):
        a = uniform_random_events(20, 100.0, rng=5)
        b = uniform_random_events(20, 100.0, rng=5)
        np.testing.assert_array_equal(a, b)

    def test_zero_events(self):
        assert len(uniform_random_events(0, 10.0, rng=0)) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_random_events(-1, 10.0)
        with pytest.raises(ConfigError):
            uniform_random_events(5, 0.0)

    def test_roughly_uniform_spread(self):
        events = uniform_random_events(2000, 100.0, rng=1)
        first_half = np.sum(events < 50.0)
        assert 850 < first_half < 1150


class TestPoissonEvents:
    def test_rate_matches(self):
        events = poisson_events(0.5, 4000.0, rng=0)
        assert len(events) == pytest.approx(2000, rel=0.1)

    def test_sorted_in_range(self):
        events = poisson_events(0.1, 100.0, rng=1)
        assert np.all(np.diff(events) >= 0)
        assert np.all((events >= 0) & (events < 100.0))

    def test_zero_rate(self):
        assert len(poisson_events(0.0, 100.0, rng=0)) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            poisson_events(-1.0, 10.0)
        with pytest.raises(ConfigError):
            poisson_events(1.0, -10.0)


class TestBurstEvents:
    def test_count(self):
        events = burst_events(5, 4, 1000.0, rng=0)
        assert len(events) == 20

    def test_clustering(self):
        """Bursty gaps must be far more skewed than uniform gaps."""
        bursty = burst_events(5, 10, 10_000.0, burst_span=5.0, rng=0)
        gaps = np.diff(bursty)
        assert np.median(gaps) < np.mean(gaps) / 5

    def test_within_duration(self):
        events = burst_events(3, 5, 50.0, burst_span=30.0, rng=2)
        assert np.all((events >= 0) & (events < 50.0))

    def test_validation(self):
        with pytest.raises(ConfigError):
            burst_events(-1, 2, 10.0)
        with pytest.raises(ConfigError):
            burst_events(1, 2, 10.0, burst_span=0.0)
