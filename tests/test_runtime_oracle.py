"""OraclePolicy tests."""

import numpy as np

from repro.energy import constant_trace, uniform_random_events
from repro.runtime import GreedyEnergyPolicy, OraclePolicy, StaticController
from repro.runtime.state import RuntimeState
from repro.sim import InferenceProfile, Simulator, SimulatorConfig
from repro.energy import EnergyStorage

ENERGIES = [0.2, 0.8, 1.6]


def make_profile():
    return InferenceProfile(
        "p", [0.6, 0.7, 0.8], ENERGIES,
        [e / 1.5 * 1e6 for e in ENERGIES], [0.7, 0.9],
        [0.7 / 1.5 * 1e6, 0.9 / 1.5 * 1e6],
    )


def state(energy_mj, t=0.0):
    return RuntimeState(t, energy_mj, 2.0, 0.01, 0.03)


class TestOraclePolicy:
    def test_never_picks_unaffordable(self):
        trace = constant_trace(0.05, 1000.0)
        events = uniform_random_events(20, 1000.0, rng=0)
        oracle = OraclePolicy(ENERGIES, events, trace, 2.0)
        for e in (0.1, 0.3, 1.0, 2.0):
            choice = oracle.select(state(e), ENERGIES)
            assert choice == -1 or ENERGIES[choice] <= e

    def test_reserves_for_dense_future_events(self):
        """With many imminent events and no inflow, the oracle must not
        drain the storage on a deep exit the way plain greedy would."""
        trace = constant_trace(0.0, 1000.0)
        burst = np.linspace(10.0, 60.0, 12)  # 12 events in the next minute
        oracle = OraclePolicy(ENERGIES, burst, trace, 2.0)
        greedy = GreedyEnergyPolicy()
        s = state(2.0, t=5.0)
        assert greedy.select(s, ENERGIES) == 2
        assert oracle.select(s, ENERGIES) < 2

    def test_spends_freely_with_strong_inflow(self):
        trace = constant_trace(1.0, 1000.0)  # inflow dwarfs any demand
        events = uniform_random_events(5, 1000.0, rng=0)
        oracle = OraclePolicy(ENERGIES, events, trace, 2.0)
        assert oracle.select(state(2.0, t=5.0), ENERGIES) == 2

    def test_runs_inside_simulator(self, short_trace, short_events):
        profile = make_profile()
        oracle = OraclePolicy(
            profile.exit_energy_mj, short_events, short_trace, 2.0
        )
        sim = Simulator(
            short_trace, profile, StaticController(oracle),
            storage=EnergyStorage(2.0, 0.8, initial_mj=1.0),
            config=SimulatorConfig(seed=3),
        )
        result = sim.run(short_events)
        assert result.num_processed > 0
