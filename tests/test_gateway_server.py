"""Gateway server/client tests: sessions, isolation, chaos, CLI.

The server runs in a background thread with its own event loop (no
asyncio test plugin in the container) and is driven by the sync
:class:`~repro.gateway.client.GatewayClient` — the same deployment shape
as ``python -m repro.gateway serve``.  Aggregates fetched over the wire
are compared byte-exactly against one-shot :class:`FleetRunner` runs;
the chaos tests arm the ``fleet.gateway`` site and require the noisy
link to converge to the identical bytes.
"""

import asyncio
import contextlib
import json
import os
import re
import subprocess
import sys
import threading

import pytest

from repro.errors import GatewayError
from repro.faults import FaultPlan, chaos
from repro.faults.plan import Fault
from repro.fleet import SCENARIOS, FleetRunner
from repro.gateway import GatewayClient, GatewayServer
from repro.obs.recorder import recording


@contextlib.contextmanager
def live_server(**kwargs):
    """A GatewayServer on an ephemeral endpoint, in a daemon thread."""
    box = {}
    started = threading.Event()

    def run():
        async def main():
            server = GatewayServer(**kwargs)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server did not start"
    try:
        yield box["server"]
    finally:
        loop, server = box["loop"], box["server"]
        if thread.is_alive():
            loop.call_soon_threadsafe(server._stopping.set)
            thread.join(10)


def _client_for(server, **kw):
    if server.unix_path is not None:
        return GatewayClient(unix_path=server.unix_path, **kw)
    return GatewayClient(port=server.port, **kw)


def _one_shot(scenario, **overrides):
    spec = SCENARIOS.build(scenario, **overrides)
    return json.loads(
        json.dumps(FleetRunner(spec, workers=1).run().aggregate())
    )


def test_end_to_end_tcp(tmp_path):
    """create → incremental advance → checkpoint → restore → query, all
    over TCP, byte-identical to the one-shot run."""
    expected = _one_shot("dev-smoke")
    ck = str(tmp_path / "ck.json")
    with live_server() as server:
        with _client_for(server) as gw:
            assert gw.ping()["pong"] is True
            created = gw.create(scenario="dev-smoke")
            assert created["devices"] == 5 and not created["finished"]
            gw.advance("dev-smoke", steps=7)
            gw.checkpoint("dev-smoke", ck)
            while not gw.advance("dev-smoke", steps=5)["finished"]:
                pass
            assert gw.query("dev-smoke") == expected
            restored = gw.restore(ck, fleet="twin-b")
            assert restored["steps_done"] == 7
            gw.advance("twin-b")
            replayed = gw.query("twin-b")
            replayed["fleet"] = expected["fleet"]  # registry alias only
            assert replayed == expected
            names = [f["fleet"] for f in gw.fleets()["fleets"]]
            assert names == ["dev-smoke", "twin-b"]
            assert gw.shutdown()["stopping"] is True


def test_unix_socket_roundtrip(tmp_path):
    sock = str(tmp_path / "gw.sock")
    with live_server(unix_path=sock) as server:
        with _client_for(server) as gw:
            gw.create(scenario="dev-smoke")
            gw.advance("dev-smoke")
            assert gw.query("dev-smoke") == _one_shot("dev-smoke")


def test_concurrent_sessions_are_isolated():
    """Two sessions driving different fleets interleave arbitrarily; each
    fleet still reproduces its own one-shot bytes (per-fleet actors keep
    op order total per twin)."""
    cases = [
        ("dev-smoke", {}),
        ("mixed-harvester-city", {"num_devices": 4}),
    ]
    results = {}
    errors = []

    def drive(name, overrides, alias):
        try:
            with _client_for(server) as gw:
                gw.create(scenario=name, overrides=overrides, fleet=alias)
                while not gw.advance(alias, steps=2)["finished"]:
                    pass
                results[alias] = gw.query(alias)
        except Exception as exc:  # surfaces in the main thread
            errors.append(exc)

    with live_server() as server:
        threads = [
            threading.Thread(target=drive, args=(name, ov, f"fleet-{i}"))
            for i, (name, ov) in enumerate(cases)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
    assert not errors
    for i, (name, overrides) in enumerate(cases):
        expected = _one_shot(name, **overrides)
        got = dict(results[f"fleet-{i}"])
        got["fleet"] = expected["fleet"]  # registered under the alias
        assert got == expected


def test_duplicate_request_id_is_deduped():
    """Same id twice → the cached envelope, not a second execution."""
    with live_server() as server:
        with _client_for(server) as gw:
            gw.create(scenario="dev-smoke")
            first = gw.call("advance", fleet="dev-smoke", steps=3)
            gw._next_id -= 1  # re-send the exact same request id
            again = gw.call("advance", fleet="dev-smoke", steps=3)
            assert again == first  # no extra steps executed
            progress = gw.query("dev-smoke", "progress")
            assert progress["steps_done"] == 3


def test_chaos_drop_delay_corrupt_converges_to_identical_bytes():
    """An armed fleet.gateway plan (drop + delay + corrupt) makes the
    link lossy; client retries + server dedup still produce aggregates
    byte-identical to the clean one-shot run."""
    expected = _one_shot("dev-smoke")
    plan = FaultPlan(
        [
            Fault(site="fleet.gateway", when=1, op="drop"),
            Fault(site="fleet.gateway", when=3, op="corrupt"),
            Fault(site="fleet.gateway", when=4, op="delay",
                  params={"seconds": 0.05}),
            Fault(site="fleet.gateway", when=6, op="drop"),
            Fault(site="fleet.gateway", when=8, op="corrupt"),
        ]
    )
    with chaos(plan) as injector:
        with live_server() as server:
            with _client_for(server, timeout=1.0, retries=4) as gw:
                gw.create(scenario="dev-smoke")
                while not gw.advance("dev-smoke", steps=4)["finished"]:
                    pass
                assert gw.query("dev-smoke") == expected
    fired = injector.fired_summary()
    assert fired.get("fleet.gateway.drop", 0) >= 1
    assert fired.get("fleet.gateway.corrupt", 0) >= 1


def test_error_envelopes_rebuild_repro_exceptions():
    with live_server() as server:
        with _client_for(server) as gw:
            with pytest.raises(GatewayError, match="unknown fleet"):
                gw.advance("nope")
            with pytest.raises(GatewayError, match="exactly one of"):
                gw.call("create")
            gw.create(scenario="dev-smoke")
            with pytest.raises(GatewayError, match="already exists"):
                gw.create(scenario="dev-smoke")
            with pytest.raises(GatewayError, match="mid-run|aggregates"):
                gw.advance("dev-smoke", steps=1)
                gw.query("dev-smoke", "aggregate")


def test_gateway_metrics_and_spans():
    """gateway.sessions, per-verb counters, and advance spans all land
    on the process recorder."""
    with recording() as rec:
        with live_server() as server:
            with _client_for(server) as gw:
                gw.create(scenario="dev-smoke")
                gw.advance("dev-smoke")
                gw.query("dev-smoke")
    metrics = rec.metrics.to_dict()
    counters = metrics.get("counters", metrics)
    assert counters["gateway.sessions"] >= 1
    assert counters["gateway.requests.create"] == 1
    assert counters["gateway.requests.advance"] == 1
    assert counters["gateway.requests.query"] == 1
    names = json.dumps(metrics)
    assert "span.gateway.advance.s" in names


def test_cli_serve_and_client_subprocess(tmp_path):
    """The deployment shape: ``python -m repro.gateway serve`` in one
    process, the CLI client driving it from another."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.gateway", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    try:
        banner = proc.stdout.readline()
        match = re.search(r"listening on .*:(\d+)", banner)
        assert match, f"no endpoint banner: {banner!r}"
        port = int(match.group(1))
        with GatewayClient(port=port, timeout=30) as gw:
            gw.create(scenario="dev-smoke")
            gw.advance("dev-smoke")
            assert gw.query("dev-smoke") == _one_shot("dev-smoke")
            gw.shutdown()
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
