"""SimulationResult metric tests on hand-built records."""

import pytest

from repro.sim.results import (
    MISS_BUSY,
    MISS_ENERGY,
    EventRecord,
    RecordColumns,
    SimulationResult,
)


def make_result():
    records = [
        EventRecord(time=1.0, exit_index=0, correct=True, latency_s=2.0, energy_mj=0.2),
        EventRecord(time=2.0, exit_index=2, correct=False, latency_s=10.0, energy_mj=1.6),
        EventRecord(time=3.0, exit_index=0, correct=True, latency_s=4.0, energy_mj=0.2),
        EventRecord(time=4.0, missed=True, miss_reason=MISS_ENERGY),
        EventRecord(time=5.0, missed=True, miss_reason=MISS_BUSY),
        EventRecord(time=6.0, exit_index=1, correct=True, latency_s=6.0, energy_mj=0.8),
    ]
    return SimulationResult(
        records=records,
        total_env_energy_mj=10.0,
        total_consumed_mj=2.8,
        duration_s=100.0,
        profile_name="test",
    )


class TestCounts:
    def test_basic_counts(self):
        r = make_result()
        assert r.num_events == 6
        assert r.num_processed == 4
        assert r.num_missed == 2
        assert r.num_correct == 3

    def test_miss_reasons(self):
        assert make_result().miss_counts() == {MISS_ENERGY: 1, MISS_BUSY: 1}


class TestPaperMetrics:
    def test_iepmj_eq1(self):
        # 3 correct events / 10 mJ harvested.
        assert make_result().iepmj == pytest.approx(0.3)

    def test_average_accuracy_counts_missed_as_wrong(self):
        assert make_result().average_accuracy == pytest.approx(3 / 6)

    def test_processed_accuracy(self):
        assert make_result().processed_accuracy == pytest.approx(3 / 4)

    def test_iepmj_equivalence_to_average_accuracy(self):
        # Eq. 1: IEpmJ == (N / E_total) * average_accuracy.
        r = make_result()
        assert r.iepmj == pytest.approx(r.num_events / r.total_env_energy_mj * r.average_accuracy)

    def test_zero_energy_guard(self):
        r = make_result()
        r.total_env_energy_mj = 0.0
        assert r.iepmj == 0.0


class TestLatencyAndEnergy:
    def test_mean_latency_over_processed_only(self):
        assert make_result().mean_latency_s == pytest.approx((2 + 10 + 4 + 6) / 4)

    def test_mean_inference_energy(self):
        assert make_result().mean_inference_energy_mj == pytest.approx((0.2 + 1.6 + 0.2 + 0.8) / 4)

    def test_empty_result(self):
        r = SimulationResult([], 1.0, 0.0, 10.0)
        assert r.mean_latency_s == 0.0
        assert r.average_accuracy == 0.0
        assert r.processed_accuracy == 0.0


class TestExitHistogram:
    def test_counts_per_exit(self):
        assert make_result().exit_counts(3) == [2, 1, 1]

    def test_fractions_over_all_events(self):
        fr = make_result().exit_fractions(3)
        assert fr == pytest.approx([2 / 6, 1 / 6, 1 / 6])
        assert sum(fr) < 1.0  # missed events leave a gap

    def test_summary_keys(self):
        summary = make_result().summary()
        for key in ("iepmj", "average_accuracy", "processed_accuracy", "mean_latency_s"):
            assert key in summary


class TestColumnarBacking:
    """The struct-of-arrays representation behind the record API."""

    def _columns(self):
        columns = RecordColumns()
        for record in make_result().records:
            columns.append_record(record)
        return columns

    def test_from_columns_matches_record_list_construction(self):
        from_rows = make_result()
        from_cols = SimulationResult.from_columns(
            self._columns(),
            total_env_energy_mj=10.0,
            total_consumed_mj=2.8,
            duration_s=100.0,
            profile_name="test",
        )
        assert from_cols == from_rows
        assert from_cols.summary() == from_rows.summary()

    def test_records_view_is_lazy_and_roundtrips(self):
        r = SimulationResult.from_columns(
            self._columns(), 10.0, 2.8, 100.0, profile_name="test"
        )
        assert r._records is None  # no rows materialized yet
        rows = r.records
        assert rows == make_result().records
        assert r.records is rows  # cached after first access

    def test_append_helpers_match_append_record(self):
        columns = RecordColumns()
        columns.append_processed(
            1.0, exit_index=0, first_exit_index=0, correct=True,
            latency_s=2.0, energy_mj=0.2, confidence_entropy=1.0,
        )
        columns.append_missed(4.0, MISS_ENERGY)
        via_helpers = SimulationResult.from_columns(columns, 10.0, 0.2, 100.0)
        via_records = SimulationResult(
            [
                EventRecord(time=1.0, exit_index=0, first_exit_index=0,
                            correct=True, latency_s=2.0, energy_mj=0.2),
                EventRecord(time=4.0, missed=True, miss_reason=MISS_ENERGY),
            ],
            10.0, 0.2, 100.0,
        )
        assert via_helpers == via_records

    def test_inequality_on_differing_outcomes(self):
        a = make_result()
        records = make_result().records
        records[0].correct = False
        b = SimulationResult(records, 10.0, 2.8, 100.0, profile_name="test")
        assert a != b


class TestComparisonReducers:
    """summary_delta / reduce_summaries (the campaign layer's arithmetic)."""

    def test_summary_delta_over_shared_numeric_keys(self):
        from repro.sim.results import summary_delta

        base = {"acc": 0.5, "iepmj": 1.0, "name": "a", "table": {"p50": 1.0}}
        other = {"acc": 0.7, "iepmj": 0.5, "name": "b", "table": {"p50": 2.0}}
        delta = summary_delta(base, other)
        # Strings and nested dicts are passed over, not diffed.
        assert delta == {"acc": pytest.approx(0.2), "iepmj": -0.5}

    def test_summary_delta_explicit_keys_must_exist(self):
        from repro.sim.results import summary_delta

        with pytest.raises(KeyError, match="missing"):
            summary_delta({"a": 1}, {"b": 2}, keys=["a"])

    def test_summary_delta_ignores_bools(self):
        from repro.sim.results import summary_delta

        assert summary_delta({"ok": True, "x": 1}, {"ok": False, "x": 3}) == {"x": 2}

    def test_reduce_summaries_percentiles(self):
        from repro.sim.results import reduce_summaries

        summaries = [{"acc": 0.2}, {"acc": 0.4}, {"acc": 0.6}]
        out = reduce_summaries(summaries, ["acc"], qs=(0, 50, 100))
        assert out["acc"] == {"p0": 0.2, "p50": 0.4, "p100": 0.6}

    def test_reduce_summaries_skips_summaries_missing_a_key(self):
        from repro.sim.results import reduce_summaries

        # A cell replayed from an older payload may omit newer metrics;
        # the spread reduces over the summaries that do carry the key.
        summaries = [{"acc": 0.2, "depth": 1.0}, {"acc": 0.6}]
        out = reduce_summaries(summaries, ["acc", "depth"], qs=(0, 100))
        assert out["acc"] == {"p0": 0.2, "p100": 0.6}
        assert out["depth"] == {"p0": 1.0, "p100": 1.0}

    def test_reduce_summaries_empty_cell_is_all_zeros(self):
        from repro.sim.results import reduce_summaries

        # A fully-quarantined cell contributes no summaries at all: every
        # requested key reduces to the documented all-zero table.
        out = reduce_summaries([], ["acc", "iepmj"], qs=(10, 50, 90))
        assert out == {
            "acc": {"p10": 0.0, "p50": 0.0, "p90": 0.0},
            "iepmj": {"p10": 0.0, "p50": 0.0, "p90": 0.0},
        }
