"""Exit-selection policy tests."""

import pytest

from repro.errors import ConfigError
from repro.runtime import (
    FixedExitPolicy,
    GreedyEnergyPolicy,
    StaticLUTPolicy,
)
from repro.runtime.state import RuntimeState

ENERGIES = [0.2, 0.8, 1.6]  # per-exit costs in mJ


def state(energy_mj, capacity=2.0, power=0.01):
    return RuntimeState(
        time=0.0,
        energy_mj=energy_mj,
        capacity_mj=capacity,
        charge_power_mw=power,
        peak_power_mw=0.03,
    )


class TestRuntimeState:
    def test_fractions(self):
        s = state(1.0)
        assert s.energy_fraction == pytest.approx(0.5)
        assert s.charge_fraction == pytest.approx(1.0 / 3.0)

    def test_fractions_clamped(self):
        s = RuntimeState(0.0, 5.0, 2.0, 1.0, 0.03)
        assert s.energy_fraction == 1.0
        assert s.charge_fraction == 1.0


class TestGreedyEnergyPolicy:
    def test_picks_deepest_affordable(self):
        policy = GreedyEnergyPolicy()
        assert policy.select(state(0.1), ENERGIES) == -1
        assert policy.select(state(0.3), ENERGIES) == 0
        assert policy.select(state(1.0), ENERGIES) == 1
        assert policy.select(state(2.0), ENERGIES) == 2

    def test_reserve_holds_back_energy(self):
        policy = GreedyEnergyPolicy(reserve_fraction=0.5)  # keep 1.0 mJ of 2.0
        assert policy.select(state(1.5), ENERGIES) == 0   # budget 0.5
        assert policy.select(state(2.0), ENERGIES) == 1   # budget 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            GreedyEnergyPolicy(reserve_fraction=1.0)


class TestFixedExitPolicy:
    def test_fixed_exit_when_affordable(self):
        policy = FixedExitPolicy(1)
        assert policy.select(state(1.0), ENERGIES) == 1

    def test_skip_when_unaffordable(self):
        policy = FixedExitPolicy(2)
        assert policy.select(state(1.0), ENERGIES) == -1

    def test_validation(self):
        with pytest.raises(ConfigError):
            FixedExitPolicy(-1)


class TestStaticLUTPolicy:
    def test_matches_greedy_up_to_quantization(self):
        lut = StaticLUTPolicy(ENERGIES, capacity_mj=2.0, num_levels=256)
        greedy = GreedyEnergyPolicy()
        for e in [0.0, 0.15, 0.25, 0.5, 0.81, 1.2, 1.61, 2.0]:
            assert lut.select(state(e), ENERGIES) == greedy.select(state(e), ENERGIES)

    def test_never_selects_unaffordable(self):
        lut = StaticLUTPolicy(ENERGIES, capacity_mj=2.0, num_levels=4)
        for e in [0.0, 0.19, 0.79, 1.59]:
            choice = lut.select(state(e), ENERGIES)
            assert choice == -1 or ENERGIES[choice] <= e

    def test_table_is_monotone(self):
        lut = StaticLUTPolicy(ENERGIES, capacity_mj=2.0, num_levels=32)
        table = lut.table.tolist()
        assert table == sorted(table)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StaticLUTPolicy(ENERGIES, capacity_mj=0.0)
        with pytest.raises(ConfigError):
            StaticLUTPolicy(ENERGIES, capacity_mj=2.0, num_levels=1)
