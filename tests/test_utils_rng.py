"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import (
    PooledDraws,
    as_generator,
    batches,
    seed_sequence,
    shuffled_indices,
    spawn,
)


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        assert as_generator(42).random() == as_generator(42).random()

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        a1, b1 = spawn(7, 2)
        a2, b2 = spawn(7, 2)
        assert a1.random() == a2.random()
        assert b1.random() == b2.random()

    def test_children_differ_from_each_other(self):
        a, b = spawn(7, 2)
        assert a.random() != b.random()

    def test_spawn_from_generator(self):
        children = spawn(np.random.default_rng(3), 3)
        assert len(children) == 3


class TestSeedSequence:
    def test_from_int(self):
        assert isinstance(seed_sequence(1), np.random.SeedSequence)

    def test_passthrough(self):
        ss = np.random.SeedSequence(2)
        assert seed_sequence(ss) is ss

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            seed_sequence(1.5)


class TestBatches:
    def test_covers_everything_once(self):
        seen = np.concatenate(list(batches(10, 3)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_shuffled_covers_everything(self):
        seen = np.concatenate(list(batches(10, 4, rng=0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        sizes = [len(b) for b in batches(10, 4)]
        assert sizes == [4, 4, 2]

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            list(batches(10, 0))

    def test_shuffled_indices_is_permutation(self):
        idx = shuffled_indices(20, 1)
        assert sorted(idx.tolist()) == list(range(20))


class TestPooledDraws:
    def test_deterministic_given_seed_and_call_sequence(self):
        a, b = PooledDraws(7, block=4), PooledDraws(7, block=4)
        seq_a = [a.random(), a.beta(2.0, 8.0), a.integers(3), a.random()]
        seq_b = [b.random(), b.beta(2.0, 8.0), b.integers(3), b.random()]
        assert seq_a == seq_b

    def test_block_size_does_not_change_one_pool_stream(self):
        # Within a single distribution the stream is the generator's
        # block-drawn sequence regardless of block size.
        small, large = PooledDraws(3, block=2), PooledDraws(3, block=64)
        assert [small.random() for _ in range(2)] == [large.random() for _ in range(2)]

    def test_returns_plain_python_scalars(self):
        pool = PooledDraws(0)
        assert type(pool.random()) is float
        assert type(pool.beta(2.0, 8.0)) is float
        assert type(pool.integers(5)) is int
        assert 0 <= pool.integers(5) < 5

    def test_refills_past_block_boundary(self):
        pool = PooledDraws(0, block=3)
        values = [pool.random() for _ in range(10)]
        assert len(set(values)) == 10  # refill produced fresh draws

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            PooledDraws(0, block=0)


class TestDrawBatch:
    """DrawBatch must reproduce each device's PooledDraws stream exactly."""

    def _scalar_stream(self, seed, script):
        pool = PooledDraws(seed)
        out = []
        for kind in script:
            if kind == "r":
                out.append(pool.random())
            elif kind == "i":
                out.append(pool.integers(4))
            else:
                out.append(pool.beta(2.0, 8.0))
        return out

    def test_matches_per_device_pooled_draws(self):
        from repro.utils.rng import DrawBatch

        seeds = [3, 11, 27]
        batch = DrawBatch(seeds)
        # Interleave kinds per device exactly like a scalar PooledDraws
        # consumer would; cross-device interleaving must not matter.
        script = "rribrirbbri"
        got = {i: [] for i in range(len(seeds))}
        all_idx = np.arange(len(seeds))
        for kind in script:
            if kind == "r":
                vals = batch.random(all_idx)
            elif kind == "i":
                vals = batch.integers(4, all_idx)
            else:
                vals = batch.beta(2.0, 8.0, all_idx)
            for i, v in enumerate(vals):
                got[i].append(v)
        for i, seed in enumerate(seeds):
            assert got[i] == self._scalar_stream(seed, script)

    def test_subset_takes_preserve_per_device_order(self):
        from repro.utils.rng import DrawBatch

        batch = DrawBatch([5, 6])
        # Device 0 draws r, r; device 1 draws r only — via masked takes.
        first = batch.random(np.arange(2))
        second = batch.random(np.array([0]))
        scalar0 = PooledDraws(5)
        scalar1 = PooledDraws(6)
        assert [first[0], second[0]] == [scalar0.random(), scalar0.random()]
        assert [first[1]] == [scalar1.random()]

    def test_refill_across_block_boundary_matches(self):
        from repro.utils.rng import DrawBatch

        batch = DrawBatch([9], block=4)
        scalar = PooledDraws(9, block=4)
        idx = np.arange(1)
        got = [float(batch.random(idx)[0]) for _ in range(11)]
        want = [scalar.random() for _ in range(11)]
        assert got == want

    def test_rejects_bad_block(self):
        from repro.utils.rng import DrawBatch

        with pytest.raises(ValueError):
            DrawBatch([0], block=0)
