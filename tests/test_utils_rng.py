"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, batches, seed_sequence, shuffled_indices, spawn


class TestAsGenerator:
    def test_int_seed_is_deterministic(self):
        assert as_generator(42).random() == as_generator(42).random()

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passes_through_unchanged(self):
        gen = np.random.default_rng(1)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = as_generator(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            as_generator("not a seed")


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        a1, b1 = spawn(7, 2)
        a2, b2 = spawn(7, 2)
        assert a1.random() == a2.random()
        assert b1.random() == b2.random()

    def test_children_differ_from_each_other(self):
        a, b = spawn(7, 2)
        assert a.random() != b.random()

    def test_spawn_from_generator(self):
        children = spawn(np.random.default_rng(3), 3)
        assert len(children) == 3


class TestSeedSequence:
    def test_from_int(self):
        assert isinstance(seed_sequence(1), np.random.SeedSequence)

    def test_passthrough(self):
        ss = np.random.SeedSequence(2)
        assert seed_sequence(ss) is ss

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            seed_sequence(1.5)


class TestBatches:
    def test_covers_everything_once(self):
        seen = np.concatenate(list(batches(10, 3)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_shuffled_covers_everything(self):
        seen = np.concatenate(list(batches(10, 4, rng=0)))
        assert sorted(seen.tolist()) == list(range(10))

    def test_batch_sizes(self):
        sizes = [len(b) for b in batches(10, 4)]
        assert sizes == [4, 4, 2]

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            list(batches(10, 0))

    def test_shuffled_indices_is_permutation(self):
        idx = shuffled_indices(20, 1)
        assert sorted(idx.tolist()) == list(range(20))
