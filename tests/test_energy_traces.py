"""Power-trace tests, including property-based energy accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy import (
    PowerTrace,
    constant_trace,
    kinetic_trace,
    piezo_trace,
    rf_trace,
    solar_trace,
    trace_from_csv,
    trace_from_samples,
    wind_trace,
)
from repro.energy.traces import _ou_process
from repro.errors import ConfigError, EnergyError


def _ou_reference(n, dt, theta, sigma, rng):
    """The pre-vectorization sequential recurrence (the semantic contract
    the blocked AR(1) scan in ``_ou_process`` must reproduce)."""
    x = np.zeros(n)
    noise = rng.normal(size=n - 1) * sigma * np.sqrt(dt)
    for i in range(1, n):
        x[i] = x[i - 1] - theta * x[i - 1] * dt + noise[i - 1]
    return x


class TestVectorizedOU:
    @given(
        n=st.integers(min_value=2, max_value=5000),
        dt=st.sampled_from([0.1, 0.5, 1.0]),
        theta=st.floats(min_value=0.001, max_value=1.5),
        sigma=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_loop_reference(self, n, dt, theta, sigma, seed):
        fast = _ou_process(n, dt, theta, sigma, np.random.default_rng(seed))
        slow = _ou_reference(n, dt, theta, sigma, np.random.default_rng(seed))
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-9)

    def test_long_trace_regime(self):
        # The 43 200-sample solar regime: exactly the parameters whose
        # Python-loop synthesis used to dominate fleet wall-time.
        n, dt, theta = 43201, 1.0, 0.01
        sigma = float(np.sqrt(2.0 * theta))
        fast = _ou_process(n, dt, theta, sigma, np.random.default_rng(11))
        slow = _ou_reference(n, dt, theta, sigma, np.random.default_rng(11))
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-9)

    def test_unit_recurrence_phi_zero(self):
        # theta*dt == 1 collapses the AR(1) to pure noise; the vectorized
        # path special-cases it.
        fast = _ou_process(100, 1.0, 1.0, 0.5, np.random.default_rng(2))
        slow = _ou_reference(100, 1.0, 1.0, 0.5, np.random.default_rng(2))
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-9)


class TestPowerTrace:
    def test_interpolation(self):
        trace = PowerTrace([0.0, 2.0, 4.0], dt=1.0)
        assert trace.power(0.5) == 1.0
        assert trace.power(1.5) == 3.0

    def test_clipping_outside_range(self):
        trace = PowerTrace([1.0, 3.0], dt=1.0)
        assert trace.power(-5.0) == 1.0
        assert trace.power(100.0) == 3.0

    def test_energy_between_trapezoid(self):
        trace = PowerTrace([0.0, 2.0], dt=2.0)  # ramp over 2 s
        assert trace.energy_between(0.0, 2.0) == pytest.approx(2.0)

    def test_total_energy_constant_power(self):
        trace = constant_trace(0.5, duration=100.0, dt=1.0)
        assert trace.total_energy_mj == pytest.approx(50.0)

    @given(
        st.floats(0, 50), st.floats(0, 50), st.floats(0, 50)
    )
    @settings(max_examples=40, deadline=None)
    def test_energy_additivity(self, a, b, c):
        trace = solar_trace(duration=50.0, dt=0.5, seed=1)
        t0, t1, t2 = sorted((a, b, c))
        total = trace.energy_between(t0, t2)
        split = trace.energy_between(t0, t1) + trace.energy_between(t1, t2)
        assert total == pytest.approx(split, abs=1e-9)

    def test_energy_reversed_interval_raises(self):
        trace = constant_trace(1.0, 10.0)
        with pytest.raises(EnergyError):
            trace.energy_between(5.0, 1.0)

    def test_mean_power_window(self):
        trace = constant_trace(0.8, duration=100.0)
        assert trace.mean_power(50.0, window=10.0) == pytest.approx(0.8)

    def test_scaled(self):
        trace = constant_trace(1.0, 10.0)
        assert trace.scaled(0.5).power(5.0) == pytest.approx(0.5)
        with pytest.raises(EnergyError):
            trace.scaled(-1.0)

    def test_rejects_negative_power(self):
        with pytest.raises(EnergyError):
            PowerTrace([1.0, -0.1], dt=1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            PowerTrace([1.0], dt=1.0)
        with pytest.raises(ConfigError):
            PowerTrace([1.0, 2.0], dt=0.0)

    def test_power_accepts_arrays(self):
        """Array-valued queries must match the scalar path exactly."""
        trace = solar_trace(duration=200.0, dt=0.5, seed=3)
        times = np.array([-1.0, 0.0, 0.25, 7.3, 199.9, 200.0, 500.0])
        vec = trace.power(times)
        assert isinstance(vec, np.ndarray)
        assert vec.shape == times.shape
        np.testing.assert_array_equal(vec, [trace.power(float(t)) for t in times])

    def test_power_array_broadcasting_shapes(self):
        trace = constant_trace(0.7, duration=10.0)
        grid = np.linspace(0.0, 10.0, 12).reshape(3, 4)
        out = trace.power(grid)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out, 0.7)

    def test_energy_between_bulk_matches_scalar(self):
        """The simulator's precomputed charge increments use the bulk path;
        it must agree bit-for-bit with the scalar accounting."""
        trace = solar_trace(duration=300.0, dt=0.5, seed=9)
        t0 = np.array([0.0, 1.3, 10.0, 250.0, 299.9])
        t1 = np.array([0.0, 7.9, 10.0, 300.0, 400.0])
        bulk = trace.energy_between(t0, t1)
        scalar = [trace.energy_between(float(a), float(b)) for a, b in zip(t0, t1)]
        np.testing.assert_array_equal(bulk, scalar)

    def test_energy_between_bulk_matches_scalar_inexact_dt(self):
        """duration/dt can round a hair above n-1 for inexact dt; the bulk
        path must take the scalar early-return there, not extrapolate."""
        for dt in (0.1, 0.2, 0.7):
            trace = PowerTrace(np.linspace(0.5, 1.5, 7), dt=dt)
            t1 = np.array([trace.duration, trace.duration + 1.0])
            bulk = trace.energy_between(np.zeros_like(t1), t1)
            scalar = [trace.energy_between(0.0, float(t)) for t in t1]
            np.testing.assert_array_equal(bulk, scalar)

    def test_energy_between_bulk_reversed_rejected(self):
        trace = constant_trace(1.0, 10.0)
        with pytest.raises(EnergyError):
            trace.energy_between(np.array([0.0, 5.0]), np.array([1.0, 2.0]))

    def test_mean_power_bulk_matches_scalar(self):
        trace = solar_trace(duration=300.0, dt=0.5, seed=9)
        times = np.array([0.0, 0.01, 15.0, 30.0, 299.0, 300.0, 350.0])
        bulk = trace.mean_power(times, window=30.0)
        scalar = [trace.mean_power(float(t), window=30.0) for t in times]
        np.testing.assert_array_equal(bulk, scalar)


class TestGenerators:
    @pytest.mark.parametrize(
        "maker", [solar_trace, kinetic_trace, rf_trace, wind_trace, piezo_trace]
    )
    def test_nonnegative_and_deterministic(self, maker):
        t1 = maker(duration=500.0, seed=3)
        t2 = maker(duration=500.0, seed=3)
        assert np.all(t1.samples_mw >= 0)
        np.testing.assert_array_equal(t1.samples_mw, t2.samples_mw)

    @pytest.mark.parametrize(
        "maker", [solar_trace, kinetic_trace, rf_trace, wind_trace, piezo_trace]
    )
    def test_seed_changes_trace(self, maker):
        t1 = maker(duration=500.0, seed=3)
        t2 = maker(duration=500.0, seed=4)
        assert not np.array_equal(t1.samples_mw, t2.samples_mw)

    def test_solar_has_diurnal_shape(self):
        trace = solar_trace(duration=43200.0, dt=60.0, seed=0)
        edges = trace.power(0.0) + trace.power(43200.0)
        noon = np.max(trace.samples_mw)
        assert noon > 10 * max(edges, 1e-6)

    def test_solar_is_bimodal_under_clouds(self):
        """Clear vs deep-occlusion periods must both occupy real time."""
        trace = solar_trace(duration=43200.0, seed=0)
        mid = trace.samples_mw[10000:30000]
        peak = np.percentile(mid, 98)
        clear_frac = np.mean(mid > 0.6 * peak)
        dark_frac = np.mean(mid < 0.15 * peak)
        assert clear_frac > 0.1
        assert dark_frac > 0.2

    def test_kinetic_has_bursts(self):
        trace = kinetic_trace(duration=2000.0, seed=1)
        assert trace.samples_mw.max() > 5 * np.median(trace.samples_mw)

    def test_wind_is_heavy_tailed(self):
        """Cubic wind-power response: spikes far above the median."""
        trace = wind_trace(duration=3600.0, seed=2)
        assert trace.samples_mw.max() > 4 * np.median(trace.samples_mw)

    def test_piezo_duty_cycles(self):
        """On and off intervals must both occupy real time."""
        trace = piezo_trace(duration=3600.0, duty_cycle=0.5, seed=2)
        on_frac = np.mean(trace.samples_mw > 0.01 * trace.samples_mw.max())
        assert 0.2 < on_frac < 0.8

    def test_piezo_rejects_bad_duty_cycle(self):
        with pytest.raises(ConfigError):
            piezo_trace(duration=100.0, duty_cycle=1.5)

    def test_wind_rejects_zero_mean_speed(self):
        with pytest.raises(ConfigError, match="mean_speed"):
            wind_trace(duration=100.0, mean_speed=0.0)

    def test_duration_property(self):
        assert constant_trace(1.0, duration=60.0, dt=0.5).duration == pytest.approx(60.0)


class TestCSV:
    def test_two_column_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        times = np.arange(5) * 2.0
        powers = np.array([0.1, 0.2, 0.3, 0.2, 0.1])
        np.savetxt(path, np.column_stack([times, powers]), delimiter=",")
        trace = trace_from_csv(str(path))
        assert trace.dt == pytest.approx(2.0)
        np.testing.assert_allclose(trace.samples_mw, powers)

    def test_single_column_needs_dt(self, tmp_path):
        path = tmp_path / "trace.csv"
        np.savetxt(path, np.array([0.1, 0.2, 0.3]), delimiter=",")
        with pytest.raises(ConfigError):
            trace_from_csv(str(path))
        trace = trace_from_csv(str(path), dt=0.5)
        assert trace.duration == pytest.approx(1.0)

    def test_nonuniform_grid_rejected(self, tmp_path):
        path = tmp_path / "trace.csv"
        np.savetxt(path, np.array([[0.0, 1.0], [1.0, 1.0], [3.0, 1.0]]), delimiter=",")
        with pytest.raises(ConfigError):
            trace_from_csv(str(path))

    def test_from_samples(self):
        trace = trace_from_samples([0.0, 1.0], dt=1.0, name="x")
        assert trace.name == "x"

    def test_written_csv_roundtrip(self, tmp_path):
        """A trace dumped as CSV reloads with identical samples and energy."""
        original = solar_trace(duration=120.0, dt=2.0, seed=4)
        path = tmp_path / "roundtrip.csv"
        times = np.arange(len(original.samples_mw)) * original.dt
        np.savetxt(path, np.column_stack([times, original.samples_mw]), delimiter=",")
        reloaded = trace_from_csv(str(path))
        assert reloaded.dt == pytest.approx(original.dt)
        np.testing.assert_allclose(reloaded.samples_mw, original.samples_mw)
        assert reloaded.total_energy_mj == pytest.approx(original.total_energy_mj)

    def test_malformed_rows_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.0,1.0\nnot-a-number,oops\n2.0,1.0\n")
        with pytest.raises(ConfigError, match="malformed"):
            trace_from_csv(str(path))

    def test_negative_power_rejected(self, tmp_path):
        path = tmp_path / "negative.csv"
        np.savetxt(
            path, np.array([[0.0, 1.0], [1.0, -0.5], [2.0, 1.0]]), delimiter=","
        )
        with pytest.raises(EnergyError):
            trace_from_csv(str(path))
