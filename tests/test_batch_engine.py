"""Batched lockstep engine equivalence tests (the PR-4 contract).

The batched engine promises **bit-identical** results to the per-device
simulator path for every eligible device: same per-device random streams
(`SeedSequence(fleet_seed, spawn_key=(i,))` consumed in the same order),
same ledger arithmetic, same records.  These tests pin that promise over
every registered scenario, every controller preset, the pooled dispatch
path, and (via hypothesis) randomly composed small fleets.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.fleet import SCENARIOS, DeviceSpec, FleetRunner, FleetSpec
from repro.fleet.results import pack_device_results, unpack_device_results
from repro.fleet.runner import run_device, run_device_batch
from repro.runtime.controller import CONTROLLER_PRESETS, controller_preset
from repro.sim.batch import BatchedFleetEngine, batch_eligible, batch_ineligibility

#: Small overrides that keep every scenario in the seconds range.
SCENARIO_CASES = [(name, {"num_devices": 4}) for name in SCENARIOS.names()]


def _payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestScenarioEquivalence:
    @pytest.mark.parametrize("name,overrides", SCENARIO_CASES,
                             ids=[c[0] for c in SCENARIO_CASES])
    def test_batched_equals_device_equals_pooled(self, name, overrides):
        spec = SCENARIOS.build(name, **overrides)
        auto = FleetRunner(spec, workers=1, engine="auto").run()
        device = FleetRunner(spec, workers=1, engine="device").run()
        pooled = FleetRunner(
            spec, workers=2, engine="auto", parallel_threshold=1
        ).run()
        assert _payload(auto) == _payload(device)
        assert _payload(auto) == _payload(pooled)

    def test_every_registered_scenario_is_fully_batch_eligible(self):
        """The PR-5 acceptance bar: no registered device class falls back
        to the per-device path under engine="auto" anymore."""
        for name in SCENARIOS.names():
            spec = SCENARIOS.build(name, num_devices=8)
            offenders = {
                d.name: batch_ineligibility(d)
                for d in spec.devices
                if not batch_eligible(d)
            }
            assert not offenders, f"{name}: {offenders}"


class TestContinueRuleEquivalence:
    """Bit-identity of the batched incremental-inference path."""

    def _fleet(self, rule, controller_kind="qlearning", execution="single-cycle"):
        devices = []
        for i in range(5):
            controller = {"kind": controller_kind}
            if controller_kind == "greedy":
                controller["reserve_fraction"] = 0.1
            if rule is not None:
                controller["continue_rule"] = dict(rule)
            devices.append(
                DeviceSpec(
                    name=f"r{i}",
                    trace={"family": "solar", "duration": 500.0, "dt": 1.0,
                           "peak_mw": 0.04},
                    controller=controller,
                    events={"kind": "uniform", "count": 25},
                    episodes=2,
                    execution=execution,
                )
            )
        return FleetSpec(name="rule-fleet", seed=29, devices=devices)

    @pytest.mark.parametrize("rule", [
        {"kind": "threshold", "entropy_threshold": 0.35},
        {"kind": "learned"},
        {"kind": "learned", "epsilon": 0.3, "epsilon_decay": 0.95},
    ], ids=["threshold", "learned", "learned-tuned"])
    @pytest.mark.parametrize("kind", ["qlearning", "greedy"])
    def test_rule_fleets_bit_identical(self, rule, kind):
        spec = self._fleet(rule, controller_kind=kind)
        batched = FleetRunner(spec, workers=1, engine="batched").run()
        device = FleetRunner(spec, workers=1, engine="device").run()
        assert _payload(batched) == _payload(device)

    def test_continuations_actually_happen(self):
        """Guard against the continue loop silently never firing (which
        would make the equivalence tests vacuous)."""
        spec = self._fleet({"kind": "threshold", "entropy_threshold": 0.1})
        result = FleetRunner(spec, workers=1, engine="batched").run()
        agg = result.aggregate()
        assert agg["mean_exit_depth"] > 0.0
        assert agg["processed"] > 0


class TestIntermittentEquivalence:
    """Bit-identity of the vectorized multi-cycle kernel."""

    def _fleet(self, mean_mw, capacity=1.0, initial=0.3, events=20, n=6):
        devices = [
            DeviceSpec(
                name=f"i{i}",
                trace={"family": "rf", "duration": 1000.0, "dt": 1.0,
                       "mean_mw": mean_mw},
                profile="sonic-single-exit",
                controller={"kind": "fixed", "exit_index": 0},
                storage={"capacity_mj": capacity, "initial_fraction": initial},
                events={"kind": "poisson", "rate_hz": events / 1000.0},
                execution="intermittent",
            )
            for i in range(n)
        ]
        return FleetSpec(name="int-fleet", seed=41, devices=devices)

    @pytest.mark.parametrize("mean_mw", [0.003, 0.01, 0.05],
                             ids=["starved", "weak", "comfortable"])
    def test_all_intermittent_fleet_bit_identical(self, mean_mw):
        spec = self._fleet(mean_mw)
        batched = FleetRunner(spec, workers=1, engine="batched").run()
        device = FleetRunner(spec, workers=1, engine="device").run()
        assert _payload(batched) == _payload(device)

    def test_starved_fleet_reaches_deadline_misses(self):
        """The starved regime must actually exercise the incomplete-run
        branch (deadline miss with latency + power-cycle counts)."""
        result = FleetRunner(
            self._fleet(0.003), workers=1, engine="batched"
        ).run()
        assert result.aggregate()["miss_counts"].get("energy", 0) > 0

    def test_multi_cycle_runs_happen(self):
        result = FleetRunner(
            self._fleet(0.01), workers=1, engine="batched"
        ).run()
        processed = result.aggregate()["processed"]
        assert processed > 0


class TestPresetEquivalence:
    @pytest.mark.parametrize("preset", sorted(CONTROLLER_PRESETS))
    def test_every_preset_is_bit_identical(self, preset):
        base = SCENARIOS.build("dev-smoke", num_devices=4)
        devices = [
            DeviceSpec(**{**d.to_dict(), "controller": controller_preset(preset)})
            for d in base.devices
        ]
        spec = FleetSpec(name=f"preset-{preset}", seed=11, devices=devices)
        batched = FleetRunner(spec, workers=1, engine="batched").run()
        device = FleetRunner(spec, workers=1, engine="device").run()
        assert _payload(batched) == _payload(device)


class TestEligibility:
    def test_intermittent_is_now_eligible(self):
        """The PR-5 tentpole: the SONIC baseline class batches too."""
        spec = SCENARIOS.build("mixed-harvester-city", num_devices=12)
        flags = {d.execution: batch_eligible(d) for d in spec.devices}
        assert flags == {"single-cycle": True, "intermittent": True}

    def test_continue_rule_devices_are_eligible(self):
        for rule in (
            {"kind": "threshold", "entropy_threshold": 0.4},
            {"kind": "learned"},
        ):
            d = DeviceSpec(
                name="rule-dev",
                trace={"family": "constant", "power_mw": 0.02, "duration": 100.0},
                controller={"kind": "qlearning", "continue_rule": rule},
            )
            assert batch_eligible(d)
            assert batch_ineligibility(d) is None

    def test_instance_continue_rule_still_accepted_and_falls_back(self):
        """A live ContinueRule object in a controller dict predates the
        declarative rule specs and must keep working end-to-end — it just
        routes to the per-device path instead of the lockstep engine."""
        from repro.runtime.incremental import ThresholdContinue

        d = DeviceSpec(
            name="instance-rule",
            trace={"family": "constant", "power_mw": 0.05, "duration": 200.0},
            controller={
                "kind": "greedy",
                "reserve_fraction": 0.1,
                "continue_rule": ThresholdContinue(0.5),
            },
            events={"kind": "uniform", "count": 10},
        )
        assert not batch_eligible(d)
        assert "continue_rule" in batch_ineligibility(d)
        result = FleetRunner(
            FleetSpec(name="inst", seed=3, devices=[d]), workers=1
        ).run()
        assert result.num_devices == 1

    def test_csv_trace_is_ineligible_with_reason(self):
        d = DeviceSpec(
            name="csv-dev",
            trace={"family": "csv", "path": "nope.csv", "dt": 1.0},
        )
        assert not batch_eligible(d)
        assert "csv" in batch_ineligibility(d)

    def test_engine_batched_error_names_device_and_reason(self):
        """The error must say *why* each device cannot batch, not just
        which ones (execution mode vs trace family vs controller)."""
        spec = SCENARIOS.build("dev-smoke", num_devices=2)
        bad = DeviceSpec(
            name="csv-straggler",
            trace={"family": "csv", "path": "nope.csv", "dt": 1.0},
        )
        mixed = FleetSpec(
            name="mixed", seed=3, devices=list(spec.devices) + [bad]
        )
        with pytest.raises(ConfigError) as err:
            run_device_batch(
                [(i, d, mixed.seed) for i, d in enumerate(mixed.devices)],
                engine="batched",
            )
        message = str(err.value)
        assert "csv-straggler" in message
        assert "csv" in message  # the reason, not just the name

    def test_engine_batched_error_names_every_offender(self):
        """Two ineligible devices with *different* blockers: the error
        must carry both names, each paired with its own reason — one
        offender must not shadow the next."""
        spec = SCENARIOS.build("dev-smoke", num_devices=1)
        csv_dev = DeviceSpec(
            name="csv-straggler",
            trace={"family": "csv", "path": "nope.csv", "dt": 1.0},
        )
        from repro.runtime.incremental import ThresholdContinue

        rule_dev = DeviceSpec(
            name="rule-straggler",
            trace={"family": "constant", "power_mw": 0.05, "duration": 50.0},
            controller={
                "kind": "greedy",
                "reserve_fraction": 0.1,
                "continue_rule": ThresholdContinue(0.5),
            },
        )
        mixed = FleetSpec(
            name="mixed2", seed=3,
            devices=list(spec.devices) + [csv_dev, rule_dev],
        )
        with pytest.raises(ConfigError) as err:
            run_device_batch(
                [(i, d, mixed.seed) for i, d in enumerate(mixed.devices)],
                engine="batched",
            )
        message = str(err.value)
        assert "csv-straggler" in message and "csv" in message
        assert "rule-straggler" in message and "continue_rule" in message

    def test_engine_auto_splits_and_merges_in_index_order(self):
        spec = SCENARIOS.build("mixed-harvester-city", num_devices=12)
        result = FleetRunner(spec, workers=1, engine="auto").run()
        assert [d.index for d in result.devices] == list(range(12))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="engine"):
            FleetRunner(SCENARIOS.build("dev-smoke"), engine="warp")
        with pytest.raises(ConfigError, match="engine"):
            run_device_batch([], engine="warp")

    def test_engine_ctor_raises_on_ineligible_task(self):
        bad = DeviceSpec(
            name="csv-dev",
            trace={"family": "csv", "path": "nope.csv", "dt": 1.0},
        )
        with pytest.raises(ConfigError, match="batch-eligible"):
            BatchedFleetEngine([(0, bad, 7)])


class TestRunDeviceBatch:
    def test_matches_per_device_loop(self):
        spec = SCENARIOS.build("dev-smoke", num_devices=5)
        tasks = [(i, d, spec.seed) for i, d in enumerate(spec.devices)]
        batch = run_device_batch(tasks, engine="auto")
        loop = [run_device(t) for t in tasks]
        assert json.dumps([r.to_dict() for r in batch], sort_keys=True) == \
            json.dumps([r.to_dict() for r in loop], sort_keys=True)

    def test_engine_device_bypasses_lockstep(self):
        spec = SCENARIOS.build("dev-smoke", num_devices=3)
        tasks = [(i, d, spec.seed) for i, d in enumerate(spec.devices)]
        assert json.dumps(
            [r.to_dict() for r in run_device_batch(tasks, engine="device")],
            sort_keys=True,
        ) == json.dumps(
            [r.to_dict() for r in run_device_batch(tasks, engine="batched")],
            sort_keys=True,
        )


class TestPackedWireForm:
    def test_round_trip_is_exact(self):
        spec = SCENARIOS.build("mixed-harvester-city", num_devices=12)
        tasks = [(i, d, spec.seed) for i, d in enumerate(spec.devices)]
        results = run_device_batch(tasks)
        clones = unpack_device_results(pack_device_results(results))
        assert json.dumps(
            [r.to_dict(include_timing=True) for r in results], sort_keys=True
        ) == json.dumps(
            [r.to_dict(include_timing=True) for r in clones], sort_keys=True
        )
        # Plain Python types after the round trip (JSON-safe without
        # numpy-aware encoders).
        clone = clones[0]
        assert type(clone.index) is int
        assert type(clone.iepmj) is float
        assert all(type(c) is int for c in clone.exit_counts)
        assert all(type(v) is int for v in clone.miss_counts.values())

    def test_packed_payload_is_smaller_than_dataclass_pickle(self):
        import pickle

        spec = SCENARIOS.build("solar-farm-100", num_devices=16)
        tasks = [(i, d, spec.seed) for i, d in enumerate(spec.devices)]
        results = run_device_batch(tasks)
        packed = len(pickle.dumps(pack_device_results(results)))
        plain = len(pickle.dumps(results))
        assert packed < plain


class TestParallelFallback:
    def test_small_fleet_falls_back_to_serial(self):
        spec = SCENARIOS.build("dev-smoke", num_devices=5)
        runner = FleetRunner(spec, workers=4)
        result = runner.run()
        assert not runner.last_run_parallel
        assert result.workers == 1  # timing section reports what really ran

    def test_explicit_threshold_forces_pool(self):
        spec = SCENARIOS.build("dev-smoke", num_devices=5)
        runner = FleetRunner(spec, workers=2, parallel_threshold=1)
        result = runner.run()
        assert runner.last_run_parallel
        assert result.workers == 2

    def test_threshold_validation(self):
        with pytest.raises(ConfigError, match="parallel_threshold"):
            FleetRunner(SCENARIOS.build("dev-smoke"), parallel_threshold=0)


#: Trace families with cheap synthesis for the property test.
_FAMILY = st.sampled_from(["solar", "rf", "piezo", "constant"])
_PRESET = st.sampled_from(sorted(CONTROLLER_PRESETS))
_RULE = st.sampled_from(
    [
        None,
        {"kind": "threshold", "entropy_threshold": 0.4},
        {"kind": "learned"},
    ]
)
#: Weighted toward single-cycle; intermittent still appears regularly.
_EXECUTION = st.sampled_from(
    ["single-cycle", "single-cycle", "intermittent"]
)


@st.composite
def tiny_fleets(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    duration = draw(st.sampled_from([200.0, 350.0]))
    devices = []
    for i in range(n):
        family = draw(_FAMILY)
        trace = {"family": family, "duration": duration, "dt": 1.0}
        if family == "constant":
            trace["power_mw"] = draw(st.sampled_from([0.01, 0.04]))
        elif family == "solar":
            trace["peak_mw"] = 0.03
        events = draw(
            st.sampled_from(
                [{"kind": "uniform", "count": 12}, {"kind": "poisson", "rate_hz": 0.05}]
            )
        )
        execution = draw(_EXECUTION)
        storage = {"capacity_mj": draw(st.sampled_from([1.5, 2.0, 3.0]))}
        if execution == "intermittent" and draw(st.booleans()):
            # Many-cycle stress shape: a weak, steady harvester against a
            # small capacitor forces long charge/compute ladders (dozens
            # of power cycles per event) — exactly the runs the
            # event-batched kernel fuses hardest, so equivalence here
            # guards the fused-chain commit logic, not just the happy
            # one-cycle path.
            trace = {
                "family": "constant", "duration": duration, "dt": 1.0,
                "power_mw": draw(st.sampled_from([0.004, 0.008])),
            }
            storage = {"capacity_mj": draw(st.sampled_from([0.4, 0.7]))}
        controller = controller_preset(draw(_PRESET))
        rule = draw(_RULE)
        if rule is not None:
            controller["continue_rule"] = dict(rule)
        devices.append(
            DeviceSpec(
                name=f"hyp-{i}",
                trace=trace,
                controller=controller,
                storage=storage,
                events=events,
                episodes=draw(st.integers(min_value=1, max_value=2)),
                execution=execution,
            )
        )
    return FleetSpec(
        name="hyp-fleet", seed=draw(st.integers(min_value=0, max_value=2**16)),
        devices=devices,
    )


class TestPropertyEquivalence:
    @settings(max_examples=12, deadline=None)
    @given(spec=tiny_fleets())
    def test_random_small_fleets_agree(self, spec):
        batched = FleetRunner(spec, workers=1, engine="batched").run()
        device = FleetRunner(spec, workers=1, engine="device").run()
        assert _payload(batched) == _payload(device)


@pytest.mark.fleet_heavy
class TestFullScaleBatch:
    def test_city_block_1k_batched_serial_and_parallel_agree(self):
        spec = SCENARIOS.build("city-block-1k")
        assert spec.num_devices == 1000
        # Strict engine="batched": since PR 5 every city-block device
        # (including the intermittent baselines) is batch-eligible.
        serial = FleetRunner(spec, workers=1, engine="batched").run()
        parallel = FleetRunner(
            spec, workers=4, engine="auto", parallel_threshold=1
        ).run()
        assert serial.num_devices == 1000
        assert _payload(serial) == _payload(parallel)

    def test_city_block_1k_batched_equals_device_sample(self):
        """Spot-check the engines against each other at real scale on a
        slice (full 1000-device double-run would double the lane's cost)."""
        spec = SCENARIOS.build("city-block-1k", num_devices=64)
        assert _payload(FleetRunner(spec, engine="auto").run()) == _payload(
            FleetRunner(spec, engine="device").run()
        )

    @pytest.mark.parametrize(
        "name", ["brownout-grid-256", "duty-cycle-farm-512"]
    )
    def test_intermittency_heavy_scenarios_full_scale(self, name):
        """The PR-5 scenarios at their registered size: strict batched
        run, serial == parallel, and an engine cross-check on a slice."""
        spec = SCENARIOS.build(name)
        serial = FleetRunner(spec, workers=1, engine="batched").run()
        parallel = FleetRunner(
            spec, workers=4, engine="auto", parallel_threshold=1
        ).run()
        assert _payload(serial) == _payload(parallel)
        small = SCENARIOS.build(name, num_devices=32)
        assert _payload(FleetRunner(small, engine="batched").run()) == \
            _payload(FleetRunner(small, engine="device").run())
