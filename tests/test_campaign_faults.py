"""Checkpoint integrity: checksums, corruption classes, quarantine, resume.

The contract under test mirrors the paper's own premise (devices must
resume bit-exactly after power loss): a campaign checkpoint that rots on
disk — zero-byte, truncated, bit-flipped, torn JSON — is detected by
checksum/shape verification on ``--resume``, quarantined for post-mortem,
and its cell re-executed, leaving ``report.json`` byte-identical to an
uncorrupted run.  Every corruption class gets its own resume test.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import CAMPAIGNS, CampaignRunner, CampaignStore, run_campaign
from repro.campaign.store import cell_checksum
from repro.errors import ConfigError, CorruptCellError
from repro.faults import Fault, FaultPlan, chaos
from repro.obs import Recorder, recording


def smoke_spec():
    return CAMPAIGNS.build("dev-smoke")


def corrupt_zero_byte(path: str) -> None:
    with open(path, "w"):
        pass


def corrupt_truncate(path: str) -> None:
    os.truncate(path, os.path.getsize(path) // 2)


def corrupt_bitflip(path: str) -> None:
    with open(path, "r+b") as fh:
        fh.seek(os.path.getsize(path) // 2)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_CUR)
        fh.write(bytes([byte[0] ^ 0xFF]))


def corrupt_torn_json(path: str) -> None:
    with open(path, "w") as fh:
        fh.write('{"key": "torn-off-mid-')


CORRUPTIONS = {
    "zero-byte": corrupt_zero_byte,
    "truncate": corrupt_truncate,
    "bitflip": corrupt_bitflip,
    "torn-json": corrupt_torn_json,
}


# --------------------------------------------------------------------- #
# Store-level integrity
# --------------------------------------------------------------------- #


class TestCellChecksums:
    def test_save_load_roundtrip_strips_integrity(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        payload = {"key": "a", "fleet": {"events": 3}, "seed": 1}
        store.save_cell("a", payload)
        on_disk = json.loads((tmp_path / "cells" / "a.json").read_text())
        assert on_disk["integrity"]["algo"] == "sha256"
        assert on_disk["integrity"]["digest"] == cell_checksum(payload)
        assert store.load_cell("a") == payload

    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_corruption_detected_with_path(self, tmp_path, kind):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a", "value": list(range(50))})
        path = store.cell_path("a")
        CORRUPTIONS[kind](path)
        with pytest.raises(CorruptCellError, match="a.json"):
            store.load_cell("a")

    def test_zero_byte_names_the_cause(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a"})
        corrupt_zero_byte(store.cell_path("a"))
        with pytest.raises(CorruptCellError, match="zero-byte"):
            store.load_cell("a")

    def test_corrupt_cell_is_still_a_config_error(self, tmp_path):
        # back-compat: callers catching ConfigError keep working
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a"})
        corrupt_bitflip(store.cell_path("a"))
        with pytest.raises(ConfigError, match="cell artifact"):
            store.load_cell("a")

    def test_legacy_cell_without_integrity_loads(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        legacy = {"key": "old", "fleet": {}}
        with open(store.cell_path("old"), "w") as fh:
            json.dump(legacy, fh)
        assert store.load_cell("old") == legacy

    def test_quarantine_moves_artifact_aside(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a"})
        dst = store.quarantine_cell("a")
        assert not os.path.exists(store.cell_path("a"))
        assert os.path.exists(dst)
        assert "quarantine" in dst
        assert store.completed_keys() == set()

    def test_transient_oserror_on_load_is_retried(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a"})
        plan = FaultPlan([Fault("campaign.cell.load", 0, "oserror")])
        with chaos(plan) as injector:
            assert store.load_cell("a") == {"key": "a"}
        assert injector.fired_summary() == {"campaign.cell.load.oserror": 1}

    def test_persistent_oserror_gives_up(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.save_cell("a", {"key": "a"})
        faults = [
            Fault("campaign.cell.load", i, "oserror")
            for i in range(store.LOAD_ATTEMPTS)
        ]
        plan = FaultPlan(faults)
        with chaos(plan), pytest.raises(ConfigError, match="cannot load"):
            store.load_cell("a")

    def test_zero_byte_report_detected(self, tmp_path):
        store = CampaignStore(str(tmp_path))
        store.initialize(smoke_spec())
        store.write_report({"cells": {}})
        corrupt_zero_byte(store.report_path)
        with pytest.raises(CorruptCellError, match="zero-byte"):
            store.load_report()


# --------------------------------------------------------------------- #
# Resume after corruption: every class re-runs just the damaged cell
# --------------------------------------------------------------------- #


class TestResumeAfterCorruption:
    def _clean_run(self, tmp_path):
        out = tmp_path / "clean"
        run_campaign(smoke_spec(), out=str(out))
        return (out / "report.json").read_bytes()

    @pytest.mark.parametrize("kind", sorted(CORRUPTIONS))
    def test_resume_quarantines_and_reruns(self, tmp_path, kind):
        clean_report = self._clean_run(tmp_path)
        out = tmp_path / "hurt"
        run_campaign(smoke_spec(), out=str(out))
        store = CampaignStore(str(out))
        victim = sorted(store.completed_keys())[0]
        CORRUPTIONS[kind](store.cell_path(victim))

        statuses = []
        with recording(Recorder(metrics=True)) as rec:
            runner = CampaignRunner(smoke_spec(), store=store, resume=True)
            runner.run(
                progress=lambda cell, status: statuses.append((cell.key, status))
            )
        assert (victim, "corrupt") in statuses
        assert runner.quarantined == 1
        assert runner.executed == 1  # only the damaged cell re-ran
        assert runner.skipped == len(smoke_spec().cells()) - 1
        assert rec.metrics.counter_value("campaign.cells.quarantined") == 1
        assert os.path.exists(os.path.join(str(out), "quarantine", f"{victim}.json"))
        # the re-run rewrote a valid checkpoint and the report is
        # byte-identical to a never-corrupted campaign
        assert store.load_cell(victim)["key"] == victim
        assert (out / "report.json").read_bytes() == clean_report

    def test_injected_save_corruption_heals_on_resume(self, tmp_path):
        """End-to-end chaos: the checkpoint write itself is sabotaged via
        the injector, then a plain resume must detect and heal it."""
        clean_report = self._clean_run(tmp_path)
        out = tmp_path / "chaos"
        plan = FaultPlan(
            [Fault("campaign.cell.save", 0, "truncate", {"keep_frac": 0.4})]
        )
        with chaos(plan) as injector:
            run_campaign(smoke_spec(), out=str(out))
        assert injector.fired_summary() == {"campaign.cell.save.truncate": 1}
        # the in-memory first pass already reported correctly
        assert (out / "report.json").read_bytes() == clean_report

        runner = CampaignRunner(
            smoke_spec(), store=CampaignStore(str(out)), resume=True
        )
        runner.run()
        assert runner.quarantined == 1
        assert (out / "report.json").read_bytes() == clean_report

    def test_resume_without_corruption_unaffected(self, tmp_path):
        clean_report = self._clean_run(tmp_path)
        out = tmp_path / "fine"
        run_campaign(smoke_spec(), out=str(out))
        runner = CampaignRunner(
            smoke_spec(), store=CampaignStore(str(out)), resume=True
        )
        runner.run()
        assert runner.quarantined == 0
        assert runner.executed == 0
        assert (out / "report.json").read_bytes() == clean_report


# --------------------------------------------------------------------- #
# Legacy (pre-checksum) cells: accepted, but counted and surfaced
# --------------------------------------------------------------------- #
class TestLegacyUnverifiedCells:
    def strip_seal(self, store, key):
        """Rewrite one artifact as a pre-checksum era cell (no seal)."""
        body = store.load_cell(key)
        with open(store.cell_path(key), "w") as fh:
            json.dump(body, fh, indent=2, sort_keys=True)

    def test_legacy_cells_are_counted_on_resume(self, tmp_path):
        out = tmp_path / "legacy"
        run_campaign(smoke_spec(), out=str(out))
        clean_report = (out / "report.json").read_bytes()
        store = CampaignStore(str(out))
        victim = sorted(store.completed_keys())[0]
        self.strip_seal(store, victim)

        store = CampaignStore(str(out))  # fresh counter
        with recording(Recorder(metrics=True)) as rec:
            runner = CampaignRunner(smoke_spec(), store=store, resume=True)
            runner.run()
        # Accepted (resume still works), never re-executed, but counted
        # in the runner tally and the metrics registry.
        assert runner.executed == 0
        assert runner.quarantined == 0
        assert runner.legacy_unverified == 1
        assert store.legacy_unverified == 1
        assert (
            rec.metrics.counter_value("campaign.cells.legacy_unverified") == 1
        )
        # Content untouched: the report stays byte-identical.
        assert (out / "report.json").read_bytes() == clean_report

    def test_sealed_cells_count_zero(self, tmp_path):
        out = tmp_path / "sealed"
        run_campaign(smoke_spec(), out=str(out))
        store = CampaignStore(str(out))
        runner = CampaignRunner(smoke_spec(), store=store, resume=True)
        runner.run()
        assert runner.legacy_unverified == 0

    def test_summary_line_reports_legacy_tally(self, tmp_path, capsys):
        from repro.campaign.__main__ import main

        out = str(tmp_path / "cli")
        assert main(["run", "dev-smoke", "--out", out]) == 0
        store = CampaignStore(out)
        for key in sorted(store.completed_keys()):
            self.strip_seal(store, key)
        capsys.readouterr()
        assert main(["run", "dev-smoke", "--out", out, "--resume"]) == 0
        assert "2 legacy cell(s) loaded unverified" in capsys.readouterr().out
