"""Search driver tests (short budgets)."""

import pytest

from repro.data import Dataset
from repro.energy import constant_trace, uniform_random_events
from repro.rl import (
    CompressionObjective,
    LayerwiseCompressionEnv,
    NonuniformSearch,
    RandomSearch,
    SearchConfig,
)
from repro.rl.ddpg import DDPGConfig


@pytest.fixture
def env(tiny_net, tiny_dataset):
    data = Dataset(tiny_dataset.val.x[:30, :2, :8, :8], tiny_dataset.val.y[:30] % 5)
    trace = constant_trace(0.02, 300.0)
    events = uniform_random_events(12, trace.duration, rng=1)
    objective = CompressionObjective(
        net=tiny_net,
        val_data=data,
        trace=trace,
        events=events,
        flops_target=3_500,
        size_target_kb=0.6,
        input_shape=(2, 8, 8),
    )
    return LayerwiseCompressionEnv(objective)


def small_search_config(episodes):
    return SearchConfig(
        episodes=episodes,
        seed=0,
        ddpg=DDPGConfig(hidden_sizes=(16, 16), batch_size=8, warmup=8),
    )


class TestNonuniformSearch:
    def test_returns_history_per_episode(self, env):
        result = NonuniformSearch(env, small_search_config(5)).run()
        assert len(result.history) == 5
        assert result.episodes == 5
        assert len(result.racc_curve()) == 5

    def test_best_spec_is_complete(self, env, tiny_net):
        result = NonuniformSearch(env, small_search_config(4)).run()
        for layer in tiny_net.weighted_layers():
            assert layer.name in result.best_spec

    def test_feasible_preferred_over_infeasible(self, env):
        result = NonuniformSearch(env, small_search_config(8)).run()
        if any(h.feasible for h in result.history):
            assert result.best.feasible

    def test_deterministic_given_seed(self, env, tiny_net, tiny_dataset):
        curves = []
        for _ in range(2):
            result = NonuniformSearch(env, small_search_config(3)).run()
            curves.append(result.racc_curve())
        # NOTE: env is shared but stateless across episodes after reset().
        assert curves[0] == curves[1]


class TestRandomSearch:
    def test_runs_and_tracks_best(self, env):
        result = RandomSearch(env, episodes=6, seed=0).run()
        assert len(result.history) == 6
        assert result.best.racc >= max(
            h.racc for h in result.history if h.feasible == result.best.feasible
        ) - 1e-12

    def test_deterministic(self, env):
        a = RandomSearch(env, episodes=3, seed=5).run().racc_curve()
        b = RandomSearch(env, episodes=3, seed=5).run().racc_curve()
        assert a == b
