"""Compression-search environment tests."""

import numpy as np
import pytest

from repro.data import Dataset
from repro.energy import constant_trace, uniform_random_events
from repro.errors import ConfigError
from repro.rl.env import OBSERVATION_DIM, CompressionObjective, LayerwiseCompressionEnv


@pytest.fixture
def objective(tiny_net, tiny_dataset):
    data = Dataset(tiny_dataset.val.x[:40, :2, :8, :8], tiny_dataset.val.y[:40] % 5)
    trace = constant_trace(0.02, 500.0)
    events = uniform_random_events(20, trace.duration, rng=1)
    return CompressionObjective(
        net=tiny_net,
        val_data=data,
        trace=trace,
        events=events,
        flops_target=3_500,
        size_target_kb=0.6,
        input_shape=(2, 8, 8),
    )


@pytest.fixture
def env(objective):
    return LayerwiseCompressionEnv(objective)


class TestObservation:
    def test_dimension_matches_eq9(self, env):
        obs = env.reset()
        assert obs.shape == (OBSERVATION_DIM,)

    def test_normalized_to_unit_interval(self, env):
        obs = env.reset()
        done = False
        while not done:
            assert np.all(obs >= 0.0) and np.all(obs <= 1.0)
            obs, done = env.step([0.5], [0.5, 0.5])

    def test_layer_index_advances(self, env):
        obs0 = env.reset()
        obs1, _ = env.step([0.5], [0.5, 0.5])
        assert obs1[0] > obs0[0]

    def test_reflects_previous_actions(self, env):
        env.reset()
        obs, _ = env.step([0.0], [0.0, 1.0])  # alpha -> min, bw -> 1, ba -> 8
        assert obs[1] == pytest.approx(env.alpha_bounds[0])
        assert obs[2] == pytest.approx(1 / 8)
        assert obs[3] == pytest.approx(1.0)


class TestActionMapping:
    def test_alpha_snaps_to_grid(self, env):
        # Paper: pruning rate in [0.05, 1.0] with step 0.05.
        for action in np.linspace(0, 1, 17):
            alpha = env.map_alpha(action)
            assert 0.05 <= alpha <= 1.0
            assert round(alpha / 0.05, 6) == pytest.approx(round(alpha / 0.05), abs=1e-6)

    def test_bits_cover_full_range(self, env):
        bits = {env.map_bits(a, (1, 8)) for a in np.linspace(0, 1, 50)}
        assert bits == set(range(1, 9))

    def test_extremes(self, env):
        assert env.map_alpha(0.0) == pytest.approx(0.05)
        assert env.map_alpha(1.0) == pytest.approx(1.0)
        assert env.map_bits(0.0, (1, 8)) == 1
        assert env.map_bits(1.0, (1, 8)) == 8


class TestEpisodeFlow:
    def test_episode_length_is_layer_count(self, env):
        env.reset()
        steps = 0
        done = False
        while not done:
            _, done = env.step([0.5], [0.5, 0.5])
            steps += 1
        assert steps == env.num_layers == 4

    def test_step_after_done_raises(self, env):
        env.reset()
        done = False
        while not done:
            _, done = env.step([0.5], [0.5, 0.5])
        with pytest.raises(ConfigError):
            env.step([0.5], [0.5, 0.5])

    def test_build_spec_requires_finished_episode(self, env):
        env.reset()
        env.step([0.5], [0.5, 0.5])
        with pytest.raises(ConfigError):
            env.build_spec()

    def test_quant_action_arity_checked(self, env):
        env.reset()
        with pytest.raises(ConfigError):
            env.step([0.5], [0.5])

    def test_spec_covers_all_layers(self, env, tiny_net):
        env.reset()
        done = False
        while not done:
            _, done = env.step([1.0], [1.0, 1.0])
        spec = env.build_spec()
        for layer in tiny_net.weighted_layers():
            assert layer.name in spec


class TestObjective:
    def run_episode(self, env, alpha_action, bits_action):
        env.reset()
        done = False
        while not done:
            _, done = env.step([alpha_action], [bits_action, bits_action])
        return env.finalize()

    def test_identity_episode_infeasible_for_tight_targets(self, env):
        result = self.run_episode(env, 1.0, 1.0)  # no pruning, 8-bit
        assert not result.flops_ok          # identity exit-2 path is ~3.97k FLOPs
        assert result.rprune == -1.0

    def test_heavy_compression_feasible(self, env):
        result = self.run_episode(env, 0.0, 0.1)
        assert result.flops_ok and result.size_ok
        assert result.rprune == pytest.approx(result.racc)
        assert result.rquant == pytest.approx(result.racc)

    def test_racc_is_probability_weighted(self, env):
        result = self.run_episode(env, 0.5, 1.0)
        expected = sum(p * a for p, a in zip(result.exit_fractions, result.accuracies))
        assert result.racc == pytest.approx(expected)

    def test_trace_unaware_uses_uniform_weights(self, objective, env):
        objective.trace_aware = False
        result = self.run_episode(env, 0.5, 1.0)
        assert result.exit_fractions == pytest.approx([0.5, 0.5])

    def test_fractions_are_valid_probabilities(self, env):
        result = self.run_episode(env, 0.5, 0.8)
        assert all(0.0 <= p <= 1.0 for p in result.exit_fractions)
        assert sum(result.exit_fractions) <= 1.0 + 1e-9
