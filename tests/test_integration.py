"""Cross-module integration tests: train -> compress -> deploy -> simulate.

These tie the full pipeline together at reduced scale and assert the
paper's qualitative claims rather than exact numbers.
"""

import pytest

from repro.compress import Compressor, fit_uniform_spec, make_uniform_spec
from repro.compress.evaluator import evaluate_exits
from repro.data import SyntheticConfig, make_cifar_like
from repro.energy import EnergyStorage, solar_trace, uniform_random_events
from repro.intermittent import MSP432
from repro.models import make_multi_exit_lenet
from repro.nn import TrainConfig, Trainer
from repro.runtime import (
    GreedyEnergyPolicy,
    QLearningController,
    StaticController,
    StaticLUTPolicy,
)
from repro.sim import InferenceProfile, Simulator, SimulatorConfig


@pytest.fixture(scope="module")
def trained_setup():
    """A briefly trained multi-exit LeNet on an easy dataset."""
    splits = make_cifar_like(
        num_train=600, num_val=200, num_test=200,
        config=SyntheticConfig(noise_std=1.0), seed=7,
    )
    net = make_multi_exit_lenet(seed=3)
    Trainer(TrainConfig(epochs=3, batch_size=64, lr=0.01, seed=11)).fit(
        net, splits.train.x, splits.train.y
    )
    return net, splits


class TestCompressionPipeline:
    def test_light_compression_preserves_most_accuracy(self, trained_setup):
        net, splits = trained_setup
        compressor = Compressor()
        base = evaluate_exits(
            compressor.apply(net, make_uniform_spec(net, 1.0, 32, 32)), splits.test
        )
        light = evaluate_exits(
            compressor.apply(
                net, make_uniform_spec(net, 0.9, 8, 8), calibration_x=splits.val.x[:64]
            ),
            splits.test,
        )
        for full_acc, light_acc in zip(base.accuracies, light.accuracies):
            assert light_acc > full_acc - 0.15

    def test_paper_budget_reachable_with_useful_accuracy(self, trained_setup):
        net, splits = trained_setup
        spec = fit_uniform_spec(net, flops_target=1.15e6, size_target_kb=16.0)
        model = Compressor().apply(net, spec, calibration_x=splits.val.x[:64])
        evaluation = evaluate_exits(model, splits.test)
        assert model.fmodel_flops <= 1.15e6
        assert model.model_size_kb <= 16.0
        # Accuracy claims at this budget belong to the zoo-trained
        # benchmarks; here we only require a sane, complete evaluation.
        assert len(evaluation.accuracies) == 3
        assert all(0.0 <= a <= 1.0 for a in evaluation.accuracies)

    def test_compressed_profile_deploys_in_simulator(self, trained_setup):
        net, splits = trained_setup
        spec = fit_uniform_spec(net, flops_target=1.15e6, size_target_kb=16.0)
        model = Compressor().apply(net, spec, calibration_x=splits.val.x[:64])
        evaluation = evaluate_exits(model, splits.test)
        profile = InferenceProfile.from_compressed(model, evaluation, MSP432)
        trace = solar_trace(duration=3000.0, seed=5)
        events = uniform_random_events(40, trace.duration, rng=9)
        sim = Simulator(
            trace, profile, StaticController(GreedyEnergyPolicy()),
            storage=EnergyStorage(2.0, 0.8, initial_mj=1.0),
            config=SimulatorConfig(seed=3),
        )
        result = sim.run(events)
        assert result.num_processed > 0
        assert 0.0 <= result.average_accuracy <= 1.0


class TestDatasetModeConsistency:
    def test_profile_mode_tracks_dataset_mode(self, trained_setup):
        """Both correctness models must land in the same accuracy ballpark."""
        net, splits = trained_setup
        compressor = Compressor()
        model = compressor.apply(
            net, make_uniform_spec(net, 0.8, 8, 8), calibration_x=splits.val.x[:64]
        )
        evaluation = evaluate_exits(model, splits.test)
        profile = InferenceProfile.from_compressed(model, evaluation, MSP432)
        trace = solar_trace(duration=4000.0, peak_mw=0.2, seed=5)  # ample power
        events = uniform_random_events(60, trace.duration, rng=9)

        def run(mode, dataset=None):
            sim = Simulator(
                trace, profile, StaticController(GreedyEnergyPolicy()),
                storage=EnergyStorage(2.0, 0.8, initial_mj=2.0),
                dataset=dataset, config=SimulatorConfig(mode=mode, seed=3),
            )
            return sim.run(events)

        r_profile = run("profile")
        r_dataset = run("dataset", splits.test)
        assert r_profile.num_processed == r_dataset.num_processed
        assert abs(r_profile.processed_accuracy - r_dataset.processed_accuracy) < 0.2


class TestRuntimeAdaptation:
    def test_qlearning_beats_or_matches_static_lut(self, short_trace):
        """The paper's Fig. 7(a) claim at small scale: after learning
        episodes, Q-learning's average accuracy >= the static LUT's."""
        profile = InferenceProfile(
            "p", [0.6, 0.7, 0.75], [0.2, 0.8, 1.6],
            [0.2e6 / 1.5, 0.8e6 / 1.5, 1.6e6 / 1.5], [0.7, 0.9],
            [0.7e6 / 1.5, 0.9e6 / 1.5],
        )
        events = uniform_random_events(60, short_trace.duration, rng=9)

        def storage():
            return EnergyStorage(2.0, 0.8, initial_mj=1.0)

        lut = StaticController(StaticLUTPolicy(profile.exit_energy_mj, 2.0))
        static_result = Simulator(
            short_trace, profile, lut, storage=storage(),
            config=SimulatorConfig(seed=3),
        ).run(events)

        controller = QLearningController(3, epsilon=0.25, epsilon_decay=0.9, rng=11)
        sim = Simulator(
            short_trace, profile, controller, storage=storage(),
            config=SimulatorConfig(seed=3),
        )
        final = None
        for _ in range(15):
            final = sim.run(events)
        assert final.average_accuracy >= static_result.average_accuracy - 0.05

    def test_learned_policy_prefers_cheap_exits_under_scarcity(self, short_trace):
        """Under weak harvesting the learned policy must use exit 1 more
        than a greedy deepest-affordable policy (the Fig. 7(b) shape)."""
        profile = InferenceProfile(
            "p", [0.6, 0.7, 0.75], [0.2, 0.8, 1.6],
            [0.2e6 / 1.5, 0.8e6 / 1.5, 1.6e6 / 1.5], [0.7, 0.9],
            [0.7e6 / 1.5, 0.9e6 / 1.5],
        )
        weak = short_trace.scaled(0.5)
        events = uniform_random_events(60, weak.duration, rng=9)

        greedy_result = Simulator(
            weak, profile, StaticController(GreedyEnergyPolicy()),
            storage=EnergyStorage(2.0, 0.8, initial_mj=1.0),
            config=SimulatorConfig(seed=3),
        ).run(events)

        controller = QLearningController(3, epsilon=0.25, epsilon_decay=0.9, rng=11)
        sim = Simulator(
            weak, profile, controller,
            storage=EnergyStorage(2.0, 0.8, initial_mj=1.0),
            config=SimulatorConfig(seed=3),
        )
        final = None
        for _ in range(15):
            final = sim.run(events)
        assert final.exit_counts(3)[0] >= greedy_result.exit_counts(3)[0]
