"""Unit tests for the batched controller groups (repro.runtime.batched)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime.batched import (
    FixedBatch,
    GreedyBatch,
    LUTBatch,
    QLearningBatch,
    batch_controllers,
    batchable,
    discretize_batch,
)
from repro.runtime.controller import (
    Controller,
    QLearningController,
    StaticController,
    make_controller,
)
from repro.runtime.incremental import ThresholdContinue
from repro.runtime.policies import FixedExitPolicy, OraclePolicy
from repro.runtime.qlearning import discretize
from repro.runtime.state import RuntimeState, RuntimeStateBatch


COSTS = [0.1, 0.3, 0.6, 1.0]


def _state_batch(energy, charge, capacity=2.0, peak=1.0):
    energy = np.asarray(energy, dtype=np.float64)
    n = energy.size
    return RuntimeStateBatch(
        time=np.zeros(n),
        energy_mj=energy,
        capacity_mj=np.full(n, capacity),
        charge_power_mw=np.asarray(charge, dtype=np.float64),
        peak_power_mw=np.full(n, peak),
    )


class TestDiscretizeBatch:
    def test_matches_scalar_discretize(self):
        values = np.array([0.0, 0.09, 0.5, 0.999, 1.0])
        got = discretize_batch(values, 10)
        want = [discretize(float(v), 10) for v in values]
        assert got.tolist() == want

    def test_clamps_edges(self):
        assert discretize_batch(np.array([1.5, -0.2]), 5).tolist() == [4, 0]


class TestStateBatchGuards:
    def test_zero_peak_charge_fraction_is_zero(self):
        state = _state_batch([1.0], [0.5], peak=0.0)
        idx = np.arange(1)
        assert state.charge_fraction(idx).tolist() == [0.0]
        assert state.charge_ratio(idx).tolist() == [0.0]

    def test_fractions_match_scalar_runtime_state(self):
        state = _state_batch([0.5, 2.0], [0.2, 1.5], capacity=2.0, peak=1.0)
        idx = np.arange(2)
        for i in range(2):
            scalar = RuntimeState(
                time=0.0, energy_mj=float(state.energy_mj[i]),
                capacity_mj=2.0, charge_power_mw=float(state.charge_power_mw[i]),
                peak_power_mw=1.0,
            )
            assert state.energy_fraction(idx)[i] == scalar.energy_fraction
            assert state.charge_fraction(idx)[i] == scalar.charge_fraction


class TestGroupDecisions:
    def _controllers(self, kind, n, **params):
        return [
            make_controller(kind, 4, exit_energies_mj=COSTS, capacity_mj=2.0,
                            rng=7 + i, **params)
            for i in range(n)
        ]

    def _cost_matrix(self, n):
        return np.tile(np.asarray(COSTS), (n, 1))

    def test_fixed_batch_matches_scalar(self):
        controllers = self._controllers("fixed", 3, exit_index=1)
        group = FixedBatch(3, [0, 1, 2], controllers, self._cost_matrix(3))
        state = _state_batch([0.05, 0.3, 1.0], [0.5, 0.5, 0.5])
        got = group.select_exit_batch(np.arange(3), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want == [-1, 1, 1]

    def test_greedy_batch_matches_scalar(self):
        controllers = self._controllers("greedy", 4, reserve_fraction=0.2)
        group = GreedyBatch(4, [0, 1, 2, 3], controllers, self._cost_matrix(4))
        state = _state_batch([0.1, 0.5, 1.2, 2.0], [0.5] * 4)
        got = group.select_exit_batch(np.arange(4), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want

    def test_lut_batch_matches_scalar(self):
        controllers = self._controllers("static-lut", 4)
        group = LUTBatch(4, [0, 1, 2, 3], controllers, self._cost_matrix(4))
        state = _state_batch([0.0, 0.31, 0.61, 2.0], [0.5] * 4)
        got = group.select_exit_batch(np.arange(4), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want

    def test_qlearning_batch_matches_scalar_episode(self):
        """One full select/report/end_episode cycle against scalar twins."""
        batched_ctrls = self._controllers("qlearning", 2, epsilon=0.25)
        scalar_ctrls = self._controllers("qlearning", 2, epsilon=0.25)
        group = QLearningBatch(2, [0, 1], batched_ctrls, self._cost_matrix(2))
        idx = np.arange(2)
        energies = [[1.0, 0.4], [0.9, 1.3], [0.2, 1.8]]
        for energy in energies:
            state = _state_batch(energy, [0.5, 0.7])
            got = group.select_exit_batch(idx, state).tolist()
            want = []
            for i, c in enumerate(scalar_ctrls):
                want.append(
                    c.select_exit(
                        RuntimeState(0.0, energy[i], 2.0,
                                     float(state.charge_power_mw[i]), 1.0),
                        COSTS,
                    )
                )
            assert got == want
            rewards = np.array([1.0, 0.0])
            group.report_event_batch(idx, rewards)
            for i, c in enumerate(scalar_ctrls):
                c.report_event(float(rewards[i]))
        group.end_episode_batch(idx)
        for c in scalar_ctrls:
            c.end_episode()
        for i, c in enumerate(scalar_ctrls):
            np.testing.assert_array_equal(group._tables[i], c.qtable.table)
            assert group._epsilon[i] == c.qtable.epsilon


class TestBatchability:
    def test_presets_are_batchable(self):
        for kind, params in (
            ("qlearning", {}), ("static-lut", {}), ("greedy", {}),
            ("fixed", {}),
        ):
            c = make_controller(kind, 4, exit_energies_mj=COSTS,
                                capacity_mj=2.0, rng=0, **params)
            assert batchable(c)

    def test_learned_continue_rule_is_not_batchable(self):
        c = make_controller(
            "greedy", 4, exit_energies_mj=COSTS, capacity_mj=2.0,
            continue_rule=ThresholdContinue(0.5),
        )
        assert not batchable(c)

    def test_unknown_policy_is_not_batchable(self):
        c = StaticController(OraclePolicy(COSTS, [], None, 2.0))
        assert not batchable(c)
        with pytest.raises(ConfigError, match="cannot be batched"):
            batch_controllers([c], np.tile(np.asarray(COSTS), (1, 1)))

    def test_groups_partition_by_family(self):
        controllers = [
            make_controller("fixed", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
            make_controller("greedy", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
            make_controller("fixed", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
        ]
        groups, group_of = batch_controllers(
            controllers, np.tile(np.asarray(COSTS), (3, 1))
        )
        assert len(groups) == 2
        assert group_of[0] == group_of[2] != group_of[1]


class TestFixedBatchValidation:
    def test_out_of_range_exit_index_raises_at_construction(self):
        """The scalar path IndexErrors on a fixed exit past the profile;
        the batched group must surface the misconfiguration loudly too
        instead of treating the +inf padding as a perpetual miss."""
        controllers = [
            StaticController(FixedExitPolicy(2)),  # only exits 0..1 exist
            StaticController(FixedExitPolicy(0)),
        ]
        cost = np.array([[0.1, 0.3, np.inf], [0.1, 0.3, 0.6]])
        with pytest.raises(ConfigError, match="exit_index"):
            FixedBatch(2, [0, 1], controllers, cost)

    def test_in_range_indices_construct(self):
        controllers = [StaticController(FixedExitPolicy(1))]
        group = FixedBatch(1, [0], controllers, np.array([[0.1, 0.3]]))
        state = _state_batch([1.0], [0.5])
        assert group.select_exit_batch(np.arange(1), state).tolist() == [1]
