"""Unit tests for the batched controller groups (repro.runtime.batched)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.runtime.batched import (
    FixedBatch,
    GreedyBatch,
    LearnedRuleBatch,
    LUTBatch,
    QLearningBatch,
    ThresholdRuleBatch,
    batch_continue_rules,
    batch_controllers,
    batchable,
    discretize_batch,
)
from repro.runtime.controller import StaticController, make_controller
from repro.runtime.incremental import (
    CONTINUE,
    IncrementalDecider,
    ThresholdContinue,
)
from repro.runtime.policies import FixedExitPolicy, OraclePolicy
from repro.runtime.qlearning import discretize
from repro.runtime.state import RuntimeState, RuntimeStateBatch


COSTS = [0.1, 0.3, 0.6, 1.0]


def _state_batch(energy, charge, capacity=2.0, peak=1.0):
    energy = np.asarray(energy, dtype=np.float64)
    n = energy.size
    return RuntimeStateBatch(
        time=np.zeros(n),
        energy_mj=energy,
        capacity_mj=np.full(n, capacity),
        charge_power_mw=np.asarray(charge, dtype=np.float64),
        peak_power_mw=np.full(n, peak),
    )


class TestDiscretizeBatch:
    def test_matches_scalar_discretize(self):
        values = np.array([0.0, 0.09, 0.5, 0.999, 1.0])
        got = discretize_batch(values, 10)
        want = [discretize(float(v), 10) for v in values]
        assert got.tolist() == want

    def test_clamps_edges(self):
        assert discretize_batch(np.array([1.5, -0.2]), 5).tolist() == [4, 0]


class TestStateBatchGuards:
    def test_zero_peak_charge_fraction_is_zero(self):
        state = _state_batch([1.0], [0.5], peak=0.0)
        idx = np.arange(1)
        assert state.charge_fraction(idx).tolist() == [0.0]
        assert state.charge_ratio(idx).tolist() == [0.0]

    def test_fractions_match_scalar_runtime_state(self):
        state = _state_batch([0.5, 2.0], [0.2, 1.5], capacity=2.0, peak=1.0)
        idx = np.arange(2)
        for i in range(2):
            scalar = RuntimeState(
                time=0.0, energy_mj=float(state.energy_mj[i]),
                capacity_mj=2.0, charge_power_mw=float(state.charge_power_mw[i]),
                peak_power_mw=1.0,
            )
            assert state.energy_fraction(idx)[i] == scalar.energy_fraction
            assert state.charge_fraction(idx)[i] == scalar.charge_fraction


class TestGroupDecisions:
    def _controllers(self, kind, n, **params):
        return [
            make_controller(kind, 4, exit_energies_mj=COSTS, capacity_mj=2.0,
                            rng=7 + i, **params)
            for i in range(n)
        ]

    def _cost_matrix(self, n):
        return np.tile(np.asarray(COSTS), (n, 1))

    def test_fixed_batch_matches_scalar(self):
        controllers = self._controllers("fixed", 3, exit_index=1)
        group = FixedBatch(3, [0, 1, 2], controllers, self._cost_matrix(3))
        state = _state_batch([0.05, 0.3, 1.0], [0.5, 0.5, 0.5])
        got = group.select_exit_batch(np.arange(3), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want == [-1, 1, 1]

    def test_greedy_batch_matches_scalar(self):
        controllers = self._controllers("greedy", 4, reserve_fraction=0.2)
        group = GreedyBatch(4, [0, 1, 2, 3], controllers, self._cost_matrix(4))
        state = _state_batch([0.1, 0.5, 1.2, 2.0], [0.5] * 4)
        got = group.select_exit_batch(np.arange(4), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want

    def test_lut_batch_matches_scalar(self):
        controllers = self._controllers("static-lut", 4)
        group = LUTBatch(4, [0, 1, 2, 3], controllers, self._cost_matrix(4))
        state = _state_batch([0.0, 0.31, 0.61, 2.0], [0.5] * 4)
        got = group.select_exit_batch(np.arange(4), state).tolist()
        want = [
            c.select_exit(
                RuntimeState(0.0, float(state.energy_mj[i]), 2.0, 0.5, 1.0),
                COSTS,
            )
            for i, c in enumerate(controllers)
        ]
        assert got == want

    def test_qlearning_batch_matches_scalar_episode(self):
        """One full select/report/end_episode cycle against scalar twins."""
        batched_ctrls = self._controllers("qlearning", 2, epsilon=0.25)
        scalar_ctrls = self._controllers("qlearning", 2, epsilon=0.25)
        group = QLearningBatch(2, [0, 1], batched_ctrls, self._cost_matrix(2))
        idx = np.arange(2)
        energies = [[1.0, 0.4], [0.9, 1.3], [0.2, 1.8]]
        for energy in energies:
            state = _state_batch(energy, [0.5, 0.7])
            got = group.select_exit_batch(idx, state).tolist()
            want = []
            for i, c in enumerate(scalar_ctrls):
                want.append(
                    c.select_exit(
                        RuntimeState(0.0, energy[i], 2.0,
                                     float(state.charge_power_mw[i]), 1.0),
                        COSTS,
                    )
                )
            assert got == want
            rewards = np.array([1.0, 0.0])
            group.report_event_batch(idx, rewards)
            for i, c in enumerate(scalar_ctrls):
                c.report_event(float(rewards[i]))
        group.end_episode_batch(idx)
        for c in scalar_ctrls:
            c.end_episode()
        for i, c in enumerate(scalar_ctrls):
            np.testing.assert_array_equal(group._tables[i], c.qtable.table)
            assert group._epsilon[i] == c.qtable.epsilon


class TestBatchability:
    def test_presets_are_batchable(self):
        for kind, params in (
            ("qlearning", {}), ("static-lut", {}), ("greedy", {}),
            ("fixed", {}),
        ):
            c = make_controller(kind, 4, exit_energies_mj=COSTS,
                                capacity_mj=2.0, rng=0, **params)
            assert batchable(c)

    def test_continue_rules_are_batchable(self):
        for rule in (
            ThresholdContinue(0.5),
            {"kind": "threshold", "entropy_threshold": 0.4},
            {"kind": "learned"},
        ):
            c = make_controller(
                "greedy", 4, exit_energies_mj=COSTS, capacity_mj=2.0,
                rng=3, continue_rule=rule,
            )
            assert batchable(c)

    def test_rule_sharing_the_exit_table_generator_is_not_batchable(self):
        """One Generator feeding both pooled-draw streams cannot be
        replayed per table; such controllers stay on the scalar path."""
        gen = np.random.default_rng(0)
        c = make_controller(
            "qlearning", 4, rng=gen,
            continue_rule=IncrementalDecider(rng=gen),
        )
        assert not batchable(c)

    def test_unknown_policy_is_not_batchable(self):
        c = StaticController(OraclePolicy(COSTS, [], None, 2.0))
        assert not batchable(c)
        with pytest.raises(ConfigError, match="cannot be batched"):
            batch_controllers([c], np.tile(np.asarray(COSTS), (1, 1)))

    def test_groups_partition_by_family(self):
        controllers = [
            make_controller("fixed", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
            make_controller("greedy", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
            make_controller("fixed", 4, exit_energies_mj=COSTS, capacity_mj=2.0),
        ]
        groups, group_of = batch_controllers(
            controllers, np.tile(np.asarray(COSTS), (3, 1))
        )
        assert len(groups) == 2
        assert group_of[0] == group_of[2] != group_of[1]


class TestContinueRuleGroups:
    def test_threshold_group_matches_scalar(self):
        rules = [ThresholdContinue(0.3), ThresholdContinue(0.6)]
        group = ThresholdRuleBatch(2, [0, 1], rules)
        entropy = np.array([0.5, 0.5])
        frac = np.array([0.4, 0.4])
        for affordable in (np.array([True, True]), np.array([False, True])):
            got = group.decide_batch(np.arange(2), entropy, frac, affordable)
            want = [
                rules[i].decide(float(entropy[i]), float(frac[i]), bool(affordable[i]))
                == CONTINUE
                for i in range(2)
            ]
            assert got.tolist() == want

    def test_learned_group_matches_scalar_episode(self):
        """Decide/observe/end_episode against scalar twins, including the
        trajectory-credit chain and the unaffordable draw-free STOP."""
        batched_rules = [IncrementalDecider(rng=31 + i) for i in range(2)]
        scalar_rules = [IncrementalDecider(rng=31 + i) for i in range(2)]
        group = LearnedRuleBatch(2, [0, 1], batched_rules, max_steps=3,
                                 decay_rows=[0])
        idx = np.arange(2)
        steps = [
            (np.array([0.9, 0.2]), np.array([0.8, 0.5]), np.array([True, True])),
            (np.array([0.7, 0.6]), np.array([0.5, 0.3]), np.array([False, True])),
        ]
        scalar_trajs = [[], []]
        for entropy, frac, affordable in steps:
            got = group.decide_batch(idx, entropy, frac, affordable)
            for i, rule in enumerate(scalar_rules):
                action = rule.decide(
                    float(entropy[i]), float(frac[i]), bool(affordable[i])
                )
                scalar_trajs[i].append(
                    (rule.state_of(float(entropy[i]), float(frac[i])), action)
                )
                assert got[i] == (action == CONTINUE)
        rewards = np.array([1.0, 0.0])
        group.observe_batch(idx, rewards)
        for i, rule in enumerate(scalar_rules):
            rule.observe_trajectory(scalar_trajs[i], float(rewards[i]))
        group.end_episode_batch(idx)
        scalar_rules[0].decay_epsilon()  # row 0 is the qlearning parent
        for i, rule in enumerate(scalar_rules):
            np.testing.assert_array_equal(
                group._tables[i], rule.qtable.table
            )
            assert group._epsilon[i] == rule.qtable.epsilon

    def test_batch_continue_rules_partition(self):
        controllers = [
            make_controller("greedy", 4, exit_energies_mj=COSTS,
                            capacity_mj=2.0, rng=1,
                            continue_rule={"kind": "threshold"}),
            make_controller("qlearning", 4, rng=2,
                            continue_rule={"kind": "learned"}),
            make_controller("fixed", 4, exit_energies_mj=COSTS,
                            capacity_mj=2.0, rng=3),
        ]
        groups, group_of = batch_continue_rules(controllers, max_steps=3)
        assert len(groups) == 2
        assert group_of[2] == -1  # NeverContinue rows stay ungrouped
        assert group_of[0] != group_of[1]

    def test_rows_subset_restricts_grouping(self):
        controllers = [
            make_controller("greedy", 4, exit_energies_mj=COSTS,
                            capacity_mj=2.0, rng=i,
                            continue_rule={"kind": "threshold"})
            for i in range(3)
        ]
        groups, group_of = batch_continue_rules(
            controllers, max_steps=3, rows=[0, 2]
        )
        assert group_of.tolist() == [0, -1, 0]
        assert groups[0].rows.tolist() == [0, 2]


class TestFixedBatchValidation:
    def test_out_of_range_exit_index_raises_at_construction(self):
        """The scalar path IndexErrors on a fixed exit past the profile;
        the batched group must surface the misconfiguration loudly too
        instead of treating the +inf padding as a perpetual miss."""
        controllers = [
            StaticController(FixedExitPolicy(2)),  # only exits 0..1 exist
            StaticController(FixedExitPolicy(0)),
        ]
        cost = np.array([[0.1, 0.3, np.inf], [0.1, 0.3, 0.6]])
        with pytest.raises(ConfigError, match="exit_index"):
            FixedBatch(2, [0, 1], controllers, cost)

    def test_in_range_indices_construct(self):
        controllers = [StaticController(FixedExitPolicy(1))]
        group = FixedBatch(1, [0], controllers, np.array([[0.1, 0.3]]))
        state = _state_batch([1.0], [0.5])
        assert group.select_exit_batch(np.arange(1), state).tolist() == [1]
