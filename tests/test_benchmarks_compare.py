"""Unit tests for the benchmark trajectory gate (benchmarks/compare.py)."""

import importlib.util
import json
import os

import pytest

_COMPARE_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "compare.py",
)
spec = importlib.util.spec_from_file_location("bench_compare", _COMPARE_PATH)
compare = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare)


class TestThroughputMetrics:
    def test_flattens_nested_throughput_keys_only(self):
        payload = {
            "bench": "x",
            "rounds": 5,
            "fleet": {"devices": 32, "serial_devices_per_s": 100.0,
                      "best_s": 0.2},
            "cells_per_second": 7.5,
        }
        assert compare.throughput_metrics(payload) == {
            "fleet.serial_devices_per_s": 100.0,
            "cells_per_second": 7.5,
        }

    def test_booleans_are_not_metrics(self):
        assert compare.throughput_metrics({"smoke_per_s": True}) == {}


class TestCompareFile:
    def _write(self, path, payload):
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return str(path)

    def test_within_threshold_passes(self, tmp_path):
        base = self._write(tmp_path / "b.json", {"x_per_s": 100.0})
        fresh = self._write(tmp_path / "f.json", {"x_per_s": 80.0})
        assert compare.compare_file(fresh, base, max_regress=0.25) == []

    def test_regression_beyond_threshold_fails(self, tmp_path):
        base = self._write(tmp_path / "b.json", {"x_per_s": 100.0})
        fresh = self._write(tmp_path / "f.json", {"x_per_s": 70.0})
        problems = compare.compare_file(fresh, base, max_regress=0.25)
        assert len(problems) == 1
        assert "x_per_s" in problems[0]

    def test_missing_metric_in_fresh_run_fails(self, tmp_path):
        base = self._write(tmp_path / "b.json", {"x_per_s": 100.0})
        fresh = self._write(tmp_path / "f.json", {"other": 1})
        problems = compare.compare_file(fresh, base, max_regress=0.25)
        assert "missing" in problems[0]

    def test_non_positive_baseline_is_a_named_finding(self, tmp_path):
        """A zero/negative baseline throughput must not be skipped silently:
        it means the committed payload is broken (stale smoke artifact, or a
        zero-duration round), and every fresh value would trivially pass."""
        base = self._write(
            tmp_path / "b.json", {"x_per_s": 0.0, "y_per_s": -3.0}
        )
        fresh = self._write(
            tmp_path / "f.json", {"x_per_s": 100.0, "y_per_s": 100.0}
        )
        problems = compare.compare_file(fresh, base, max_regress=0.25)
        assert len(problems) == 2
        assert any("x_per_s" in p and "0.0" in p for p in problems)
        assert any("y_per_s" in p and "-3.0" in p for p in problems)
        assert all("positive" in p for p in problems)

    def test_faster_fresh_run_passes(self, tmp_path):
        base = self._write(tmp_path / "b.json", {"x_per_s": 100.0})
        fresh = self._write(tmp_path / "f.json", {"x_per_s": 400.0})
        assert compare.compare_file(fresh, base, max_regress=0.25) == []

    def test_fallback_recorded_parallel_metrics_are_not_gated(self, tmp_path):
        """A serial-fallback 'parallel' timing must not gate a genuine pool
        timing from a machine with a different CPU budget (either side)."""
        base = self._write(
            tmp_path / "b.json",
            {"fleet": {"serial_per_s": 100.0, "parallel_devices_per_s": 1700.0,
                       "parallel_fell_back_to_serial": True}},
        )
        fresh = self._write(
            tmp_path / "f.json",
            {"fleet": {"serial_per_s": 95.0, "parallel_devices_per_s": 600.0,
                       "parallel_fell_back_to_serial": False}},
        )
        assert compare.compare_file(fresh, base, max_regress=0.25) == []
        # ...but the serial metric in the same section is still gated.
        slow = self._write(
            tmp_path / "s.json",
            {"fleet": {"serial_per_s": 10.0, "parallel_devices_per_s": 600.0,
                       "parallel_fell_back_to_serial": False}},
        )
        problems = compare.compare_file(slow, base, max_regress=0.25)
        assert len(problems) == 1 and "serial_per_s" in problems[0]


class TestMain:
    def test_missing_fresh_payload_is_a_failure(self, tmp_path, capsys):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        baseline.mkdir()
        fresh.mkdir()
        with open(baseline / "BENCH_x.json", "w") as fh:
            json.dump({"a_per_s": 10.0}, fh)
        rc = compare.main(["--fresh", str(fresh), "--baseline", str(baseline)])
        assert rc == 1
        assert "did not run" in capsys.readouterr().err

    def test_clean_pass_returns_zero(self, tmp_path):
        baseline = tmp_path / "baseline"
        fresh = tmp_path / "fresh"
        baseline.mkdir()
        fresh.mkdir()
        for d in (baseline, fresh):
            with open(d / "BENCH_x.json", "w") as fh:
                json.dump({"a_per_s": 10.0}, fh)
        rc = compare.main(["--fresh", str(fresh), "--baseline", str(baseline)])
        assert rc == 0

    def test_no_baselines_is_an_error(self, tmp_path):
        rc = compare.main(
            ["--fresh", str(tmp_path), "--baseline", str(tmp_path)]
        )
        assert rc == 2

    def test_bad_threshold_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            compare.main(
                ["--fresh", str(tmp_path), "--baseline", str(tmp_path),
                 "--max-regress", "1.5"]
            )
