"""Gateway twin determinism against the committed goldens.

The gateway's hard requirement (ISSUE 10 / ROADMAP): advancing a fleet
in K increments through a :class:`~repro.gateway.twin.FleetTwin` — any
split, across checkpoint/restore cycles and ``submit`` cohorts — must
produce aggregates byte-identical to one uninterrupted
:class:`~repro.fleet.runner.FleetRunner` run.  These tests enforce it
against the same ``tests/golden/`` files that pin the engines, so a twin
that drifts from the one-shot path by a single float bit fails loudly.
"""

import glob
import json
import os

import pytest

from repro.errors import ConfigError, CorruptCellError, GatewayError
from repro.fleet import SCENARIOS, FleetRunner
from repro.gateway import FleetTwin, load_checkpoint, save_checkpoint

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
GOLDEN_FILES = sorted(glob.glob(os.path.join(GOLDEN_DIR, "fleet_*.json")))


def _load(path):
    with open(path) as fh:
        return json.load(fh)


def _case_id(path):
    return os.path.basename(path)[len("fleet_"):-len(".json")]


def _exact(aggregate, golden_aggregate):
    # json round-trip normalizes int/float types the same way the golden
    # file stores them, so == is an exact (bit-stable) comparison.
    assert json.loads(json.dumps(aggregate)) == golden_aggregate


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=_case_id)
@pytest.mark.parametrize("k", [1, 3, 7])
def test_incremental_advance_matches_golden(path, k):
    """Any K-way split of advance() reproduces the golden bits."""
    golden = _load(path)
    twin = FleetTwin.from_scenario(golden["scenario"], golden["overrides"])
    increments = 0
    while not twin.finished:
        assert twin.advance(k)["executed"] > 0
        increments += 1
    assert increments >= twin.total_steps // k
    _exact(twin.query("aggregate"), golden["aggregate"])


@pytest.mark.parametrize("path", GOLDEN_FILES, ids=_case_id)
def test_checkpoint_restore_matches_golden(path, tmp_path):
    """Checkpoint mid-run, replay into a fresh twin, finish both: the
    restored twin reproduces the golden bits (and the original's)."""
    golden = _load(path)
    twin = FleetTwin.from_scenario(golden["scenario"], golden["overrides"])
    twin.advance(max(1, twin.total_steps // 3))
    ck = tmp_path / "twin.ck.json"
    summary = save_checkpoint(twin, str(ck))
    assert summary["steps_done"] == twin.steps_done
    restored = load_checkpoint(str(ck))
    assert restored.steps_done == twin.steps_done
    twin.advance(None)
    restored.advance(None)
    _exact(twin.query("aggregate"), golden["aggregate"])
    _exact(restored.query("aggregate"), golden["aggregate"])


def test_submit_cohorts_match_one_shot():
    """Devices submitted in waves aggregate identically to one fleet."""
    spec = SCENARIOS.build("mixed-harvester-city", num_devices=8)
    one = FleetRunner(spec, workers=1).run().aggregate()
    half = [d.to_dict() for d in spec.devices]
    twin = FleetTwin.from_spec(
        {"name": spec.name, "seed": spec.seed, "devices": half[:3]}
    )
    twin.advance(5)  # first cohort already mid-flight when the rest arrive
    out = twin.submit(half[3:])
    assert out["devices"] == 8 and out["added"] == 5
    twin.advance(None)
    _exact(twin.query("aggregate"), one)


def test_submit_cohorts_checkpoint_roundtrip(tmp_path):
    """The journal replays submit cohorts and partial advances exactly."""
    spec = SCENARIOS.build("dev-smoke")
    one = FleetRunner(spec, workers=1).run().aggregate()
    devices = [d.to_dict() for d in spec.devices]
    twin = FleetTwin.from_spec(
        {"name": spec.name, "seed": spec.seed, "devices": devices[:2]}
    )
    twin.advance(3)
    twin.submit(devices[2:])
    twin.advance(4)
    ck = tmp_path / "cohorts.ck.json"
    save_checkpoint(twin, str(ck))
    restored = load_checkpoint(str(ck))
    twin.advance(None)
    restored.advance(None)
    _exact(restored.query("aggregate"), one)
    _exact(twin.query("aggregate"), one)


def test_corrupt_checkpoint_is_detected(tmp_path):
    twin = FleetTwin.from_scenario("dev-smoke")
    ck = tmp_path / "ck.json"
    save_checkpoint(twin, str(ck))
    raw = bytearray(ck.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    ck.write_bytes(bytes(raw))
    with pytest.raises(CorruptCellError):
        load_checkpoint(str(ck))


def test_missing_and_empty_checkpoints(tmp_path):
    with pytest.raises(GatewayError):
        load_checkpoint(str(tmp_path / "nope.json"))
    empty = tmp_path / "empty.json"
    empty.write_text("")
    with pytest.raises(CorruptCellError):
        load_checkpoint(str(empty))


def test_query_before_finished_is_an_error():
    twin = FleetTwin.from_scenario("dev-smoke")
    twin.advance(1)
    with pytest.raises(GatewayError, match="mid-run"):
        twin.query("aggregate")
    progress = twin.query("progress")
    assert progress["steps_done"] == 1 and not progress["finished"]
    with pytest.raises(GatewayError, match="unknown query"):
        twin.advance(None)
        twin.query("nonsense")


def test_ineligible_devices_are_named():
    """Gateway twins are lockstep-only: csv traces must fail loudly."""
    spec = SCENARIOS.build("dev-smoke")
    devices = [d.to_dict() for d in spec.devices]
    devices[0]["trace"] = {"family": "csv", "path": "does-not-matter.csv"}
    with pytest.raises(ConfigError, match=devices[0]["name"]):
        FleetTwin.from_spec(
            {"name": "bad", "seed": 1, "devices": devices}
        )


def test_advance_rejects_negative_steps():
    twin = FleetTwin.from_scenario("dev-smoke")
    with pytest.raises(ConfigError):
        twin.advance(-1)


def test_journal_shape():
    """The journal is plain JSON data: create, then submits/advances."""
    twin = FleetTwin.from_scenario("dev-smoke")
    twin.advance(2)
    twin.advance(None)
    ops = [op["op"] for op in twin.journal]
    assert ops[0] == "create" and set(ops[1:]) == {"advance"}
    json.dumps(twin.journal)  # must be serializable as-is
