"""Fleet subsystem tests: specs, registry, runner determinism, CLI.

The expensive full-scale checks (``solar-farm-100`` end to end) carry the
``fleet_heavy`` marker so CI's fast lane can deselect them with
``-m "not fleet_heavy"``; everything else stays in the seconds range.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.fleet import (
    SCENARIOS,
    DeviceSpec,
    FleetRunner,
    FleetSpec,
    ScenarioRegistry,
    run_device,
    run_fleet,
)
from repro.fleet.runner import build_trace, resolve_profile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def tiny_device(name="dev", **overrides) -> DeviceSpec:
    base = dict(
        name=name,
        trace={"family": "solar", "duration": 400.0, "dt": 1.0, "peak_mw": 0.03},
        controller={"kind": "greedy"},
        events={"kind": "uniform", "count": 15},
    )
    base.update(overrides)
    return DeviceSpec(**base)


def tiny_fleet(n=3, seed=5) -> FleetSpec:
    return FleetSpec(
        name="tiny", seed=seed, devices=[tiny_device(f"dev-{i}") for i in range(n)]
    )


class TestDeviceSpec:
    def test_roundtrip(self):
        spec = tiny_device(
            profile={"name": "inline", "exit_accuracies": [0.7],
                     "exit_energy_mj": [0.5], "exit_flops": [1e5]},
            episodes=4,
        )
        clone = DeviceSpec.from_dict(spec.to_dict())
        assert clone == spec

    def test_unknown_field_rejected(self):
        data = tiny_device().to_dict()
        data["battery"] = {}
        with pytest.raises(ConfigError, match="battery"):
            DeviceSpec.from_dict(data)

    def test_validation_names_offender(self):
        with pytest.raises(ConfigError, match="plutonium"):
            tiny_device(trace={"family": "plutonium"})
        with pytest.raises(ConfigError, match="bandit"):
            tiny_device(controller={"kind": "bandit"})
        with pytest.raises(ConfigError, match="storm"):
            tiny_device(events={"kind": "storm"})
        with pytest.raises(ConfigError, match="warp"):
            tiny_device(execution="warp")
        with pytest.raises(ConfigError, match="mystery-net"):
            tiny_device(profile="mystery-net")
        with pytest.raises(ConfigError, match="episodes"):
            tiny_device(episodes=0)

    def test_zoo_profile_reference_is_valid_spec(self):
        # Spec-level validation only; resolution is the runner's job.
        spec = tiny_device(profile="zoo:multi_exit_lenet")
        assert DeviceSpec.from_dict(spec.to_dict()) == spec


class TestFleetSpec:
    def test_json_roundtrip(self, tmp_path):
        spec = tiny_fleet()
        path = tmp_path / "fleet.json"
        spec.to_json(str(path))
        clone = FleetSpec.from_json(str(path))
        assert clone == spec

    def test_needs_devices(self):
        with pytest.raises(ConfigError, match="no devices"):
            FleetSpec(name="empty", devices=[])

    def test_seed_must_be_int(self):
        with pytest.raises(ConfigError, match="seed"):
            FleetSpec(name="f", devices=[tiny_device()], seed="42")

    def test_non_int_seed_in_file_rejected_not_truncated(self):
        data = tiny_fleet().to_dict()
        data["seed"] = 4.5
        with pytest.raises(ConfigError, match="seed"):
            FleetSpec.from_dict(data)
        data["seed"] = "abc"
        with pytest.raises(ConfigError, match="seed"):
            FleetSpec.from_dict(data)

    def test_unknown_top_level_field_rejected(self):
        data = tiny_fleet().to_dict()
        data["sed"] = 99  # misspelled "seed" must not silently vanish
        with pytest.raises(ConfigError, match="sed"):
            FleetSpec.from_dict(data)

    def test_malformed_json_wrapped(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"')
        with pytest.raises(ConfigError, match="cannot load fleet spec"):
            FleetSpec.from_json(str(path))


class TestScenarioRegistry:
    def test_builtins_registered(self):
        names = SCENARIOS.names()
        for expected in (
            "solar-farm-100",
            "indoor-rf-swarm",
            "mixed-harvester-city",
            "dev-smoke",
        ):
            assert expected in names

    def test_solar_farm_default_size(self):
        assert SCENARIOS.build("solar-farm-100").num_devices == 100

    def test_overrides_reach_factory(self):
        spec = SCENARIOS.build("solar-farm-100", num_devices=7, seed=1)
        assert spec.num_devices == 7
        assert spec.seed == 1

    def test_layout_is_deterministic_in_seed(self):
        a = SCENARIOS.build("mixed-harvester-city", num_devices=10, seed=3)
        b = SCENARIOS.build("mixed-harvester-city", num_devices=10, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_unknown_scenario_raises(self):
        with pytest.raises(ConfigError, match="unknown scenario"):
            SCENARIOS.build("atlantis")

    def test_unknown_override_raises_config_error(self):
        with pytest.raises(ConfigError, match="dev-smoke"):
            SCENARIOS.build("dev-smoke", bogus=1)

    def test_duplicate_registration_rejected(self):
        registry = ScenarioRegistry()

        @registry.register("x")
        def factory():
            return tiny_fleet()

        with pytest.raises(ConfigError, match="already registered"):
            registry.register("x")(factory)

    def test_all_builtin_scenarios_expand(self):
        import inspect

        for name in SCENARIOS.names():
            params = inspect.signature(SCENARIOS.factory(name)).parameters
            if "device_range" in params:
                # Megacity-scale scenarios are sliceable by design; a full
                # default expansion (1M DeviceSpecs) belongs to the shard
                # runner, not a unit test.
                spec = SCENARIOS.build(name, device_range=(0, 8))
            else:
                spec = SCENARIOS.build(name)
            assert spec.num_devices >= 1


class TestProfiles:
    def test_inline_dict(self):
        profile = resolve_profile(
            {"name": "p", "exit_accuracies": [0.6], "exit_energy_mj": [0.5],
             "exit_flops": [1e5]}
        )
        assert profile.num_exits == 1

    def test_named_profiles_cached_per_process(self):
        assert resolve_profile("paper-multi-exit") is resolve_profile("paper-multi-exit")

    def test_unresolvable_raises(self):
        with pytest.raises(ConfigError):
            resolve_profile(3.14)


class TestTraceCache:
    SPEC = {"family": "solar", "duration": 400.0, "dt": 1.0, "peak_mw": 0.03}

    def test_repeated_device_spec_builds_share_one_trace(self):
        """Identical (family, params, seed) must hit the per-process memo:
        equal-valued AND the cached-identical object."""
        first = build_trace(dict(self.SPEC), fallback_seed=99)
        second = build_trace(dict(self.SPEC), fallback_seed=99)
        assert second is first
        np.testing.assert_array_equal(first.samples_mw, second.samples_mw)

    def test_different_seed_is_a_different_trace(self):
        a = build_trace(dict(self.SPEC), fallback_seed=98)
        b = build_trace(dict(self.SPEC), fallback_seed=99)
        assert a is not b
        assert not np.array_equal(a.samples_mw, b.samples_mw)

    def test_explicit_seed_beats_fallback_and_caches(self):
        pinned = dict(self.SPEC, seed=123)
        a = build_trace(dict(pinned), fallback_seed=1)
        b = build_trace(dict(pinned), fallback_seed=2)
        assert b is a

    def test_unhashable_param_skips_cache(self):
        rng = np.random.default_rng(0)
        a = build_trace(dict(self.SPEC, seed=rng), fallback_seed=0)
        b = build_trace(dict(self.SPEC, seed=rng), fallback_seed=0)
        assert a is not b  # live Generator cannot key a deterministic memo

    def test_run_device_results_unchanged_by_cache_hits(self):
        """A warm cache must never change simulated results — only speed."""
        task = (0, tiny_device(), 5)
        cold = run_device(task).to_dict()
        warm = run_device(task).to_dict()
        assert cold == warm


class TestRunner:
    def test_run_device_consistency(self):
        result = run_device((0, tiny_device(), 5))
        assert result.num_events == 15
        assert result.num_processed + result.num_missed == result.num_events
        assert result.iepmj == pytest.approx(
            result.num_correct / result.total_env_energy_mj
        )
        assert sum(result.miss_counts.values()) == result.num_missed

    def test_serial_run_is_deterministic(self):
        spec = tiny_fleet()
        a = run_fleet(spec).to_dict()
        b = run_fleet(spec).to_dict()
        assert a == b

    def test_parallel_matches_serial_bitwise(self):
        spec = SCENARIOS.build("dev-smoke", num_devices=5)
        serial = FleetRunner(spec, workers=1).run()
        parallel = FleetRunner(spec, workers=2, chunksize=1).run()
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )

    def test_device_index_pins_streams(self):
        """Same device spec at different indices sees different randomness."""
        spec = tiny_fleet(n=2)
        result = run_fleet(spec)
        a, b = result.devices
        assert (a.num_correct, a.total_env_energy_mj) != (
            b.num_correct,
            b.total_env_energy_mj,
        )

    def test_aggregate_sums_devices(self):
        result = run_fleet(tiny_fleet(n=3))
        agg = result.aggregate()
        assert agg["events"] == sum(d.num_events for d in result.devices)
        assert agg["correct"] == sum(d.num_correct for d in result.devices)
        total_energy = sum(d.total_env_energy_mj for d in result.devices)
        assert agg["fleet_iepmj"] == pytest.approx(agg["correct"] / total_energy)
        assert sum(agg["miss_counts"].values()) == agg["missed"]

    def test_mixed_scenario_runs_both_execution_models(self):
        spec = SCENARIOS.build("mixed-harvester-city", num_devices=12)
        assert {d.execution for d in spec.devices} == {"single-cycle", "intermittent"}
        result = run_fleet(spec)
        assert result.num_devices == 12

    def test_typoed_build_params_become_config_errors(self):
        """Typo'd constructor params must surface as spec problems."""
        with pytest.raises(ConfigError, match="storage"):
            run_device((0, tiny_device(storage={"capacity": 3.0}), 5))
        with pytest.raises(ConfigError, match="solar trace"):
            run_device((0, tiny_device(trace={"family": "solar", "durationn": 100.0}), 5))
        with pytest.raises(ConfigError, match="mcu"):
            run_device((0, tiny_device(mcu={"thoughput_mflops": 1.0}), 5))
        with pytest.raises(ConfigError, match="controller"):
            run_device((0, tiny_device(controller={"kind": "greedy", "reserve": 0.5}), 5))
        with pytest.raises(ConfigError, match="events"):
            run_device((0, tiny_device(events={"kind": "uniform"}), 5))

    def test_bad_worker_config_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            FleetRunner(tiny_fleet(), workers=-1)
        with pytest.raises(ConfigError, match="chunksize"):
            FleetRunner(tiny_fleet(), chunksize=0)
        with pytest.raises(ConfigError, match="FleetSpec"):
            FleetRunner("solar-farm-100")


class TestCLI:
    def _run(self, *argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.fleet", *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=300,
        )

    def test_list(self):
        proc = self._run("list")
        assert proc.returncode == 0
        assert "solar-farm-100" in proc.stdout

    def test_run_smoke_with_json(self, tmp_path):
        out = tmp_path / "report.json"
        proc = self._run("run", "dev-smoke", "--workers", "1", "--json", str(out))
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert report["aggregate"]["fleet"] == "dev-smoke"
        # One device per harvesting family, so the smoke lane exercises
        # every trace builder (including wind).
        assert len(report["devices"]) == 5
        assert any(d["name"].startswith("smoke-wind") for d in report["devices"])

    def test_unknown_scenario_exits_nonzero(self):
        proc = self._run("run", "atlantis")
        assert proc.returncode == 2
        assert "unknown scenario" in proc.stderr

    def test_spec_file_rejects_scenario_overrides(self, tmp_path):
        path = tmp_path / "fleet.json"
        tiny_fleet().to_json(str(path))
        proc = self._run("run", "--spec", str(path), "--seed", "99")
        assert proc.returncode == 2
        assert "named scenarios only" in proc.stderr

    def test_scenario_name_conflicts_with_spec_file(self, tmp_path):
        path = tmp_path / "fleet.json"
        tiny_fleet().to_json(str(path))
        proc = self._run("run", "solar-farm-100", "--spec", str(path))
        assert proc.returncode == 2
        assert "pick one" in proc.stderr


@pytest.mark.fleet_heavy
class TestFullScale:
    def test_solar_farm_100_parallel_equals_serial(self):
        spec = SCENARIOS.build("solar-farm-100")
        serial = FleetRunner(spec, workers=1).run()
        parallel = FleetRunner(spec, workers=4).run()
        assert serial.num_devices == 100
        assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
            parallel.to_dict(), sort_keys=True
        )


class TestFleetExitDepth:
    """exit_counts / mean_exit_depth — the campaign layer's depth hooks."""

    def test_exit_counts_pad_mixed_profile_widths(self):
        result = run_fleet(tiny_fleet(n=2))
        a, b = result.devices
        # Device histograms sum into the fleet histogram, padded to the
        # deepest profile.
        width = max(len(a.exit_counts), len(b.exit_counts))
        expected = [
            (a.exit_counts[i] if i < len(a.exit_counts) else 0)
            + (b.exit_counts[i] if i < len(b.exit_counts) else 0)
            for i in range(width)
        ]
        assert result.exit_counts() == expected

    def test_mean_exit_depth_matches_histogram(self):
        result = run_fleet(tiny_fleet(n=3))
        counts = result.exit_counts()
        total = sum(counts)
        assert total > 0
        expected = sum(i * c for i, c in enumerate(counts)) / total
        assert result.mean_exit_depth == pytest.approx(expected)
        assert result.aggregate()["mean_exit_depth"] == pytest.approx(expected)

    def test_empty_histogram_is_zero_depth(self):
        from repro.fleet.results import FleetResult

        empty = FleetResult(fleet_name="x", seed=0, devices=[])
        assert empty.exit_counts() == []
        assert empty.mean_exit_depth == 0.0
