"""Continue/stop decision tests."""

import pytest

from repro.errors import ConfigError
from repro.runtime.incremental import (
    CONTINUE,
    STOP,
    IncrementalDecider,
    NeverContinue,
    ThresholdContinue,
    resolve_continue_rule,
)


class TestNeverContinue:
    def test_always_stops(self):
        rule = NeverContinue()
        assert rule.decide(1.0, 1.0, True) == STOP
        assert rule.decide(0.0, 0.0, False) == STOP

    def test_state_is_none(self):
        assert NeverContinue().state_of(0.5, 0.5) is None


class TestThresholdContinue:
    def test_continues_on_low_confidence(self):
        rule = ThresholdContinue(entropy_threshold=0.5)
        assert rule.decide(0.8, 0.5, True) == CONTINUE
        assert rule.decide(0.2, 0.5, True) == STOP

    def test_never_continues_when_unaffordable(self):
        rule = ThresholdContinue(entropy_threshold=0.0)
        assert rule.decide(1.0, 1.0, False) == STOP

    def test_validation(self):
        with pytest.raises(ConfigError):
            ThresholdContinue(entropy_threshold=1.5)


class TestIncrementalDecider:
    def test_state_discretization(self):
        decider = IncrementalDecider(confidence_bins=4, energy_bins=4)
        assert decider.state_of(0.0, 0.0) == (0, 0)
        assert decider.state_of(1.0, 1.0) == (3, 3)

    def test_unaffordable_forces_stop(self):
        decider = IncrementalDecider(epsilon=1.0, rng=0)  # would explore
        assert decider.decide(0.9, 0.9, affordable=False) == STOP

    def test_trajectory_credits_final_reward(self):
        decider = IncrementalDecider(epsilon=0.0, rng=0)
        s0, s1 = (3, 3), (1, 3)
        decider.observe_trajectory([(s0, CONTINUE), (s1, STOP)], final_reward=1.0)
        assert decider.qtable.table[s1 + (STOP,)] > 0.0

    def test_empty_trajectory_is_noop(self):
        decider = IncrementalDecider(rng=0)
        before = decider.qtable.table.copy()
        decider.observe_trajectory([], final_reward=1.0)
        assert (decider.qtable.table == before).all()

    def test_learns_to_continue_when_rewarded(self):
        """Continuing always yields 1, stopping always 0 -> learn continue."""
        decider = IncrementalDecider(epsilon=0.3, rng=0)
        state = decider.state_of(0.9, 0.9)
        for _ in range(300):
            action = decider.decide(0.9, 0.9, affordable=True)
            decider.observe_trajectory([(state, action)], float(action == CONTINUE))
        decider.qtable.epsilon = 0.0
        assert decider.decide(0.9, 0.9, affordable=True) == CONTINUE

    def test_epsilon_decays(self):
        decider = IncrementalDecider(epsilon=0.4, epsilon_decay=0.5, rng=0)
        decider.decay_epsilon()
        assert decider.qtable.epsilon == pytest.approx(0.2)


class TestResolveContinueRule:
    def test_none_is_never(self):
        assert isinstance(resolve_continue_rule(None), NeverContinue)

    def test_instance_passes_through(self):
        rule = ThresholdContinue(0.3)
        assert resolve_continue_rule(rule) is rule

    def test_declarative_kinds(self):
        assert isinstance(
            resolve_continue_rule({"kind": "never"}), NeverContinue
        )
        threshold = resolve_continue_rule(
            {"kind": "threshold", "entropy_threshold": 0.25}
        )
        assert isinstance(threshold, ThresholdContinue)
        assert threshold.entropy_threshold == 0.25
        learned = resolve_continue_rule(
            {"kind": "learned", "epsilon": 0.4}, rng=7
        )
        assert isinstance(learned, IncrementalDecider)
        assert learned.qtable.epsilon == 0.4

    def test_learned_rng_is_deterministic(self):
        a = resolve_continue_rule({"kind": "learned"}, rng=11)
        b = resolve_continue_rule({"kind": "learned"}, rng=11)
        assert a.qtable.select_action((0, 0)) == b.qtable.select_action((0, 0))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="continue_rule kind"):
            resolve_continue_rule({"kind": "warp"})
        with pytest.raises(ConfigError, match="continue_rule"):
            resolve_continue_rule("threshold")

    def test_bad_params_surface_as_config_errors(self):
        with pytest.raises(ConfigError, match="threshold"):
            resolve_continue_rule({"kind": "threshold", "bogus": 1})
