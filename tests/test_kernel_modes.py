"""REPRO_KERNEL selection + compiled/numpy/scalar equivalence.

The batched engine's hot loops exist twice: always-available pure-numpy
lanes and optional numba ``@njit`` kernels.  The contract under test:

* ``REPRO_KERNEL`` resolves predictably — default numpy, typos fail
  loudly, ``compiled`` without numba falls back green with a *named*
  reason (``--explain`` prints it).
* Both implementations are bit-identical to the scalar per-device
  reference on every golden scenario — the mode knob can change wall
  clock only, never a single result bit.
* The event-batched kernel actually batches: physical kernel passes on
  the profiled city-block shape are far below the logical micro-step
  count (which must itself stay mode-invariant for obs).

When numba is not installed (the default image), the compiled *algorithms*
still run here: ``repro.*.compiled`` degrade ``@njit`` to a passthrough
decorator, so forcing ``HAVE_NUMBA`` executes the same code paths
interpreted.  Under the CI compiled lane (numba installed) the identical
tests exercise the real JIT output.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.fleet import SCENARIOS, FleetRunner
from repro.obs.recorder import Recorder, recording
from repro.utils import kernelmode


def _payload(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture
def clean_env(monkeypatch):
    monkeypatch.delenv(kernelmode.KERNEL_ENV, raising=False)
    return monkeypatch


@pytest.fixture
def force_compiled(monkeypatch):
    """Route runs through the compiled code paths regardless of numba.

    With numba installed this is the real JIT; without it the stub
    ``@njit`` leaves the kernels as plain Python functions, so the exact
    compiled control flow still executes (slower, same bits).
    """
    from repro.intermittent import compiled as int_compiled
    from repro.sim import compiled as sim_compiled

    monkeypatch.setenv(kernelmode.KERNEL_ENV, "compiled")
    monkeypatch.setattr(kernelmode, "_NUMBA_STATUS", (True, "numba (forced)"))
    monkeypatch.setattr(int_compiled, "HAVE_NUMBA", True)
    monkeypatch.setattr(sim_compiled, "HAVE_NUMBA", True)
    return monkeypatch


class TestModeResolution:
    def test_default_is_numpy(self, clean_env):
        assert kernelmode.requested_kernel_mode() == "numpy"
        mode, detail = kernelmode.resolve_kernel_mode()
        assert mode == "numpy"
        assert "default" in detail

    def test_explicit_numpy(self, clean_env):
        clean_env.setenv(kernelmode.KERNEL_ENV, "numpy")
        assert kernelmode.resolve_kernel_mode() == (
            "numpy",
            "pure-numpy lanes (default)",
        )

    def test_spelling_is_normalized(self, clean_env):
        clean_env.setenv(kernelmode.KERNEL_ENV, "  NumPy ")
        assert kernelmode.requested_kernel_mode() == "numpy"

    def test_typo_fails_loudly(self, clean_env):
        clean_env.setenv(kernelmode.KERNEL_ENV, "bogus")
        with pytest.raises(ConfigError, match="REPRO_KERNEL"):
            kernelmode.requested_kernel_mode()
        with pytest.raises(ConfigError, match="bogus"):
            kernelmode.resolve_kernel_mode()

    def test_compiled_resolves_by_numba_availability(self, clean_env):
        clean_env.setenv(kernelmode.KERNEL_ENV, "compiled")
        available, _ = kernelmode.numba_status()
        mode, detail = kernelmode.resolve_kernel_mode()
        if available:
            assert mode == "compiled" and "numba" in detail
        else:
            assert mode == "numpy"
            assert "compiled requested but" in detail

    def test_missing_numba_fallback_is_named(self, clean_env):
        clean_env.setenv(kernelmode.KERNEL_ENV, "compiled")
        clean_env.setattr(
            kernelmode,
            "_NUMBA_STATUS",
            (False, "numba unavailable (ImportError)"),
        )
        mode, detail = kernelmode.resolve_kernel_mode()
        assert mode == "numpy"
        assert "using numpy" in detail and "numba unavailable" in detail

    def test_run_emits_kernel_mode_counter(self, clean_env):
        spec = SCENARIOS.build("dev-smoke")
        with recording(Recorder(metrics=True)) as rec:
            FleetRunner(spec, workers=1, engine="auto").run()
        assert rec.metrics.counter_value("batch.kernel.numpy") >= 1


# Small slices of the golden scenarios: every trace family, both
# execution modes, leaky and loss-free storage, all controller presets.
_EQUIV_CASES = [
    ("dev-smoke", 5),
    ("mixed-harvester-city", 12),
    ("brownout-grid-256", 16),
    ("duty-cycle-farm-512", 16),
    ("city-block-1k", 32),
]


class TestCompiledEquivalence:
    @pytest.mark.parametrize("scenario,devices", _EQUIV_CASES)
    def test_compiled_equals_numpy_equals_scalar(
        self, force_compiled, scenario, devices
    ):
        spec = SCENARIOS.build(scenario, num_devices=devices)
        compiled = FleetRunner(spec, workers=1, engine="batched").run()
        force_compiled.setenv(kernelmode.KERNEL_ENV, "numpy")
        numpy_lanes = FleetRunner(spec, workers=1, engine="batched").run()
        scalar = FleetRunner(spec, workers=1, engine="device").run()
        assert _payload(compiled) == _payload(numpy_lanes)
        assert _payload(numpy_lanes) == _payload(scalar)

    def test_compiled_reproduces_every_golden(self, force_compiled):
        import glob
        import os

        golden_dir = os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "golden"
        )
        paths = sorted(glob.glob(os.path.join(golden_dir, "fleet_*.json")))
        assert paths, "golden fleet files missing"
        for path in paths:
            with open(path) as fh:
                golden = json.load(fh)
            spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
            result = FleetRunner(spec, workers=1, engine="batched").run()
            assert (
                json.loads(json.dumps(result.aggregate())) == golden["aggregate"]
            ), f"compiled kernels diverged from {os.path.basename(path)}"


class TestPassCounts:
    def test_event_batching_collapses_kernel_passes(self, clean_env):
        """The profiled city-block-128 shape: logical micro-steps stay at
        the scalar-equivalent count (mode-invariant obs contract), while
        physical kernel passes collapse by at least 2x — the whole point
        of fusing micro-steps that cannot cross a power boundary.  (The
        measured collapse is ~28x; 2x is the regression floor.)"""
        spec = SCENARIOS.build("city-block-1k", num_devices=128)
        rec = Recorder(metrics=True, profile=True)
        with recording(rec):
            FleetRunner(spec, workers=1, engine="batched").run()
        counts = rec.profiler.to_dict()["counts"]
        micro = counts["intermittent.micro_passes"]
        physical = counts["intermittent.kernel_passes"]
        assert micro > 0 and physical > 0
        assert physical * 2 <= micro

    def test_logical_tallies_are_mode_invariant(self, force_compiled):
        """Obs counters must report scalar-equivalent logical counts in
        every kernel mode — dashboards keyed on them cannot move when
        someone flips REPRO_KERNEL."""
        spec = SCENARIOS.build("brownout-grid-256", num_devices=16)

        def tallies():
            rec = Recorder(metrics=True, profile=True)
            with recording(rec):
                FleetRunner(spec, workers=1, engine="batched").run()
            counts = rec.profiler.to_dict()["counts"]
            return {
                k: v
                for k, v in counts.items()
                if k.startswith("intermittent.") and k != "intermittent.kernel_passes"
            }

        compiled = tallies()
        force_compiled.setenv(kernelmode.KERNEL_ENV, "numpy")
        numpy_lanes = tallies()
        assert compiled == numpy_lanes
        assert compiled["intermittent.micro_passes"] > 0
