"""Post-compression fine-tuning tests."""

import numpy as np
import pytest

from repro.compress import (
    Compressor,
    FinetuneConfig,
    finetune_compressed,
    make_uniform_spec,
)
from repro.compress.evaluator import evaluate_exits
from repro.data import Dataset


@pytest.fixture
def compressed(tiny_net, tiny_dataset):
    spec = make_uniform_spec(tiny_net, 0.6, 4, 8)
    calib = tiny_dataset.val.x[:32, :2, :8, :8]
    return Compressor(input_shape=(2, 8, 8)).apply(tiny_net, spec, calibration_x=calib)


@pytest.fixture
def small_data(tiny_dataset):
    x = tiny_dataset.train.x[:120, :2, :8, :8]
    y = tiny_dataset.train.y[:120] % 5
    return Dataset(x, y)


class TestMaskPreservation:
    def test_pruned_channels_stay_zero(self, compressed, small_data):
        finetune_compressed(
            compressed, small_data.x, small_data.y, FinetuneConfig(epochs=2, seed=0)
        )
        for name, mask in compressed.masks.items():
            layer = compressed.net.layer_by_name(name)
            assert np.all(layer.weight.data[~mask] == 0.0)

    def test_kept_weights_actually_change(self, compressed, small_data):
        before = {
            name: compressed.net.layer_by_name(name).weight.data.copy()
            for name in compressed.masks
        }
        finetune_compressed(
            compressed, small_data.x, small_data.y, FinetuneConfig(epochs=1, seed=0)
        )
        moved = any(
            not np.allclose(before[name], compressed.net.layer_by_name(name).weight.data)
            for name in compressed.masks
        )
        assert moved

    def test_quantizers_stay_attached(self, compressed, small_data):
        finetune_compressed(
            compressed, small_data.x, small_data.y, FinetuneConfig(epochs=1, seed=0)
        )
        for layer in compressed.net.weighted_layers():
            assert layer.weight_quantizer is not None


class TestAccuracyRecovery:
    def test_finetune_improves_compressed_accuracy(self, compressed, small_data, tiny_dataset):
        test = Dataset(tiny_dataset.test.x[:80, :2, :8, :8], tiny_dataset.test.y[:80] % 5)
        before = np.mean(evaluate_exits(compressed, test).accuracies)
        finetune_compressed(
            compressed, small_data.x, small_data.y, FinetuneConfig(epochs=4, lr=0.01, seed=0)
        )
        after = np.mean(evaluate_exits(compressed, test).accuracies)
        assert after >= before - 0.02  # never materially worse, usually better

    def test_history_returned_with_validation(self, compressed, small_data):
        history = finetune_compressed(
            compressed,
            small_data.x,
            small_data.y,
            FinetuneConfig(epochs=2, seed=0),
            val_x=small_data.x,
            val_y=small_data.y,
        )
        assert len(history) == 2
        assert len(history[0]) == compressed.num_exits

    def test_no_validation_returns_empty_history(self, compressed, small_data):
        history = finetune_compressed(
            compressed, small_data.x, small_data.y, FinetuneConfig(epochs=1, seed=0)
        )
        assert history == []

    def test_deterministic(self, tiny_net, tiny_dataset, small_data):
        outs = []
        for _ in range(2):
            spec = make_uniform_spec(tiny_net, 0.6, 4, 8)
            model = Compressor(input_shape=(2, 8, 8)).apply(
                tiny_net, spec, calibration_x=tiny_dataset.val.x[:32, :2, :8, :8]
            )
            finetune_compressed(
                model, small_data.x, small_data.y, FinetuneConfig(epochs=1, seed=7)
            )
            outs.append(model.net.weighted_layers()[0].weight.data.copy())
        np.testing.assert_allclose(outs[0], outs[1])
