"""Observability integration: obs on/off never changes a result.

The repro.obs contract has two halves, both locked in here against real
fleet/campaign runs:

* **bit-identity** — with tracing, metrics, and the phase profiler all
  on, every engine reproduces the committed goldens exactly, campaign
  reports stay byte-identical, and the checkpointed ``"timing"`` block
  never leaks into ``report.json``;
* **observation correctness** — the recorded counters/spans/profiles
  actually describe the run: parent-side outcome metrics are identical
  serial vs forced-pool, worker wire snapshots merge into the parent
  registry, CLIs emit manifest-first trace files, and the campaign store
  gains a loadable provenance manifest.
"""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.campaign import CAMPAIGNS, CampaignStore, report_from_store, run_campaign
from repro.fleet import SCENARIOS, FleetRunner
from repro.fleet.__main__ import main as fleet_main
from repro.obs import MANIFEST_SCHEMA, Recorder, recording

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
#: A fast, representative golden subset: the 2-device smoke fleet and a
#: 4-device mixed fleet whose devices exercise the intermittent kernel.
OBS_GOLDENS = [
    os.path.join(GOLDEN_DIR, "fleet_dev-smoke_default.json"),
    os.path.join(GOLDEN_DIR, "fleet_mixed-harvester-city_4dev.json"),
    os.path.join(GOLDEN_DIR, "fleet_city-block-1k_4dev.json"),
]


def _load_golden(path):
    with open(path) as fh:
        return json.load(fh)


def _golden_id(path):
    return os.path.basename(path)[len("fleet_"):-len(".json")]


# --------------------------------------------------------------------- #
# Bit-identity against the goldens, full observability on
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("path", OBS_GOLDENS, ids=_golden_id)
@pytest.mark.parametrize("engine", ["auto", "batched", "device"])
def test_goldens_bit_identical_with_obs_on(path, engine, tmp_path):
    golden = _load_golden(path)
    spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
    trace_path = tmp_path / "trace.jsonl"
    with recording(trace_path=trace_path, profile=True) as rec:
        result = FleetRunner(spec, workers=1, engine=engine).run()
    assert json.loads(json.dumps(result.aggregate())) == golden["aggregate"]
    # And the sinks actually observed the run.
    assert rec.metrics.counter_value("fleet.runs") == 1
    assert rec.metrics.counter_value("fleet.devices") == spec.num_devices
    spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert [s["name"] for s in spans if s["type"] == "span"] == ["fleet.run"]


def test_golden_bit_identical_forced_pool_with_obs_on():
    path = OBS_GOLDENS[1]
    golden = _load_golden(path)
    spec = SCENARIOS.build(golden["scenario"], **golden["overrides"])
    with recording(profile=True) as rec:
        result = FleetRunner(
            spec, workers=2, chunksize=1, parallel_threshold=1
        ).run()
    assert json.loads(json.dumps(result.aggregate())) == golden["aggregate"]
    # Engine internals came home over the wire from the worker processes.
    assert rec.metrics.counter_value("batch.engine.devices") == spec.num_devices
    assert rec.profiler.counts.get("batch.lockstep.passes", 0) > 0


# --------------------------------------------------------------------- #
# Metric content
# --------------------------------------------------------------------- #


def test_fleet_outcome_metrics_describe_the_run():
    spec = SCENARIOS.build("dev-smoke")
    with recording() as rec:
        result = FleetRunner(spec, workers=1).run()
    agg = result.aggregate()
    m = rec.metrics
    assert m.counter_value("fleet.devices") == agg["devices"]
    assert m.counter_value("fleet.events") == agg["events"]
    assert m.counter_value("fleet.events.processed") == agg["processed"]
    assert m.counter_value("fleet.events.missed") == agg["missed"]
    assert m.histogram("fleet.device.iepmj").count == agg["devices"]
    assert m.histogram("span.fleet.run.s").count == 1
    assert m.gauge_value("fleet.engine") == "auto"
    assert m.gauge_value("fleet.parallel") is False
    # Engine-selection telemetry: every registered scenario has been
    # fully batch-eligible since PR 5.
    assert m.counter_value("fleet.devices.batched") == agg["devices"]
    assert m.counter_value("fleet.devices.fallback") == 0


def test_parent_outcome_metrics_identical_serial_vs_pool():
    """Worker count and chunking never change the outcome registry."""
    spec = SCENARIOS.build("mixed-harvester-city", num_devices=4)

    def outcome(registry):
        wire = registry.to_wire()
        return (
            {k: v for k, v in wire["counters"].items() if k.startswith("fleet.")},
            list(wire["histograms"]["fleet.device.iepmj"]),
        )

    with recording() as serial_rec:
        FleetRunner(spec, workers=1).run()
    with recording() as pool_rec:
        FleetRunner(spec, workers=2, chunksize=1, parallel_threshold=1).run()
    assert outcome(serial_rec.metrics) == outcome(pool_rec.metrics)
    # Engine internals are recorded where the engine runs; the *totals*
    # still agree across dispatch shapes.
    assert serial_rec.metrics.counter_value(
        "batch.engine.devices"
    ) == pool_rec.metrics.counter_value("batch.engine.devices")


def test_device_engine_counts_simulator_runs():
    spec = SCENARIOS.build("dev-smoke")
    with recording() as rec:
        FleetRunner(spec, workers=1, engine="device").run()
    episodes = sum(d.episodes for d in spec.devices)
    assert rec.metrics.counter_value("sim.runs") == episodes
    assert rec.metrics.counter_value("batch.engine.runs") == 0


def test_intermittent_profiler_tallies():
    """The brownout grid (every other device intermittent) exercises the
    kernel; its phase profile must attribute kernel work (micro-step
    passes, power-state transitions) — the counters the PROFILE_p6
    artifact is built from."""
    spec = SCENARIOS.build("brownout-grid-256", num_devices=4)
    with recording(profile=True) as rec:
        FleetRunner(spec, workers=1).run()
    counts = rec.profiler.counts
    assert counts.get("intermittent.micro_passes", 0) > 0
    assert counts.get("batch.lockstep.passes", 0) > 0
    assert "batch.intermittent" in rec.profiler.phase_wall
    assert "batch.lockstep" in rec.profiler.phase_wall
    assert rec.profiler.memory.get("batch.run", {}).get("peak_rss_mb", 0) > 0


# --------------------------------------------------------------------- #
# Fleet CLI
# --------------------------------------------------------------------- #


def test_fleet_cli_trace_metrics_profile(tmp_path, capsys):
    trace_path = tmp_path / "run.jsonl"
    metrics_path = tmp_path / "metrics.json"
    code = fleet_main(
        [
            "run",
            "dev-smoke",
            "--quiet",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
            "--profile",
        ]
    )
    assert code == 0
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0]["type"] == "manifest"
    assert lines[0]["schema"] == MANIFEST_SCHEMA
    assert lines[0]["fleet"] == "dev-smoke"
    assert lines[0]["scenario_digest"]
    assert any(r["type"] == "span" and r["name"] == "fleet.run" for r in lines[1:])
    with open(metrics_path) as fh:
        payload = json.load(fh)
    assert payload["manifest"]["schema"] == MANIFEST_SCHEMA
    assert payload["metrics"]["counters"]["fleet.runs"] == 1
    assert payload["profiler"]["counts"]  # profile flag wired through
    out = capsys.readouterr().out
    assert "wrote trace to" in out and "wrote metrics to" in out


def test_fleet_cli_explain(capsys):
    code = fleet_main(["run", "dev-smoke", "--explain"])
    assert code == 0
    out = capsys.readouterr().out
    assert "engine selection" in out
    assert "batched lockstep" in out
    assert "0 per-device fallback(s)" in out


def test_fleet_cli_obs_off_writes_nothing(tmp_path, capsys):
    code = fleet_main(["run", "dev-smoke", "--quiet"])
    assert code == 0
    assert "wrote trace" not in capsys.readouterr().out
    assert list(tmp_path.iterdir()) == []


# --------------------------------------------------------------------- #
# Campaign integration
# --------------------------------------------------------------------- #


def test_campaign_obs_on_report_byte_identical(tmp_path):
    spec = CAMPAIGNS.build("dev-smoke")
    run_campaign(spec, out=str(tmp_path / "off"))
    with recording(profile=True) as rec:
        run_campaign(spec, out=str(tmp_path / "on"))
    assert (tmp_path / "off" / "report.json").read_bytes() == (
        tmp_path / "on" / "report.json"
    ).read_bytes()
    assert rec.metrics.counter_value("campaign.runs") == 1
    assert rec.metrics.counter_value("campaign.cells.executed") == spec.num_cells
    assert rec.metrics.histogram("span.campaign.cell.s").count == spec.num_cells


def test_campaign_store_manifest(tmp_path):
    spec = CAMPAIGNS.build("dev-smoke")
    run_campaign(spec, out=str(tmp_path))
    store = CampaignStore(str(tmp_path))
    assert os.path.exists(store.manifest_path)
    manifest = store.load_run_manifest()
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["campaign"] == "dev-smoke"
    assert manifest["campaign_digest"] == spec.digest()


def test_cell_timing_checkpointed_but_stripped_from_report(tmp_path):
    spec = CAMPAIGNS.build("dev-smoke")
    result = run_campaign(spec, out=str(tmp_path))
    store = CampaignStore(str(tmp_path))
    for cell in spec.cells():
        timing = store.load_cell(cell.key)["timing"]
        assert timing["wall_s"] > 0
        assert timing["engine"] in ("auto", "batched", "device")
        assert timing["workers"] >= 1
    # The aggregated report never carries wall-clock content (the resume
    # byte-identity contract) ...
    assert '"timing"' not in (tmp_path / "report.json").read_text()
    assert all("timing" not in payload for payload in result.cells)
    # ... but the text rendering surfaces the per-cell columns.
    text = result.render_text()
    assert "wall s" in text and "engine" in text
    for cell in spec.cells():
        assert result.cell_timing[cell.key]["wall_s"] > 0


def test_report_from_store_tolerates_missing_timing(tmp_path):
    """Checkpoints from pre-obs versions (no ``"timing"``) still load,
    rendering ``-`` placeholders instead of the timing columns."""
    spec = CAMPAIGNS.build("dev-smoke")
    run_campaign(spec, out=str(tmp_path))
    store = CampaignStore(str(tmp_path))
    first = spec.cells()[0]
    payload = store.load_cell(first.key)
    del payload["timing"]
    store.save_cell(first.key, payload)
    result = report_from_store(store)
    assert first.key not in result.cell_timing
    assert result.render_text().count(" - ") >= 1


def test_campaign_resume_report_identical_with_obs_on(tmp_path):
    spec = CAMPAIGNS.build("dev-smoke")
    reference = run_campaign(spec, out=str(tmp_path / "ref")).to_dict()
    with recording(profile=True):
        resumed = run_campaign(spec, out=str(tmp_path / "ref"), resume=True)
    assert resumed.to_dict() == reference


def test_campaign_cli_trace_and_metrics(tmp_path):
    from repro.campaign.__main__ import main as campaign_main

    out = tmp_path / "run"
    trace_path = tmp_path / "trace.jsonl"
    metrics_path = tmp_path / "metrics.json"
    code = campaign_main(
        [
            "run",
            "dev-smoke",
            "--out",
            str(out),
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert code == 0
    lines = [json.loads(line) for line in trace_path.read_text().splitlines()]
    assert lines[0]["type"] == "manifest"
    assert lines[0]["campaign"] == "dev-smoke"
    names = [r["name"] for r in lines if r.get("type") == "span"]
    assert names.count("campaign.cell") == 2
    assert names[-1] == "campaign.run"
    with open(metrics_path) as fh:
        payload = json.load(fh)
    assert payload["metrics"]["counters"]["campaign.cells.executed"] == 2
    assert os.path.exists(os.path.join(str(out), "manifest.json"))


def test_all_goldens_cover_obs_subset():
    """The files OBS_GOLDENS points at must actually exist (renames in
    tests/golden/ should fail loudly here, not silently skip)."""
    committed = set(glob.glob(os.path.join(GOLDEN_DIR, "fleet_*.json")))
    assert set(OBS_GOLDENS) <= committed
