"""Uniform-compression baseline tests."""

import pytest

from repro.compress import Compressor, fit_uniform_spec, make_uniform_spec
from repro.errors import CompressionError
from repro.nn import profile_network


class TestMakeUniformSpec:
    def test_covers_every_weighted_layer(self, tiny_net):
        spec = make_uniform_spec(tiny_net, 0.5, 8, 8)
        for layer in tiny_net.weighted_layers():
            assert layer.name in spec

    def test_same_setting_everywhere(self, tiny_net):
        spec = make_uniform_spec(tiny_net, 0.4, 3, 5)
        settings = {spec[n] for n in spec.layer_names()}
        assert len(settings) == 1


class TestFitUniformSpec:
    def test_meets_both_targets(self, lenet):
        spec = fit_uniform_spec(lenet, flops_target=1.15e6, size_target_kb=16.0)
        model = Compressor().apply(lenet, spec)
        assert model.fmodel_flops <= 1.15e6
        assert model.model_size_kb <= 16.0

    def test_gentlest_feasible_alpha(self, lenet):
        """A noticeably larger alpha must violate the FLOPs target."""
        spec = fit_uniform_spec(lenet, flops_target=1.15e6, size_target_kb=16.0)
        alpha = spec[spec.layer_names()[0]].preserve_ratio
        looser = make_uniform_spec(lenet, min(1.0, alpha + 0.1), 8, 8)
        model = Compressor().apply(lenet, looser)
        assert model.fmodel_flops > 1.15e6

    def test_loose_targets_mean_no_pruning(self, lenet):
        prof = profile_network(lenet, (3, 32, 32))
        spec = fit_uniform_spec(
            lenet, flops_target=prof.total_flops * 2, size_target_kb=1e6
        )
        assert spec[spec.layer_names()[0]].preserve_ratio == 1.0

    def test_impossible_targets_raise(self, tiny_net):
        with pytest.raises(CompressionError):
            fit_uniform_spec(
                tiny_net, flops_target=1.0, size_target_kb=1e-4, input_shape=(2, 8, 8)
            )
