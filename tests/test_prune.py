"""Channel-pruning tests (Eq. 2 semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.nn.layers import Conv2d, Linear, ReLU
from repro.prune import channel_importance, kept_channel_indices, prune_layer_inputs


class TestChannelImportance:
    def test_eq2_by_hand_conv(self):
        # 2 filters, 3 input channels, 1x1 kernels.
        w = np.array([[[[1.0]], [[-2.0]], [[0.5]]], [[[3.0]], [[0.0]], [[-0.5]]]])
        scores = channel_importance(w, "l1")
        np.testing.assert_allclose(scores, [4.0, 2.0, 1.0])

    def test_eq2_by_hand_linear(self):
        w = np.array([[1.0, -2.0], [3.0, 0.5]])
        np.testing.assert_allclose(channel_importance(w, "l1"), [4.0, 2.5])

    def test_l2_criterion(self):
        w = np.array([[3.0, 0.0], [4.0, 1.0]])
        np.testing.assert_allclose(channel_importance(w, "l2"), [5.0, 1.0])

    def test_unknown_criterion(self):
        with pytest.raises(CompressionError):
            channel_importance(np.ones((2, 2)), "entropy")

    def test_bad_rank(self):
        with pytest.raises(CompressionError):
            channel_importance(np.ones((2, 2, 2)))


class TestKeptChannelIndices:
    def test_keeps_most_important(self):
        w = np.zeros((2, 4, 1, 1))
        w[:, 1] = 10.0
        w[:, 3] = 5.0
        kept = kept_channel_indices(w, 0.5)
        np.testing.assert_array_equal(kept, [1, 3])

    def test_alpha_one_keeps_everything(self):
        w = np.random.default_rng(0).normal(size=(3, 5, 2, 2))
        np.testing.assert_array_equal(kept_channel_indices(w, 1.0), np.arange(5))

    def test_always_keeps_at_least_one(self):
        w = np.random.default_rng(0).normal(size=(3, 8, 1, 1))
        assert len(kept_channel_indices(w, 0.01)) == 1

    @given(st.floats(0.05, 1.0), st.integers(2, 16))
    @settings(max_examples=40, deadline=None)
    def test_count_is_ceil_alpha_c(self, alpha, c):
        w = np.random.default_rng(1).normal(size=(4, c, 1, 1))
        kept = kept_channel_indices(w, alpha)
        assert len(kept) == max(1, int(np.ceil(alpha * c)))
        assert len(set(kept.tolist())) == len(kept)  # no duplicates

    def test_invalid_ratio_raises(self):
        w = np.ones((2, 4, 1, 1))
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(CompressionError):
                kept_channel_indices(w, bad)

    def test_random_criterion_needs_rng(self):
        w = np.ones((2, 4, 1, 1))
        with pytest.raises(CompressionError):
            kept_channel_indices(w, 0.5, criterion="random")

    def test_random_criterion_deterministic_with_rng(self):
        w = np.ones((2, 8, 1, 1))
        a = kept_channel_indices(w, 0.5, "random", np.random.default_rng(3))
        b = kept_channel_indices(w, 0.5, "random", np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_tie_break_is_stable(self):
        w = np.ones((2, 6, 1, 1))  # all channels equally important
        np.testing.assert_array_equal(kept_channel_indices(w, 0.5), [0, 1, 2])


class TestPruneLayerInputs:
    def test_conv_masking_zeroes_pruned_channels(self, rng):
        layer = Conv2d(6, 4, 3, rng=0)
        kept = prune_layer_inputs(layer, 0.5)
        pruned = sorted(set(range(6)) - set(kept.tolist()))
        assert np.all(layer.weight.data[:, pruned] == 0.0)
        assert np.any(layer.weight.data[:, kept] != 0.0)

    def test_masked_equals_ignoring_pruned_inputs(self, rng):
        """A masked layer's output must not depend on pruned input channels."""
        layer = Conv2d(4, 3, 3, rng=0)
        kept = prune_layer_inputs(layer, 0.5)
        x = rng.normal(size=(2, 4, 6, 6))
        out1 = layer.forward(x)
        x_noise = x.copy()
        pruned = sorted(set(range(4)) - set(kept.tolist()))
        x_noise[:, pruned] = rng.normal(size=(2, len(pruned), 6, 6)) * 100
        np.testing.assert_allclose(layer.forward(x_noise), out1)

    def test_linear_masking(self):
        layer = Linear(10, 4, rng=0)
        kept = prune_layer_inputs(layer, 0.3)
        assert len(kept) == 3
        pruned = sorted(set(range(10)) - set(kept.tolist()))
        assert np.all(layer.weight.data[:, pruned] == 0.0)

    def test_rejects_unweighted_layer(self):
        with pytest.raises(CompressionError):
            prune_layer_inputs(ReLU(), 0.5)
