"""Hypothesis property: ANY partition of ANY fleet shards losslessly.

The sharded-identity contract stated as a property rather than examples:
for a random heterogeneous fleet and a random partition of its device
axis — shard widths from 1 to N, deliberately uneven — executing through
the shard ledger and merging produces

* an aggregate whose canonical JSON bytes equal the unsharded
  :class:`FleetResult` aggregate's (percentiles included — the
  concatenate-before-reduce rule in
  :class:`~repro.fleet.results.ShardAggregator` is what makes float
  reductions bit-identical, not just close), and
* the same parent-side outcome metrics (counters + the per-device IEpmJ
  histogram summary) as the unsharded run, because outcome metrics are
  recorded from the merged result, never per-shard.

Partitions are drawn as random cut sets, so shrinking converges on the
smallest fleet + coarsest cut that breaks identity.
"""

from __future__ import annotations

import json
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import (
    DeviceSpec,
    FleetRunner,
    FleetSpec,
    FleetShardSource,
    ShardPlan,
    run_sharded,
)
from repro.obs import Recorder, recording

TRACES = [
    {"family": "solar", "duration": 300.0, "dt": 1.0, "peak_mw": 0.03},
    {"family": "rf", "duration": 300.0, "dt": 1.0, "mean_mw": 0.01},
]

CONTROLLERS = [
    {"kind": "greedy"},
    {"kind": "fixed", "exit_index": 0},
]


def build_fleet(n_devices: int, seed: int) -> FleetSpec:
    devices = [
        DeviceSpec(
            name=f"prop-{i}",
            trace=dict(TRACES[i % len(TRACES)]),
            controller=dict(CONTROLLERS[i % len(CONTROLLERS)]),
            events={"kind": "uniform", "count": 10},
        )
        for i in range(n_devices)
    ]
    return FleetSpec(name="prop", seed=seed, devices=devices)


def canonical(aggregate: dict) -> str:
    return json.dumps(aggregate, sort_keys=True, separators=(",", ":"))


OUTCOME_COUNTERS = (
    "fleet.runs", "fleet.devices", "fleet.events",
    "fleet.events.processed", "fleet.events.missed", "fleet.events.correct",
)

_CLEAN_CACHE: dict = {}


def clean_run(n_devices: int, seed: int):
    """(canonical aggregate bytes, outcome-metric view) of the unsharded run."""
    key = (n_devices, seed)
    if key not in _CLEAN_CACHE:
        rec = Recorder(metrics=True)
        with recording(rec):
            result = FleetRunner(build_fleet(*key)).run()
        metrics = rec.to_dict()["metrics"]
        _CLEAN_CACHE[key] = (
            canonical(result.aggregate()),
            {name: metrics["counters"][name] for name in OUTCOME_COUNTERS},
            metrics["histograms"]["fleet.device.iepmj"],
        )
    return _CLEAN_CACHE[key]


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_devices=st.integers(min_value=1, max_value=6),
    fleet_seed=st.integers(min_value=0, max_value=3),
    cuts=st.sets(st.integers(min_value=1, max_value=5), max_size=5),
)
def test_any_partition_merges_byte_identical(n_devices, fleet_seed, cuts):
    spec = build_fleet(n_devices, fleet_seed)
    edges = [0] + sorted(c for c in cuts if c < n_devices) + [n_devices]
    plan = ShardPlan(n_devices, edges)
    expected_agg, expected_counters, expected_hist = clean_run(
        n_devices, fleet_seed
    )
    rec = Recorder(metrics=True)
    with tempfile.TemporaryDirectory() as ledger_dir:
        with recording(rec):
            result = run_sharded(FleetShardSource(spec), ledger_dir, plan=plan)
    assert canonical(result.aggregate()) == expected_agg
    metrics = rec.to_dict()["metrics"]
    for name in OUTCOME_COUNTERS:
        assert metrics["counters"][name] == expected_counters[name], name
    assert metrics["histograms"]["fleet.device.iepmj"] == expected_hist
