"""Nonuniform compression search (paper Section III) at a small budget.

Runs the two-agent DDPG search that allocates a per-layer pruning rate and
weight/activation bitwidths, rewarded by the event-weighted accuracy under
a solar trace (Eq. 10-12), then fine-tunes the winning candidate and
prints the Figure-4-style policy.

Run:  python examples/compression_search.py  [--episodes N]
"""

import argparse

from repro.compress import Compressor, FinetuneConfig, finetune_compressed
from repro.compress.evaluator import evaluate_exits
from repro.data import SyntheticConfig, make_cifar_like
from repro.energy import solar_trace, uniform_random_events
from repro.models import MULTI_EXIT_LENET_LAYERS, make_multi_exit_lenet
from repro.nn import TrainConfig, Trainer
from repro.rl import (
    CompressionObjective,
    LayerwiseCompressionEnv,
    NonuniformSearch,
    RandomSearch,
    SearchConfig,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=15,
                        help="search episodes per strategy (default 15)")
    args = parser.parse_args()

    print("== preparing a trained multi-exit LeNet ==")
    splits = make_cifar_like(
        num_train=1500, num_val=400, num_test=400,
        config=SyntheticConfig(noise_std=1.2), seed=7,
    )
    net = make_multi_exit_lenet(seed=3)
    Trainer(TrainConfig(epochs=4, batch_size=64, lr=0.01, seed=11)).fit(
        net, splits.train.x, splits.train.y
    )

    print("== building the search objective (trace + events + budgets) ==")
    trace = solar_trace(seed=5)
    events = uniform_random_events(500, trace.duration, rng=9)
    objective = CompressionObjective(
        net=net,
        val_data=splits.val,
        trace=trace,
        events=events,
        flops_target=1.15e6,
        size_target_kb=16.0,
    )
    env = LayerwiseCompressionEnv(objective)

    print(f"== DDPG search ({args.episodes} episodes) ==")
    search = NonuniformSearch(env, SearchConfig(episodes=args.episodes, seed=0, verbose=True))
    rl_result = search.run()

    print(f"== random search baseline ({args.episodes} episodes) ==")
    random_result = RandomSearch(env, episodes=args.episodes, seed=1).run()
    print(f"DDPG best Racc {rl_result.best.racc:.3f} (feasible={rl_result.best.feasible}) "
          f"vs random {random_result.best.racc:.3f} (feasible={random_result.best.feasible})")

    best = rl_result.best
    print("\nlayer-wise policy (Fig. 4 style):")
    print(f"{'layer':8s} {'preserve':>8s} {'w bits':>6s} {'a bits':>6s}")
    for name in MULTI_EXIT_LENET_LAYERS:
        lc = best.spec[name]
        print(f"{name:8s} {lc.preserve_ratio:8.2f} {lc.weight_bits:6d} {lc.act_bits:6d}")
    print(f"F_model = {best.fmodel_flops/1e6:.3f}M, S_model = {best.size_kb:.1f} KB")

    print("\n== fine-tuning the winner under its compression constraints ==")
    model = Compressor().apply(net, best.spec, calibration_x=splits.val.x[:64])
    finetune_compressed(
        model, splits.train.x, splits.train.y,
        FinetuneConfig(epochs=3, verbose=True),
        val_x=splits.val.x, val_y=splits.val.y,
    )
    evaluation = evaluate_exits(model, splits.test)
    print(f"fine-tuned per-exit test accuracy: {[f'{a:.3f}' for a in evaluation.accuracies]}")


if __name__ == "__main__":
    main()
