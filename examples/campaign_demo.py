"""Campaign quickstart (mirrors examples/fleet_demo.py).

Three ways to drive :mod:`repro.campaign`:

1. run a registered campaign grid by name (what the CLI does), with an
   on-disk checkpoint store;
2. interrupt a campaign mid-grid and resume it — finished cells load
   from checkpoints and the final report is identical;
3. compose a custom grid from scratch and read its seed-matched
   controller marginals.

Run:  python examples/campaign_demo.py
"""

import os
import shutil
import tempfile

from repro.campaign import (
    CAMPAIGNS,
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    run_campaign,
)

STORE_DIR = os.path.join(tempfile.gettempdir(), "campaign-demo")


def run_registered_campaign():
    """A registered grid with checkpointing, like the CLI's `run`."""
    print("\n== registered campaign (dev-smoke) ==")
    shutil.rmtree(STORE_DIR, ignore_errors=True)
    result = run_campaign(CAMPAIGNS.build("dev-smoke"), out=STORE_DIR)
    print(result.render_text())
    print(f"  checkpoints under {STORE_DIR}/cells/")


def interrupt_and_resume():
    """Kill a run after its first cell, then finish it with resume."""
    print("\n== interrupt mid-grid, then resume ==")
    spec = CAMPAIGNS.build("policy-shootout", num_seeds=1)
    out = os.path.join(tempfile.gettempdir(), "campaign-demo-resume")
    shutil.rmtree(out, ignore_errors=True)

    class KillAfterOne(CampaignStore):
        def save_cell(self, key, payload):
            super().save_cell(key, payload)
            raise KeyboardInterrupt

    try:
        CampaignRunner(spec, store=KillAfterOne(out)).run()
    except KeyboardInterrupt:
        done = CampaignStore(out).completed_keys()
        print(f"  interrupted with {len(done)}/{spec.num_cells} cells done")

    runner = CampaignRunner(spec, store=CampaignStore(out), resume=True)
    runner.run()
    print(
        f"  resume executed {runner.executed} cell(s), "
        f"loaded {runner.skipped} from checkpoints"
    )


def custom_grid():
    """A hand-built grid: two scenarios x two controllers x two seeds."""
    print("\n== custom grid with seed-matched marginals ==")
    spec = CampaignSpec(
        name="demo-custom",
        description="greedy reserve vs all-in across two harvesting regimes",
        scenarios=[
            {"scenario": "dev-smoke", "label": "smoke",
             "overrides": {"num_devices": 3, "duration": 600.0}},
            {"scenario": "indoor-rf-swarm", "label": "rf",
             "overrides": {"num_devices": 3, "duration": 600.0}},
        ],
        controllers=["greedy", "greedy-all-in"],
        seeds=[3, 5],
    )
    result = run_campaign(spec)
    for label, per_controller in result.marginals().items():
        for name, entry in per_controller.items():
            mean = entry["mean"]
            print(
                f"  [{label}] {name} vs {entry['vs']}: "
                f"acc {mean['average_accuracy']:+.3f}, "
                f"IEpmJ {mean['fleet_iepmj']:+.3f}, "
                f"depth {mean['mean_exit_depth']:+.3f}"
            )


def main():
    run_registered_campaign()
    interrupt_and_resume()
    custom_grid()


if __name__ == "__main__":
    main()
