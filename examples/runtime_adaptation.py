"""Runtime exit selection with Q-learning (paper Section IV, Fig. 7).

Deploys a multi-exit inference profile on a solar-powered device and
compares three runtime controllers over repeated learning episodes:

* the static LUT frozen at compression time (deepest affordable exit);
* Q-learning over (stored energy, charging efficiency) states;
* Q-learning plus the learned incremental-inference decider.

Run:  python examples/runtime_adaptation.py
"""

from repro.energy import EnergyStorage, solar_trace, uniform_random_events
from repro.runtime import (
    QLearningController,
    StaticController,
    StaticLUTPolicy,
)
from repro.runtime.incremental import IncrementalDecider
from repro.sim import InferenceProfile, Simulator, SimulatorConfig

EPISODES = 20


def make_profile():
    """A compressed 3-exit deployment (costs in the paper's regime)."""
    return InferenceProfile(
        name="compressed-3-exit",
        exit_accuracies=[0.62, 0.70, 0.72],
        exit_energy_mj=[0.21, 0.84, 1.63],
        exit_flops=[0.14e6, 0.56e6, 1.09e6],
        incremental_energy_mj=[0.70, 0.85],
        incremental_flops=[0.47e6, 0.57e6],
    )


def storage():
    return EnergyStorage(2.0, efficiency=0.8, initial_mj=1.0)


def main():
    trace = solar_trace(seed=5)
    events = uniform_random_events(500, trace.duration, rng=9)
    profile = make_profile()

    print("== static LUT baseline ==")
    lut = StaticController(StaticLUTPolicy(profile.exit_energy_mj, 2.0))
    lut_result = Simulator(
        trace, profile, lut, storage=storage(), config=SimulatorConfig(seed=3)
    ).run(events)
    print(f"static LUT: avg accuracy {lut_result.average_accuracy:.3f}, "
          f"exits {lut_result.exit_counts(3)}, missed {lut_result.num_missed}")

    for label, rule in (
        ("Q-learning", None),
        ("Q-learning + incremental", IncrementalDecider(rng=13, epsilon_decay=0.9)),
    ):
        print(f"\n== {label}: {EPISODES} learning episodes ==")
        controller = QLearningController(
            3, epsilon=0.25, epsilon_decay=0.9, continue_rule=rule, rng=11
        )
        sim = Simulator(
            trace, profile, controller, storage=storage(),
            config=SimulatorConfig(seed=3),
        )
        result = None
        for episode in range(EPISODES):
            result = sim.run(events)
            if episode % 5 == 0 or episode == EPISODES - 1:
                print(f"  episode {episode:2d}: avg accuracy {result.average_accuracy:.3f} "
                      f"exits {result.exit_counts(3)}")
        gain = result.average_accuracy - lut_result.average_accuracy
        continues = sum(r.continued for r in result.records)
        print(f"{label}: final {result.average_accuracy:.3f} "
              f"({gain * 100:+.1f} pts vs LUT), incremental continues: {continues}")


if __name__ == "__main__":
    main()
