"""Shard-ledger tour (mirrors examples/chaos_demo.py).

Four stops on the :mod:`repro.fleet.shards` line:

1. shard a fleet through a durable ledger and verify the merged
   aggregate is byte-identical to the unsharded run — any partition,
   same bytes;
2. crash mid-run (simulated by draining only half the plan), then
   re-run over the same ledger and watch only the unfinished shards
   execute;
3. steal a dead worker's lease: a lease file left by a killed process
   expires after the caller's TTL and another drainer takes the shard;
4. bound memory on a megacity slice — the ``device_range``-aware
   factory materializes one shard's devices at a time, and a tiny
   ``max_rss_mb`` budget degrades execution width instead of growing.

Run:  python examples/shard_demo.py
"""

import json
import os
import shutil
import tempfile
import time

from repro.fleet import (
    SCENARIOS,
    FleetRunner,
    FleetShardSource,
    ShardLedger,
    ShardPlan,
    run_sharded,
)
from repro.fleet.shards import ScenarioShardSource, shard_key

WORK = os.path.join(tempfile.gettempdir(), "shard-demo")


def canonical(aggregate: dict) -> str:
    return json.dumps(aggregate, sort_keys=True)


def fresh(name: str) -> str:
    path = os.path.join(WORK, name)
    shutil.rmtree(path, ignore_errors=True)
    return path


def sharded_equals_unsharded():
    """Partitioning the device axis never moves a result bit."""
    print("\n== sharded aggregate == unsharded aggregate ==")
    spec = SCENARIOS.build("brownout-grid-256", num_devices=24)
    plain = FleetRunner(spec).run().aggregate()
    result = run_sharded(FleetShardSource(spec), fresh("identity"), shards=6)
    identical = canonical(plain) == canonical(result.aggregate())
    print(f"  6-shard merge byte-identical to the unsharded run: {identical}")
    # Even a deliberately lopsided partition merges to the same bytes.
    plan = ShardPlan(24, [0, 1, 2, 20, 24])
    uneven = run_sharded(FleetShardSource(spec), fresh("uneven"), plan=plan)
    print(f"  uneven partition {plan.shards} too: "
          f"{canonical(plain) == canonical(uneven.aggregate())}")
    assert identical
    assert canonical(plain) == canonical(uneven.aggregate())


def crash_then_resume():
    """Only the shards missing from the ledger re-execute."""
    print("\n== crash mid-run, resume over the surviving ledger ==")
    spec = SCENARIOS.build("brownout-grid-256", num_devices=24)
    ledger_dir = fresh("crash")
    reference = run_sharded(
        FleetShardSource(spec), fresh("crash-ref"), shards=6
    )
    # Simulate dying after 3 of 6 shards: run a full copy, then delete
    # half its artifacts — byte-wise that is exactly a SIGKILL victim
    # (the real drill lives in tests/test_shards.py and the shard-smoke
    # CI lane, which kill -9 live worker processes).
    run_sharded(FleetShardSource(spec), ledger_dir, shards=6)
    ledger = ShardLedger(ledger_dir)
    plan = ShardPlan.from_dict(ledger.read_meta()["plan"])
    for start, end in plan.shards[3:]:
        os.unlink(os.path.join(ledger.shards_dir, shard_key(start, end) + ".json"))

    resumed = run_sharded(FleetShardSource(spec), ledger_dir, shards=6)
    print(f"  executed {resumed.shards_executed} shard(s), "
          f"resumed {resumed.shards_resumed} from the ledger")
    identical = canonical(reference.aggregate()) == canonical(resumed.aggregate())
    print(f"  aggregate byte-identical to the clean run: {identical}")
    assert resumed.shards_executed == 3 and resumed.shards_resumed == 3
    assert identical


def steal_a_dead_lease():
    """A lease left by a dead process is stolen once the TTL lapses."""
    print("\n== work-stealing a dead worker's lease ==")
    spec = SCENARIOS.build("brownout-grid-256", num_devices=8)
    ledger_dir = fresh("lease")
    ledger = ShardLedger(ledger_dir)
    plan = ShardPlan.from_counts(8, shards=2)
    ledger.initialize(
        {
            "fleet": spec.name,
            "seed": spec.seed,
            "num_devices": 8,
            "source_digest": spec.digest(),
        },
        plan,
        resume=False,
    )
    key = shard_key(*plan.shards[0])
    assert ledger.claim(key, ttl_s=120.0) == "fresh"  # ...then we "die"

    survivor = ShardLedger(ledger_dir)
    print(f"  patient claim (120s TTL): {survivor.claim(key, ttl_s=120.0)}")
    time.sleep(0.05)  # let the dead lease age past the impatient TTL
    print(f"  impatient claim (10ms TTL): {survivor.claim(key, ttl_s=0.01)!r}")
    survivor.release(key)
    # Leases are efficiency only — a drain over the ledger finishes the
    # fleet regardless, and publish-once artifacts keep it safe.
    result = run_sharded(
        FleetShardSource(spec), ledger_dir, shards=2, lease_ttl_s=0.01
    )
    print(f"  drained to completion: {result.shards_executed} executed, "
          f"{result.shards_stolen} lease(s) stolen")
    assert result.shards_executed == 2


def megacity_bounded_memory():
    """A megacity-1m slice, one shard of devices resident at a time."""
    print("\n== megacity-1m slice under a memory budget ==")
    source = ScenarioShardSource("megacity-1m", {"num_devices": 48})
    print(f"  factory is device_range-aware (lazy shards): {source.ranged}")
    result = run_sharded(
        source, fresh("megacity"), shard_width=16, max_rss_mb=1.0
    )
    agg = result.aggregate()
    print(f"  {agg['devices']} devices in {result.num_shards} shards, "
          f"fleet IEpmJ {agg['fleet_iepmj']:.4f}")
    print(f"  1MB budget forced {result.degraded} width degradation(s) "
          "(results unchanged by contract)")
    assert agg["devices"] == 48 and result.degraded >= 1


if __name__ == "__main__":
    sharded_equals_unsharded()
    crash_then_resume()
    steal_a_dead_lease()
    megacity_bounded_memory()
    print("\nshard demo complete: every merge matched, every crash resumed.")
