"""Chaos tour (mirrors examples/obs_demo.py).

Four stops on the :mod:`repro.faults` line:

1. arm a handcrafted :class:`FaultPlan` around a serial fleet run and
   watch the dispatcher absorb every fault — the report is byte-identical
   to a fault-free run;
2. crash a pool worker mid-chunk (the watchdog times the chunk out,
   re-dispatches it, and the digests still match bit-for-bit);
3. sabotage a campaign checkpoint on disk, then let ``--resume``
   detect, quarantine, and re-run just the damaged cell;
4. exhaust the retry budget on purpose and read the quarantine ledger —
   the run degrades gracefully into :class:`DeviceFailure` records
   instead of dying.

Run:  python examples/chaos_demo.py
"""

import json
import os
import shutil
import tempfile

from repro.campaign import CAMPAIGNS, CampaignRunner, CampaignStore, run_campaign
from repro.faults import Fault, FaultPlan, RetryPolicy, chaos
from repro.fleet import SCENARIOS, FleetRunner
from repro.obs import Recorder, recording


def fleet_bytes(result) -> str:
    """Canonical JSON of a fleet report (wall-clock content excluded)."""
    return json.dumps(result.to_dict(), sort_keys=True)


def serial_fleet_survives_a_plan():
    """Every injected fault is retried away; the report does not move."""
    print("\n== serial fleet vs a three-fault plan ==")
    spec = SCENARIOS.build("solar-farm-100", num_devices=16)
    clean = FleetRunner(spec).run()

    plan = FaultPlan(
        [
            Fault("fleet.chunk", 0, "exception"),
            Fault("fleet.chunk", 1, "corrupt_payload"),
            Fault("fleet.chunk", 2, "oserror"),
        ],
        note="chaos_demo: recoverable serial schedule",
    )
    with chaos(plan) as injector:
        chaotic = FleetRunner(spec, retry=RetryPolicy(backoff_s=0.0)).run()

    print(f"  fired: {injector.fired_summary()}")
    print(f"  quarantined devices: {chaotic.num_failures}")
    identical = fleet_bytes(clean) == fleet_bytes(chaotic)
    print(f"  report byte-identical to the fault-free run: {identical}")
    assert identical and chaotic.failures == []


def pooled_crash_and_watchdog():
    """A worker dies mid-chunk; the straggler watchdog re-dispatches."""
    print("\n== pooled fleet, one crashed worker ==")
    spec = SCENARIOS.build("solar-farm-100", num_devices=16)
    kwargs = dict(
        workers=2,
        parallel_threshold=1,
        retry=RetryPolicy(max_retries=2, worker_timeout=1.5, backoff_s=0.0),
    )
    clean = FleetRunner(spec, **kwargs).run()

    plan = FaultPlan([Fault("fleet.chunk", 0, "crash")])
    with recording(Recorder(metrics=True)) as rec, chaos(plan):
        recovered = FleetRunner(spec, **kwargs).run()

    counters = rec.metrics.to_dict()["counters"]
    for name in sorted(counters):
        if name.startswith(("fault.injected.", "fleet.retry.")):
            print(f"  {name:<40} {counters[name]}")
    identical = fleet_bytes(clean) == fleet_bytes(recovered)
    print(f"  report byte-identical after the crash: {identical}")
    assert identical


def checkpoint_rot_heals_on_resume():
    """A bit-flipped cell artifact is quarantined and re-run, not trusted."""
    print("\n== campaign checkpoint rot, healed by --resume ==")
    out = os.path.join(tempfile.gettempdir(), "chaos-demo-campaign")
    shutil.rmtree(out, ignore_errors=True)
    spec = CAMPAIGNS.build("dev-smoke")
    run_campaign(spec, out=out)
    before = open(os.path.join(out, "report.json"), "rb").read()

    store = CampaignStore(out)
    victim = sorted(store.completed_keys())[0]
    path = store.cell_path(victim)
    with open(path, "r+b") as fh:  # flip one byte mid-artifact
        fh.seek(os.path.getsize(path) // 2)
        byte = fh.read(1)
        fh.seek(-1, os.SEEK_CUR)
        fh.write(bytes([byte[0] ^ 0xFF]))

    runner = CampaignRunner(spec, store=store, resume=True)
    runner.run(progress=lambda cell, status: print(f"  {status:<9} {cell.key}"))
    after = open(os.path.join(out, "report.json"), "rb").read()
    print(f"  quarantined {runner.quarantined} cell(s), re-ran {runner.executed}")
    print(f"  post-mortem copy kept under {out}/quarantine/")
    print(f"  report byte-identical to the pre-corruption run: {before == after}")
    assert runner.quarantined == 1 and before == after


def graceful_quarantine():
    """An unrecoverable schedule degrades into DeviceFailure records."""
    print("\n== retry budget exhausted: quarantine, not a crash ==")
    spec = SCENARIOS.build("solar-farm-100", num_devices=4)
    # Fault every dispatch this tiny fleet can make: no retry can win.
    plan = FaultPlan([Fault("fleet.chunk", i, "exception") for i in range(32)])
    with chaos(plan):
        result = FleetRunner(
            spec, retry=RetryPolicy(max_retries=1, backoff_s=0.0)
        ).run()
    for failure in result.failures:
        print(
            f"  device {failure.index} ({failure.name}): gave up at "
            f"stage={failure.stage!r} after {failure.attempts} attempt(s)"
        )
    print(
        f"  completed {len(result.devices)}/{spec.num_devices} devices; "
        "aggregate still renders"
    )
    assert result.num_failures == spec.num_devices


if __name__ == "__main__":
    serial_fleet_survives_a_plan()
    pooled_crash_and_watchdog()
    checkpoint_rot_heals_on_resume()
    graceful_quarantine()
    print("\nchaos demo complete: every report matched, every wound healed.")
