"""Observability tour (mirrors examples/fleet_demo.py).

Four stops on the :mod:`repro.obs` line:

1. scope a recorder with :func:`recording` and read the metrics a fleet
   run leaves behind (counters, gauges, timing histograms);
2. trace spans to JSON lines, manifest first, and inspect the file;
3. turn on the phase profiler and see where a batched run's wall clock
   goes (lockstep loop vs intermittent kernel);
4. prove the determinism contract: the fleet report is byte-identical
   with observability off and fully on.

Run:  python examples/obs_demo.py
"""

import json
import os
import tempfile

from repro.fleet import SCENARIOS, FleetRunner
from repro.obs import Recorder, recording, span


def fleet_metrics():
    """Counters/gauges/histograms recorded around a fleet run."""
    print("\n== metrics: what did that run actually do? ==")
    spec = SCENARIOS.build("solar-farm-100", num_devices=12)
    with recording() as rec:
        FleetRunner(spec, workers=1).run()
    metrics = rec.metrics.to_dict()
    counters, gauges = metrics["counters"], metrics["gauges"]
    print(f"  engine={gauges['fleet.engine']}  workers={gauges['fleet.workers']}")
    for name in ("fleet.devices", "fleet.events", "fleet.events.processed"):
        print(f"  {name:<24} {counters[name]}")
    iepmj = metrics["histograms"]["fleet.device.iepmj"]
    print(
        f"  fleet.device.iepmj       p50 {iepmj['p50']:.3f}  "
        f"p95 {iepmj['p95']:.3f}  max {iepmj['max']:.3f}"
    )


def trace_to_jsonl():
    """Span trace on disk: one manifest line, then one line per span."""
    print("\n== tracing: spans to JSON lines, provenance first ==")
    path = os.path.join(tempfile.gettempdir(), "obs_demo_trace.jsonl")
    spec = SCENARIOS.build("indoor-rf-swarm", num_devices=8)
    with recording(trace_path=path) as rec:
        rec.trace.emit({"type": "manifest", "demo": "obs"})
        with span("demo.outer", fleet=spec.name):
            FleetRunner(spec, workers=1).run()
    records = [json.loads(line) for line in open(path)]
    print(f"  {path}: {len(records)} records")
    for record in records:
        label = record.get("name") or record.get("demo")
        dur = record.get("dur_s")
        extra = f"  dur {dur:.3f}s  depth {record['depth']}" if dur is not None else ""
        print(f"    {record['type']:<8} {label}{extra}")


def batched_phase_profile():
    """Where the batched engine's wall clock goes on a mixed fleet."""
    print("\n== profiler: batched-engine phases on a mixed 32-device block ==")
    spec = SCENARIOS.build("city-block-1k", num_devices=32)
    recorder = Recorder(metrics=True, profile=True)
    with recording(recorder):
        FleetRunner(spec, workers=1, engine="batched").run()
    profile = recorder.profiler.to_dict()
    for name, phase in sorted(profile["phases"].items()):
        print(f"  {name:<20} {phase['wall_s'] * 1e3:8.1f} ms  x{phase['calls']}")
    counts = profile["counts"]
    print(
        f"  lockstep passes {counts.get('batch.lockstep.passes', 0)}, "
        f"intermittent micro-passes {counts.get('intermittent.micro_passes', 0)}"
    )
    print(
        "  (the full 128-device attribution: benchmarks/PROFILE_p6_cityblock128.json)"
    )


def identity_contract():
    """Observability never changes a byte of the fleet report."""
    print("\n== determinism: report identical with obs off and fully on ==")
    spec = SCENARIOS.build("mixed-harvester-city", num_devices=10)
    plain = FleetRunner(spec, workers=1).run()
    with recording(trace_path=os.devnull, profile=True):
        observed = FleetRunner(spec, workers=1).run()
    match = json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
        observed.to_dict(), sort_keys=True
    )
    print(f"  reports byte-identical: {match}")


def main():
    fleet_metrics()
    trace_to_jsonl()
    batched_phase_profile()
    identity_contract()


if __name__ == "__main__":
    main()
