"""Fleet simulation quickstart (mirrors examples/solar_sensor_node.py).

Three ways to drive :mod:`repro.fleet`:

1. run a registered scenario by name (what the CLI does);
2. compose a custom heterogeneous fleet from :class:`DeviceSpec`s and
   round-trip it through JSON;
3. scale workers and verify the parallel run is bit-identical to serial.

Run:  python examples/fleet_demo.py
"""

import json
import os
import tempfile

from repro.fleet import SCENARIOS, DeviceSpec, FleetRunner, FleetSpec, run_fleet


def report(result):
    agg = result.aggregate()
    print(
        f"  {agg['fleet']:<24} {agg['devices']:3d} devices  "
        f"IEpmJ {agg['fleet_iepmj']:.3f}  acc {agg['average_accuracy']:.3f}  "
        f"misses {agg['miss_counts']}  "
        f"({result.wall_s:.2f}s, {result.devices_per_second:.0f} dev/s)"
    )


def run_named_scenario():
    """A registered scenario, scaled down for a quick demo."""
    print("\n== named scenario (solar-farm-100, scaled to 20 devices) ==")
    spec = SCENARIOS.build("solar-farm-100", num_devices=20)
    report(run_fleet(spec, workers=1))


def run_custom_fleet():
    """Hand-built heterogeneous fleet, round-tripped through JSON."""
    print("\n== custom fleet: one solar roof, one wind mast, one piezo mount ==")
    devices = [
        DeviceSpec(
            name="roof",
            trace={"family": "solar", "duration": 3600.0, "dt": 1.0, "peak_mw": 0.03},
            controller={"kind": "qlearning", "epsilon": 0.25},
            events={"kind": "uniform", "count": 40},
            episodes=3,
        ),
        DeviceSpec(
            name="mast",
            trace={"family": "wind", "duration": 3600.0, "dt": 0.5, "peak_mw": 0.06},
            controller={"kind": "greedy", "reserve_fraction": 0.2},
            events={"kind": "poisson", "rate_hz": 0.01},
        ),
        DeviceSpec(
            name="mount",
            trace={"family": "piezo", "duration": 3600.0, "dt": 0.5, "duty_cycle": 0.5},
            controller={"kind": "static-lut"},
            events={"kind": "burst", "num_bursts": 6, "events_per_burst": 5},
        ),
    ]
    spec = FleetSpec(name="demo-trio", seed=11, devices=devices)
    path = os.path.join(tempfile.gettempdir(), "demo-trio.json")
    spec.to_json(path)
    reloaded = FleetSpec.from_json(path)
    result = run_fleet(reloaded)
    report(result)
    for d in result.devices:
        print(
            f"    {d.name:<6} IEpmJ {d.iepmj:.3f}  processed {d.num_processed}/"
            f"{d.num_events}  p90 latency {d.latency_percentiles['p90']:.1f}s"
        )


def run_parallel_equivalence():
    """Worker count changes wall time, never results."""
    print("\n== parallel == serial (deterministic per-device seeding) ==")
    spec = SCENARIOS.build("indoor-rf-swarm", num_devices=16)
    serial = FleetRunner(spec, workers=1).run()
    parallel = FleetRunner(spec, workers=2).run()
    report(serial)
    report(parallel)
    match = json.dumps(serial.to_dict()) == json.dumps(parallel.to_dict())
    print(f"  aggregate reports identical: {match}")


def main():
    run_named_scenario()
    run_custom_fleet()
    run_parallel_equivalence()


if __name__ == "__main__":
    main()
