"""Quickstart: the full pipeline on a small budget (~2 minutes).

Builds the paper's 3-exit LeNet, trains it briefly on the synthetic
CIFAR-10 substitute, compresses it to an MCU budget, deploys it on a
solar-powered device model, and replays a stream of events.

Run:  python examples/quickstart.py
"""

from repro.compress import Compressor, FinetuneConfig, finetune_compressed, fit_uniform_spec
from repro.compress.evaluator import evaluate_exits
from repro.data import SyntheticConfig, make_cifar_like
from repro.energy import EnergyStorage, solar_trace, uniform_random_events
from repro.intermittent import MSP432
from repro.models import make_multi_exit_lenet
from repro.nn import TrainConfig, Trainer, profile_network
from repro.runtime import GreedyEnergyPolicy, StaticController
from repro.sim import InferenceProfile, Simulator, SimulatorConfig


def main():
    # 1. Data: a synthetic 10-class image task (CIFAR-10 stand-in).
    print("== generating data ==")
    splits = make_cifar_like(
        num_train=1500, num_val=400, num_test=400,
        config=SyntheticConfig(noise_std=1.2), seed=7,
    )

    # 2. The multi-exit network, briefly trained.
    print("== training the 3-exit LeNet (a few epochs) ==")
    net = make_multi_exit_lenet(seed=3)
    Trainer(TrainConfig(epochs=4, batch_size=64, lr=0.01, seed=11, verbose=True)).fit(
        net, splits.train.x, splits.train.y, splits.val.x, splits.val.y
    )
    profile = profile_network(net, (3, 32, 32))
    print(f"exit FLOPs: {[f'{f/1e6:.3f}M' for f in profile.exit_flops]}")
    print(f"fp32 weight size: {profile.model_size_kb():.0f} KB "
          f"(MCU budget: {MSP432.weight_storage_kb:.0f} KB)")

    # 3. Compress to the paper's budget (uniform baseline for speed; the
    # RL search in examples/compression_search.py does this nonuniformly).
    print("== compressing to 1.15M FLOPs / 16 KB ==")
    spec = fit_uniform_spec(net, flops_target=1.15e6, size_target_kb=16.0)
    model = Compressor().apply(net, spec, calibration_x=splits.val.x[:64])
    zero_shot = evaluate_exits(model, splits.test)
    print(f"zero-shot accuracy:   {[f'{a:.3f}' for a in zero_shot.accuracies]}")
    # A 30x budget forces ~2-bit weights; a brief pruning/quantization-aware
    # fine-tune recovers most of the accuracy (see repro.compress.finetune).
    print("fine-tuning the compressed model (3 epochs)...")
    finetune_compressed(
        model, splits.train.x, splits.train.y, FinetuneConfig(epochs=3, seed=0)
    )
    evaluation = evaluate_exits(model, splits.test)
    print(f"compressed exits: {[f'{f/1e6:.3f}M' for f in model.exit_flops]} FLOPs, "
          f"{model.model_size_kb:.1f} KB")
    print(f"per-exit accuracy: {[f'{a:.3f}' for a in evaluation.accuracies]}")

    # 4. Deploy on a solar-harvesting device and replay events.
    print("== simulating a solar-powered sensing day ==")
    deployed = InferenceProfile.from_compressed(model, evaluation, MSP432)
    trace = solar_trace(seed=5)
    events = uniform_random_events(500, trace.duration, rng=9)
    sim = Simulator(
        trace,
        deployed,
        StaticController(GreedyEnergyPolicy()),
        storage=EnergyStorage(2.0, efficiency=0.8, initial_mj=1.0),
        dataset=splits.test,
        config=SimulatorConfig(mode="dataset", seed=3),
    )
    result = sim.run(events)
    print(f"events: {result.num_events}, processed: {result.num_processed}, "
          f"missed: {result.num_missed} {result.miss_counts()}")
    print(f"IEpmJ = {result.iepmj:.3f} events/mJ   "
          f"average accuracy (all events) = {result.average_accuracy:.3f}")
    print(f"exit usage: {result.exit_counts(deployed.num_exits)}   "
          f"mean latency: {result.mean_latency_s:.1f} s")


if __name__ == "__main__":
    main()
