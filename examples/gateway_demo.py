"""Gateway tour (mirrors examples/shard_demo.py).

Five stops on the :mod:`repro.gateway` line — a real server on an
ephemeral TCP port, driven end-to-end by the sync client:

1. serve: start a :class:`GatewayServer` in a background thread (the
   same shape as ``python -m repro.gateway serve``);
2. create + incremental advance: stand up a live fleet and step it in
   uneven slices, watching progress move;
3. determinism: the streamed aggregate is byte-identical to a one-shot
   :class:`FleetRunner` over the same scenario;
4. checkpoint/restore: seal the twin's journal mid-run, replay it into
   a second live fleet, and finish both to the same bytes;
5. late submit: a second cohort of devices joins a live fleet without
   perturbing anyone's results.

Run:  PYTHONPATH=src python examples/gateway_demo.py
"""

import asyncio
import json
import os
import tempfile
import threading

from repro.fleet import SCENARIOS, FleetRunner
from repro.gateway import GatewayClient, GatewayServer


def canonical(aggregate: dict) -> str:
    return json.dumps(aggregate, sort_keys=True)


def main() -> None:
    # -- 1. serve ------------------------------------------------------ #
    box: dict = {}
    started = threading.Event()

    def serve() -> None:
        async def run() -> None:
            server = GatewayServer()  # port=0: ephemeral
            await server.start()
            box["port"] = server.port
            started.set()
            await server.serve_forever()  # returns on the shutdown verb

        asyncio.run(run())

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    started.wait(10)
    print(f"gateway up on 127.0.0.1:{box['port']}")

    with GatewayClient(port=box["port"]) as gw:
        # -- 2. create + incremental advance --------------------------- #
        created = gw.create(scenario="dev-smoke")
        print(f"created {created['fleet']!r}: {created['devices']} devices, "
              f"{created['total_steps']} lockstep steps")
        for slice_steps in (3, 1, 7):
            progress = gw.advance("dev-smoke", steps=slice_steps)
            print(f"  advance({slice_steps}) -> "
                  f"{progress['steps_done']}/{progress['total_steps']}")

        # -- 4. checkpoint mid-run ------------------------------------- #
        ck = os.path.join(tempfile.mkdtemp(prefix="gateway-demo-"), "ck.json")
        sealed = gw.checkpoint("dev-smoke", ck)
        print(f"checkpointed at step {sealed['steps_done']} "
              f"(sha256 {sealed['digest'][:12]}…)")

        while not gw.advance("dev-smoke", steps=4)["finished"]:
            pass
        streamed = gw.query("dev-smoke")

        # -- 3. determinism vs one-shot -------------------------------- #
        one_shot = FleetRunner(
            SCENARIOS.build("dev-smoke"), workers=1
        ).run().aggregate()
        assert canonical(streamed) == canonical(one_shot)
        print("streamed aggregate == one-shot FleetRunner bytes: OK")

        # -- 4b. restore and converge ---------------------------------- #
        restored = gw.restore(ck, fleet="replayed")
        print(f"restored {restored['fleet']!r} at step "
              f"{restored['steps_done']}")
        gw.advance("replayed")
        replayed = gw.query("replayed")
        replayed["fleet"] = streamed["fleet"]  # registry alias only
        assert canonical(replayed) == canonical(streamed)
        print("checkpoint -> restore -> finish == uninterrupted bytes: OK")

        # -- 5. late submit -------------------------------------------- #
        spec = SCENARIOS.build("mixed-harvester-city", num_devices=6)
        devices = [d.to_dict() for d in spec.devices]
        gw.create(
            spec={"name": spec.name, "seed": spec.seed,
                  "devices": devices[:3]},
            fleet="growing",
        )
        gw.advance("growing", steps=5)  # first cohort already mid-flight
        joined = gw.submit("growing", devices[3:])
        print(f"submitted late cohort: {joined['added']} devices join "
              f"a live fleet ({joined['devices']} total)")
        gw.advance("growing")
        grown = gw.query("growing")
        full = FleetRunner(spec, workers=1).run().aggregate()
        grown["fleet"] = full["fleet"]
        assert canonical(grown) == canonical(full)
        print("cohort-grown fleet == one-shot over all devices: OK")

        gw.shutdown()
    thread.join(10)
    print("server drained; demo complete")


if __name__ == "__main__":
    main()
