"""A battery-less solar sensor node, end to end (paper Sections I-II).

Simulates the paper's motivating deployment: an event-driven sensor that
classifies locally and only wakes a main device for interesting events.
Compares the paper's execution model (select an exit the current charge
can finish) against the SONIC-style baseline (full inference across
however many power cycles it takes) on the same trace, events, and
hardware — then swaps in kinetic and RF harvesters to show how the
runtime adapts to different energy environments.

Run:  python examples/solar_sensor_node.py
"""

from repro.energy import (
    EnergyStorage,
    kinetic_trace,
    rf_trace,
    solar_trace,
    uniform_random_events,
)
from repro.experiment import reference_profile, sonic_profile
from repro.intermittent import MSP432
from repro.runtime import (
    FixedExitPolicy,
    QLearningController,
    StaticController,
)
from repro.sim import Simulator, SimulatorConfig

# The deployed profiles live in repro.experiment so the examples, the
# fleet scenario registry, and the benchmarks all simulate the same
# paper-regime devices.
multi_exit_profile = reference_profile
single_exit_profile = sonic_profile


def storage():
    return EnergyStorage(2.0, efficiency=0.8, initial_mj=1.0)


def run_ours(trace, events, episodes=15):
    controller = QLearningController(3, epsilon=0.25, epsilon_decay=0.9, rng=11)
    sim = Simulator(
        trace, multi_exit_profile(), controller, mcu=MSP432, storage=storage(),
        config=SimulatorConfig(seed=3),
    )
    result = None
    for _ in range(episodes):
        result = sim.run(events)
    return result


def run_sonic(trace, events):
    sim = Simulator(
        trace, single_exit_profile(), StaticController(FixedExitPolicy(0)),
        mcu=MSP432, storage=storage(),
        config=SimulatorConfig(execution="intermittent", seed=3),
    )
    return sim.run(events)


def report(label, result):
    print(f"  {label:12s} IEpmJ {result.iepmj:5.3f}  acc(all) {result.average_accuracy:5.3f}  "
          f"processed {result.num_processed:3d}/{result.num_events}  "
          f"latency {result.mean_latency_s:7.1f}s  misses {result.miss_counts()}")


def main():
    harvesters = {
        "solar": solar_trace(seed=5),
        "kinetic": kinetic_trace(duration=43_200.0, burst_power_mw=0.08,
                                 burst_rate_hz=0.002, burst_length_s=300.0,
                                 base_mw=0.001, seed=5),
        "rf": rf_trace(duration=43_200.0, mean_mw=0.006, seed=5),
    }
    for name, trace in harvesters.items():
        mean_mw = trace.total_energy_mj / trace.duration
        events = uniform_random_events(500, trace.duration, rng=9)
        print(f"\n=== {name} harvester: {trace.total_energy_mj:.0f} mJ over "
              f"{trace.duration/3600:.0f} h (mean {mean_mw*1000:.1f} uW) ===")
        report("multi-exit", run_ours(trace, events))
        report("sonic-style", run_sonic(trace, events))


if __name__ == "__main__":
    main()
