"""Docs checker: markdown link/anchor validation + executable examples.

    PYTHONPATH=src python tools/check_docs.py

Two passes over ``README.md`` + ``docs/*.md`` (stdlib only):

1. **Links.** Every relative markdown link must point at an existing
   file, and every ``#anchor`` (same-file or cross-file) must match a
   real heading under GitHub's slugification.  External links
   (``http(s)://``, ``mailto:``) are not fetched.
2. **Doctests.** Every fenced ``python`` block in ``docs/PROTOCOL.md``
   runs through :mod:`doctest`, so the protocol document cannot drift
   from the implementation it documents.

``tests/test_docs.py`` wraps both passes as tier-1 tests; CI's
``docs-check`` step runs this module directly.
"""

from __future__ import annotations

import doctest
import glob
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The files the link pass covers.
DOC_FILES = ("README.md", "docs/ARCHITECTURE.md", "docs/PROTOCOL.md")
#: The files whose fenced python blocks execute as doctests.
DOCTEST_FILES = ("docs/PROTOCOL.md",)

_FENCE = re.compile(r"^```", re.MULTILINE)
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$", re.MULTILINE)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PY_FENCE = re.compile(r"^```python\s*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading: lowercase, punctuation
    stripped, spaces to hyphens (backticks vanish, content stays)."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def strip_fenced_blocks(markdown: str) -> str:
    """Remove fenced code blocks (links inside them are not links)."""
    out, keep = [], True
    for chunk in _FENCE.split(markdown):
        if keep:
            out.append(chunk)
        keep = not keep
    return "".join(out)


def heading_slugs(markdown: str) -> set:
    """Every anchor a markdown file exposes (with GitHub dedup suffixes)."""
    slugs: set = set()
    counts: dict = {}
    for match in _HEADING.finditer(strip_fenced_blocks(markdown)):
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def check_links(root: str = REPO_ROOT, files=DOC_FILES) -> list:
    """Validate every relative link/anchor; returns finding strings."""
    contents = {}
    for rel in files:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            return [f"{rel}: file missing"]
        with open(path) as fh:
            contents[rel] = fh.read()
    findings = []
    for rel, markdown in contents.items():
        base = os.path.dirname(os.path.join(root, rel))
        for match in _LINK.finditer(strip_fenced_blocks(markdown)):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                dest = os.path.normpath(os.path.join(base, file_part))
                if not os.path.exists(dest):
                    findings.append(f"{rel}: broken link {target!r}")
                    continue
                dest_rel = os.path.relpath(dest, root)
                if anchor and dest_rel in contents:
                    if anchor not in heading_slugs(contents[dest_rel]):
                        findings.append(
                            f"{rel}: broken anchor {target!r} "
                            f"(no heading slugs to '{anchor}' in {dest_rel})"
                        )
            elif anchor:
                if anchor not in heading_slugs(markdown):
                    findings.append(f"{rel}: broken same-file anchor #{anchor}")
    return findings


def run_doctests(root: str = REPO_ROOT, files=DOCTEST_FILES) -> list:
    """Execute fenced python blocks as doctests; returns finding strings."""
    findings = []
    for rel in files:
        path = os.path.join(root, rel)
        with open(path) as fh:
            markdown = fh.read()
        blocks = _PY_FENCE.findall(markdown)
        if not blocks:
            findings.append(f"{rel}: no fenced python blocks to execute")
            continue
        parser = doctest.DocTestParser()
        runner = doctest.DocTestRunner(
            optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE
        )
        globs: dict = {}  # shared across blocks, like one long session
        for i, block in enumerate(blocks):
            test = parser.get_doctest(
                block, globs, f"{rel}[block {i}]", rel, 0
            )
            if not test.examples:
                findings.append(
                    f"{rel}: fenced python block {i} has no >>> examples"
                )
                continue
            result = runner.run(test, clear_globs=False)
            if result.failed:
                findings.append(
                    f"{rel}: block {i} failed {result.failed} of "
                    f"{result.attempted} doctest examples"
                )
    return findings


def main(argv=None) -> int:
    """Run both passes; print findings; nonzero exit on any."""
    argv = sys.argv[1:] if argv is None else argv
    root = argv[0] if argv else REPO_ROOT
    extra = sorted(
        os.path.relpath(p, root)
        for p in glob.glob(os.path.join(root, "docs", "*.md"))
    )
    files = tuple(dict.fromkeys(DOC_FILES + tuple(extra)))
    findings = check_links(root, files) + run_doctests(root)
    for finding in findings:
        print(f"FAIL: {finding}")
    if not findings:
        print(f"docs OK: {len(files)} files, links + anchors + doctests clean")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
