"""A4 — ablation: channel-importance criterion for pruning (Eq. 2).

Compares the paper's sum-|W| (L1) importance against L2 and random
channel selection at the same preserve ratios, measuring zero-shot
per-exit accuracy of the compressed model.  Expected shape: informed
criteria (L1/L2) beat random selection on average.
"""

import numpy as np

from repro.compress import Compressor, make_uniform_spec
from repro.compress.evaluator import evaluate_exits

from benchmarks.conftest import print_table

ALPHA = 0.85  # gentle pruning, no quantization: zero-shot stays informative


def test_importance_criteria(benchmark, trained_lenet, dataset):
    net, _ = trained_lenet
    spec = make_uniform_spec(net, ALPHA, 32, 32)

    def run():
        out = {}
        for criterion in ("l1", "l2", "random"):
            accs = []
            seeds = (0, 1, 2) if criterion == "random" else (0,)
            for seed in seeds:
                compressor = Compressor(importance=criterion)
                model = compressor.apply(net, spec, rng=np.random.default_rng(seed))
                accs.append(evaluate_exits(model, dataset.test).accuracies)
            out[criterion] = np.mean(np.asarray(accs), axis=0)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (criterion, *[f"{a:.3f}" for a in accs])
        for criterion, accs in results.items()
    ]
    print_table(
        f"A4: channel importance criteria at alpha={ALPHA} (zero-shot)",
        rows,
        ["criterion", "exit 1", "exit 2", "exit 3"],
    )

    l1_mean = float(np.mean(results["l1"]))
    random_mean = float(np.mean(results["random"]))
    print(f"mean accuracy: l1 {l1_mean:.3f} vs random {random_mean:.3f}")

    # The paper's Eq. 2 criterion must beat (or match, within noise)
    # random channel selection.
    assert l1_mean >= random_mean - 0.05
