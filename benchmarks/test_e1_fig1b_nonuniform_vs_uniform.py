"""E1 — Fig. 1(b): per-exit accuracy, full precision vs uniform vs
nonuniform compression at the same FLOPs/size budget.

Paper shape: both schemes lose accuracy; the nonuniform policy loses less,
with the advantage concentrated in the exits the power trace actually
selects.  (Paper values: full 64.9/72.0/73.0, uniform 57.3/65.2/67.5,
nonuniform 61.9/68.5/69.9.)
"""

from repro.compress import Compressor, fit_uniform_spec
from repro.compress.evaluator import evaluate_exits
from repro.experiment import PAPER

from benchmarks.conftest import print_table

PAPER_FULL = (0.649, 0.720, 0.730)
PAPER_UNIFORM = (0.573, 0.652, 0.675)
PAPER_NONUNIFORM = (0.619, 0.685, 0.699)


def test_fig1b_nonuniform_beats_uniform(
    benchmark, trained_lenet, nonuniform_spec, compressed_ours, dataset
):
    net, full_accs = trained_lenet
    spec, summary = nonuniform_spec
    _, nonuniform_eval = compressed_ours

    def run_uniform():
        uniform = fit_uniform_spec(
            net, flops_target=PAPER.flops_target, size_target_kb=PAPER.size_target_kb
        )
        model = Compressor().apply(net, uniform, calibration_x=dataset.val.x[:64])
        return evaluate_exits(model, dataset.test)

    uniform_eval = benchmark.pedantic(run_uniform, rounds=1, iterations=1)

    rows = []
    for i in range(3):
        rows.append(
            (
                f"Exit {i + 1}",
                f"{PAPER_FULL[i]:.3f}/{PAPER_UNIFORM[i]:.3f}/{PAPER_NONUNIFORM[i]:.3f}",
                f"{full_accs[i]:.3f}",
                f"{uniform_eval.accuracies[i]:.3f}",
                f"{nonuniform_eval.accuracies[i]:.3f}",
            )
        )
    print_table(
        "E1 / Fig 1(b): accuracy per exit (paper full/uniform/nonuniform)",
        rows,
        ["exit", "paper", "full", "uniform", "nonuniform"],
    )

    # Shape 1: compression costs accuracy relative to full precision.
    for i in range(3):
        assert nonuniform_eval.accuracies[i] <= full_accs[i] + 0.02

    # Shape 2: the trace-weighted accuracy of the nonuniform policy beats
    # uniform compression at the same budget (what the search optimizes).
    weights = summary["exit_fractions"]
    weight_sum = sum(weights) or 1.0
    nonuni_weighted = sum(w * a for w, a in zip(weights, nonuniform_eval.accuracies))
    uni_weighted = sum(w * a for w, a in zip(weights, uniform_eval.accuracies))
    print(
        f"trace-weighted accuracy: nonuniform {nonuni_weighted / weight_sum:.3f} "
        f"vs uniform {uni_weighted / weight_sum:.3f}"
    )
    assert nonuni_weighted > uni_weighted

    # Shape 3: both satisfy the same budget.
    assert nonuniform_eval.fmodel_flops <= PAPER.flops_target
    assert nonuniform_eval.model_size_kb <= PAPER.size_target_kb
