"""E4 — Fig. 6 + Section V-D: FLOPs reduction per exit and latency.

Paper shape: compression reduces the three exits to roughly 0.31x / 0.44x /
0.67x of their original FLOPs; SonicNet (2.0M) and SpArSeNet (11.4M) dwarf
the compressed average, LeNet-Cifar (~0.23M) undercuts it.  Per-event
latency: ours 18.0 time units vs 139.9 (Sonic), 183.4 (SpArSe), 56.7
(LeNet) — 7.8x / 10.2x / 3.15x better.
"""


from benchmarks.conftest import print_table

PAPER_EXIT_RATIOS = (0.31, 0.44, 0.67)
PAPER_LATENCY = {"ours": 18.0, "sonic_net": 139.9, "sparse_net": 183.4, "lenet_cifar": 56.7}


def test_fig6_flops_reduction(benchmark, compressed_ours):
    model, _ = benchmark.pedantic(lambda: compressed_ours, rounds=1, iterations=1)
    original = model.profile.exit_flops

    rows = []
    for i, (orig, comp) in enumerate(zip(original, model.exit_flops)):
        rows.append(
            (
                f"Exit {i + 1}",
                f"{orig / 1e6:.3f}M",
                f"{comp / 1e6:.3f}M",
                f"{comp / orig:.2f}x",
                f"{PAPER_EXIT_RATIOS[i]:.2f}x",
            )
        )
    print_table(
        "E4 / Fig 6: FLOPs before/after compression",
        rows,
        ["exit", "before", "after", "ratio", "paper ratio"],
    )

    for orig, comp in zip(original, model.exit_flops):
        # Every exit must be compressed, and never below 10% (the paper's
        # ratios sit between 0.31x and 0.67x).
        assert 0.05 <= comp / orig < 1.0
    # The final exit meets the 1.15M budget like the paper's 0.67 * 1.62M.
    assert model.exit_flops[-1] <= 1.15e6


def test_fig6_baseline_flops_scale(benchmark, baseline_profiles, ours_profile):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    avg_ours = sum(
        f * p for f, p in zip(ours_profile.exit_flops, (0.7, 0.1, 0.2))
    )  # rough exit mix
    rows = [("ours (avg inference)", f"{avg_ours / 1e6:.2f}M", "-")]
    for name, paper_flops in (
        ("sonic_net", 2.0),
        ("sparse_net", 11.4),
        ("lenet_cifar", 0.23),
    ):
        measured = baseline_profiles[name].exit_flops[0]
        rows.append((name, f"{measured / 1e6:.2f}M", f"{paper_flops:.2f}M"))
    print_table("E4 / Fig 6: baseline FLOPs", rows, ["network", "measured", "paper"])

    assert baseline_profiles["sparse_net"].exit_flops[0] > baseline_profiles["sonic_net"].exit_flops[0]
    assert baseline_profiles["sonic_net"].exit_flops[0] > avg_ours
    assert baseline_profiles["lenet_cifar"].exit_flops[0] < ours_profile.exit_flops[-1]


def test_fig6_per_event_latency(benchmark, headline_results):
    benchmark.pedantic(lambda: headline_results, rounds=1, iterations=1)
    rows = []
    for name in ("ours", "sonic_net", "sparse_net", "lenet_cifar"):
        r = headline_results[name]
        rows.append(
            (name, f"{r.mean_latency_s:.1f}s", f"{PAPER_LATENCY[name]:.1f}", r.num_processed)
        )
    print_table(
        "E4 / §V-D: per-event latency (event occurrence -> result)",
        rows,
        ["system", "measured", "paper (time units)", "processed"],
    )
    ours = headline_results["ours"].mean_latency_s
    sonic = headline_results["sonic_net"].mean_latency_s
    sparse = headline_results["sparse_net"].mean_latency_s
    lenet = headline_results["lenet_cifar"].mean_latency_s
    print(
        f"latency improvements: {sonic / ours:.1f}x vs sonic (paper 7.8x), "
        f"{sparse / ours:.1f}x vs sparse (paper 10.2x), "
        f"{lenet / ours:.1f}x vs lenet (paper 3.15x)"
    )
    # Shape: ours fastest; SpArSe slowest; every baseline at least 2x slower.
    assert ours < lenet < sonic < sparse
    assert sonic / ours > 2.0
