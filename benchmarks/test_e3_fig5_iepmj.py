"""E3 — Fig. 5: IEpmJ (interesting events per milliJoule) and the average
accuracies, ours vs SonicNet vs SpArSeNet vs LeNet-Cifar.

Paper values: IEpmJ 0.89 / 0.25 / 0.05 / ~0.70 (ours / Sonic / SpArSe /
LeNet), i.e. 3.6x, 18.9x, 1.28x; average accuracy over all events 50.1 /
14.0 / 2.6 / 39.2 %; accuracy over processed events 65.4 / 75.4 / 82.7 /
74.7 % (ours lowest — it trades per-inference accuracy for coverage).
"""

import pytest

from benchmarks.conftest import print_table

PAPER_ROWS = {
    "ours": dict(iepmj=0.89, acc_all=0.501, acc_processed=0.654),
    "sonic_net": dict(iepmj=0.25, acc_all=0.140, acc_processed=0.754),
    "sparse_net": dict(iepmj=0.05, acc_all=0.026, acc_processed=0.827),
    "lenet_cifar": dict(iepmj=0.70, acc_all=0.392, acc_processed=0.747),
}


def test_fig5_iepmj_ordering(benchmark, headline_results):
    results = benchmark.pedantic(lambda: headline_results, rounds=1, iterations=1)

    rows = []
    for name in ("ours", "sonic_net", "sparse_net", "lenet_cifar"):
        r = results[name]
        p = PAPER_ROWS[name]
        rows.append(
            (
                name,
                f"{p['iepmj']:.2f}",
                f"{r.iepmj:.3f}",
                f"{p['acc_all']:.3f}",
                f"{r.average_accuracy:.3f}",
                f"{p['acc_processed']:.3f}",
                f"{r.processed_accuracy:.3f}",
                r.num_processed,
            )
        )
    print_table(
        "E3 / Fig 5: IEpmJ and accuracies (paper vs measured)",
        rows,
        ["system", "IEpmJ(p)", "IEpmJ", "acc-all(p)", "acc-all", "acc-proc(p)", "acc-proc", "processed"],
    )
    ours, sonic = results["ours"], results["sonic_net"]
    sparse, lenet = results["sparse_net"], results["lenet_cifar"]
    for name in ("ours", "sonic_net", "sparse_net", "lenet_cifar"):
        print(f"{name}: misses by reason -> {results[name].miss_counts()}")
    print(
        f"speedups: vs sonic {ours.iepmj / max(sonic.iepmj, 1e-9):.1f}x (paper 3.6x), "
        f"vs sparse {ours.iepmj / max(sparse.iepmj, 1e-9):.1f}x (paper 18.9x), "
        f"vs lenet {ours.iepmj / max(lenet.iepmj, 1e-9):.2f}x (paper 1.28x)"
    )

    # Shape: strict IEpmJ ordering over the intermittent baselines.
    assert ours.iepmj > sonic.iepmj > sparse.iepmj
    assert lenet.iepmj > sonic.iepmj
    # LeNet-Cifar is the paper's closest call (1.28x).  On the synthetic
    # dataset LeNet-Cifar trains disproportionately strong relative to the
    # compressed multi-exit model (see EXPERIMENTS.md delta 2b), so we
    # assert parity-regime rather than strict dominance here.
    assert ours.iepmj >= 0.75 * lenet.iepmj

    # Factor regimes (loose bands around the paper's 3.6x / 18.9x).
    assert ours.iepmj / max(sonic.iepmj, 1e-9) > 2.0
    assert ours.iepmj / max(sparse.iepmj, 1e-9) > 6.0

    # Ours trades per-inference accuracy for coverage: lowest processed
    # accuracy, and vastly more processed events than the multi-power-cycle
    # baselines (the paper's Section V-C argument).
    assert ours.processed_accuracy <= max(
        sonic.processed_accuracy, sparse.processed_accuracy, lenet.processed_accuracy
    )
    assert ours.num_processed > 3 * max(sonic.num_processed, sparse.num_processed)

    # IEpmJ == (N / E_total) * average accuracy (Eq. 1 consistency).
    for r in results.values():
        assert r.iepmj == pytest.approx(
            r.num_events / r.total_env_energy_mj * r.average_accuracy, rel=1e-9
        )
