#!/usr/bin/env python
"""Attribute the mixed city-block speedup gap with the phase profiler.

The P5 trajectory shows the batched engine winning ~3.6x on an
all-intermittent 128-device fleet but only ~1.1x on the mixed
``city-block-1k`` 128-device slice.  This script runs that slice under
``repro.obs`` with the phase profiler on, splits the batched engine's
wall clock between its single-cycle lockstep loop and the intermittent
kernel, measures the same split on the per-device engine from its
per-device wall times, and writes the attribution as a committed
artifact::

    PYTHONPATH=src python benchmarks/profile_cityblock.py \
        [--devices 128] [--rounds 3] [--out benchmarks/PROFILE_p6_cityblock128.json]

The committed ``PROFILE_p6_cityblock128.json`` is the PR-6 deliverable:
a machine-readable answer to "where does the mixed-fleet speedup go?",
with the dominant overhead named in ``attribution.finding``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))  # for conftest
from conftest import bench_provenance  # noqa: E402

from repro.fleet import SCENARIOS, FleetRunner  # noqa: E402
from repro.obs import Recorder, recording  # noqa: E402

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "PROFILE_p6_cityblock128.json"
)


def _profiled_batched_run(spec, rounds: int):
    """Best-of-``rounds`` batched run; returns (best_s, that round's profile)."""
    FleetRunner(spec, workers=1, engine="batched").run()  # warm caches
    best_s, best_profile = float("inf"), None
    for _ in range(rounds):
        recorder = Recorder(metrics=True, profile=True)
        with recording(recorder):
            result = FleetRunner(spec, workers=1, engine="batched").run()
        if result.wall_s < best_s:
            best_s = result.wall_s
            best_profile = recorder.profiler.to_dict()
    return best_s, best_profile


def _device_engine_split(spec, rounds: int):
    """Best device-engine wall + per-execution-class device wall split."""
    FleetRunner(spec, workers=1, engine="device").run()  # warm caches
    best_s, best_result = float("inf"), None
    for _ in range(rounds):
        result = FleetRunner(spec, workers=1, engine="device").run()
        if result.wall_s < best_s:
            best_s, best_result = result.wall_s, result
    split = {"intermittent": 0.0, "single-cycle": 0.0}
    for device, d_spec in zip(best_result.devices, spec.devices):
        split[d_spec.execution] += device.wall_s
    return best_s, split


def build_profile(devices: int, rounds: int) -> dict:
    spec = SCENARIOS.build("city-block-1k", num_devices=devices)
    n_int = sum(1 for d in spec.devices if d.execution == "intermittent")

    batched_s, profile = _profiled_batched_run(spec, rounds)
    device_s, device_split = _device_engine_split(spec, rounds)

    phases = profile["phases"]
    counts = profile["counts"]
    run_s = phases["batch.run"]["wall_s"]
    int_s = phases.get("batch.intermittent", {}).get("wall_s", 0.0)
    lockstep_s = phases.get("batch.lockstep", {}).get("wall_s", 0.0)
    micro_passes = counts.get("intermittent.micro_passes", 0)
    kernel_passes = counts.get("intermittent.kernel_passes", 0)
    active_lanes = sum(
        counts.get(f"intermittent.{k}_lanes", 0)
        for k in ("boundary", "compute", "recharge")
    )
    lanes_per_pass = active_lanes / micro_passes if micro_passes else 0.0
    collapse = micro_passes / kernel_passes if kernel_passes else 0.0

    int_frac = int_s / run_s if run_s else 0.0
    finding = (
        f"{n_int}/{devices} intermittent devices take {int_frac:.0%} of "
        f"the batched engine's wall clock. At PR 6 this shape was the "
        f"bottleneck: one micro-step per kernel pass over a lane set "
        f"capped at {n_int} devices (~{lanes_per_pass:.1f} active "
        f"lanes/pass) ran near scalar speed and held the mixed fleet to "
        f"~1.1x. The PR-8 event-batched kernel fuses boundary-free "
        f"micro-step runs: the same {micro_passes} logical micro-steps "
        f"now cost {kernel_passes} physical passes ({collapse:.1f}x "
        f"collapse), the single-cycle lockstep loop finishes in "
        f"{lockstep_s:.3f}s, and the mixed-fleet speedup clears the 3x "
        f"floor BENCH_p8_lanes tracks."
    )

    return {
        "profile": "p6_cityblock128",
        "scenario": "city-block-1k",
        "devices": devices,
        "intermittent_devices": n_int,
        "rounds": rounds,
        "fleet_digest": spec.digest(),
        "batched": {
            "best_s": batched_s,
            "phases": phases,
            "counts": counts,
        },
        "device_engine": {
            "best_s": device_s,
            "wall_split_s": device_split,
        },
        "attribution": {
            "speedup": device_s / batched_s if batched_s else None,
            "batched_intermittent_frac": int_frac,
            "batched_lockstep_frac": lockstep_s / run_s if run_s else 0.0,
            "kernel_micro_passes": micro_passes,
            "kernel_physical_passes": kernel_passes,
            "kernel_pass_collapse": collapse,
            "kernel_active_lanes_per_pass": lanes_per_pass,
            "kernel_max_lane_width": n_int,
            "dominant_overhead": "resolved at PR 8: micro-step passes "
            "are event-batched into boundary-free fused runs",
            "finding": finding,
        },
        "provenance": bench_provenance(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--devices", type=int, default=128)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default=DEFAULT_OUT)
    args = parser.parse_args(argv)
    payload = build_profile(args.devices, args.rounds)
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    att = payload["attribution"]
    print(f"wrote {args.out}")
    print(f"  speedup (device/batched): {att['speedup']:.2f}x")
    print(
        f"  batched wall in intermittent kernel: "
        f"{att['batched_intermittent_frac']:.0%}"
    )
    print(f"  {att['finding']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
