"""P1 — fleet-path throughput: devices simulated per second.

Times a 32-device solar-farm scenario through the serial fallback and the
multiprocessing pool so future PRs can track fleet-path speed.  (At PR 1,
trace synthesis dominated this path; PR 2 vectorized trace synthesis, the
per-event charge accounting, and the result layer — see
benchmarks/test_p2_hotpath.py for the per-layer breakdown.)  Also
re-checks the determinism contract under timing conditions: the parallel
aggregate must stay bit-identical to the serial one.

Set ``BENCH_SMOKE=1`` for the CI smoke lane: one round, no timing
assertions beyond throughput being measurable.
"""

import json

import pytest

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import print_table
from repro.fleet import SCENARIOS, FleetRunner

DEVICES = 32


@pytest.fixture(scope="module")
def fleet_spec():
    return SCENARIOS.build("solar-farm-100", num_devices=DEVICES, seed=13)


def test_p1_fleet_throughput(benchmark, fleet_spec):
    serial = benchmark.pedantic(
        lambda: FleetRunner(fleet_spec, workers=1).run(),
        rounds=1 if SMOKE else 3,
        iterations=1,
    )
    parallel = FleetRunner(fleet_spec, workers=4).run()

    rows = [
        (label, r.workers, f"{r.wall_s:.2f}", f"{r.devices_per_second:.1f}")
        for label, r in (("serial", serial), ("parallel", parallel))
    ]
    print_table(
        f"P1: {DEVICES}-device fleet throughput",
        rows,
        ["mode", "workers", "wall_s", "devices/s"],
    )

    assert serial.num_devices == DEVICES
    assert serial.devices_per_second > 0
    # Worker count must never change results (the fleet determinism contract).
    assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
        parallel.to_dict(), sort_keys=True
    )
