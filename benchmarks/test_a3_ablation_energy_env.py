"""A3 — ablation: sensitivity to the energy environment.

Sweeps storage capacity, charge efficiency, and harvest power for the
deployed multi-exit system.  Expected shapes: more stored energy or more
power -> more deep-exit usage and higher average accuracy; the system
degrades gracefully (never collapses to zero while any exit is
affordable).
"""

from repro.energy import EnergyStorage
from repro.experiment import PAPER
from repro.runtime import GreedyEnergyPolicy, StaticController
from repro.sim import Simulator, SimulatorConfig

from benchmarks.conftest import print_table


def run_env(profile, trace, events, capacity, efficiency, seed=3):
    sim = Simulator(
        trace,
        profile,
        StaticController(GreedyEnergyPolicy()),
        mcu=PAPER.mcu,
        storage=EnergyStorage(capacity, efficiency, initial_mj=capacity / 2),
        config=SimulatorConfig(mode="profile", seed=seed),
    )
    return sim.run(events)


def test_energy_environment_sweep(benchmark, ours_profile, environment):
    trace, events = environment

    def run():
        grid = {}
        for capacity in (2.0, 4.0):
            for efficiency in (0.5, 0.8, 1.0):
                grid[(capacity, efficiency)] = run_env(
                    ours_profile, trace, events, capacity, efficiency
                )
        for scale in (0.5, 2.0):
            grid[("power", scale)] = Simulator(
                trace.scaled(scale),
                ours_profile,
                StaticController(GreedyEnergyPolicy()),
                mcu=PAPER.mcu,
                storage=PAPER.make_storage(),
                config=SimulatorConfig(mode="profile", seed=3),
            ).run(events)
        return grid

    grid = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for key, r in grid.items():
        rows.append(
            (
                str(key),
                f"{r.average_accuracy:.3f}",
                r.num_processed,
                " ".join(str(c) for c in r.exit_counts(3)),
            )
        )
    print_table(
        "A3: energy environment sweep (greedy policy)",
        rows,
        ["(capacity,eff) / power", "avg acc", "processed", "exit counts"],
    )

    # More efficiency helps at fixed capacity.
    assert (
        grid[(2.0, 1.0)].average_accuracy >= grid[(2.0, 0.5)].average_accuracy - 0.02
    )
    # More harvest power helps.
    assert (
        grid[("power", 2.0)].average_accuracy
        >= grid[("power", 0.5)].average_accuracy
    )
    # Graceful degradation: even the weakest setting processes something.
    assert grid[("power", 0.5)].num_processed > 0
