"""P6 — observability overhead: the no-op path must be free.

The PR-6 contract is that a run with observability off (the default
``NULL_RECORDER``) costs nothing measurable: every hot-loop
instrumentation point reduces to one attribute read and a ``None``
check.  This bench drives the same 32-device solar farm as P4's
batched-serial section and gates the no-op cost at ≤2%.

The gate is a **paired, interleaved** comparison: no-op and
fully-enabled (metrics + phase profiler) rounds alternate inside one
process, and the no-op best must stay within 2% of the enabled best.
The enabled path strictly contains all the no-op path's work, so if the
"free" path falls measurably behind the paying one, a guard inverted or
a recorder leaked into the default — the exact regressions the contract
forbids.  A direct gate against a pre-instrumentation build is
impossible (that code no longer exists in-tree), and a cross-process
gate against the committed P4 trajectory is hopeless at the 2% level on
a 1-vCPU microVM whose run-to-run wall clock swings by tens of percent;
the committed baseline is still recorded for context, and the
cross-run trajectory is gated by ``compare.py``'s collapse thresholds.

Also asserts the stronger determinism contract end-to-end: the fleet
report is byte-identical with observability off and fully on.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.fleet import SCENARIOS, FleetRunner
from repro.obs.recorder import Recorder, recording

ROUNDS = 1 if SMOKE else 7
FLEET_SEED = 13
DEVICES = 32

#: The no-op gate: obs-off throughput must stay within this fraction of
#: the fully-enabled path measured in the same interleaved block.
NOOP_OVERHEAD_FRAC = 0.02

BENCH_JSON = bench_output_path("BENCH_p6_obs.json")
#: Committed (non-smoke) P4 trajectory — context only, never asserted
#: against at the 2% level (cross-process noise dwarfs it; see module
#: docstring).
P4_COMMITTED = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_p4_batch.json"
)

_RESULTS: dict = {}


def _spec():
    return SCENARIOS.build("solar-farm-100", num_devices=DEVICES, seed=FLEET_SEED)


def _interleaved_best(spec, rounds: int = ROUNDS):
    """(noop_best_s, obs_best_s, noop_result, obs_result), rounds paired.

    Alternating rounds share whatever the host is doing to the clock, so
    the noop/obs ratio is far more stable than either absolute number.
    A fresh Recorder per obs round pays the full cost from a cold
    registry every time.
    """
    FleetRunner(spec, workers=1).run()  # warm per-process caches
    noop_best = obs_best = float("inf")
    noop_result = obs_result = None
    for _ in range(rounds):
        noop_result = FleetRunner(spec, workers=1).run()
        noop_best = min(noop_best, noop_result.wall_s)
        with recording(Recorder(metrics=True, profile=True)):
            obs_result = FleetRunner(spec, workers=1).run()
        obs_best = min(obs_best, obs_result.wall_s)
    return noop_best, obs_best, noop_result, obs_result


def _p4_committed_dps():
    """batched32 devices/s from the committed trajectory (None if absent)."""
    try:
        with open(P4_COMMITTED) as fh:
            payload = json.load(fh)
        return float(payload["batched32"]["batched_devices_per_s"])
    except (OSError, KeyError, TypeError, ValueError):
        return None


def test_p6_noop_overhead_and_identity():
    spec = _spec()
    # Up to 3 attempts of the whole interleaved block: even the paired
    # ratio can lose to a burst of host contention landing on one side;
    # a real no-op-path regression fails every attempt.
    attempts = 0
    for attempts in range(1, 2 if SMOKE else 4):
        noop_best, obs_best, noop, with_obs = _interleaved_best(spec)
        if noop_best <= obs_best * (1.0 + NOOP_OVERHEAD_FRAC):
            break
    noop_dps = DEVICES / noop_best
    obs_dps = DEVICES / obs_best
    p4_dps = _p4_committed_dps()
    _RESULTS["obs32"] = {
        "devices": DEVICES,
        "gate_attempts": attempts,
        "noop_best_s": noop_best,
        "noop_devices_per_s": noop_dps,
        "obs_on_best_s": obs_best,
        "obs_on_devices_per_s": obs_dps,
        "noop_vs_obs_on_frac": noop_best / obs_best - 1.0,
        # Not a throughput metric of this run (no _per_s suffix on
        # purpose): the committed same-code reference, for context.
        "p4_committed_baseline_dps": p4_dps,
    }
    print_table(
        f"P6: {DEVICES}-device batched fleet, observability cost (interleaved)",
        [
            ("off (no-op)", f"{noop_best * 1e3:.1f}", f"{noop_dps:.0f}"),
            ("metrics+profile", f"{obs_best * 1e3:.1f}", f"{obs_dps:.0f}"),
            ("P4 committed baseline", "-", f"{p4_dps:.0f}" if p4_dps else "-"),
        ],
        ["observability", "best_ms", "devices/s"],
    )

    # Determinism contract: full obs never changes a single byte of the
    # fleet report.
    assert json.dumps(noop.to_dict(), sort_keys=True) == json.dumps(
        with_obs.to_dict(), sort_keys=True
    )

    if not SMOKE:
        assert noop_best <= obs_best * (1.0 + NOOP_OVERHEAD_FRAC), (
            f"no-op observability path more than {NOOP_OVERHEAD_FRAC:.0%} "
            f"slower than the fully-enabled path: {noop_dps:.0f} vs "
            f"{obs_dps:.0f} devices/s — is a recorder active by default?"
        )


def test_p6_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    assert "obs32" in _RESULTS, "earlier P6 section did not run"
    payload = {
        "bench": "p6_obs",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "noop_overhead_frac_gate": NOOP_OVERHEAD_FRAC,
        **_RESULTS,
    }
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p6_obs: {json.dumps(payload, sort_keys=True)}")
