"""P9 — sharded fleet execution: ledger overhead, scaling, memory bound.

The shard ledger buys crash-anywhere resume and memory-bounded scale-out;
this bench pins what it costs and what it bounds:

* **overhead** — unsharded vs single-worker sharded throughput on the
  same fleet: the ledger tax (pack → JSON → seal → publish → merge) must
  stay a bounded fraction of the simulation itself;
* **scaling** — devices/s across shard counts at one worker: per-shard
  cost must stay near-flat (near-linear scaling floor), or scale-out
  would quietly turn into scale-down;
* **workers** — multi-process work-stealing drain, recorded for
  trajectory context but flagged ``parallel_fell_back_to_serial``-style
  on single-CPU containers where pool scaling is unmeasurable;
* **memory** — peak RSS (the PR-6 profiler probe) around a
  ``megacity-1m`` slice executed shard-by-shard, plus proof that a tiny
  ``max_rss_mb`` budget actually triggers graceful degradation instead
  of growth.

Results land in ``benchmarks/BENCH_p9_shards.json`` (or
``benchmarks/.smoke/`` under ``BENCH_SMOKE=1``); the CI regression gate
diffs them against the committed trajectory — see ``compare.py``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.fleet import SCENARIOS, FleetRunner, FleetShardSource, run_sharded
from repro.fleet.runner import usable_cpus
from repro.fleet.shards import ScenarioShardSource
from repro.obs.profiler import memory_snapshot

ROUNDS = 1 if SMOKE else 3
DEVICES = 32 if SMOKE else 96

#: Ledger tax bound: single-worker sharded throughput must stay at least
#: this fraction of the unsharded run on the same fleet.  The brownout
#: grid is deliberately cheap per device, so the pack → seal → publish →
#: merge tax reads large here (~0.5x measured); the floor guards against
#: growth-class regressions, not against the known fixed cost.
OVERHEAD_FLOOR = 0.2 if SMOKE else 0.3

#: Near-linear scaling floor: throughput at the finest shard split must
#: stay at least this fraction of the single-shard run (~0.36x measured
#: at 8 shards of 12 devices — per-shard artifact cost dominates once
#: shards shrink this far on a cheap scenario).
SCALING_FLOOR = 0.15 if SMOKE else 0.2

#: Peak-RSS ceiling for the megacity slice (generous: the point is to
#: catch growth-class regressions, not byte-count the allocator).
MEGACITY_RSS_CEILING_MB = 4096.0

BENCH_JSON = bench_output_path("BENCH_p9_shards.json")

_RESULTS: dict = {}


def _spec():
    return SCENARIOS.build("brownout-grid-256", num_devices=DEVICES)


def _best_dps(run, rounds: int = ROUNDS) -> tuple:
    """(best devices/s, last aggregate) over fresh timed runs."""
    run()  # warm per-process caches (traces, profiles)
    best, agg = 0.0, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        agg = run()
        wall = time.perf_counter() - t0
        best = max(best, DEVICES / wall)
    return best, agg


def test_p9_ledger_overhead():
    spec = _spec()

    def unsharded():
        return FleetRunner(spec).run().aggregate()

    def sharded():
        with tempfile.TemporaryDirectory() as led:
            return run_sharded(
                FleetShardSource(spec), os.path.join(led, "L"), shards=4
            ).aggregate()

    plain_dps, plain_agg = _best_dps(unsharded)
    shard_dps, shard_agg = _best_dps(sharded)
    ratio = shard_dps / plain_dps
    _RESULTS["overhead"] = {
        "devices": DEVICES,
        "unsharded_devices_per_s": plain_dps,
        "sharded_devices_per_s": shard_dps,
        "ratio": ratio,
        "ratio_floor": OVERHEAD_FLOOR,
    }
    print_table(
        f"P9: ledger overhead on {DEVICES}-device brownout grid",
        [
            ("unsharded", f"{plain_dps:.0f}"),
            ("sharded x4 (ledger)", f"{shard_dps:.0f}"),
            ("ratio", f"{ratio:.2f}"),
        ],
        ["path", "devices/s"],
    )
    # Crash safety must never cost a single result bit.
    assert json.dumps(plain_agg, sort_keys=True) == json.dumps(
        shard_agg, sort_keys=True
    )
    if not SMOKE:
        assert ratio >= OVERHEAD_FLOOR, (
            f"shard ledger tax exploded: sharded runs at {ratio:.2f}x "
            f"unsharded throughput (floor {OVERHEAD_FLOOR}x)"
        )


def test_p9_shard_scaling():
    spec = _spec()
    counts = [1, 2, 4, 8]
    rows, section = [], {"devices": DEVICES, "scaling_floor": SCALING_FLOOR}
    for shards in counts:

        def sharded(shards=shards):
            with tempfile.TemporaryDirectory() as led:
                return run_sharded(
                    FleetShardSource(spec), os.path.join(led, "L"),
                    shards=shards,
                ).aggregate()

        dps, _ = _best_dps(sharded, rounds=1 if SMOKE else 2)
        section[f"shards{shards}_devices_per_s"] = dps
        rows.append((str(shards), f"{dps:.0f}"))
    finest = section[f"shards{counts[-1]}_devices_per_s"]
    coarsest = section["shards1_devices_per_s"]
    section["finest_over_coarsest"] = finest / coarsest
    _RESULTS["scaling"] = section
    print_table(
        "P9: single-worker shard-count scaling", rows, ["shards", "devices/s"]
    )
    if not SMOKE:
        assert finest >= SCALING_FLOOR * coarsest, (
            f"per-shard overhead is no longer flat: {counts[-1]} shards run "
            f"at {finest / coarsest:.2f}x the 1-shard rate "
            f"(floor {SCALING_FLOOR}x)"
        )


def test_p9_multiworker_drain():
    """Work-stealing drain across processes — flagged on 1-CPU hosts
    where pool scaling is unmeasurable (compare.py then skips its
    throughput keys, keeping the trajectory honest)."""
    spec = _spec()
    serial_only = usable_cpus() <= 1

    def sharded():
        with tempfile.TemporaryDirectory() as led:
            return run_sharded(
                FleetShardSource(spec), os.path.join(led, "L"),
                shards=8, workers=4,
            ).aggregate()

    dps, agg = _best_dps(sharded, rounds=1)
    _RESULTS["workers"] = {
        "devices": DEVICES,
        "shard_workers": 4,
        "usable_cpus": usable_cpus(),
        "parallel_fell_back_to_serial": serial_only,
        "drain_devices_per_s": dps,
    }
    print_table(
        "P9: 4-worker work-stealing drain",
        [("4 workers / 8 shards", f"{dps:.0f}",
          "1-CPU container" if serial_only else "")],
        ["config", "devices/s", "note"],
    )
    assert json.dumps(agg, sort_keys=True) == json.dumps(
        FleetRunner(spec).run().aggregate(), sort_keys=True
    )


def test_p9_megacity_memory_bound():
    """A megacity-1m slice, shard-by-shard, with the PR-6 RSS probe."""
    num = 64 if SMOKE else 512
    width = 16 if SMOKE else 64
    source = ScenarioShardSource("megacity-1m", {"num_devices": num})
    assert source.ranged
    before_mb = float(memory_snapshot()["peak_rss_mb"] or 0.0)
    with tempfile.TemporaryDirectory() as led:
        t0 = time.perf_counter()
        result = run_sharded(
            source, os.path.join(led, "L"), shard_width=width,
            max_rss_mb=MEGACITY_RSS_CEILING_MB,
        )
        wall = time.perf_counter() - t0
    peak_mb = float(memory_snapshot()["peak_rss_mb"] or 0.0)
    # Degradation must actually fire when the budget is absurdly small.
    with tempfile.TemporaryDirectory() as led:
        degraded = run_sharded(
            ScenarioShardSource("megacity-1m", {"num_devices": 16}),
            os.path.join(led, "L"), shard_width=8, max_rss_mb=1.0,
        ).degraded
    _RESULTS["memory"] = {
        "megacity_devices": num,
        "shard_width": width,
        "shards": result.num_shards,
        "devices_per_s": num / wall,
        "peak_rss_mb_before": before_mb,
        "peak_rss_mb": peak_mb,
        "rss_ceiling_mb": MEGACITY_RSS_CEILING_MB,
        "degradations_under_1mb_budget": degraded,
    }
    print_table(
        f"P9: megacity-1m slice ({num} devices, width {width})",
        [
            ("shards", str(result.num_shards)),
            ("devices/s", f"{num / wall:.0f}"),
            ("peak RSS (MB)", f"{peak_mb:.0f}"),
            ("degradations @1MB budget", str(degraded)),
        ],
        ["quantity", "value"],
    )
    assert result.aggregate()["devices"] == num
    assert peak_mb <= MEGACITY_RSS_CEILING_MB, (
        f"megacity slice peaked at {peak_mb:.0f} MB RSS "
        f"(ceiling {MEGACITY_RSS_CEILING_MB:.0f} MB)"
    )
    assert degraded >= 1, "max_rss_mb budget never triggered degradation"


def test_p9_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    missing = {"overhead", "scaling", "workers", "memory"} - set(_RESULTS)
    assert not missing, f"earlier P9 sections did not run: {sorted(missing)}"
    payload = {
        "bench": "p9_shards",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        **_RESULTS,
    }
    written = write_bench_json(BENCH_JSON, payload)
    print(f"\nwrote {BENCH_JSON}")
    assert written["overhead"]["sharded_devices_per_s"] > 0
