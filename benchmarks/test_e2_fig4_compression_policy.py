"""E2 — Fig. 4: the searched layer-wise preserve ratios and bitwidths
under the 1.15M FLOPs / 16 KB constraints.

Paper shape: convolutional layers are pruned harder (they dominate FLOPs)
while keeping higher weight bitwidths; the large FC branch layers absorb
the size budget by dropping to very low bitwidths (FC-B21/FC-B31 go to
1 bit in the paper).
"""

import numpy as np

from repro.experiment import PAPER
from repro.models import MULTI_EXIT_LENET_LAYERS

from benchmarks.conftest import print_table


def test_fig4_policy_layout(benchmark, compressed_ours):
    # The deployed spec: the search/heuristic finalist that actually ships
    # (see repro.zoo.get_deployed_model and EXPERIMENTS.md delta 3).
    model, _ = benchmark.pedantic(lambda: compressed_ours, rounds=1, iterations=1)
    spec = model.spec

    rows = []
    for name in MULTI_EXIT_LENET_LAYERS:
        lc = spec[name]
        rows.append(
            (
                name,
                f"{lc.preserve_ratio:.2f}",
                lc.weight_bits,
                lc.act_bits,
                f"{model.record(name).flops_effective / 1e3:.1f}k",
            )
        )
    print_table(
        "E2 / Fig 4: layer-wise compression policy (1.15M FLOPs, 16 KB)",
        rows,
        ["layer", "preserve", "w bits", "a bits", "eff FLOPs"],
    )
    print(
        f"F_model = {model.fmodel_flops / 1e6:.3f}M (target {PAPER.flops_target / 1e6:.2f}M), "
        f"S_model = {model.model_size_kb:.1f} KB (target {PAPER.size_target_kb:.0f} KB)"
    )

    # The searched policy must actually meet both constraints (Eq. 8).
    assert model.fmodel_flops <= PAPER.flops_target
    assert model.model_size_kb <= PAPER.size_target_kb

    # Every Figure-4 layer got a decision on the paper's grids.
    for name in MULTI_EXIT_LENET_LAYERS:
        lc = spec[name]
        assert 0.05 <= lc.preserve_ratio <= 1.0
        assert 1 <= lc.weight_bits <= 8
        assert 1 <= lc.act_bits <= 8

    # Size-dominating layers must carry below-fp bitwidths: the 16 KB target
    # is unreachable otherwise (the Fig. 4 "FC-B21/FC-B31 at 1 bit" effect).
    big_layers = sorted(
        MULTI_EXIT_LENET_LAYERS,
        key=lambda n: model.record(n).weight_count_orig,
        reverse=True,
    )[:2]
    mean_big_bits = np.mean([spec[n].weight_bits for n in big_layers])
    assert mean_big_bits <= 6.0

    # The policy is genuinely nonuniform.
    ratios = {spec[n].preserve_ratio for n in MULTI_EXIT_LENET_LAYERS}
    bits = {spec[n].weight_bits for n in MULTI_EXIT_LENET_LAYERS}
    assert len(ratios) > 1 or len(bits) > 1
