#!/usr/bin/env python
"""Benchmark trajectory regression gate.

Diffs fresh ``BENCH_*.json`` payloads against the committed ones and
fails (exit 1) when any throughput metric regressed by more than
``--max-regress`` (default 0.25, i.e. >25% slower).  Throughput metrics
are every numeric key ending in ``_per_s`` / ``_per_second`` anywhere in
the payload — higher is better; all other keys are ignored.

Usage::

    # local, like-for-like (same machine, full non-smoke runs):
    PYTHONPATH=src python -m pytest benchmarks/test_p2_hotpath.py ...   # rewrites BENCH_*.json
    git stash && python benchmarks/compare.py --fresh /tmp/fresh --baseline benchmarks

    # CI bench-smoke lane (shared runners, one warmed round, smoke
    # payloads land in benchmarks/.smoke/):
    BENCH_SMOKE=1 python -m pytest benchmarks/test_p2_hotpath.py ...
    python benchmarks/compare.py --fresh benchmarks/.smoke --baseline benchmarks --max-regress 0.6

The CI lane uses a looser threshold than the 25% default on purpose:
smoke timings are a single (warmed) round on shared runners whose
absolute speed differs from the reference container that produced the
committed numbers, so the gate there is a collapse detector (e.g. a
vectorized path silently falling back to a Python loop), not a
percent-level tracker.  Every committed ``BENCH_*.json`` must have a
fresh counterpart — a bench that silently stopped writing its payload is
itself a failure.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Keys treated as higher-is-better throughput metrics.
_THROUGHPUT_SUFFIXES = ("_per_s", "_per_second")


def throughput_metrics(payload, prefix: str = "") -> dict:
    """Flatten a payload to {dotted.path: value} over throughput keys."""
    out: dict = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = f"{prefix}.{key}" if prefix else key
            if isinstance(value, dict):
                out.update(throughput_metrics(value, path))
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                if any(key.endswith(s) for s in _THROUGHPUT_SUFFIXES):
                    out[path] = float(value)
    return out


def fallback_sections(payload, prefix: str = "") -> set:
    """Dotted paths of sections whose parallel timing ran the serial path.

    Fleet benches record ``parallel_fell_back_to_serial`` when the runner
    refused the pool (few devices, or one usable CPU): their ``parallel_*``
    metrics are serial-path timings.  Comparing one of those against a
    genuine pool timing from a machine with a different CPU budget would
    gate the wrong code path, so parallel metrics from a flagged section
    (on *either* side) are excluded from the diff.
    """
    out: set = set()
    if isinstance(payload, dict):
        if payload.get("parallel_fell_back_to_serial") is True:
            out.add(prefix)
        for key, value in payload.items():
            if isinstance(value, dict):
                out.update(
                    fallback_sections(value, f"{prefix}.{key}" if prefix else key)
                )
    return out


def _is_fallback_parallel(path: str, flagged: set) -> bool:
    section, _, leaf = path.rpartition(".")
    return leaf.startswith("parallel") and section in flagged


def compare_file(fresh_path: str, baseline_path: str, max_regress: float) -> list:
    """Return a list of human-readable regression strings (empty = pass)."""
    with open(baseline_path) as fh:
        baseline_payload = json.load(fh)
    with open(fresh_path) as fh:
        fresh_payload = json.load(fh)
    baseline = throughput_metrics(baseline_payload)
    fresh = throughput_metrics(fresh_payload)
    flagged = fallback_sections(baseline_payload) | fallback_sections(fresh_payload)
    name = os.path.basename(baseline_path)
    problems = []
    for path, base_value in sorted(baseline.items()):
        if _is_fallback_parallel(path, flagged):
            continue
        if base_value <= 0:
            # A zero/negative baseline throughput is itself a finding —
            # the committed payload is broken (e.g. a smoke artifact
            # under benchmarks/.smoke/ checked in by mistake, or a bench
            # that recorded a zero-duration round).  Dividing by it
            # would crash or approve any fresh value, so name it
            # instead of silently skipping the metric.
            problems.append(
                f"{name}: baseline {path} is {base_value!r} (not a "
                f"positive throughput); re-record the committed payload"
            )
            continue
        if path not in fresh:
            problems.append(f"{name}: metric {path!r} missing from fresh run")
            continue
        ratio = fresh[path] / base_value
        if ratio < 1.0 - max_regress:
            problems.append(
                f"{name}: {path} regressed {(1.0 - ratio) * 100.0:.0f}% "
                f"({fresh[path]:.1f} vs {base_value:.1f})"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--fresh", required=True,
        help="directory holding freshly measured BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", default=os.path.dirname(os.path.abspath(__file__)),
        help="directory holding the committed BENCH_*.json files",
    )
    parser.add_argument(
        "--max-regress", type=float, default=0.25,
        help="fail when a throughput metric drops by more than this "
        "fraction (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_regress < 1.0:
        parser.error("--max-regress must be in (0, 1)")
    baselines = sorted(glob.glob(os.path.join(args.baseline, "BENCH_*.json")))
    if not baselines:
        print(f"error: no BENCH_*.json under {args.baseline!r}", file=sys.stderr)
        return 2
    problems = []
    checked = 0
    for baseline_path in baselines:
        fresh_path = os.path.join(args.fresh, os.path.basename(baseline_path))
        if not os.path.exists(fresh_path):
            problems.append(
                f"{os.path.basename(baseline_path)}: no fresh payload under "
                f"{args.fresh!r} (bench did not run or stopped writing)"
            )
            continue
        file_problems = compare_file(fresh_path, baseline_path, args.max_regress)
        problems.extend(file_problems)
        checked += 1
        status = "FAIL" if file_problems else "ok"
        print(f"[{status}] {os.path.basename(baseline_path)}")
    if problems:
        print(
            f"\n{len(problems)} benchmark regression(s) beyond "
            f"{args.max_regress * 100:.0f}%:",
            file=sys.stderr,
        )
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    print(f"all throughput metrics within {args.max_regress * 100:.0f}% "
          f"across {checked} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
