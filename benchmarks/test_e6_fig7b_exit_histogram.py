"""E6 — Fig. 7(b): number of processed events per exit, Q-learning vs LUT.

Paper shape: Q-learning routes more events to the cheap Exit 1 (71.0% vs
57.6% of all events) to conserve energy, and processes ~11% more events
in total than the static LUT.
"""

from benchmarks.conftest import print_table, run_ours_qlearning, run_static_lut

PAPER_Q_FRACTIONS = (0.710, 0.028, 0.114)     # of all 500 events
PAPER_LUT_FRACTIONS = (0.576, 0.038, 0.152)


def test_fig7b_exit_usage(benchmark, ours_profile, environment, dataset):
    trace, events = environment

    def run():
        _, final = run_ours_qlearning(ours_profile, trace, events, dataset.test)
        lut = run_static_lut(ours_profile, trace, events, dataset.test)
        return final, lut

    qlearn, lut = benchmark.pedantic(run, rounds=1, iterations=1)

    q_counts = qlearn.exit_counts(3)
    lut_counts = lut.exit_counts(3)
    rows = []
    for i in range(3):
        rows.append(
            (
                f"Exit {i + 1}",
                q_counts[i],
                f"{PAPER_Q_FRACTIONS[i] * 500:.0f}",
                lut_counts[i],
                f"{PAPER_LUT_FRACTIONS[i] * 500:.0f}",
            )
        )
    rows.append(("processed", qlearn.num_processed, "426", lut.num_processed, "383"))
    print_table(
        "E6 / Fig 7(b): processed events per exit",
        rows,
        ["exit", "Q-learning", "paper Q", "static LUT", "paper LUT"],
    )

    # Shape 1: Q-learning prioritizes Exit 1 relative to the LUT.
    assert q_counts[0] >= lut_counts[0]

    # Shape 2: Q-learning processes at least as many events overall
    # (paper: +11.2%).
    assert qlearn.num_processed >= lut.num_processed

    # Shape 3: Exit 1 dominates the learned policy's mix.
    assert q_counts[0] > q_counts[1]
    assert q_counts[0] > q_counts[2]
