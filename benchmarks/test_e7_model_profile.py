"""E7 — Section V-A model profile: per-exit FLOPs and weight storage.

Paper: exits at 0.4452M / 1.2602M / 1.6202M FLOPs, 580 KB fp32 weights,
energy 1.5 mJ/MFLOP.  Also times one single-image inference per exit on
the numpy substrate (the pytest-benchmark measurement).
"""

import numpy as np

from repro.experiment import PAPER
from repro.models import PAPER_EXIT_FLOPS, make_multi_exit_lenet
from repro.nn import profile_network

from benchmarks.conftest import print_table


def test_model_profile_matches_paper(benchmark):
    net = make_multi_exit_lenet(seed=3)
    prof = profile_network(net, (3, 32, 32))

    rows = []
    for i, (measured, paper) in enumerate(zip(prof.exit_flops, PAPER_EXIT_FLOPS)):
        rows.append(
            (
                f"Exit {i + 1}",
                f"{paper / 1e6:.4f}M",
                f"{measured / 1e6:.4f}M",
                f"{measured / paper:.3f}x",
                f"{PAPER.mcu.inference_energy_mj(measured):.3f} mJ",
            )
        )
    print_table(
        "E7: per-exit cost (paper Section V-A)",
        rows,
        ["exit", "paper FLOPs", "measured FLOPs", "ratio", "energy"],
    )
    print(f"fp32 weight storage: {prof.model_size_kb():.1f} KB (paper: 580 KB)")

    for measured, paper in zip(prof.exit_flops, PAPER_EXIT_FLOPS):
        assert abs(measured - paper) / paper < 0.02
    assert prof.model_size_kb() > PAPER.mcu.weight_storage_kb  # needs compression

    x = np.random.default_rng(0).normal(size=(1, 3, 32, 32))
    benchmark.pedantic(lambda: net.forward_to_exit(x, 2), rounds=5, iterations=1)
