"""E5 — Fig. 7(a): runtime Q-learning vs the static LUT over episodes.

Paper shape: the Q-learning controller's average accuracy over all events
climbs across learning episodes and ends above the static LUT (+10.2%).
"""

import numpy as np

from benchmarks.conftest import (
    print_table,
    run_ours_qlearning,
    run_static_lut,
)


def test_fig7a_learning_curve(benchmark, ours_profile, environment, dataset):
    trace, events = environment

    def run():
        curve, final = run_ours_qlearning(ours_profile, trace, events, dataset.test)
        lut = run_static_lut(ours_profile, trace, events, dataset.test)
        return curve, final, lut

    curve, final, lut = benchmark.pedantic(run, rounds=1, iterations=1)

    accs = [r.average_accuracy for r in curve]
    rows = [
        (f"ep {i}", f"{a:.3f}")
        for i, a in enumerate(accs)
        if i % 4 == 0 or i == len(accs) - 1
    ]
    rows.append(("final (dataset mode)", f"{final.average_accuracy:.3f}"))
    rows.append(("static LUT", f"{lut.average_accuracy:.3f}"))
    print_table("E5 / Fig 7(a): learning curve", rows, ["episode", "avg accuracy"])
    gain = final.average_accuracy - lut.average_accuracy
    print(f"Q-learning gain over static LUT: {gain * 100:+.1f} pts (paper: +10.2%)")

    # Shape 1: learning improves over its own start.
    early = np.mean(accs[:3])
    late = np.mean(accs[-3:])
    assert late >= early - 0.02

    # Shape 2: the learned controller beats (or at worst matches) the LUT.
    assert final.average_accuracy >= lut.average_accuracy - 0.01
