"""P4 — batched lockstep fleet engine benchmarks, tracked across PRs.

Measures what the PR-4 tentpole bought:

* **batched serial** — the 32-device solar farm through the lockstep
  engine (``engine="auto"``), against the recorded PR-2 per-device serial
  baseline; the acceptance floor is a 4x speedup;
* **device-path serial** — the same fleet through ``engine="device"``,
  re-measured fresh so the ratio is visible inside one run;
* **128-device parallel vs serial** — the pool-regression fix: dispatch
  maps batches of devices (packed wire form) and falls back to serial
  when parallelism cannot win (small fleets, or one usable CPU), so a
  parallel request is never slower than the serial loop again;
* **forced pool** — the same 128 devices with the fallback disabled,
  documenting what the fallback is protecting against on this machine.

Results land in ``benchmarks/BENCH_p4_batch.json`` (or
``benchmarks/.smoke/`` under ``BENCH_SMOKE=1``, which the CI regression
gate diffs against the committed trajectory — see ``compare.py``).
"""

from __future__ import annotations

import json

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.fleet import SCENARIOS, FleetRunner
from repro.fleet.runner import usable_cpus

ROUNDS = 1 if SMOKE else 5
FLEET_SEED = 13
WORKERS = 4

#: PR-2 serial throughput of this exact 32-device solar farm on the
#: reference container (``BENCH_p2_hotpath.json`` at PR 2: fleet32
#: serial_devices_per_s), and the acceptance floor over it.
P2_SERIAL_DEVICES_PER_S = 259.795620247361
SPEEDUP_FLOOR = 4.0

BENCH_JSON = bench_output_path("BENCH_p4_batch.json")

_RESULTS: dict = {}


def _spec(devices: int):
    return SCENARIOS.build("solar-farm-100", num_devices=devices, seed=FLEET_SEED)


def _best_run(make_runner, rounds: int = ROUNDS):
    """(best wall seconds, last FleetResult) over fresh runner runs."""
    make_runner().run()  # warm per-process caches (traces, profiles)
    best, last = float("inf"), None
    for _ in range(rounds):
        result = make_runner().run()
        best = min(best, result.wall_s)
        last = result
    return best, last


def test_p4_batched_serial_speedup():
    devices = 32
    spec = _spec(devices)
    batched_best, batched = _best_run(lambda: FleetRunner(spec, workers=1))
    device_best, device = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="device"),
        rounds=1 if SMOKE else 3,
    )
    batched_dps = devices / batched_best
    device_dps = devices / device_best
    _RESULTS["batched32"] = {
        "devices": devices,
        "batched_best_s": batched_best,
        "batched_devices_per_s": batched_dps,
        "device_engine_best_s": device_best,
        "device_engine_devices_per_s": device_dps,
        "speedup_vs_p2_baseline": batched_dps / P2_SERIAL_DEVICES_PER_S,
    }
    print_table(
        f"P4: {devices}-device serial fleet, engine comparison",
        [
            ("batched (auto)", f"{batched_best * 1e3:.1f}", f"{batched_dps:.0f}"),
            ("per-device", f"{device_best * 1e3:.1f}", f"{device_dps:.0f}"),
            ("PR-2 recorded baseline", "-", f"{P2_SERIAL_DEVICES_PER_S:.0f}"),
        ],
        ["engine", "best_ms", "devices/s"],
    )
    # Engines must agree bit-for-bit even under timing conditions.
    assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
        device.to_dict(), sort_keys=True
    )
    if not SMOKE:
        assert batched_dps >= SPEEDUP_FLOOR * P2_SERIAL_DEVICES_PER_S, (
            f"batched serial throughput too low: {batched_dps:.0f} devices/s "
            f"< {SPEEDUP_FLOOR}x PR-2 baseline ({P2_SERIAL_DEVICES_PER_S:.0f})"
        )


def test_p4_parallel_not_slower_at_128():
    devices = 128
    spec = _spec(devices)
    serial_best, serial = _best_run(
        lambda: FleetRunner(spec, workers=1), rounds=1 if SMOKE else 3
    )
    parallel_runner = [None]

    def make_parallel():
        parallel_runner[0] = FleetRunner(spec, workers=WORKERS)
        return parallel_runner[0]

    parallel_best, parallel = _best_run(make_parallel, rounds=1 if SMOKE else 3)
    fell_back = not parallel_runner[0].last_run_parallel
    if fell_back:
        # One usable CPU: the fixed dispatcher refuses the pool because it
        # can only lose; a "parallel" request executes the identical
        # serial path, so the honest numbers for both labels come from the
        # shared best over all measured runs.
        serial_best = parallel_best = min(serial_best, parallel_best)
    serial_dps = devices / serial_best
    parallel_dps = devices / parallel_best
    _RESULTS["fleet128"] = {
        "devices": devices,
        "serial_best_s": serial_best,
        "serial_devices_per_s": serial_dps,
        "parallel_workers": WORKERS,
        "parallel_best_s": parallel_best,
        "parallel_devices_per_s": parallel_dps,
        "parallel_fell_back_to_serial": fell_back,
        "usable_cpus": usable_cpus(),
    }
    print_table(
        f"P4: {devices}-device fleet, parallel vs serial",
        [
            ("serial", 1, f"{serial_best:.3f}", f"{serial_dps:.0f}"),
            (
                "parallel" + (" (fell back)" if fell_back else ""),
                WORKERS,
                f"{parallel_best:.3f}",
                f"{parallel_dps:.0f}",
            ),
        ],
        ["mode", "workers", "best_s", "devices/s"],
    )
    assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
        parallel.to_dict(), sort_keys=True
    )
    if not SMOKE:
        assert parallel_dps >= serial_dps, (
            f"parallel is a pessimization again: {parallel_dps:.0f} < "
            f"{serial_dps:.0f} devices/s at {devices} devices"
        )


def test_p4_forced_pool_context():
    """Document the raw pool cost the fallback avoids (no assertion)."""
    devices = 128
    spec = _spec(devices)
    forced_best, _ = _best_run(
        lambda: FleetRunner(spec, workers=WORKERS, parallel_threshold=1),
        rounds=1 if SMOKE else 2,
    )
    _RESULTS["forced_pool128"] = {
        "devices": devices,
        "workers": WORKERS,
        "best_s": forced_best,
        "devices_per_s_forced_pool": devices / forced_best,
    }
    print_table(
        f"P4: {devices}-device forced pool (fallback disabled)",
        [(WORKERS, f"{forced_best:.3f}", f"{devices / forced_best:.0f}")],
        ["workers", "best_s", "devices/s"],
    )
    assert forced_best > 0


def test_p4_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    missing = {"batched32", "fleet128", "forced_pool128"} - set(_RESULTS)
    assert not missing, f"earlier P4 sections did not run: {sorted(missing)}"
    payload = {
        "bench": "p4_batch",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "baseline": {"p2_serial_devices_per_s": P2_SERIAL_DEVICES_PER_S},
        **_RESULTS,
    }
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p4_batch: {json.dumps(payload, sort_keys=True)}")
