"""P7 — fault-injection overhead: chaos off must be free, recovery cheap.

The PR-7 contract mirrors PR-6's: with chaos off (the default
``NULL_INJECTOR``) every injection point in the dispatch path reduces to
one attribute read, so the production serial path still calls the engine
directly and a fleet run costs nothing measurable.  The gate is the same
**paired, interleaved** comparison as P6: chaos-off rounds alternate
with chaos-*armed* rounds (an installed injector whose plan never fires,
so the armed side strictly contains the off side's work plus injector
polling), and the off best must stay within 2% of the armed best.  See
``test_p6_obs.py`` for why a cross-process or historical gate is
hopeless at the 2% level on shared CI hardware.

A second section records (never gates — recovery wall time is
timeout-dominated and host-dependent) the measured cost of surviving a
real injected worker crash on the pooled path, plus the retry counters
that prove the recovery actually happened.
"""

from __future__ import annotations

import json

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.faults import Fault, FaultPlan, RetryPolicy, chaos
from repro.fleet import SCENARIOS, FleetRunner
from repro.obs.recorder import Recorder, recording

ROUNDS = 1 if SMOKE else 7
FLEET_SEED = 13
DEVICES = 32

#: The no-op gate: chaos-off throughput must stay within this fraction
#: of the chaos-armed (never-firing plan) path in the same block.
NOOP_OVERHEAD_FRAC = 0.02

BENCH_JSON = bench_output_path("BENCH_p7_faults.json")

_RESULTS: dict = {}


def _spec():
    return SCENARIOS.build("solar-farm-100", num_devices=DEVICES, seed=FLEET_SEED)


def _armed_plan() -> FaultPlan:
    """A real plan whose single fault sits far past any occurrence this
    fleet can reach — the injector is fully armed (every dispatch pays
    the poll + dispatcher bookkeeping) but never fires."""
    return FaultPlan([Fault("fleet.chunk", 10**9, "exception")], note="never fires")


def _interleaved_best(spec, rounds: int = ROUNDS):
    """(off_best_s, armed_best_s, off_result, armed_result), paired."""
    FleetRunner(spec, workers=1).run()  # warm per-process caches
    off_best = armed_best = float("inf")
    off_result = armed_result = None
    for _ in range(rounds):
        off_result = FleetRunner(spec, workers=1).run()
        off_best = min(off_best, off_result.wall_s)
        with chaos(_armed_plan()):
            armed_result = FleetRunner(spec, workers=1).run()
        armed_best = min(armed_best, armed_result.wall_s)
    return off_best, armed_best, off_result, armed_result


def test_p7_chaos_off_overhead_and_identity():
    spec = _spec()
    attempts = 0
    for attempts in range(1, 2 if SMOKE else 4):
        off_best, armed_best, off, armed = _interleaved_best(spec)
        if off_best <= armed_best * (1.0 + NOOP_OVERHEAD_FRAC):
            break
    off_dps = DEVICES / off_best
    armed_dps = DEVICES / armed_best
    _RESULTS["chaos32"] = {
        "devices": DEVICES,
        "gate_attempts": attempts,
        "off_best_s": off_best,
        "off_devices_per_s": off_dps,
        "armed_best_s": armed_best,
        "armed_devices_per_s": armed_dps,
        "off_vs_armed_frac": off_best / armed_best - 1.0,
    }
    print_table(
        f"P7: {DEVICES}-device batched fleet, fault-injection cost (interleaved)",
        [
            ("chaos off (no-op)", f"{off_best * 1e3:.1f}", f"{off_dps:.0f}"),
            ("chaos armed, 0 fired", f"{armed_best * 1e3:.1f}", f"{armed_dps:.0f}"),
        ],
        ["fault injection", "best_ms", "devices/s"],
    )

    # Determinism contract: an armed injector whose plan never fires
    # changes nothing — byte-identical fleet report.
    assert json.dumps(off.to_dict(), sort_keys=True) == json.dumps(
        armed.to_dict(), sort_keys=True
    )

    if not SMOKE:
        assert off_best <= armed_best * (1.0 + NOOP_OVERHEAD_FRAC), (
            f"chaos-off dispatch more than {NOOP_OVERHEAD_FRAC:.0%} slower "
            f"than the chaos-armed path: {off_dps:.0f} vs {armed_dps:.0f} "
            "devices/s — is an injector (or the dispatcher) active by "
            "default?"
        )


def test_p7_crash_recovery_cost():
    """Record (not gate) what surviving one worker crash costs pooled.

    The recovery is timeout-bound (the watchdog must expire before the
    lost chunk is re-dispatched), so the interesting outputs are the
    ratio, the configured timeout, and the counters proving the retry
    machinery — not an asserted threshold.
    """
    spec = _spec()
    timeout_s = 0.75
    policy = RetryPolicy(max_retries=2, worker_timeout=timeout_s, backoff_s=0.0)
    runner_kwargs = dict(workers=2, parallel_threshold=1, retry=policy)

    clean = FleetRunner(spec, **runner_kwargs).run()

    plan = FaultPlan([Fault("fleet.chunk", 0, "crash")])
    with recording(Recorder(metrics=True)) as rec, chaos(plan):
        crashed = FleetRunner(spec, **runner_kwargs).run()
    timeouts = rec.metrics.counter_value("fleet.retry.timeouts")
    retries = rec.metrics.counter_value("fleet.retry.attempts")
    assert timeouts >= 1 and retries >= 1, "crash recovery never engaged"
    assert json.dumps(clean.to_dict(), sort_keys=True) == json.dumps(
        crashed.to_dict(), sort_keys=True
    ), "recovered run diverged from the clean pooled run"

    _RESULTS["recovery"] = {
        "devices": DEVICES,
        "worker_timeout_s": timeout_s,
        "clean_pooled_s": clean.wall_s,
        "crash_recovered_s": crashed.wall_s,
        "recovery_overhead_x": crashed.wall_s / clean.wall_s,
        "retry_timeouts": timeouts,
        "retry_attempts": retries,
    }
    ratio = crashed.wall_s / clean.wall_s
    print_table(
        f"P7: {DEVICES}-device pooled fleet, one SIGKILL'd chunk "
        f"(watchdog {timeout_s:.2f}s)",
        [
            ("clean pooled", f"{clean.wall_s * 1e3:.1f}", "-"),
            ("crash + recover", f"{crashed.wall_s * 1e3:.1f}", f"{ratio:.2f}x"),
        ],
        ["pooled run", "wall_ms", "vs clean"],
    )


def test_p7_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    assert "chaos32" in _RESULTS, "earlier P7 section did not run"
    payload = {
        "bench": "p7_faults",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "noop_overhead_frac_gate": NOOP_OVERHEAD_FRAC,
        **_RESULTS,
    }
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p7_faults: {json.dumps(payload, sort_keys=True)}")
