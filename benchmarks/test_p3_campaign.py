"""P3 — campaign-engine throughput: grid cells executed per second.

Times the ``policy-shootout`` grid through the campaign runner, serial
and pooled, and measures what the warm worker pool buys: with one pool
spanning all cells, workers keep their per-process trace memo caches
between cells, so every (scenario, seed) environment is synthesized once
per worker instead of once per controller.

Writes machine-readable results to ``benchmarks/BENCH_p3_campaign.json``
so future PRs can track the numbers.  Set ``BENCH_SMOKE=1`` for the CI
smoke lane: one round, shrunken grid, no timing assertions.
"""

import time

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.campaign import CAMPAIGNS, run_campaign

OUT_PATH = bench_output_path("BENCH_p3_campaign.json")


def _time_campaign(spec, workers):
    t0 = time.perf_counter()
    result = run_campaign(spec, workers=workers)
    wall = time.perf_counter() - t0
    return result, wall


def test_p3_campaign_throughput(benchmark):
    spec = CAMPAIGNS.build("policy-shootout")

    serial_result, serial_wall = benchmark.pedantic(
        lambda: _time_campaign(spec, workers=1),
        rounds=1 if SMOKE else 2,
        iterations=1,
        warmup_rounds=1,  # smoke's single round must measure warm caches
    )
    parallel_result, parallel_wall = _time_campaign(spec, workers=4)

    cells = spec.num_cells
    rows = [
        ("serial", 1, f"{serial_wall:.2f}", f"{cells / serial_wall:.2f}"),
        ("pooled", 4, f"{parallel_wall:.2f}", f"{cells / parallel_wall:.2f}"),
    ]
    print_table(
        f"P3: {cells}-cell policy-shootout throughput",
        rows,
        ["mode", "workers", "wall_s", "cells/s"],
    )

    # Smoke runs land in benchmarks/.smoke/ (bench_output_path): fresh
    # numbers for the regression gate, tracked trajectory untouched.
    payload = {
        "bench": "p3_campaign",
        "campaign": spec.name,
        "cells": cells,
        "serial_wall_s": serial_wall,
        "serial_cells_per_s": cells / serial_wall,
        "pooled_workers": 4,
        "pooled_wall_s": parallel_wall,
        "pooled_cells_per_s": cells / parallel_wall,
    }
    write_bench_json(OUT_PATH, payload)

    # Worker count must never change the grid's report (determinism contract).
    assert serial_result.to_dict() == parallel_result.to_dict()
    assert serial_wall > 0 and parallel_wall > 0
