"""A1 — ablation: power-trace-aware reward (Eq. 10) vs uniform weighting.

The paper's Racc weighs each exit's accuracy by how often the EH trace
actually selects it (p_i).  This ablation runs two small searches that
differ only in that weighting and deploys both winners on the trace:
the trace-aware objective should yield at least as good an event-weighted
outcome, because it optimizes the deployment metric directly.
"""

from repro.experiment import PAPER
from repro.rl import (
    CompressionObjective,
    LayerwiseCompressionEnv,
    NonuniformSearch,
    SearchConfig,
)
from repro.rl.ddpg import DDPGConfig

from benchmarks.conftest import print_table

EPISODES = 12


def _search(net, dataset, trace, events, trace_aware):
    objective = CompressionObjective(
        net=net,
        val_data=dataset.val.sample(300, rng=1),
        trace=trace,
        events=events,
        flops_target=PAPER.flops_target,
        size_target_kb=PAPER.size_target_kb,
        trace_aware=trace_aware,
    )
    env = LayerwiseCompressionEnv(objective)
    config = SearchConfig(
        episodes=EPISODES, seed=0, ddpg=DDPGConfig(hidden_sizes=(32, 32), warmup=32)
    )
    result = NonuniformSearch(env, config).run()
    # Score both winners under the REAL deployment objective.
    deploy_objective = CompressionObjective(
        net=net,
        val_data=dataset.val.sample(300, rng=1),
        trace=trace,
        events=events,
        flops_target=PAPER.flops_target,
        size_target_kb=PAPER.size_target_kb,
        trace_aware=True,
    )
    return deploy_objective.evaluate(result.best_spec)


def test_trace_aware_reward_helps(benchmark, trained_lenet, dataset, environment):
    net, _ = trained_lenet
    trace, events = environment

    def run():
        aware = _search(net, dataset, trace, events, trace_aware=True)
        blind = _search(net, dataset, trace, events, trace_aware=False)
        return aware, blind

    aware, blind = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "A1: trace-aware vs trace-blind search (deployed Racc)",
        [
            ("trace-aware", f"{aware.racc:.3f}", aware.feasible,
             " ".join(f"{p:.2f}" for p in aware.exit_fractions)),
            ("trace-blind", f"{blind.racc:.3f}", blind.feasible,
             " ".join(f"{p:.2f}" for p in blind.exit_fractions)),
        ],
        ["objective", "deployed Racc", "feasible", "p_i"],
    )

    # With tiny budgets both searches are noisy; the trace-aware variant
    # must not be materially worse at its own deployment metric.
    assert aware.racc >= blind.racc - 0.05
