"""P2 — trace→simulator→fleet hot-path benchmarks, tracked across PRs.

Times the three layers the fleet wall-clock decomposes into:

* **trace synthesis** — one 43 200 s solar trace (the vectorized AR(1)
  Ornstein-Uhlenbeck path; formerly a per-sample Python loop);
* **single-device simulation** — one solar-farm device through its three
  learning episodes (the per-event simulator loop);
* **32-device fleet** — the serial fallback and the multiprocessing pool,
  with the serial-vs-parallel bit-identity contract re-checked under
  timing conditions.

Results are written to ``benchmarks/BENCH_p2_hotpath.json`` so future PRs
can compare against the recorded trajectory (see README "Performance").
Set ``BENCH_SMOKE=1`` to run one round with no timing assertions — the CI
smoke lane uses this to keep the suite importable and runnable without
gating merges on shared-runner timing noise.
"""

from __future__ import annotations

import json
import time

import numpy as np

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.energy.traces import solar_trace
from repro.fleet import SCENARIOS, FleetRunner
from repro.fleet.runner import run_device

ROUNDS = 1 if SMOKE else 5
DEVICES = 32
FLEET_SEED = 13
WORKERS = 4

#: PR-1 serial throughput on this 32-device solar farm (devices/s),
#: measured on the reference container before the hot-path overhaul.
#: The acceptance floor below tracks against it.
P1_SERIAL_DEVICES_PER_S = 41.6
SPEEDUP_FLOOR = 5.0

BENCH_JSON = bench_output_path("BENCH_p2_hotpath.json")

#: Section name -> measured payload, accumulated by the tests in file
#: order and flushed by the final test.
_RESULTS: dict = {}


def _best_of(fn, rounds: int = ROUNDS):
    """(best wall seconds, last return value) over ``rounds`` calls."""
    if SMOKE:
        # One untimed warmup so the single smoke round measures warm-cache
        # behaviour — its JSON is diffed against warm best-of-N numbers by
        # the CI regression gate (compare.py).
        fn()
    best, last = float("inf"), None
    for _ in range(rounds):
        t0 = time.perf_counter()
        last = fn()
        best = min(best, time.perf_counter() - t0)
    return best, last


def _fleet_spec():
    return SCENARIOS.build("solar-farm-100", num_devices=DEVICES, seed=FLEET_SEED)


def test_p2_trace_synthesis():
    duration, dt = 43200.0, 1.0
    best, trace = _best_of(lambda: solar_trace(duration=duration, dt=dt, seed=7))
    samples = len(trace.samples_mw)
    _RESULTS["trace_synthesis"] = {
        "family": "solar",
        "samples": samples,
        "best_s": best,
        "samples_per_s": samples / best,
    }
    print_table(
        "P2: trace synthesis (43 200 s solar arc)",
        [(samples, f"{best * 1e3:.2f}", f"{samples / best / 1e6:.1f}")],
        ["samples", "best_ms", "Msamples/s"],
    )
    assert np.all(trace.samples_mw >= 0)
    assert samples == int(round(duration / dt)) + 1


def test_p2_single_device():
    spec = _fleet_spec()
    device = spec.devices[0]
    best, result = _best_of(lambda: run_device((0, device, FLEET_SEED)))
    events = result.num_events * result.episodes
    _RESULTS["single_device"] = {
        "events_per_episode": result.num_events,
        "episodes": result.episodes,
        "best_s": best,
        "events_per_s": events / best,
    }
    print_table(
        "P2: single solar-farm device",
        [(result.num_events, result.episodes, f"{best * 1e3:.2f}", f"{events / best:.0f}")],
        ["events", "episodes", "best_ms", "events/s"],
    )
    assert result.num_events > 0
    assert result.num_processed + result.num_missed == result.num_events


def test_p2_fleet_throughput():
    spec = _fleet_spec()
    serial_best, serial = _best_of(lambda: FleetRunner(spec, workers=1).run())
    parallel_runner = [None]

    def _parallel():
        parallel_runner[0] = FleetRunner(spec, workers=WORKERS)
        return parallel_runner[0].run()

    parallel_best, parallel = _best_of(
        _parallel,
        rounds=1 if SMOKE else 2,  # pool startup dominates; fewer rounds
    )
    serial_dps = DEVICES / serial_best
    _RESULTS["fleet32"] = {
        "devices": DEVICES,
        "serial_best_s": serial_best,
        "serial_devices_per_s": serial_dps,
        "parallel_workers": WORKERS,
        "parallel_best_s": parallel_best,
        "parallel_devices_per_s": DEVICES / parallel_best,
        # Flags a serial-path "parallel" timing (pool refused: few devices
        # or one usable CPU) so compare.py never diffs it against a
        # genuine pool timing from a differently-shaped machine.
        "parallel_fell_back_to_serial": not parallel_runner[0].last_run_parallel,
    }
    print_table(
        f"P2: {DEVICES}-device fleet throughput",
        [
            ("serial", 1, f"{serial_best:.3f}", f"{serial_dps:.1f}"),
            ("parallel", WORKERS, f"{parallel_best:.3f}", f"{DEVICES / parallel_best:.1f}"),
            ("PR-1 serial baseline", 1, "-", f"{P1_SERIAL_DEVICES_PER_S:.1f}"),
        ],
        ["mode", "workers", "best_s", "devices/s"],
    )
    # Worker count must never change results (the fleet determinism
    # contract) — re-checked here because this run interleaves with timing.
    assert json.dumps(serial.to_dict(), sort_keys=True) == json.dumps(
        parallel.to_dict(), sort_keys=True
    )
    if not SMOKE:
        assert serial_dps >= SPEEDUP_FLOOR * P1_SERIAL_DEVICES_PER_S, (
            f"serial fleet throughput regressed: {serial_dps:.1f} devices/s < "
            f"{SPEEDUP_FLOOR}x PR-1 baseline ({P1_SERIAL_DEVICES_PER_S})"
        )


def test_p2_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    missing = {"trace_synthesis", "single_device", "fleet32"} - set(_RESULTS)
    assert not missing, f"earlier P2 sections did not run: {sorted(missing)}"
    payload = {
        "bench": "p2_hotpath",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "baseline": {"p1_serial_devices_per_s": P1_SERIAL_DEVICES_PER_S},
        **_RESULTS,
    }
    # Smoke runs land in benchmarks/.smoke/ (bench_output_path), so the
    # tracked trajectory is never overwritten but the regression gate
    # still gets fresh numbers to diff.
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p2_hotpath: {json.dumps(payload, sort_keys=True)}")
