"""A2 — ablation: the incremental-inference second decision (Section IV).

Compares three continue/stop rules under the learned exit selector:
never continue, a fixed entropy threshold (Fig. 1(a)'s rule), and the
learned Q-table decider.  Also sweeps the threshold to show the
accuracy/energy trade-off the second Q-table automates.
"""

from repro.experiment import PAPER
from repro.runtime import QLearningController
from repro.runtime.incremental import IncrementalDecider, NeverContinue, ThresholdContinue
from repro.sim import Simulator, SimulatorConfig

from benchmarks.conftest import print_table

EPISODES = 20


def run_with_rule(profile, trace, events, rule_factory, seed=3):
    controller = QLearningController(
        profile.num_exits,
        epsilon=0.25,
        epsilon_decay=0.9,
        continue_rule=rule_factory(),
        rng=11,
    )
    sim = Simulator(
        trace, profile, controller, mcu=PAPER.mcu, storage=PAPER.make_storage(),
        config=SimulatorConfig(mode="profile", seed=seed),
    )
    result = None
    for _ in range(EPISODES):
        result = sim.run(events)
    return result


def test_incremental_rules(benchmark, ours_profile, environment):
    trace, events = environment

    def run():
        out = {}
        out["never"] = run_with_rule(ours_profile, trace, events, NeverContinue)
        out["thresh 0.4"] = run_with_rule(
            ours_profile, trace, events, lambda: ThresholdContinue(0.4)
        )
        out["thresh 0.7"] = run_with_rule(
            ours_profile, trace, events, lambda: ThresholdContinue(0.7)
        )
        out["learned"] = run_with_rule(
            ours_profile, trace, events, lambda: IncrementalDecider(rng=13, epsilon_decay=0.9)
        )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, r in results.items():
        rows.append(
            (
                name,
                f"{r.average_accuracy:.3f}",
                r.num_processed,
                sum(rec.continued for rec in r.records),
                f"{r.mean_inference_energy_mj:.2f}",
            )
        )
    print_table(
        "A2: incremental inference rules",
        rows,
        ["rule", "avg accuracy", "processed", "continues", "mJ/inference"],
    )

    never = results["never"]
    learned = results["learned"]
    eager = results["thresh 0.4"]  # low threshold -> continues often

    # The learned decider must not lose to never-continue by more than
    # noise: its floor is learning to say "stop" everywhere.
    assert learned.average_accuracy >= never.average_accuracy - 0.05

    # Eager continuation must actually continue, and pay for it in energy
    # per inference (the trade the learned decider arbitrates).
    assert sum(rec.continued for rec in eager.records) > 10
    assert eager.mean_inference_energy_mj >= never.mean_inference_energy_mj - 0.02
