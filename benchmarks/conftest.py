"""Shared fixtures for the benchmark/experiment harness.

Every figure of the paper has one bench module (see DESIGN.md §4).  The
fixtures here build the deployed systems once per session from the zoo's
cached artifacts:

* the trained multi-exit LeNet and the three baselines;
* the RL-searched nonuniform compression spec, applied and evaluated;
* the paper's evaluation environment (solar trace, 500 events, capacitor).

Benches print paper-vs-measured tables (captured in bench output) and
assert the *shape* of each result — orderings and factor regimes — rather
than absolute numbers (the substrate is a simulator, not the authors'
testbed; see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import os

import pytest

from repro import zoo
from repro.compress.evaluator import evaluate_exits
from repro.experiment import PAPER
from repro.runtime import (
    FixedExitPolicy,
    QLearningController,
    StaticController,
    StaticLUTPolicy,
)
from repro.sim import InferenceProfile, Simulator, SimulatorConfig

#: Learning episodes for the runtime Q-learning controller (Fig. 7 regime).
QLEARNING_EPISODES = 25

#: CI smoke lane: one round, no timing assertions (see README "Performance").
#: Accepts the usual truthy spellings so `BENCH_SMOKE=true` works too.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE", "").strip().lower() in (
    "1", "true", "yes", "on",
)


def bench_output_path(filename: str) -> str:
    """Where a bench writes its machine-readable ``BENCH_*.json``.

    Non-smoke runs write the tracked file next to the bench sources —
    the committed performance trajectory.  Smoke runs (``BENCH_SMOKE=1``)
    must never overwrite that trajectory, but the CI regression gate
    (``benchmarks/compare.py``) still wants fresh numbers to diff against
    the committed ones, so they land in the git-ignored
    ``benchmarks/.smoke/`` directory instead.
    """
    base = os.path.dirname(os.path.abspath(__file__))
    if not BENCH_SMOKE:
        return os.path.join(base, filename)
    smoke_dir = os.path.join(base, ".smoke")
    os.makedirs(smoke_dir, exist_ok=True)
    return os.path.join(smoke_dir, filename)


def bench_provenance() -> dict:
    """Provenance block embedded in every ``BENCH_*.json`` payload.

    Throughput numbers are only comparable on the same machine; the
    manifest (git SHA, python/numpy versions, hostname, CPU count, smoke
    flag) lets a reader of the committed trajectory check that before
    reading anything into a delta.
    """
    from repro.obs.manifest import build_manifest

    return build_manifest(bench_smoke=BENCH_SMOKE)


def write_bench_json(path: str, payload: dict) -> dict:
    """Write a bench payload with its ``provenance`` block; returns it."""
    out = dict(payload)
    out["provenance"] = bench_provenance()
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return out


def print_table(title: str, rows, headers):
    """Render a small fixed-width table into the captured bench output."""
    widths = [
        max(len(str(h)), max((len(str(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def dataset():
    return zoo.get_dataset()


@pytest.fixture(scope="session")
def trained_lenet():
    """(net, test accuracies) for the multi-exit LeNet."""
    return zoo.get_trained_network("multi_exit_lenet")


@pytest.fixture(scope="session")
def nonuniform_spec():
    """(spec, search summary) from the cached RL search."""
    return zoo.get_nonuniform_spec()


@pytest.fixture(scope="session")
def compressed_ours(dataset):
    """(CompressedModel, ExitEvaluation) for the deployed network.

    Uses the zoo's cached deployment: the RL-searched spec applied to the
    trained multi-exit LeNet, followed by the post-compression fine-tune.
    """
    model, _ = zoo.get_deployed_model()
    evaluation = evaluate_exits(model, dataset.test)
    return model, evaluation


@pytest.fixture(scope="session")
def ours_profile(compressed_ours):
    model, evaluation = compressed_ours
    return InferenceProfile.from_compressed(model, evaluation, PAPER.mcu, name="ours")


@pytest.fixture(scope="session")
def baseline_profiles(dataset):
    """InferenceProfiles for SonicNet / SpArSeNet / LeNet-Cifar."""
    profiles = {}
    for name in ("sonic_net", "sparse_net", "lenet_cifar"):
        net, accs = zoo.get_trained_network(name)
        profiles[name] = InferenceProfile.from_network(
            net, accs, PAPER.mcu, name=name
        )
    return profiles


@pytest.fixture(scope="session")
def environment():
    """(trace, events) of the canonical evaluation."""
    trace = PAPER.make_trace()
    return trace, PAPER.make_events(trace)


def run_baseline(profile, trace, events, dataset, seed=3):
    """One intermittent-execution run of a single-exit baseline."""
    sim = Simulator(
        trace,
        profile,
        StaticController(FixedExitPolicy(0)),
        mcu=PAPER.mcu,
        storage=PAPER.make_storage(),
        dataset=dataset,
        config=SimulatorConfig(mode="dataset", execution="intermittent", seed=seed),
    )
    return sim.run(events)


def run_ours_qlearning(profile, trace, events, dataset, episodes=QLEARNING_EPISODES, seed=3):
    """Train the runtime controller over episodes; return (results, final).

    Learning episodes run in fast profile mode; the reported final episode
    runs real forward passes on the test set (dataset mode).
    """
    controller = QLearningController(
        profile.num_exits, epsilon=0.25, epsilon_decay=0.9, rng=11
    )
    learn_sim = Simulator(
        trace, profile, controller, mcu=PAPER.mcu, storage=PAPER.make_storage(),
        config=SimulatorConfig(mode="profile", seed=seed),
    )
    curve = [learn_sim.run(events) for _ in range(episodes)]
    controller.qtable.epsilon = 0.0
    final_sim = Simulator(
        trace, profile, controller, mcu=PAPER.mcu, storage=PAPER.make_storage(),
        dataset=dataset, config=SimulatorConfig(mode="dataset", seed=seed),
    )
    return curve, final_sim.run(events)


def run_static_lut(profile, trace, events, dataset, seed=3):
    """The static-LUT baseline runtime (Fig. 7 comparison)."""
    controller = StaticController(
        StaticLUTPolicy(profile.exit_energy_mj, PAPER.storage_capacity_mj)
    )
    sim = Simulator(
        trace, profile, controller, mcu=PAPER.mcu, storage=PAPER.make_storage(),
        dataset=dataset, config=SimulatorConfig(mode="dataset", seed=seed),
    )
    return sim.run(events)


@pytest.fixture(scope="session")
def headline_results(ours_profile, baseline_profiles, environment, dataset):
    """All Fig. 5/6 simulation runs, computed once per session."""
    trace, events = environment
    _, ours = run_ours_qlearning(ours_profile, trace, events, dataset.test)
    results = {"ours": ours}
    for name, profile in baseline_profiles.items():
        results[name] = run_baseline(profile, trace, events, dataset.test)
    return results
