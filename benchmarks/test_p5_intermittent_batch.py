"""P5 — batched intermittent-execution benchmarks, tracked across PRs.

Measures what the PR-5 tentpole bought: the SONIC-style multi-power-cycle
device class — previously the lockstep engine's biggest fallback — now
runs through the vectorized
:class:`~repro.intermittent.kernel.IntermittentFleetKernel`:

* **all-intermittent 128** — a 128-device fleet of weak-RF SONIC
  baselines through ``engine="batched"`` vs ``engine="device"``, measured
  fresh in the same run; the acceptance floor is a 3x speedup (measured
  ~4x on the reference container);
* **intermittency-heavy scenarios** — the PR-5 ``brownout-grid-256`` and
  ``duty-cycle-farm-512`` registry entries at full scale, end to end
  through the strict batched engine (every device class they contain —
  intermittent, threshold/learned continue rules — is batch-eligible);
* **mixed city block 128** — a ``city-block-1k`` slice where the
  intermittent baselines used to drag the whole fleet onto the
  per-device path.

Results land in ``benchmarks/BENCH_p5_intermittent_batch.json`` (or
``benchmarks/.smoke/`` under ``BENCH_SMOKE=1``, which the CI regression
gate diffs against the committed trajectory — see ``compare.py``).
"""

from __future__ import annotations

import json

import numpy as np

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.fleet import DeviceSpec, FleetSpec, SCENARIOS, FleetRunner

ROUNDS = 1 if SMOKE else 3
FLEET_SEED = 13

#: Acceptance floor: batched vs per-device throughput on the
#: all-intermittent 128-device fleet, measured fresh in the same run.
SPEEDUP_FLOOR = 3.0

BENCH_JSON = bench_output_path("BENCH_p5_intermittent_batch.json")

_RESULTS: dict = {}


def _all_intermittent_spec(devices: int = 128) -> FleetSpec:
    """Weak-RF SONIC baselines: constant power cycling, busy + deadline
    misses — the regime the scalar inner loop paid for per device."""
    gen = np.random.default_rng(7)
    specs = [
        DeviceSpec(
            name=f"int-{i:03d}",
            trace={
                "family": "rf",
                "duration": 900.0,
                "dt": 1.0,
                "mean_mw": float(gen.uniform(0.004, 0.012)),
            },
            profile="sonic-single-exit",
            controller={"kind": "fixed", "exit_index": 0},
            storage={"capacity_mj": 1.0, "initial_fraction": 0.3},
            events={"kind": "poisson", "rate_hz": 0.02},
            execution="intermittent",
        )
        for i in range(devices)
    ]
    return FleetSpec(name=f"all-int-{devices}", seed=FLEET_SEED, devices=specs)


def _best_run(make_runner, rounds: int = ROUNDS):
    """(best wall seconds, last FleetResult) over fresh runner runs."""
    make_runner().run()  # warm per-process caches (traces, profiles)
    best, last = float("inf"), None
    for _ in range(rounds):
        result = make_runner().run()
        best = min(best, result.wall_s)
        last = result
    return best, last


def test_p5_all_intermittent_speedup():
    devices = 128
    spec = _all_intermittent_spec(devices)
    batched_best, batched = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="batched")
    )
    device_best, device = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="device"),
        rounds=1 if SMOKE else 2,
    )
    batched_dps = devices / batched_best
    device_dps = devices / device_best
    speedup = batched_dps / device_dps
    _RESULTS["int128"] = {
        "devices": devices,
        "batched_best_s": batched_best,
        "batched_devices_per_s": batched_dps,
        "device_engine_best_s": device_best,
        "device_engine_devices_per_s": device_dps,
        "speedup": speedup,
    }
    print_table(
        f"P5: {devices}-device all-intermittent fleet, engine comparison",
        [
            ("batched (kernel)", f"{batched_best * 1e3:.1f}", f"{batched_dps:.0f}"),
            ("per-device", f"{device_best * 1e3:.1f}", f"{device_dps:.0f}"),
        ],
        ["engine", "best_ms", "devices/s"],
    )
    # Engines must agree bit-for-bit even under timing conditions.
    assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
        device.to_dict(), sort_keys=True
    )
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"intermittent batching too slow: {speedup:.2f}x < "
            f"{SPEEDUP_FLOOR}x on the all-intermittent {devices}-device fleet"
        )


def test_p5_intermittency_heavy_scenarios():
    """The new registry entries at full scale, strict batched engine."""
    rows = []
    section = {}
    for name in ("brownout-grid-256", "duty-cycle-farm-512"):
        spec = SCENARIOS.build(name)
        best, result = _best_run(
            lambda: FleetRunner(spec, workers=1, engine="batched"),
            rounds=1 if SMOKE else 2,
        )
        dps = spec.num_devices / best
        agg = result.aggregate()
        section[name.replace("-", "_")] = {
            "devices": spec.num_devices,
            "batched_best_s": best,
            "batched_devices_per_s": dps,
            "missed": agg["missed"],
            "processed": agg["processed"],
        }
        rows.append((name, spec.num_devices, f"{best:.3f}", f"{dps:.0f}"))
    _RESULTS["scenarios"] = section
    print_table(
        "P5: intermittency-heavy scenarios, full scale (batched)",
        rows,
        ["scenario", "devices", "best_s", "devices/s"],
    )
    assert all(s["processed"] > 0 for s in section.values())


def test_p5_mixed_city_block_slice():
    """city-block-1k slice: the flagship mixed fleet no longer splits
    across engines — every 8th (intermittent) device batches too."""
    devices = 128
    spec = SCENARIOS.build("city-block-1k", num_devices=devices)
    batched_best, batched = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="batched"),
        rounds=1 if SMOKE else 2,
    )
    device_best, device = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="device"),
        rounds=1 if SMOKE else 2,
    )
    batched_dps = devices / batched_best
    device_dps = devices / device_best
    _RESULTS["cityblock128"] = {
        "devices": devices,
        "batched_best_s": batched_best,
        "batched_devices_per_s": batched_dps,
        "device_engine_best_s": device_best,
        "device_engine_devices_per_s": device_dps,
        "speedup": batched_dps / device_dps,
    }
    print_table(
        f"P5: {devices}-device mixed city block, engine comparison",
        [
            ("batched", f"{batched_best * 1e3:.1f}", f"{batched_dps:.0f}"),
            ("per-device", f"{device_best * 1e3:.1f}", f"{device_dps:.0f}"),
        ],
        ["engine", "best_ms", "devices/s"],
    )
    assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
        device.to_dict(), sort_keys=True
    )


def test_p5_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    missing = {"int128", "scenarios", "cityblock128"} - set(_RESULTS)
    assert not missing, f"earlier P5 sections did not run: {sorted(missing)}"
    payload = {
        "bench": "p5_intermittent_batch",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        "speedup_floor": SPEEDUP_FLOOR,
        **_RESULTS,
    }
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p5_intermittent_batch: {json.dumps(payload, sort_keys=True)}")
