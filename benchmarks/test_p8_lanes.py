"""P8 — widened intermittent lanes: event-batched micro-stepping.

Tracks what the PR-8 tentpole bought on the shape PR 6 profiled: the
``city-block-1k`` 128-device slice, where the intermittent baselines'
~3.4k lockstep micro-passes used to hold the mixed fleet to ~1.1x over
the per-device engine.  The kernel now fuses consecutive micro-steps
that cannot cross a power boundary (wake, shutdown, partial slice,
deadline), so physical passes collapse to the order of power
transitions:

* **mixed city block 128** — batched vs per-device, measured fresh in
  the same run; the acceptance floor is a 3x speedup (measured ~3.8x on
  the reference container, up from ~1.1x at PR 5);
* **pass collapse** — logical micro-steps (mode-invariant, scalar
  equivalent) vs physical kernel passes on the same slice; the floor is
  a 2x collapse (measured ~28x);
* **kernel lanes** — the ``REPRO_KERNEL`` modes that ran, with numba
  availability recorded so trajectory diffs know which lane produced
  the numbers.

Results land in ``benchmarks/BENCH_p8_lanes.json`` (or
``benchmarks/.smoke/`` under ``BENCH_SMOKE=1``); the CI regression gate
diffs them against the committed trajectory — see ``compare.py``.
"""

from __future__ import annotations

import json

from benchmarks.conftest import BENCH_SMOKE as SMOKE
from benchmarks.conftest import bench_output_path, print_table, write_bench_json
from repro.fleet import SCENARIOS, FleetRunner
from repro.obs.recorder import Recorder, recording
from repro.utils.kernelmode import numba_status, resolve_kernel_mode

ROUNDS = 1 if SMOKE else 3
DEVICES = 128

#: Acceptance floor: batched vs per-device throughput on the mixed
#: city-block-1k slice — the gap the event-batched kernel exists to close.
SPEEDUP_FLOOR = 3.0

#: Regression floor on the pass collapse itself: physical kernel passes
#: must stay at most half the logical micro-step count.
PASS_COLLAPSE_FLOOR = 2.0

BENCH_JSON = bench_output_path("BENCH_p8_lanes.json")

_RESULTS: dict = {}


def _spec():
    return SCENARIOS.build("city-block-1k", num_devices=DEVICES)


def _best_run(make_runner, rounds: int = ROUNDS):
    """(best wall seconds, last FleetResult) over fresh runner runs."""
    make_runner().run()  # warm per-process caches (traces, profiles)
    best, last = float("inf"), None
    for _ in range(rounds):
        result = make_runner().run()
        best = min(best, result.wall_s)
        last = result
    return best, last


def test_p8_mixed_city_block_speedup():
    spec = _spec()
    batched_best, batched = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="batched")
    )
    device_best, device = _best_run(
        lambda: FleetRunner(spec, workers=1, engine="device"),
        rounds=1 if SMOKE else 2,
    )
    batched_dps = DEVICES / batched_best
    device_dps = DEVICES / device_best
    speedup = batched_dps / device_dps
    _RESULTS["cityblock128"] = {
        "devices": DEVICES,
        "batched_best_s": batched_best,
        "batched_devices_per_s": batched_dps,
        "device_engine_best_s": device_best,
        "device_engine_devices_per_s": device_dps,
        "speedup": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    print_table(
        f"P8: {DEVICES}-device mixed city block, event-batched lanes",
        [
            ("batched (fused)", f"{batched_best * 1e3:.1f}", f"{batched_dps:.0f}"),
            ("per-device", f"{device_best * 1e3:.1f}", f"{device_dps:.0f}"),
        ],
        ["engine", "best_ms", "devices/s"],
    )
    # The speedup must never cost a single result bit.
    assert json.dumps(batched.to_dict(), sort_keys=True) == json.dumps(
        device.to_dict(), sort_keys=True
    )
    if not SMOKE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"mixed-fleet gap reopened: {speedup:.2f}x < {SPEEDUP_FLOOR}x "
            f"on the city-block {DEVICES}-device slice"
        )


def test_p8_kernel_pass_collapse():
    """Logical micro-steps vs physical kernel passes on the same slice."""
    spec = _spec()
    rec = Recorder(metrics=True, profile=True)
    with recording(rec):
        FleetRunner(spec, workers=1, engine="batched").run()
    counts = rec.profiler.to_dict()["counts"]
    micro = int(counts["intermittent.micro_passes"])
    physical = int(counts["intermittent.kernel_passes"])
    collapse = micro / physical if physical else 0.0
    _RESULTS["passes"] = {
        "micro_passes": micro,
        "kernel_passes": physical,
        "collapse": collapse,
        "collapse_floor": PASS_COLLAPSE_FLOOR,
    }
    print_table(
        "P8: micro-step fusion on city-block-128",
        [
            ("logical micro-steps", micro),
            ("physical kernel passes", physical),
            ("collapse", f"{collapse:.1f}x"),
        ],
        ["quantity", "value"],
    )
    assert micro > 0 and physical > 0
    assert physical * PASS_COLLAPSE_FLOOR <= micro, (
        f"event batching stopped collapsing passes: {physical} physical vs "
        f"{micro} logical micro-steps"
    )


def test_p8_kernel_lanes():
    """Record which REPRO_KERNEL lane produced the numbers above."""
    available, detail = numba_status()
    mode, mode_detail = resolve_kernel_mode()
    _RESULTS["lanes"] = {
        "mode": mode,
        "detail": mode_detail,
        "numba_available": available,
        "numba_detail": detail,
    }
    print(f"\nP8 kernel lane: {mode} ({mode_detail})")


def test_p8_write_bench_json():
    """Flush the machine-readable trajectory file (always runs last)."""
    missing = {"cityblock128", "passes", "lanes"} - set(_RESULTS)
    assert not missing, f"earlier P8 sections did not run: {sorted(missing)}"
    payload = {
        "bench": "p8_lanes",
        "smoke": SMOKE,
        "rounds": ROUNDS,
        **_RESULTS,
    }
    payload = write_bench_json(BENCH_JSON, payload)
    print(f"\nBENCH_p8_lanes: {json.dumps(payload, sort_keys=True)}")
