"""Setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network access, so PEP-517 editable installs (which need ``bdist_wheel``)
fail.  This shim lets ``pip install -e . --no-use-pep517`` (or plain
``pip install -e .`` on environments with wheel) work everywhere.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
