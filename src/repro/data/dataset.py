"""Lightweight dataset containers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.utils.rng import as_generator


@dataclass
class Dataset:
    """A batch of images with integer labels.

    ``x`` is NCHW float64, ``y`` is a 1-D int64 array of the same length.
    """

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.x.ndim != 4:
            raise ShapeError(f"x must be NCHW, got ndim={self.x.ndim}")
        if self.y.ndim != 1 or len(self.y) != len(self.x):
            raise ShapeError("y must be 1-D and aligned with x")

    def __len__(self) -> int:
        return len(self.x)

    @property
    def image_shape(self) -> tuple:
        return self.x.shape[1:]

    @property
    def num_classes(self) -> int:
        return int(self.y.max()) + 1 if len(self.y) else 0

    def subset(self, indices) -> "Dataset":
        """A view-free copy restricted to ``indices``."""
        idx = np.asarray(indices)
        return Dataset(self.x[idx].copy(), self.y[idx].copy())

    def sample(self, n: int, rng=None) -> "Dataset":
        """Uniformly sample ``n`` items without replacement."""
        gen = as_generator(rng)
        if n > len(self):
            raise ValueError(f"cannot sample {n} from {len(self)} items")
        return self.subset(gen.choice(len(self), size=n, replace=False))


@dataclass
class DatasetSplits:
    """Train / validation / test partitions of one generated dataset."""

    train: Dataset
    val: Dataset
    test: Dataset

    @property
    def image_shape(self) -> tuple:
        return self.train.image_shape

    @property
    def num_classes(self) -> int:
        return max(self.train.num_classes, self.val.num_classes, self.test.num_classes)
