"""Datasets: containers plus the synthetic CIFAR-like generator."""

from repro.data.dataset import Dataset, DatasetSplits
from repro.data.synthetic import SyntheticConfig, make_cifar_like

__all__ = ["Dataset", "DatasetSplits", "SyntheticConfig", "make_cifar_like"]
