"""Synthetic CIFAR-like dataset.

The original paper evaluates on CIFAR-10, which is not available in this
offline environment.  This generator produces a drop-in substitute that
preserves what the experiments actually rely on:

* 10-way image classification at 32x32x3;
* graded difficulty — deeper exits should be more accurate than shallow
  ones, so samples must require non-trivial feature extraction;
* enough intra-class variation (shifts, flips, brightness, occlusion and
  additive noise) that a LeNet-class network lands in the paper's accuracy
  regime (~60-75%) rather than saturating.

Each class is defined by a smooth low-frequency *texture prototype* (a
power-law-filtered Gaussian field) plus a class-specific oriented grating.
Samples blend the prototype with per-sample distortions.  The ``noise``
knob trades off difficulty and is calibrated in :mod:`repro.zoo`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.data.dataset import Dataset, DatasetSplits
from repro.utils.rng import as_generator, spawn


@dataclass
class SyntheticConfig:
    """Parameters of the synthetic image distribution."""

    image_size: int = 32
    channels: int = 3
    num_classes: int = 10
    noise_std: float = 0.85       # additive Gaussian noise (difficulty knob)
    max_shift: int = 4            # random translation in pixels
    brightness_std: float = 0.25  # per-sample global brightness jitter
    occlusion_prob: float = 0.3   # chance of a random occluding square
    occlusion_size: int = 10
    prototype_smoothness: float = 3.0  # Gaussian-filter sigma for prototypes
    grating_strength: float = 0.8      # strength of the class-oriented grating


def _class_prototypes(cfg: SyntheticConfig, rng) -> np.ndarray:
    """Build one smooth prototype image per class, shape (K, C, H, W)."""
    k, c, s = cfg.num_classes, cfg.channels, cfg.image_size
    protos = np.empty((k, c, s, s))
    yy, xx = np.mgrid[0:s, 0:s].astype(np.float64) / s
    for cls in range(k):
        base = rng.normal(size=(c, s, s))
        smooth = np.stack(
            [ndimage.gaussian_filter(ch, cfg.prototype_smoothness, mode="wrap") for ch in base]
        )
        smooth /= np.abs(smooth).max() + 1e-9
        # Class-specific oriented grating gives each class a stable, learnable
        # frequency signature that survives shifts better than raw texture.
        angle = np.pi * cls / k
        freq = 2.0 + 1.5 * (cls % 4)
        grating = np.sin(2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy))
        protos[cls] = smooth + cfg.grating_strength * grating[None, :, :]
    return protos


def _distort(img: np.ndarray, cfg: SyntheticConfig, rng) -> np.ndarray:
    """Apply per-sample distortions to one (C, H, W) image."""
    out = img
    if cfg.max_shift > 0:
        dy = int(rng.integers(-cfg.max_shift, cfg.max_shift + 1))
        dx = int(rng.integers(-cfg.max_shift, cfg.max_shift + 1))
        out = np.roll(out, (dy, dx), axis=(1, 2))
    if rng.random() < 0.5:
        out = out[:, :, ::-1]
    if cfg.occlusion_prob > 0 and rng.random() < cfg.occlusion_prob:
        size = cfg.occlusion_size
        top = int(rng.integers(0, cfg.image_size - size + 1))
        left = int(rng.integers(0, cfg.image_size - size + 1))
        out = out.copy()
        out[:, top:top + size, left:left + size] = rng.normal(scale=0.5)
    out = out + rng.normal(0.0, cfg.brightness_std)
    out = out + rng.normal(0.0, cfg.noise_std, size=out.shape)
    return out


def _generate_split(n: int, protos: np.ndarray, cfg: SyntheticConfig, rng) -> Dataset:
    k = cfg.num_classes
    labels = rng.integers(0, k, size=n).astype(np.int64)
    images = np.empty((n, cfg.channels, cfg.image_size, cfg.image_size))
    for i, cls in enumerate(labels):
        images[i] = _distort(protos[cls], cfg, rng)
    # Global standardization (the constants are irrelevant; per-dataset
    # standardization mirrors the usual CIFAR mean/std preprocessing).
    images -= images.mean()
    images /= images.std() + 1e-9
    return Dataset(images, labels)


def make_cifar_like(
    num_train: int = 4000,
    num_val: int = 1000,
    num_test: int = 1000,
    config: SyntheticConfig = None,
    seed=0,
) -> DatasetSplits:
    """Generate train/val/test splits of the synthetic CIFAR-like task.

    The class prototypes are drawn once and shared across splits so the
    train and test distributions match; all randomness derives from
    ``seed``.
    """
    cfg = config or SyntheticConfig()
    proto_rng, train_rng, val_rng, test_rng = spawn(seed, 4)
    protos = _class_prototypes(cfg, as_generator(proto_rng))
    return DatasetSplits(
        train=_generate_split(num_train, protos, cfg, train_rng),
        val=_generate_split(num_val, protos, cfg, val_rng),
        test=_generate_split(num_test, protos, cfg, test_rng),
    )
