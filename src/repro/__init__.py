"""repro — reproduction of "Intermittent Inference with Nonuniformly
Compressed Multi-Exit Neural Network for Energy Harvesting Powered
Devices" (Wu et al., DAC 2020).

The package provides, from the bottom up:

* :mod:`repro.nn` — a pure-numpy DNN substrate (conv/pool/FC layers with
  backprop, multi-exit containers, training, FLOPs/size profiling);
* :mod:`repro.data` — the synthetic CIFAR-10 substitute;
* :mod:`repro.models` — the paper's 3-exit LeNet and the SonicNet /
  SpArSeNet / LeNet-Cifar baselines;
* :mod:`repro.prune` / :mod:`repro.quant` / :mod:`repro.compress` — channel
  pruning (Eq. 2), linear quantization (Eq. 3), and nonuniform compression
  with exact cost bookkeeping;
* :mod:`repro.rl` — the two-agent DDPG search over layer-wise pruning
  rates and bitwidths (Section III-B);
* :mod:`repro.energy` / :mod:`repro.intermittent` — power traces, capacitor
  storage, MCU cost model, SONIC-style multi-power-cycle execution;
* :mod:`repro.runtime` — Q-learning exit selection and incremental
  inference (Section IV);
* :mod:`repro.sim` — the event-driven evaluation harness and the IEpmJ
  metric (Eq. 1);
* :mod:`repro.fleet` — parallel multi-device fleet simulation with a
  scenario registry and a ``python -m repro.fleet`` CLI;
* :mod:`repro.zoo` — cached trained networks and searched specs;
* :mod:`repro.experiment` — the canonical evaluation setup (Section V-A).
"""

from repro.experiment import PAPER, PaperExperiment
from repro.compress import CompressedModel, CompressionSpec, Compressor, LayerCompression
from repro.data import Dataset, DatasetSplits, SyntheticConfig, make_cifar_like
from repro.energy import EnergyStorage, PowerTrace, solar_trace, uniform_random_events
from repro.fleet import (
    SCENARIOS,
    DeviceSpec,
    FleetResult,
    FleetRunner,
    FleetSpec,
    run_fleet,
)
from repro.intermittent import MCUSpec, MSP432
from repro.models import (
    make_lenet_cifar,
    make_multi_exit_lenet,
    make_sonic_net,
    make_sparse_net,
)
from repro.nn import MultiExitNetwork, profile_network
from repro.runtime import QLearningController, StaticController, StaticLUTPolicy
from repro.sim import InferenceProfile, SimulationResult, Simulator, SimulatorConfig

__version__ = "0.1.0"

__all__ = [
    "PAPER",
    "PaperExperiment",
    "CompressedModel",
    "CompressionSpec",
    "Compressor",
    "LayerCompression",
    "Dataset",
    "DatasetSplits",
    "SyntheticConfig",
    "make_cifar_like",
    "EnergyStorage",
    "PowerTrace",
    "solar_trace",
    "uniform_random_events",
    "SCENARIOS",
    "DeviceSpec",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "run_fleet",
    "MCUSpec",
    "MSP432",
    "make_lenet_cifar",
    "make_multi_exit_lenet",
    "make_sonic_net",
    "make_sparse_net",
    "MultiExitNetwork",
    "profile_network",
    "QLearningController",
    "StaticController",
    "StaticLUTPolicy",
    "InferenceProfile",
    "SimulationResult",
    "Simulator",
    "SimulatorConfig",
    "__version__",
]
