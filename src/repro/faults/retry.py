"""Retry policy for fault-tolerant dispatch.

One small frozen dataclass shared by the fleet dispatcher and the
campaign runner: how many times a failed chunk is retried, how long a
worker may hold a chunk before the straggler watchdog re-dispatches it,
and the exponential backoff between attempts.  Kept separate from the
runner so CLIs, campaigns, and tests can build one policy and thread it
through every layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError

#: Watchdog timeout applied when chaos is on but no explicit
#: ``worker_timeout`` was configured — an injected crash would otherwise
#: hang the dispatch forever (a killed pool worker never completes its
#: AsyncResult; only the deadline notices).
DEFAULT_CHAOS_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry knobs for one dispatch.

    ``max_retries``
        Retries per chunk *before* escalation (so a chunk runs at most
        ``max_retries + 1`` times at each ladder stage).  The ladder
        after exhaustion: a multi-device chunk splits into per-device
        jobs (batched → per-device degradation); a single device gets
        one last in-parent serial attempt; only then is it quarantined
        as a ``DeviceFailure``.
    ``worker_timeout``
        Seconds a pooled chunk attempt may run before the straggler
        watchdog gives up on it and re-dispatches (``None``: no
        deadline, except under chaos — see
        :data:`DEFAULT_CHAOS_TIMEOUT_S`).
    ``backoff_s`` / ``backoff_factor``
        Exponential backoff: retry *k* (0-based) waits
        ``backoff_s * backoff_factor**k`` seconds.
    ``straggler_grace_s``
        How long the end of a run waits for timed-out attempts to
        surface so their payloads can be checked bit-identical against
        the accepted re-execution (the determinism assert).
    """

    max_retries: int = 2
    worker_timeout: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    straggler_grace_s: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.worker_timeout is not None and self.worker_timeout <= 0:
            raise ConfigError(
                f"worker_timeout must be > 0 (or None), got {self.worker_timeout}"
            )
        if self.backoff_s < 0:
            raise ConfigError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.straggler_grace_s < 0:
            raise ConfigError(
                f"straggler_grace_s must be >= 0, got {self.straggler_grace_s}"
            )

    def backoff(self, retry_index: int) -> float:
        """Seconds to wait before 0-based retry ``retry_index``."""
        return self.backoff_s * self.backoff_factor ** max(int(retry_index), 0)

    def effective_timeout(self, chaos_on: bool) -> Optional[float]:
        """The watchdog deadline for one pooled attempt (None: no limit)."""
        if self.worker_timeout is not None:
            return self.worker_timeout
        return DEFAULT_CHAOS_TIMEOUT_S if chaos_on else None


#: The default policy: a couple of retries, no watchdog unless chaos is on.
DEFAULT_RETRY_POLICY = RetryPolicy()
