"""Deterministic fault plans: seeded, JSON round-trippable chaos schedules.

A :class:`FaultPlan` is plain data — a list of :class:`Fault` entries,
each naming an injection *site*, the 0-based *occurrence* of that site at
which it fires, an *op* (what goes wrong), and op parameters.  Because a
fault is keyed by (site, occurrence) and the dispatcher polls every site
deterministically, replaying the same plan against the same fleet
reproduces the same fault schedule regardless of worker count, host
speed, or scheduling — which is what lets the hypothesis property in
``tests/test_property_faults.py`` assert that *any* recoverable plan
leaves the final report byte-identical to a fault-free run.

Sites and their ops:

* ``fleet.chunk`` — polled once per chunk dispatch attempt (parent
  side); ops: ``crash`` (worker ``os._exit``), ``exception`` (raise
  :class:`~repro.errors.InjectedFault`), ``hang`` (sleep ``seconds``
  then complete — a straggler), ``oserror`` (transient
  :class:`OSError`), ``corrupt_payload`` (bit-flip the packed wire
  payload after its digest is sealed).
* ``campaign.cell.save`` — polled once per checkpoint write; ops:
  ``truncate`` (keep ``keep_frac`` of the file), ``bitflip`` (flip one
  byte at ``offset_frac``), ``empty`` (0-byte file, the
  crash-between-create-and-write shape).
* ``campaign.cell.load`` — polled once per checkpoint read attempt;
  ops: ``oserror`` (transient read failure, retried).
* ``fleet.shard.claim`` — polled once per shard-lease claim attempt in
  the sharded fleet runner; ops: ``oserror`` / ``exception`` (the claim
  attempt fails; the work-steal loop moves on and comes back).
* ``fleet.shard.save`` — polled once per published shard artifact; ops:
  ``truncate`` / ``bitflip`` / ``empty`` (damage the artifact after the
  atomic publish — caught at merge, quarantined, and re-executed).
* ``fleet.shard.merge`` — polled once per shard read attempt during the
  merge; ops: ``oserror`` (transient read failure, retried).
* ``fleet.gateway`` — polled once per message received by the gateway
  server (:mod:`repro.gateway`); ops: ``drop`` (swallow the request —
  the client times out and retries the same id), ``delay`` (hold the
  response for ``seconds``), ``corrupt`` (bit-flip the response line so
  the client re-sends; request-id dedup keeps the verb exactly-once).

Plans serialize to/from JSON (``to_json``/``from_json``) so a chaos
schedule can ship as a CLI artifact (``--chaos PLAN.json``) and be
replayed bit-for-bit in CI or a bug report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError

#: Injection sites and the fault ops each supports.
FAULT_SITES = {
    "fleet.chunk": ("crash", "exception", "hang", "oserror", "corrupt_payload"),
    "campaign.cell.save": ("truncate", "bitflip", "empty"),
    "campaign.cell.load": ("oserror",),
    "fleet.shard.claim": ("oserror", "exception"),
    "fleet.shard.save": ("truncate", "bitflip", "empty"),
    "fleet.shard.merge": ("oserror",),
    "fleet.gateway": ("drop", "delay", "corrupt"),
}


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: fire ``op`` at the ``when``-th poll of ``site``."""

    site: str
    when: int
    op: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        ops = FAULT_SITES.get(self.site)
        if ops is None:
            raise ConfigError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )
        if self.op not in ops:
            raise ConfigError(
                f"site {self.site!r} does not support op {self.op!r}; "
                f"supported: {ops}"
            )
        if not isinstance(self.when, int) or self.when < 0:
            raise ConfigError(f"fault 'when' must be an int >= 0, got {self.when!r}")

    def directive(self) -> dict:
        """The flat dict shipped to the executing process."""
        return {"op": self.op, **self.params}

    def to_dict(self) -> dict:
        out = {"site": self.site, "when": self.when, "op": self.op}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "Fault":
        if not isinstance(data, dict):
            raise ConfigError(f"fault entry must be a dict, got {type(data).__name__}")
        unknown = set(data) - {"site", "when", "op", "params"}
        if unknown:
            raise ConfigError(f"unknown fault field(s) {sorted(unknown)}")
        missing = {"site", "when", "op"} - set(data)
        if missing:
            raise ConfigError(f"fault entry missing field(s) {sorted(missing)}")
        return cls(
            site=data["site"],
            when=int(data["when"]),
            op=data["op"],
            params=dict(data.get("params", {})),
        )


class FaultPlan:
    """An ordered, replayable schedule of :class:`Fault` entries."""

    def __init__(self, faults=(), seed=None, note: str = ""):
        self.faults = list(faults)
        for f in self.faults:
            if not isinstance(f, Fault):
                raise ConfigError(f"FaultPlan needs Fault entries, got {f!r}")
        self.seed = None if seed is None else int(seed)
        self.note = str(note)
        self._index: dict = {}
        for f in self.faults:
            self._index.setdefault((f.site, f.when), []).append(f)

    def __len__(self) -> int:
        return len(self.faults)

    def at(self, site: str, occurrence: int) -> list:
        """Faults scheduled for the ``occurrence``-th poll of ``site``."""
        return self._index.get((site, occurrence), [])

    def sites(self) -> set:
        return {f.site for f in self.faults}

    # ------------------------------------------------------------------ #
    # JSON round-trip
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        out: dict = {"faults": [f.to_dict() for f in self.faults]}
        if self.seed is not None:
            out["seed"] = self.seed
        if self.note:
            out["note"] = self.note
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigError(f"fault plan must be a dict, got {type(data).__name__}")
        unknown = set(data) - {"faults", "seed", "note"}
        if unknown:
            raise ConfigError(f"unknown fault plan field(s) {sorted(unknown)}")
        return cls(
            faults=[Fault.from_dict(f) for f in data.get("faults", [])],
            seed=data.get("seed"),
            note=data.get("note", ""),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load fault plan {path!r}: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------ #
    # Seeded generation
    # ------------------------------------------------------------------ #
    @classmethod
    def random(
        cls,
        seed: int,
        faults: int = 6,
        sites=None,
        horizon: int = 24,
        max_hang_s: float = 0.6,
    ) -> "FaultPlan":
        """A deterministic random plan: ``faults`` entries over the first
        ``horizon`` occurrences of the chosen ``sites``.

        The same seed always produces the same plan (SeedSequence-pinned),
        so a failing hypothesis example reduces to one integer.  Keep
        ``faults`` at or below the dispatcher's retry budget when the plan
        must be *recoverable* (see ``tests/test_property_faults.py``).
        """
        site_names = tuple(sites) if sites is not None else tuple(sorted(FAULT_SITES))
        for name in site_names:
            if name not in FAULT_SITES:
                raise ConfigError(f"unknown fault site {name!r}")
        rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
        entries = []
        for _ in range(int(faults)):
            site = site_names[int(rng.integers(len(site_names)))]
            ops = FAULT_SITES[site]
            op = ops[int(rng.integers(len(ops)))]
            params: dict = {}
            if op == "hang" or op == "delay":
                params["seconds"] = round(float(rng.uniform(0.05, max_hang_s)), 3)
            elif op == "truncate":
                params["keep_frac"] = round(float(rng.uniform(0.05, 0.95)), 3)
            elif op == "bitflip":
                params["offset_frac"] = round(float(rng.uniform(0.0, 1.0)), 3)
            when = int(rng.integers(int(horizon)))
            entries.append(Fault(site=site, when=when, op=op, params=params))
        return cls(faults=entries, seed=int(seed))
