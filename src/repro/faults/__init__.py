"""Deterministic fault injection and retry policy for the execution stack.

The paper's premise is correctness under adversity — devices lose power
mid-inference and must resume bit-exactly — and this package holds the
harness that proves the *simulator's own* execution layer to the same
standard:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`Fault`: seeded,
  JSON round-trippable chaos schedules keyed by (site, occurrence), so a
  fault schedule replays bit-for-bit;
* :mod:`repro.faults.injector` — the process-wide injector with a null
  default (chaos off costs one attribute read), installed via
  :func:`chaos`;
* :mod:`repro.faults.retry` — :class:`RetryPolicy`, the bounded-retry /
  watchdog-timeout / backoff knobs threaded through
  :class:`~repro.fleet.runner.FleetRunner` and
  :class:`~repro.campaign.runner.CampaignRunner`.

The contract the whole package exists to enforce (see
``tests/test_property_faults.py``): for any *recoverable* fault plan —
crashes, hangs, corrupt wire payloads, corrupt checkpoints — the
completed fleet result and campaign report are byte-identical to a
fault-free run.
"""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    NullFaultInjector,
    chaos,
    get_fault_injector,
    set_fault_injector,
)
from repro.faults.plan import FAULT_SITES, Fault, FaultPlan
from repro.faults.retry import (
    DEFAULT_CHAOS_TIMEOUT_S,
    DEFAULT_RETRY_POLICY,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_CHAOS_TIMEOUT_S",
    "DEFAULT_RETRY_POLICY",
    "FAULT_SITES",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "NULL_INJECTOR",
    "NullFaultInjector",
    "RetryPolicy",
    "chaos",
    "get_fault_injector",
    "set_fault_injector",
]
