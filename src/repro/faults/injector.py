"""The process-wide fault injector: chaos-off must cost one attribute read.

Mirrors :mod:`repro.obs.recorder`: exactly one injector is active per
process, the default is :data:`NULL_INJECTOR` (``enabled`` is ``False``),
and every injection point in the dispatch/store stack reduces to one
attribute read when chaos is off — the ≤2% no-op gate in
``benchmarks/test_p7_faults.py`` holds the production paths to that.

The injector never *applies* faults itself at fleet dispatch sites: the
parent-side dispatcher polls it once per site occurrence, and the
returned directives ship to the executing process with the work (so
injection stays deterministic under fork *or* spawn, any worker count,
and any scheduling).  Store sites apply their directives in place, since
the store always runs in the polling process.

Usage::

    from repro.faults import FaultPlan, chaos

    plan = FaultPlan.from_json("plan.json")
    with chaos(plan) as injector:
        result = FleetRunner(spec, workers=4).run()
    print(injector.fired_summary())
"""

from __future__ import annotations

import contextlib

from repro.faults.plan import FaultPlan
from repro.obs.recorder import get_recorder


class NullFaultInjector:
    """Inactive injector: chaos off, every poll free."""

    enabled = False

    def poll(self, site: str):
        return ()


#: The process-default injector (chaos off).
NULL_INJECTOR = NullFaultInjector()


class FaultInjector:
    """Replays a :class:`~repro.faults.plan.FaultPlan` deterministically.

    Each injection site is polled once per occurrence (a chunk dispatch
    attempt, a checkpoint write, ...); the injector counts occurrences
    per site and returns the plan's faults for exactly that (site,
    occurrence) pair.  Every fired fault is recorded on :attr:`fired` and
    counted as a ``fault.injected.<site>.<op>`` metric when a recorder is
    active.
    """

    enabled = True

    def __init__(self, plan: FaultPlan):
        if not isinstance(plan, FaultPlan):
            plan = FaultPlan(plan)
        self.plan = plan
        self._occurrences: dict = {}
        #: Every fault fired so far, in firing order.
        self.fired: list = []

    def occurrences(self, site: str) -> int:
        """How many times ``site`` has been polled."""
        return self._occurrences.get(site, 0)

    def poll(self, site: str):
        """Advance ``site`` by one occurrence; return its due faults."""
        i = self._occurrences.get(site, 0)
        self._occurrences[site] = i + 1
        faults = self.plan.at(site, i)
        if faults:
            self.fired.extend(faults)
            metrics = get_recorder().metrics
            if metrics is not None:
                for fault in faults:
                    metrics.inc(f"fault.injected.{fault.site}.{fault.op}")
        return faults

    def fired_summary(self) -> dict:
        """``{"<site>.<op>": count}`` over everything fired so far."""
        out: dict = {}
        for fault in self.fired:
            key = f"{fault.site}.{fault.op}"
            out[key] = out.get(key, 0) + 1
        return out


_ACTIVE: "NullFaultInjector | FaultInjector" = NULL_INJECTOR


def get_fault_injector():
    """The process-wide active injector (NULL_INJECTOR when chaos is off)."""
    return _ACTIVE


def set_fault_injector(injector) -> object:
    """Install ``injector`` (``None`` resets to off); returns the previous."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = NULL_INJECTOR if injector is None else injector
    return previous


@contextlib.contextmanager
def chaos(plan):
    """Scope a fault injector: install on entry, restore on exit.

    ``plan`` may be a :class:`FaultPlan`, an already-built
    :class:`FaultInjector`, or ``None`` (a no-op scope, so callers can
    write ``with chaos(maybe_plan):`` unconditionally).
    """
    if plan is None:
        yield NULL_INJECTOR
        return
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    previous = set_fault_injector(injector)
    try:
        yield injector
    finally:
        set_fault_injector(previous)
