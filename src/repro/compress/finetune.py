"""Post-compression fine-tuning (quantization- and pruning-aware).

Compressing a 470 KB fp32 network into a 16 KB MCU budget means ~1-4 bit
weights and heavy channel pruning; no network survives that zero-shot.
Like the compression lines the paper builds on (HAQ [15], AMC [27]), the
deployed model is therefore briefly *fine-tuned after compression*:

* weight quantizers stay attached during training — the forward pass sees
  quantized weights while gradients flow to the raw fp copies
  (straight-through estimator, built into :mod:`repro.nn.layers`);
* pruning masks are re-applied after every optimizer step so pruned
  channels cannot regrow;
* activation quantizers stay fixed at their calibrated scales.

The RL search's inner loop stays zero-shot (evaluating hundreds of
candidates with fine-tuning would be intractable); only the winning spec
gets this treatment before deployment, mirroring HAQ's final fine-tune.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compress.compressor import CompressedModel
from repro.nn.io import load_state_dict, state_dict
from repro.nn.losses import MultiExitCrossEntropy
from repro.nn.optim import SGD
from repro.nn.trainer import evaluate_exit_accuracies
from repro.utils.rng import as_generator, batches


@dataclass
class FinetuneConfig:
    """Hyper-parameters of the post-compression fine-tune."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.005
    momentum: float = 0.9
    lr_decay: float = 0.9
    exit_weights: list = None
    seed: int = 0
    verbose: bool = False
    #: With validation data, restore the epoch with the best mean exit
    #: accuracy at the end (low-bit training oscillates; the last epoch is
    #: often not the best one).
    keep_best: bool = True


def finetune_compressed(
    model: CompressedModel,
    train_x: np.ndarray,
    train_y: np.ndarray,
    config: FinetuneConfig = None,
    val_x: np.ndarray = None,
    val_y: np.ndarray = None,
) -> list:
    """Fine-tune ``model.net`` in place under its compression constraints.

    Returns the per-epoch validation exit accuracies (empty list when no
    validation data is given).
    """
    cfg = config or FinetuneConfig()
    rng = as_generator(cfg.seed)
    net = model.net
    criterion = MultiExitCrossEntropy(net.num_exits, cfg.exit_weights)
    optimizer = SGD(net.parameters(), lr=cfg.lr, momentum=cfg.momentum)
    history = []
    best_score, best_state = -1.0, None
    for epoch in range(cfg.epochs):
        for idx in batches(len(train_x), cfg.batch_size, rng):
            optimizer.zero_grad()
            logits = net.forward_all(train_x[idx], train=True)
            criterion(logits, train_y[idx])
            net.backward_all(criterion.backward())
            optimizer.step()
            model.apply_masks()  # pruned channels must stay pruned
        optimizer.lr *= cfg.lr_decay
        if val_x is not None:
            accs = evaluate_exit_accuracies(net, val_x, val_y)
            history.append(accs)
            score = float(np.mean(accs))
            if cfg.keep_best and score > best_score:
                best_score, best_state = score, state_dict(net)
            if cfg.verbose:
                pretty = ", ".join(f"{a:.3f}" for a in accs)
                print(f"finetune epoch {epoch + 1}/{cfg.epochs}: val=[{pretty}]")
    if best_state is not None:
        load_state_dict(net, best_state)
        model.apply_masks()
    return history
