"""Apply a :class:`CompressionSpec` to a multi-exit network.

The compressor clones the network, prunes input channels by importance
(Eq. 2), attaches weight/activation quantizers (Eq. 3), calibrates the
activation scales on a representative batch, and produces the analytic
cost bookkeeping the search and simulator consume.

Cost semantics (paper Section III "Pruning"):

* pruning layer ``l``'s input channels scales its own MACs by
  ``|kept_in| / c``;
* a producing layer's output channel that **no consumer keeps** is also
  removed ("It also reduces the FLOPs of the previous layer"), scaling the
  producer by ``|kept_out| / n``.  Consumers are resolved through the
  multi-exit graph: a backbone activation feeds both its exit branch and
  the next backbone segment, so a producer channel survives if *any* of
  them uses it (this keeps incremental inference valid after compression).
* ``F_model`` (Eq. 8) is the FLOPs of the deepest exit's path — the cost of
  a worst-case single inference — matching the paper's 1.15M target against
  its compressed Exit-3 cost.
* ``S_model`` counts kept weights at their quantized bitwidth plus kept
  biases at 32 bits.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CompressionError
from repro.compress.spec import CompressionSpec
from repro.nn.flops import ModelProfile, profile_network
from repro.nn.layers import Conv2d, Linear
from repro.nn.network import MultiExitNetwork
from repro.prune.channel_pruning import kept_channel_indices
from repro.quant.linear_quant import ActivationQuantizer, WeightQuantizer
from repro.utils.rng import as_generator


@dataclass
class LayerCostRecord:
    """Post-compression cost accounting for one weighted layer."""

    name: str
    in_channels: int
    out_channels: int
    kept_in: int
    kept_out: int
    flops_orig: int
    flops_effective: float
    weight_count_orig: int
    weight_count_effective: float
    weight_bits: int
    act_bits: int

    @property
    def size_bits(self) -> float:
        bias_bits = self.kept_out * 32
        return self.weight_count_effective * self.weight_bits + bias_bits


@dataclass
class CompressedModel:
    """A compressed network plus its analytic cost report."""

    net: MultiExitNetwork
    spec: CompressionSpec
    records: list                       # LayerCostRecord per weighted layer
    exit_flops: list                    # effective FLOPs per exit path
    profile: ModelProfile               # original (uncompressed) profile
    masks: dict = field(default_factory=dict)  # layer name -> bool weight mask
    model_size_bits: float = field(init=False)

    def __post_init__(self):
        self.model_size_bits = float(sum(r.size_bits for r in self.records))

    def record(self, name: str) -> LayerCostRecord:
        for r in self.records:
            if r.name == name:
                return r
        raise KeyError(f"no cost record for layer {name!r}")

    @property
    def fmodel_flops(self) -> float:
        """Worst-case single-inference FLOPs (Eq. 8's F_model)."""
        return float(self.exit_flops[-1])

    @property
    def model_size_kb(self) -> float:
        return self.model_size_bits / 8.0 / 1024.0

    @property
    def num_exits(self) -> int:
        return self.net.num_exits

    def apply_masks(self) -> None:
        """Re-zero pruned weight entries in place.

        Post-compression fine-tuning updates raw weights with
        straight-through gradients; calling this after every optimizer
        step keeps the pruning structurally intact.
        """
        by_name = {ly.name: ly for ly in self.net.weighted_layers()}
        for name, mask in self.masks.items():
            by_name[name].weight.data[~mask] = 0.0

    def incremental_exit_flops(self) -> list:
        """Marginal FLOPs of continuing from exit ``i`` to ``i+1``."""
        eff = {r.name: r.flops_effective for r in self.records}
        out = []
        for i in range(len(self.profile.exits) - 1):
            cur = self.profile.exits[i]
            nxt = self.profile.exits[i + 1]
            cur_branch = set(cur.layer_names) - set(nxt.layer_names)
            backbone_cur = sum(eff[n] for n in cur.layer_names if n not in cur_branch)
            out.append(sum(eff[n] for n in nxt.layer_names) - backbone_cur)
        return out


class _InputRecorder:
    """Stands in for an input quantizer during calibration, recording the
    abs-percentile of the activations that flow through."""

    def __init__(self, percentile: float):
        self.percentile = percentile
        self.peak = 0.0

    def __call__(self, a: np.ndarray) -> np.ndarray:
        self.peak = max(self.peak, float(np.percentile(np.abs(a), self.percentile)))
        return a


def _consumer_edges(net: MultiExitNetwork) -> dict:
    """Map producer layer name -> list of (consumer layer, kind).

    ``kind`` is ``"direct"`` when channel identity is preserved between
    producer and consumer (conv->conv, linear->linear) and ``"flatten"``
    when a conv feeds a linear through a Flatten (block mapping).
    """
    def weighted(seq):
        return [ly for ly in seq if isinstance(ly, (Conv2d, Linear))]

    edges: dict = {}

    def add_edge(producer, consumer):
        if producer is None or consumer is None:
            return
        if isinstance(producer, Conv2d) and isinstance(consumer, Linear):
            kind = "flatten"
        else:
            kind = "direct"
        edges.setdefault(producer.name, []).append((consumer, kind))

    def chain(layers, upstream):
        """Link a weighted-layer chain; returns the chain's last producer."""
        prev = upstream
        for layer in layers:
            add_edge(prev, layer)
            prev = layer
        return prev

    producer = None
    for seg, branch in zip(net.segments, net.branches):
        seg_weighted = weighted(seg)
        seg_last = chain(seg_weighted, producer)
        branch_weighted = weighted(branch)
        chain(branch_weighted, seg_last)
        producer = seg_last
    return edges


class Compressor:
    """Applies compression specs to multi-exit networks.

    Parameters
    ----------
    input_shape:
        Single-sample input shape used for static profiling.
    importance:
        Channel-importance criterion (``"l1"`` per Eq. 2; ``"l2"`` or
        ``"random"`` for ablations).
    act_percentile:
        Calibration percentile for activation quantizer scales.
    """

    def __init__(self, input_shape=(3, 32, 32), importance: str = "l1", act_percentile: float = 99.9):
        self.input_shape = tuple(input_shape)
        self.importance = importance
        self.act_percentile = act_percentile

    def apply(
        self,
        net: MultiExitNetwork,
        spec: CompressionSpec,
        calibration_x: np.ndarray = None,
        rng=None,
    ) -> CompressedModel:
        """Compress a copy of ``net`` according to ``spec``.

        ``calibration_x`` (a small NCHW batch) sets activation-quantizer
        scales; without it, quantizers fall back to dynamic per-call
        scaling.  The input network is never modified.
        """
        gen = as_generator(rng)
        profile = profile_network(net, self.input_shape)
        clone = copy.deepcopy(net)
        layers = clone.weighted_layers()
        names = [ly.name for ly in layers]
        for name in names:
            if name not in spec:
                raise CompressionError(f"spec is missing layer {name!r}")

        # --- pruning: choose kept input channels from original weights ----
        kept_in: dict = {}
        weight_masks = {ly.name: np.ones(ly.weight.data.shape, dtype=bool) for ly in layers}
        for layer in layers:
            lc = spec[layer.name]
            kept = kept_channel_indices(
                layer.weight.data, lc.preserve_ratio, self.importance, gen
            )
            kept_in[layer.name] = kept
            mask = np.zeros(layer.weight.data.shape[1], dtype=bool)
            mask[kept] = True
            if layer.weight.data.ndim == 4:
                weight_masks[layer.name][:, ~mask, :, :] = False
            else:
                weight_masks[layer.name][:, ~mask] = False
            layer.weight.data[~weight_masks[layer.name]] = 0.0

        # --- producer-side cleanup: drop outputs no consumer keeps --------
        edges = _consumer_edges(clone)
        kept_out: dict = {}
        for layer in layers:
            consumers = edges.get(layer.name, [])
            n = layer.weight.data.shape[0]
            if not consumers:
                kept_out[layer.name] = np.arange(n)
                continue
            used: set = set()
            for consumer, kind in consumers:
                cons_kept = kept_in[consumer.name]
                if kind == "direct":
                    used.update(int(j) for j in cons_kept)
                else:  # conv -> flatten -> linear block mapping
                    block = consumer.in_features // n
                    used.update(int(j) // block for j in cons_kept)
            kept = np.array(sorted(used), dtype=np.int64)
            if kept.size == 0:
                kept = np.array([0], dtype=np.int64)
            kept_out[layer.name] = kept
            mask = np.zeros(n, dtype=bool)
            mask[kept] = True
            if layer.weight.data.ndim == 4:
                weight_masks[layer.name][~mask, :, :, :] = False
            else:
                weight_masks[layer.name][~mask, :] = False
            layer.weight.data[~weight_masks[layer.name]] = 0.0
            if layer.bias is not None:
                layer.bias.data[~mask] = 0.0

        # --- quantization hooks -------------------------------------------
        first_weighted = clone.weighted_layers()[0].name
        recorders: dict = {}
        for layer in layers:
            lc = spec[layer.name]
            if lc.weight_bits < 32:
                layer.weight_quantizer = WeightQuantizer(lc.weight_bits)
            if lc.act_bits < 32:
                recorder = _InputRecorder(self.act_percentile)
                recorders[layer.name] = recorder
                layer.input_quantizer = recorder  # temporarily record
        if recorders and calibration_x is not None:
            clone.forward_all(np.asarray(calibration_x), train=False)
        for layer in layers:
            lc = spec[layer.name]
            if lc.act_bits < 32:
                quantizer = ActivationQuantizer(
                    lc.act_bits,
                    signed=(layer.name == first_weighted),
                    percentile=self.act_percentile,
                )
                recorder = recorders[layer.name]
                if calibration_x is not None and recorder.peak > 0.0:
                    quantizer.scale = recorder.peak / max(1, quantizer._levels())
                layer.input_quantizer = quantizer

        # --- cost bookkeeping ----------------------------------------------
        records = []
        for layer in layers:
            lp = profile.layer(layer.name)
            lc = spec[layer.name]
            n_in, n_out = lp.in_channels, lp.out_channels
            ki, ko = len(kept_in[layer.name]), len(kept_out[layer.name])
            in_frac = ki / n_in
            out_frac = ko / n_out
            records.append(
                LayerCostRecord(
                    name=layer.name,
                    in_channels=n_in,
                    out_channels=n_out,
                    kept_in=ki,
                    kept_out=ko,
                    flops_orig=lp.flops,
                    flops_effective=lp.flops * in_frac * out_frac,
                    weight_count_orig=lp.weight_count,
                    weight_count_effective=lp.weight_count * in_frac * out_frac,
                    weight_bits=min(lc.weight_bits, 32),
                    act_bits=min(lc.act_bits, 32),
                )
            )
        eff = {r.name: r.flops_effective for r in records}
        exit_flops = [
            float(sum(eff[n] for n in exit_profile.layer_names))
            for exit_profile in profile.exits
        ]
        return CompressedModel(
            net=clone,
            spec=spec,
            records=records,
            exit_flops=exit_flops,
            profile=profile,
            masks=weight_masks,
        )
