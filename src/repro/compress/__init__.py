"""Nonuniform compression: specs, application, and exit-wise evaluation."""

from repro.compress.spec import CompressionSpec, LayerCompression
from repro.compress.compressor import (
    CompressedModel,
    Compressor,
    LayerCostRecord,
)
from repro.compress.evaluator import ExitEvaluation, evaluate_exits
from repro.compress.finetune import FinetuneConfig, finetune_compressed
from repro.compress.uniform import (
    fit_uniform_spec,
    make_uniform_spec,
)

__all__ = [
    "CompressionSpec",
    "LayerCompression",
    "CompressedModel",
    "Compressor",
    "LayerCostRecord",
    "ExitEvaluation",
    "evaluate_exits",
    "FinetuneConfig",
    "finetune_compressed",
    "fit_uniform_spec",
    "make_uniform_spec",
]
