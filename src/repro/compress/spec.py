"""Compression specifications: per-layer (alpha, b^w, b^a) triples.

A :class:`CompressionSpec` is the artifact the RL search produces and the
:class:`~repro.compress.compressor.Compressor` consumes — the paper's
"pruning rate and bitwidth allocation policy for each layer" (Fig. 4).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import CompressionError


@dataclass(frozen=True)
class LayerCompression:
    """Compression knobs for one weighted layer.

    ``preserve_ratio`` is the paper's alpha_l (fraction of input channels
    kept, in (0, 1]); ``weight_bits``/``act_bits`` are b^w_l and b^a_l.
    Bit values >= 32 mean full precision.
    """

    preserve_ratio: float = 1.0
    weight_bits: int = 32
    act_bits: int = 32

    def __post_init__(self):
        if not 0.0 < self.preserve_ratio <= 1.0:
            raise CompressionError(
                f"preserve_ratio must be in (0, 1], got {self.preserve_ratio}"
            )
        for label, bits in (("weight_bits", self.weight_bits), ("act_bits", self.act_bits)):
            if not isinstance(bits, int) or not 1 <= bits <= 32:
                raise CompressionError(f"{label} must be an int in [1, 32], got {bits!r}")

    @property
    def is_identity(self) -> bool:
        return self.preserve_ratio == 1.0 and self.weight_bits >= 32 and self.act_bits >= 32


@dataclass
class CompressionSpec:
    """Mapping of layer name -> :class:`LayerCompression`."""

    layers: dict = field(default_factory=dict)

    def __post_init__(self):
        for name, lc in self.layers.items():
            if not isinstance(lc, LayerCompression):
                raise CompressionError(f"layer {name!r}: expected LayerCompression")

    def __getitem__(self, name: str) -> LayerCompression:
        try:
            return self.layers[name]
        except KeyError:
            raise CompressionError(f"spec has no entry for layer {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.layers

    def layer_names(self) -> list:
        return list(self.layers)

    @classmethod
    def identity(cls, layer_names) -> "CompressionSpec":
        """Full-precision, no-pruning spec over the given layers."""
        return cls({name: LayerCompression() for name in layer_names})

    @classmethod
    def uniform(
        cls, layer_names, preserve_ratio: float, weight_bits: int = 32, act_bits: int = 32
    ) -> "CompressionSpec":
        """Same knobs for every layer (the paper's uniform baseline)."""
        lc = LayerCompression(preserve_ratio, weight_bits, act_bits)
        return cls({name: lc for name in layer_names})

    def weight_bitwidths(self) -> dict:
        """Layer name -> weight bits (for model-size accounting)."""
        return {name: lc.weight_bits for name, lc in self.layers.items()}

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            name: {
                "preserve_ratio": lc.preserve_ratio,
                "weight_bits": lc.weight_bits,
                "act_bits": lc.act_bits,
            }
            for name, lc in self.layers.items()
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CompressionSpec":
        return cls(
            {
                name: LayerCompression(
                    preserve_ratio=float(entry["preserve_ratio"]),
                    weight_bits=int(entry["weight_bits"]),
                    act_bits=int(entry["act_bits"]),
                )
                for name, entry in data.items()
            }
        )

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, path: str) -> "CompressionSpec":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))
