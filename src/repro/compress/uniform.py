"""Uniform compression baseline (paper Fig. 1(b)).

Uniform compression applies the *same* preserve ratio and bitwidth to every
layer.  :func:`fit_uniform_spec` searches the smallest uniform setting that
meets the same FLOPs/size targets the nonuniform search gets, which is the
fair comparison behind Fig. 1(b)'s "Uniform compression" bars.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CompressionError
from repro.compress.compressor import Compressor
from repro.compress.spec import CompressionSpec
from repro.nn.network import MultiExitNetwork


def make_uniform_spec(
    net: MultiExitNetwork, preserve_ratio: float, weight_bits: int = 32, act_bits: int = 32
) -> CompressionSpec:
    """Uniform spec over all weighted layers of ``net``."""
    names = [ly.name for ly in net.weighted_layers()]
    return CompressionSpec.uniform(names, preserve_ratio, weight_bits, act_bits)


def fit_uniform_spec(
    net: MultiExitNetwork,
    flops_target: float,
    size_target_kb: float,
    act_bits: int = 8,
    input_shape=(3, 32, 32),
    alpha_step: float = 0.05,
) -> CompressionSpec:
    """Find the gentlest uniform spec meeting both targets.

    Sweeps the preserve ratio downward on the paper's 0.05 grid until the
    FLOPs target is met, then lowers the (single) weight bitwidth until the
    size target is met.  Raises when even the most aggressive uniform
    setting cannot satisfy the constraints.
    """
    compressor = Compressor(input_shape=input_shape)
    alphas = np.arange(1.0, alpha_step / 2, -alpha_step)
    for alpha in alphas:
        alpha = float(round(alpha, 10))
        for bits in range(8, 0, -1):
            spec = make_uniform_spec(net, alpha, weight_bits=bits, act_bits=act_bits)
            model = compressor.apply(net, spec)
            if model.fmodel_flops <= flops_target and model.model_size_kb <= size_target_kb:
                return spec
            if model.fmodel_flops > flops_target:
                break  # pruning, not bits, governs FLOPs: try smaller alpha
    raise CompressionError(
        f"no uniform spec meets flops<={flops_target} and size<={size_target_kb}KB"
    )
