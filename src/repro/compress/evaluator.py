"""Exit-wise evaluation of (compressed) networks.

Produces the quantities the paper's Eq. 6-7 call ``Acc_i`` and ``E_i``:
per-exit accuracy on a representative dataset and per-exit energy cost from
FLOPs at the MCU's energy-per-MFLOP constant.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.compress.compressor import CompressedModel
from repro.data.dataset import Dataset
from repro.nn.trainer import evaluate_exit_accuracies

#: Paper Section V-A: "The energy cost is 1.5mJ per million FLOPs."
DEFAULT_ENERGY_PER_MFLOP_MJ = 1.5


@dataclass
class ExitEvaluation:
    """Per-exit accuracy/cost summary of one compressed model."""

    accuracies: list          # Acc_i per exit
    exit_flops: list          # FLOPs per exit path
    exit_energy_mj: list      # E_i per exit
    model_size_kb: float
    fmodel_flops: float

    @property
    def num_exits(self) -> int:
        return len(self.accuracies)

    def as_dict(self) -> dict:
        return {
            "accuracies": list(self.accuracies),
            "exit_flops": [float(f) for f in self.exit_flops],
            "exit_energy_mj": [float(e) for e in self.exit_energy_mj],
            "model_size_kb": float(self.model_size_kb),
            "fmodel_flops": float(self.fmodel_flops),
        }


def evaluate_exits(
    model: CompressedModel,
    dataset: Dataset,
    batch_size: int = 256,
    energy_per_mflop_mj: float = DEFAULT_ENERGY_PER_MFLOP_MJ,
) -> ExitEvaluation:
    """Measure Acc_i on ``dataset`` and derive E_i from the cost report."""
    accuracies = evaluate_exit_accuracies(model.net, dataset.x, dataset.y, batch_size)
    energy = [f / 1e6 * energy_per_mflop_mj for f in model.exit_flops]
    return ExitEvaluation(
        accuracies=accuracies,
        exit_flops=[float(f) for f in model.exit_flops],
        exit_energy_mj=energy,
        model_size_kb=model.model_size_kb,
        fmodel_flops=model.fmodel_flops,
    )
