"""Linear quantization of weights and activations (paper Eq. 3)."""

from repro.quant.linear_quant import (
    ActivationQuantizer,
    WeightQuantizer,
    optimal_weight_scale,
    quantize_activations,
    quantize_weights,
)

__all__ = [
    "ActivationQuantizer",
    "WeightQuantizer",
    "optimal_weight_scale",
    "quantize_activations",
    "quantize_weights",
]
