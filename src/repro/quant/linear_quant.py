"""Linear quantization following the paper's Section III ("Quantization").

Weights (Eq. 3)::

    w' = clamp(round(w / s), -2^(k-1), 2^(k-1) - 1) * s

with the scaling factor ``s`` chosen to minimize ``||w' - w||_2`` via a
line search, exactly as in HAQ [15] which the paper builds on.

Activations: same procedure but clamped to ``[0, 2^k - 1]`` because the
network is ReLU-based and activations are non-negative.  A signed variant
is used for the network input (standardized images are signed).

1-bit weights degenerate under Eq. 3 (the signed range becomes {-1, 0}),
so, following XNOR-Net [23] which the paper cites for binary filters,
``bits == 1`` maps weights to ``sign(w) * s`` with the L2-optimal
``s = mean(|w|)``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.mathx import clamp


def _check_bits(bits: int) -> None:
    if not isinstance(bits, (int, np.integer)) or not 1 <= bits <= 32:
        raise ConfigError(f"bitwidth must be an int in [1, 32], got {bits!r}")


def _quantize_signed(w: np.ndarray, bits: int, scale: float) -> np.ndarray:
    lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    return clamp(np.round(w / scale), lo, hi) * scale


def optimal_weight_scale(w: np.ndarray, bits: int, num_candidates: int = 40) -> float:
    """L2-optimal scaling factor for signed linear quantization of ``w``.

    Searches candidate scales between 30% and 120% of the max-based scale,
    which brackets the optimum for bell-shaped weight distributions.
    """
    _check_bits(bits)
    wmax = float(np.abs(w).max())
    if wmax == 0.0:
        return 1.0
    if bits == 1:
        return float(np.abs(w).mean())  # XNOR-Net optimal binary scale
    base = wmax / (2 ** (bits - 1) - 1)
    best_scale, best_err = base, np.inf
    for factor in np.linspace(0.3, 1.2, num_candidates):
        s = base * factor
        err = float(np.sum((_quantize_signed(w, bits, s) - w) ** 2))
        if err < best_err:
            best_scale, best_err = s, err
    return best_scale


def quantize_weights(w: np.ndarray, bits: int, scale: float = None) -> np.ndarray:
    """Quantize a weight tensor to ``bits`` bits (Eq. 3).

    ``bits >= 32`` is treated as full precision.  When ``scale`` is omitted
    the L2-optimal scale is computed from ``w`` itself.
    """
    _check_bits(bits)
    if bits >= 32:
        return np.asarray(w, dtype=np.float64)
    w = np.asarray(w, dtype=np.float64)
    s = optimal_weight_scale(w, bits) if scale is None else float(scale)
    if s <= 0:
        raise ConfigError("quantization scale must be positive")
    if bits == 1:
        return np.where(w >= 0, s, -s)
    return _quantize_signed(w, bits, s)


def quantize_activations(
    a: np.ndarray, bits: int, scale: float, signed: bool = False
) -> np.ndarray:
    """Quantize activations to ``bits`` bits with a fixed calibrated scale.

    Unsigned range ``[0, 2^k - 1]`` by default (post-ReLU activations);
    ``signed=True`` uses the symmetric signed range (network input).
    """
    _check_bits(bits)
    if bits >= 32:
        return np.asarray(a, dtype=np.float64)
    if scale <= 0:
        raise ConfigError("activation scale must be positive")
    if signed:
        lo, hi = -(2 ** (bits - 1)), 2 ** (bits - 1) - 1
    else:
        lo, hi = 0, 2 ** bits - 1
    return clamp(np.round(np.asarray(a, dtype=np.float64) / scale), lo, hi) * scale


class WeightQuantizer:
    """Callable weight-quantization hook for Conv2d/Linear layers.

    Recomputes the L2-optimal scale from the current weights on every call,
    so post-compression fine-tuning (straight-through gradients) keeps the
    quantization grid matched to the evolving weights.
    """

    def __init__(self, bits: int):
        _check_bits(bits)
        self.bits = int(bits)

    def __call__(self, w: np.ndarray) -> np.ndarray:
        return quantize_weights(w, self.bits)

    def __repr__(self) -> str:  # pragma: no cover
        return f"WeightQuantizer(bits={self.bits})"


class ActivationQuantizer:
    """Callable activation-quantization hook with one-shot calibration.

    The scale maps the calibrated dynamic range onto the integer grid; it
    is set from sample activations via :meth:`calibrate` (max-percentile
    rule) or explicitly.  Uncalibrated quantizers fall back to dynamic
    per-call max, which mirrors a conservative first deployment.
    """

    def __init__(self, bits: int, signed: bool = False, percentile: float = 99.9):
        _check_bits(bits)
        self.bits = int(bits)
        self.signed = bool(signed)
        self.percentile = float(percentile)
        self.scale = None

    def _levels(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.signed else 2 ** self.bits - 1

    def calibrate(self, samples: np.ndarray) -> "ActivationQuantizer":
        """Set the scale from representative activations; returns self."""
        ref = np.percentile(np.abs(samples), self.percentile)
        self.scale = float(ref) / max(1, self._levels()) or 1e-8
        return self

    def __call__(self, a: np.ndarray) -> np.ndarray:
        if self.bits >= 32:
            return a
        scale = self.scale
        if scale is None:
            peak = float(np.abs(a).max())
            scale = (peak / max(1, self._levels())) if peak > 0 else 1e-8
        return quantize_activations(a, self.bits, scale, signed=self.signed)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ActivationQuantizer(bits={self.bits}, signed={self.signed})"
