"""Reference architectures: the paper's multi-exit LeNet and baselines."""

from repro.models.multi_exit_lenet import (
    MULTI_EXIT_LENET_LAYERS,
    PAPER_EXIT_ACCURACY,
    PAPER_EXIT_FLOPS,
    make_multi_exit_lenet,
)
from repro.models.baselines import (
    make_lenet_cifar,
    make_sonic_net,
    make_sparse_net,
)

__all__ = [
    "MULTI_EXIT_LENET_LAYERS",
    "PAPER_EXIT_ACCURACY",
    "PAPER_EXIT_FLOPS",
    "make_multi_exit_lenet",
    "make_lenet_cifar",
    "make_sonic_net",
    "make_sparse_net",
]
