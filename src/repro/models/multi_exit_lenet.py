"""The paper's multi-exit LeNet backbone (Section V-A, Fig. 1(c), Fig. 4).

The paper extends LeNet to four convolutional layers and attaches two
early-exits along the data path, giving three exits in total.  Figure 4
names eleven weighted layers: Conv1, ConvB1, Conv2, ConvB2, Conv3, Conv4,
FC-B1, FC-B21, FC-B22, FC-B31, FC-B32 — "B" layers belong to exit branches.

The channel counts below were chosen so the static profile matches the
paper's reported per-exit cost almost exactly under the 1 MAC = 1 FLOP
convention:

==========  ============  ===========
exit        paper FLOPs   this model
==========  ============  ===========
Exit 1      0.4452 M      0.4504 M
Exit 2      1.2602 M      1.2672 M
Exit 3      1.6202 M      1.6243 M
==========  ============  ===========

Full-precision weight storage is ~0.47 MB (paper: 580 KB): both far exceed
a 16 KB MCU budget, which is the constraint that drives compression.
"""

from __future__ import annotations

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.network import MultiExitNetwork, Sequential
from repro.utils.rng import spawn

#: Weighted layers in execution order (backbone first, then branch layers),
#: matching the x-axis of the paper's Figure 4.
MULTI_EXIT_LENET_LAYERS = (
    "Conv1",
    "ConvB1",
    "Conv2",
    "ConvB2",
    "Conv3",
    "Conv4",
    "FC-B1",
    "FC-B21",
    "FC-B22",
    "FC-B31",
    "FC-B32",
)

#: Per-exit FLOPs reported in the paper (Section V-A), in MACs.
PAPER_EXIT_FLOPS = (445_200, 1_260_200, 1_620_200)

#: Per-exit full-precision accuracy reported in the paper (Fig. 1(b)).
PAPER_EXIT_ACCURACY = (0.649, 0.720, 0.730)


def make_multi_exit_lenet(num_classes: int = 10, seed=0) -> MultiExitNetwork:
    """Build the 3-exit LeNet used throughout the paper's evaluation.

    Input is NCHW 3x32x32.  Exits are indexed 0 (shallowest) to 2 (final).
    """
    rngs = iter(spawn(seed, len(MULTI_EXIT_LENET_LAYERS)))
    segment0 = Sequential(
        [
            Conv2d(3, 6, kernel_size=5, name="Conv1", rng=next(rngs)),
            ReLU(),
            MaxPool2d(2),
        ],
        name="segment0",
    )
    branch0 = Sequential(
        [
            Conv2d(6, 12, kernel_size=3, name="ConvB1", rng=next(rngs)),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(12 * 6 * 6, num_classes, name="FC-B1", rng=next(rngs)),
        ],
        name="branch0",
    )
    segment1 = Sequential(
        [
            Conv2d(6, 24, kernel_size=5, padding=2, name="Conv2", rng=next(rngs)),
            ReLU(),
            MaxPool2d(2),
        ],
        name="segment1",
    )
    branch1 = Sequential(
        [
            Conv2d(24, 16, kernel_size=3, padding=1, name="ConvB2", rng=next(rngs)),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(16 * 3 * 3, 256, name="FC-B21", rng=next(rngs)),
            ReLU(),
            Linear(256, num_classes, name="FC-B22", rng=next(rngs)),
        ],
        name="branch1",
    )
    segment2 = Sequential(
        [
            Conv2d(24, 24, kernel_size=3, padding=1, name="Conv3", rng=next(rngs)),
            ReLU(),
            Conv2d(24, 24, kernel_size=3, padding=1, name="Conv4", rng=next(rngs)),
            ReLU(),
            MaxPool2d(2),
        ],
        name="segment2",
    )
    branch2 = Sequential(
        [
            Flatten(),
            Linear(24 * 3 * 3, 256, name="FC-B31", rng=next(rngs)),
            ReLU(),
            Linear(256, num_classes, name="FC-B32", rng=next(rngs)),
        ],
        name="branch2",
    )
    return MultiExitNetwork(
        segments=[segment0, segment1, segment2],
        branches=[branch0, branch1, branch2],
        name="multi_exit_lenet",
        num_classes=num_classes,
    )
