"""Baseline networks from the paper's evaluation (Section V-C/D).

All three baselines are single-exit classifiers; they are wrapped in
:class:`~repro.nn.network.MultiExitNetwork` with one segment and one branch
so the whole tool-chain (profiling, simulation, runtime) treats single- and
multi-exit networks uniformly.

* ``SonicNet`` — stands in for the network deployed by SONIC/Gobieski et
  al. [9].  The paper reports it at 2.0M FLOPs; it runs under the
  intermittent (multi-power-cycle) execution engine.
* ``SpArSeNet`` — the product of the SpArSe NAS framework [13] at 11.4M
  FLOPs.  The NAS itself is out of scope (see DESIGN.md §2); only its
  resulting cost/accuracy trade-off matters to the evaluation.
* ``LeNet-Cifar`` — a small hand-designed LeNet variant.  Figure 6 implies
  roughly 0.23M FLOPs (0.46x of the compressed average), i.e. an expert
  design that "fortunately fits the EH scenario well".
"""

from __future__ import annotations

from repro.nn.layers import Conv2d, Flatten, Linear, MaxPool2d, ReLU
from repro.nn.network import MultiExitNetwork, Sequential
from repro.utils.rng import spawn


def _single_exit(backbone_layers, head_layers, name: str, num_classes: int) -> MultiExitNetwork:
    return MultiExitNetwork(
        segments=[Sequential(backbone_layers, name=f"{name}.backbone")],
        branches=[Sequential(head_layers, name=f"{name}.head")],
        name=name,
        num_classes=num_classes,
    )


def make_sonic_net(num_classes: int = 10, seed=0) -> MultiExitNetwork:
    """SONIC-style single-exit CNN, ~1.97M FLOPs at 3x32x32 input."""
    r = iter(spawn(seed, 5))
    backbone = [
        Conv2d(3, 8, kernel_size=5, padding=2, name="sonic.conv1", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
        Conv2d(8, 20, kernel_size=5, padding=2, name="sonic.conv2", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
        Conv2d(20, 24, kernel_size=3, padding=1, name="sonic.conv3", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
    ]
    head = [
        Flatten(),
        Linear(24 * 4 * 4, 128, name="sonic.fc1", rng=next(r)),
        ReLU(),
        Linear(128, num_classes, name="sonic.fc2", rng=next(r)),
    ]
    return _single_exit(backbone, head, "sonic_net", num_classes)


def make_sparse_net(num_classes: int = 10, seed=0) -> MultiExitNetwork:
    """SpArSe-NAS-style single-exit CNN, ~11.5M FLOPs at 3x32x32 input."""
    r = iter(spawn(seed, 4))
    backbone = [
        Conv2d(3, 32, kernel_size=3, padding=1, name="sparse.conv1", rng=next(r)),
        ReLU(),
        Conv2d(32, 32, kernel_size=3, padding=1, name="sparse.conv2", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
        Conv2d(32, 16, kernel_size=3, padding=1, name="sparse.conv3", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
    ]
    classifier = Linear(16 * 8 * 8, num_classes, name="sparse.fc1", rng=next(r))
    # Damp the classifier init: this wide, deep, normalization-free stack
    # produces logits with std ~3 under plain Xavier, and the resulting
    # saturated-softmax gradients collapse the ReLUs within a few SGD
    # steps.  A small head keeps the initial loss near log(K) so training
    # is stable at ordinary learning rates.
    classifier.weight.data *= 0.1
    head = [Flatten(), classifier]
    return _single_exit(backbone, head, "sparse_net", num_classes)


def make_lenet_cifar(num_classes: int = 10, seed=0) -> MultiExitNetwork:
    """Hand-designed small LeNet, ~0.24M FLOPs at 3x32x32 input."""
    r = iter(spawn(seed, 4))
    backbone = [
        Conv2d(3, 6, kernel_size=5, stride=2, padding=2, name="lenet.conv1", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
        Conv2d(6, 12, kernel_size=5, padding=2, name="lenet.conv2", rng=next(r)),
        ReLU(),
        MaxPool2d(2),
    ]
    head = [
        Flatten(),
        Linear(12 * 4 * 4, 64, name="lenet.fc1", rng=next(r)),
        ReLU(),
        Linear(64, num_classes, name="lenet.fc2", rng=next(r)),
    ]
    return _single_exit(backbone, head, "lenet_cifar", num_classes)
