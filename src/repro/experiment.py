"""Canonical configuration of the paper's evaluation (Section V-A).

Single source of truth for the experimental setup shared by the zoo, the
examples, and every benchmark:

* TI MSP432-class MCU at 1.5 mJ/MFLOP with 16 KB weight storage;
* a day-scale synthetic solar trace (NREL substitute, DESIGN.md §2);
* 500 events uniformly distributed over the trace;
* a 2 mJ capacitor at 80% charge efficiency;
* compression targets: 1.15M FLOPs and 16 KB (Fig. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.events import uniform_random_events
from repro.energy.storage import EnergyStorage
from repro.energy.traces import PowerTrace, solar_trace
from repro.intermittent.mcu import MCUSpec, MSP432
from repro.sim.profiles import InferenceProfile


@dataclass(frozen=True)
class PaperExperiment:
    """The evaluation environment of the paper, as reproduced here."""

    #: Compression targets (paper Fig. 4 caption).
    flops_target: float = 1.15e6
    size_target_kb: float = 16.0
    #: Number of events dropped on the trace (paper Section V-A).
    num_events: int = 500
    #: Solar trace parameters (see repro.energy.traces.solar_trace).
    trace_duration_s: float = 43_200.0
    trace_peak_mw: float = 0.027
    trace_seed: int = 5
    #: Event placement seed.
    event_seed: int = 9
    #: Energy storage.
    storage_capacity_mj: float = 2.0
    storage_efficiency: float = 0.8
    #: Target device.
    mcu: MCUSpec = MSP432

    def make_trace(self, seed: int = None) -> PowerTrace:
        """The solar harvesting trace used by all headline experiments."""
        return solar_trace(
            duration=self.trace_duration_s,
            peak_mw=self.trace_peak_mw,
            seed=self.trace_seed if seed is None else seed,
        )

    def make_events(self, trace: PowerTrace = None, seed: int = None) -> np.ndarray:
        """500 uniformly random event times over the trace."""
        duration = (trace or self.make_trace()).duration
        return uniform_random_events(
            self.num_events, duration, rng=self.event_seed if seed is None else seed
        )

    def make_storage(self) -> EnergyStorage:
        """A fresh capacitor at half charge."""
        return EnergyStorage(
            capacity_mj=self.storage_capacity_mj,
            efficiency=self.storage_efficiency,
            initial_mj=self.storage_capacity_mj / 2,
        )


#: Default experiment instance used across benchmarks and examples.
PAPER = PaperExperiment()

#: Canonical seed bank for multi-seed robustness sweeps.  Campaigns that
#: replicate cells over seeds draw a prefix of this tuple, so "seed 3 of
#: the bank" means the same trace/event randomness in every campaign,
#: every report, and every regression test.
SEED_BANK = (3, 5, 7, 11, 17, 23, 42, 97, 131, 257, 389, 641)


def seed_bank(n: int) -> list:
    """First ``n`` canonical sweep seeds (wraps by offsetting past the bank)."""
    if n <= len(SEED_BANK):
        return list(SEED_BANK[:n])
    extra = [SEED_BANK[i % len(SEED_BANK)] + 1000 * (i // len(SEED_BANK))
             for i in range(len(SEED_BANK), n)]
    return list(SEED_BANK) + extra


def reference_profile() -> InferenceProfile:
    """Paper-regime deployed multi-exit profile (no live network attached).

    The measured per-exit numbers of the compressed 3-exit LeNet in the
    paper's operating regime — shared by the examples and the fleet
    scenario registry so both simulate the same deployment without paying
    the zoo's train/search path.
    """
    return InferenceProfile(
        name="paper-multi-exit",
        exit_accuracies=[0.62, 0.70, 0.72],
        exit_energy_mj=[0.21, 0.84, 1.63],
        exit_flops=[0.14e6, 0.56e6, 1.09e6],
        incremental_energy_mj=[0.70, 0.85],
        incremental_flops=[0.47e6, 0.57e6],
    )


def sonic_profile() -> InferenceProfile:
    """SONIC-style single-exit deployment of a comparable network."""
    return InferenceProfile(
        name="sonic-single-exit",
        exit_accuracies=[0.75],
        exit_energy_mj=[3.0],
        exit_flops=[2.0e6],
        incremental_energy_mj=[],
        incremental_flops=[],
    )
