"""Cached reference artifacts: datasets, trained networks, searched specs.

Training numpy CNNs and running the RL compression search take minutes, so
the zoo trains each reference artifact once and caches it under
``.artifacts/`` (override with the ``REPRO_ARTIFACTS`` environment
variable).  Everything is deterministic in the seeds, so a cache delete
reproduces identical artifacts.

The dataset itself is regenerated on the fly (cheap and deterministic);
only network weights, measured accuracies, and searched compression specs
are cached.
"""

from __future__ import annotations

import json
import os

from repro.compress.spec import CompressionSpec
from repro.data.dataset import DatasetSplits
from repro.data.synthetic import SyntheticConfig, make_cifar_like
from repro.errors import ConfigError
from repro.experiment import PAPER, PaperExperiment
from repro.models import (
    make_lenet_cifar,
    make_multi_exit_lenet,
    make_sonic_net,
    make_sparse_net,
)
from repro.nn.io import load_weights, save_weights
from repro.nn.network import MultiExitNetwork
from repro.nn.trainer import TrainConfig, Trainer, evaluate_exit_accuracies
from repro.rl.env import CompressionObjective, LayerwiseCompressionEnv
from repro.rl.search import NonuniformSearch, SearchConfig

#: Difficulty calibrated so the multi-exit LeNet lands in the paper's
#: accuracy regime (~0.65-0.75 per exit) with a clear early-exit gap.
DATASET_CONFIG = SyntheticConfig(
    noise_std=2.0, grating_strength=0.5, occlusion_prob=0.5, max_shift=5
)
DATASET_SEED = 7

#: Heuristic warm-start spec in the paper's Fig. 4 layout: convolutions at
#: high bitwidths with moderate pruning (they dominate FLOPs), the two
#: large FC branch layers at 1 bit (they dominate weight size).  Meets the
#: 1.15M-FLOP / 16 KB budget (1.076M / 15.9 KB); the search seeds its
#: replay with this trajectory and explores from there.
HEURISTIC_SPEC_LAYOUT = {
    "Conv1": (0.66, 8, 8),
    "ConvB1": (0.5, 8, 8),
    "Conv2": (0.55, 6, 8),
    "ConvB2": (0.6, 8, 8),
    "Conv3": (0.6, 6, 8),
    "Conv4": (0.55, 6, 8),
    "FC-B1": (0.6, 4, 8),
    "FC-B21": (0.45, 1, 8),
    "FC-B22": (0.6, 4, 8),
    "FC-B31": (0.45, 1, 8),
    "FC-B32": (0.6, 4, 8),
}


def heuristic_spec() -> CompressionSpec:
    """The warm-start spec as a :class:`CompressionSpec`."""
    from repro.compress.spec import LayerCompression

    return CompressionSpec(
        {name: LayerCompression(*knobs) for name, knobs in HEURISTIC_SPEC_LAYOUT.items()}
    )


_TRAIN_RECIPES = {
    "multi_exit_lenet": dict(maker=make_multi_exit_lenet, epochs=10, train_size=4000, lr=0.01),
    "sonic_net": dict(maker=make_sonic_net, epochs=10, train_size=4000, lr=0.01),
    "sparse_net": dict(maker=make_sparse_net, epochs=6, train_size=2500, lr=0.003),
    "lenet_cifar": dict(maker=make_lenet_cifar, epochs=10, train_size=4000, lr=0.01),
}


def artifact_dir() -> str:
    """Cache directory (created on demand)."""
    root = os.environ.get("REPRO_ARTIFACTS")
    if not root:
        root = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), ".artifacts")
    os.makedirs(root, exist_ok=True)
    return root


def get_dataset(seed: int = DATASET_SEED, config: SyntheticConfig = None) -> DatasetSplits:
    """The calibrated synthetic CIFAR-10 substitute (deterministic)."""
    return make_cifar_like(
        num_train=4000,
        num_val=1000,
        num_test=1000,
        config=config or DATASET_CONFIG,
        seed=seed,
    )


def _meta_path(name: str) -> str:
    return os.path.join(artifact_dir(), f"{name}.meta.json")


def _weights_path(name: str) -> str:
    return os.path.join(artifact_dir(), f"{name}.weights.npz")


def get_trained_network(name: str, verbose: bool = False):
    """A trained reference network plus its measured per-exit accuracies.

    ``name`` is one of ``multi_exit_lenet``, ``sonic_net``, ``sparse_net``,
    ``lenet_cifar``.  Returns ``(net, test_accuracies)``.
    """
    if name not in _TRAIN_RECIPES:
        raise ConfigError(f"unknown network {name!r}; choose from {sorted(_TRAIN_RECIPES)}")
    recipe = _TRAIN_RECIPES[name]
    net: MultiExitNetwork = recipe["maker"](seed=3)
    weights_file, meta_file = _weights_path(name), _meta_path(name)
    if os.path.exists(weights_file) and os.path.exists(meta_file):
        load_weights(net, weights_file)
        with open(meta_file) as fh:
            meta = json.load(fh)
        return net, meta["test_accuracies"]
    splits = get_dataset()
    train_size = min(recipe["train_size"], len(splits.train))
    config = TrainConfig(
        epochs=recipe["epochs"],
        batch_size=64,
        lr=recipe["lr"],
        seed=11,
        verbose=verbose,
    )
    Trainer(config).fit(
        net,
        splits.train.x[:train_size],
        splits.train.y[:train_size],
        splits.val.x,
        splits.val.y,
    )
    test_accuracies = evaluate_exit_accuracies(net, splits.test.x, splits.test.y)
    save_weights(net, weights_file)
    with open(meta_file, "w") as fh:
        json.dump(
            {
                "name": name,
                "epochs": recipe["epochs"],
                "train_size": train_size,
                "test_accuracies": test_accuracies,
            },
            fh,
            indent=2,
        )
    return net, test_accuracies


#: Per-process cache of built profiles: weights load once per worker even
#: when a fleet simulates hundreds of devices sharing a deployment.
_PROFILE_CACHE: dict = {}


def get_profile(name: str = "multi_exit_lenet", mcu=None, attach_net: bool = False):
    """A cached :class:`~repro.sim.profiles.InferenceProfile` for a zoo net.

    Builds the profile from the trained reference network and its measured
    test accuracies, then memoizes it per process.  ``attach_net=False``
    (the default) keeps the profile light for pickling across
    ``multiprocessing`` boundaries — fleet workers run profile-mode
    simulation, which never needs live weights.
    """
    from repro.sim.profiles import InferenceProfile

    mcu = mcu or PAPER.mcu
    key = (name, mcu, attach_net)
    if key not in _PROFILE_CACHE:
        net, accs = get_trained_network(name)
        _PROFILE_CACHE[key] = InferenceProfile.from_network(
            net, accs, mcu, name=name, attach_net=attach_net
        )
    return _PROFILE_CACHE[key]


def get_nonuniform_spec(
    experiment: PaperExperiment = PAPER,
    episodes: int = 16,
    seed: int = 0,
    finetune_epochs: int = 1,
    verbose: bool = False,
):
    """The searched nonuniform compression spec for the multi-exit LeNet.

    Runs the two-agent DDPG search once (minutes) and caches the winning
    spec plus its evaluation summary.  Returns ``(spec, summary_dict)``.
    """
    cache_name = f"nonuniform_spec_e{episodes}_s{seed}_ft{finetune_epochs}_ws"
    spec_file = os.path.join(artifact_dir(), f"{cache_name}.json")
    meta_file = _meta_path(cache_name)
    if os.path.exists(spec_file) and os.path.exists(meta_file):
        with open(meta_file) as fh:
            return CompressionSpec.from_json(spec_file), json.load(fh)
    net, _ = get_trained_network("multi_exit_lenet")
    splits = get_dataset()
    trace = experiment.make_trace()
    events = experiment.make_events(trace)
    objective = CompressionObjective(
        net=net,
        val_data=splits.val,
        trace=trace,
        events=events,
        flops_target=experiment.flops_target,
        size_target_kb=experiment.size_target_kb,
        mcu=experiment.mcu,
        storage_capacity_mj=experiment.storage_capacity_mj,
        storage_efficiency=experiment.storage_efficiency,
        train_data=splits.train,
        finetune_epochs=finetune_epochs,
    )
    env = LayerwiseCompressionEnv(objective)
    search = NonuniformSearch(
        env,
        SearchConfig(episodes=episodes, seed=seed, verbose=verbose),
        warm_start_specs=[heuristic_spec()],
    )
    result = search.run()
    best = result.best
    summary = {
        "racc": best.racc,
        "accuracies": best.accuracies,
        "exit_fractions": best.exit_fractions,
        "fmodel_flops": best.fmodel_flops,
        "size_kb": best.size_kb,
        "feasible": best.feasible,
        "episodes": episodes,
    }
    best.spec.to_json(spec_file)
    with open(meta_file, "w") as fh:
        json.dump(summary, fh, indent=2)
    return best.spec, summary


def get_deployed_model(
    experiment: PaperExperiment = PAPER,
    episodes: int = 16,
    seed: int = 0,
    finetune_epochs: int = 8,
    verbose: bool = False,
):
    """The fully deployed network: searched spec, applied, and fine-tuned.

    Compresses the trained multi-exit LeNet with the cached RL-searched
    spec and runs the post-compression fine-tune (see
    :mod:`repro.compress.finetune`).  The fine-tuned weights are cached.
    Returns ``(CompressedModel, test_accuracies)``.
    """
    from repro.compress import Compressor, FinetuneConfig, finetune_compressed
    from repro.nn.io import load_state_dict, state_dict
    import numpy as np

    searched_spec, _ = get_nonuniform_spec(
        experiment, episodes=episodes, seed=seed, verbose=verbose
    )
    net, _ = get_trained_network("multi_exit_lenet")
    splits = get_dataset()
    cache_name = f"deployed_e{episodes}_s{seed}_f{finetune_epochs}_v2"
    weights_file = os.path.join(artifact_dir(), f"{cache_name}.weights.npz")
    meta_file = _meta_path(cache_name)
    spec_file = os.path.join(artifact_dir(), f"{cache_name}.spec.json")
    if os.path.exists(weights_file) and os.path.exists(meta_file) and os.path.exists(spec_file):
        spec = CompressionSpec.from_json(spec_file)
        model = Compressor().apply(net, spec, calibration_x=splits.val.x[:64])
        with np.load(weights_file) as archive:
            load_state_dict(model.net, dict(archive.items()))
        model.apply_masks()
        with open(meta_file) as fh:
            return model, json.load(fh)["test_accuracies"]

    # Finalist re-evaluation: the in-loop 1-epoch fine-tune ranks noisily
    # at MCU compression ratios, so the search winner and the heuristic
    # warm-start both get the full fine-tune; the better validator ships.
    finalists = [("searched", searched_spec)]
    if searched_spec.to_dict() != heuristic_spec().to_dict():
        finalists.append(("heuristic", heuristic_spec()))
    best = None
    for label, spec in finalists:
        candidate = Compressor().apply(net, spec, calibration_x=splits.val.x[:64])
        finetune_compressed(
            candidate,
            splits.train.x,
            splits.train.y,
            FinetuneConfig(epochs=finetune_epochs, verbose=verbose),
            val_x=splits.val.x,
            val_y=splits.val.y,
        )
        from repro.nn.trainer import evaluate_exit_accuracies

        val_accs = evaluate_exit_accuracies(candidate.net, splits.val.x, splits.val.y)
        score = float(np.mean(val_accs))
        if verbose:
            print(f"finalist {label}: val accs {[f'{a:.3f}' for a in val_accs]}")
        if best is None or score > best[0]:
            best = (score, label, spec, candidate)
    _, label, spec, model = best
    from repro.nn.trainer import evaluate_exit_accuracies

    accs = evaluate_exit_accuracies(model.net, splits.test.x, splits.test.y)
    np.savez(weights_file, **state_dict(model.net))
    spec.to_json(spec_file)
    with open(meta_file, "w") as fh:
        json.dump(
            {"name": cache_name, "winner": label, "test_accuracies": accs}, fh, indent=2
        )
    return model, accs
