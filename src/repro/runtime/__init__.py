"""Runtime exit selection and incremental inference (paper Section IV)."""

from repro.runtime.state import RuntimeState, RuntimeStateBatch
from repro.runtime.qlearning import QTable, discretize
from repro.runtime.batched import batch_controllers, batchable
from repro.runtime.policies import (
    ExitPolicy,
    GreedyEnergyPolicy,
    FixedExitPolicy,
    OraclePolicy,
    StaticLUTPolicy,
)
from repro.runtime.incremental import IncrementalDecider, NeverContinue
from repro.runtime.controller import (
    CONTROLLER_KINDS,
    CONTROLLER_PRESETS,
    Controller,
    QLearningController,
    StaticController,
    controller_preset,
    make_controller,
    register_controller_preset,
)

__all__ = [
    "RuntimeState",
    "RuntimeStateBatch",
    "QTable",
    "discretize",
    "batch_controllers",
    "batchable",
    "ExitPolicy",
    "GreedyEnergyPolicy",
    "FixedExitPolicy",
    "OraclePolicy",
    "StaticLUTPolicy",
    "IncrementalDecider",
    "NeverContinue",
    "CONTROLLER_KINDS",
    "CONTROLLER_PRESETS",
    "Controller",
    "QLearningController",
    "StaticController",
    "controller_preset",
    "make_controller",
    "register_controller_preset",
]
