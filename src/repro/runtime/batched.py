"""Batched (device-axis) twins of the runtime controllers.

The batched fleet engine (:mod:`repro.sim.batch`) advances N devices in
lockstep and needs each controller family to answer "which exit?" for a
whole *vector* of devices at once.  This module provides that protocol:

* :func:`batch_controllers` partitions per-device :class:`Controller`
  instances into homogeneous groups (fixed / greedy / static-LUT /
  Q-learning) and wraps each in a group object exposing
  ``select_exit_batch`` / ``report_event_batch`` / ``end_episode_batch``;
* static families vectorize trivially (their decision is arithmetic over
  the state columns);
* :class:`QLearningBatch` stacks the per-device Q tables into one
  ``(devices, E, P, actions)`` array, applies the Eq. 16 update with fancy
  indexing (each device touches only its own slice, so scatter writes
  cannot collide), and consumes exploration variates through a
  :class:`~repro.utils.rng.DrawBatch` over the per-device generators;
* :func:`batch_continue_rules` does the same for the *second* runtime
  decision: threshold rules vectorize to arithmetic
  (:class:`ThresholdRuleBatch`), learned rules stack their continue/stop
  Q-tables and replay the scalar trajectory-credit pass
  (:class:`LearnedRuleBatch`); devices with incremental inference off
  (:class:`~repro.runtime.incremental.NeverContinue`) skip the continue
  loop entirely.

Bit-identity contract: every group replicates the scalar controller's
arithmetic operation-for-operation and consumes per-device random streams
in the scalar call order, so a batched decision sequence is exactly the
per-device one (see the :mod:`repro.sim.batch` module docstring).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.runtime.controller import Controller, QLearningController, StaticController
from repro.runtime.incremental import (
    CONTINUE,
    IncrementalDecider,
    NeverContinue,
    ThresholdContinue,
)
from repro.runtime.policies import (
    FixedExitPolicy,
    GreedyEnergyPolicy,
    StaticLUTPolicy,
)
from repro.runtime.state import RuntimeStateBatch
from repro.utils.rng import DrawBatch


def discretize_batch(values: np.ndarray, num_bins: int) -> np.ndarray:
    """Vectorized :func:`repro.runtime.qlearning.discretize` over [0, 1].

    Matches the scalar ``int(min(nb - 1, max(0, int(frac * nb))))`` exactly
    for the clamped-nonnegative fractions the runtime produces (``astype``
    truncates toward zero just like ``int()``).
    """
    # minimum/maximum ufuncs, not np.clip: same result, and np.clip's
    # dispatch overhead is measurable at this call rate.
    raw = (values * np.float64(num_bins)).astype(np.int64)
    return np.minimum(num_bins - 1, np.maximum(0, raw))


class BatchedControllerGroup:
    """One homogeneous slice of a fleet's controllers.

    ``rows`` are the engine device rows this group owns; every ``idx``
    argument below must be a subset of them (the engine guarantees it).

    ``always_valid`` advertises that ``select_exit_batch`` can only return
    in-range exits (never ``-1``), letting the engine skip its validity
    mask; ``wants_rewards`` lets it skip building the reward vector for
    non-learning groups.
    """

    always_valid = False
    wants_rewards = False

    def __init__(self, num_rows: int, rows, controllers, exit_cost_matrix):
        self.rows = np.asarray(rows, dtype=np.int64)
        self.controllers = list(controllers)
        self._cost = exit_cost_matrix
        # Engine-row -> group-local row translation.
        self._local = np.full(num_rows, -1, dtype=np.int64)
        self._local[self.rows] = np.arange(len(self.rows), dtype=np.int64)

    def select_exit_batch(self, idx: np.ndarray, state: RuntimeStateBatch) -> np.ndarray:
        raise NotImplementedError

    def report_event_batch(self, idx: np.ndarray, rewards: np.ndarray) -> None:
        """Reward feedback (0/1 realized correctness; 0 for a miss)."""

    def end_episode_batch(self, idx: np.ndarray) -> None:
        """Episode boundary for the devices in ``idx``."""


class FixedBatch(BatchedControllerGroup):
    """Vectorized :class:`FixedExitPolicy`: fixed index, skip if short."""

    def __init__(self, num_rows, rows, controllers, exit_cost_matrix):
        super().__init__(num_rows, rows, controllers, exit_cost_matrix)
        self._exit_index = np.array(
            [c.policy.exit_index for c in controllers], dtype=np.int64
        )
        # The scalar path crashes (IndexError) on an exit index past the
        # device's profile; silently hitting the +inf padding here would
        # turn that loud misconfiguration into a device that misses every
        # event.  Absent exits are exactly the +inf-padded cells.
        width = exit_cost_matrix.shape[1]
        probe = exit_cost_matrix[self.rows, np.minimum(self._exit_index, width - 1)]
        bad = (self._exit_index >= width) | np.isinf(probe)
        if bad.any():
            offenders = [
                (int(self.rows[i]), int(self._exit_index[i]))
                for i in np.nonzero(bad)[0].tolist()
            ]
            raise ConfigError(
                "fixed exit_index beyond the device's profile exits for "
                f"(device row, exit_index): {offenders}"
            )

    def select_exit_batch(self, idx, state):
        e = self._exit_index[self._local[idx]]
        cost = self._cost[idx, e]
        return np.where(state.energy_mj[idx] >= cost, e, -1)


class GreedyBatch(BatchedControllerGroup):
    """Vectorized :class:`GreedyEnergyPolicy`: deepest exit within budget."""

    def __init__(self, num_rows, rows, controllers, exit_cost_matrix):
        super().__init__(num_rows, rows, controllers, exit_cost_matrix)
        self._reserve = np.array(
            [c.policy.reserve_fraction for c in controllers], dtype=np.float64
        )

    def select_exit_batch(self, idx, state):
        budget = state.energy_mj[idx] - self._reserve[self._local[idx]] * state.capacity_mj[idx]
        affordable = self._cost[idx] <= budget[:, None]  # padding is +inf -> False
        any_ok = affordable.any(axis=1)
        deepest = affordable.shape[1] - 1 - np.argmax(affordable[:, ::-1], axis=1)
        return np.where(any_ok, deepest, -1)


class LUTBatch(BatchedControllerGroup):
    """Vectorized :class:`StaticLUTPolicy`: frozen energy-level tables."""

    def __init__(self, num_rows, rows, controllers, exit_cost_matrix):
        super().__init__(num_rows, rows, controllers, exit_cost_matrix)
        levels = {c.policy.num_levels for c in controllers}
        if len(levels) != 1:
            raise ConfigError("one LUT group must share num_levels")
        self._num_levels = levels.pop()
        self._tables = np.stack([c.policy.table for c in controllers])
        self._capacity = np.array(
            [c.policy.capacity_mj for c in controllers], dtype=np.float64
        )

    def select_exit_batch(self, idx, state):
        loc = self._local[idx]
        energy = state.energy_mj[idx]
        frac = energy / self._capacity[loc]
        level = discretize_batch(frac, self._num_levels)
        choice = self._tables[loc, level].copy()
        # Bin-edge guard, unrolled over the (small) exit count: step down
        # while the chosen exit is unaffordable, exactly like the scalar
        # while-loop.
        for _ in range(self._cost.shape[1]):
            probe = np.where(choice >= 0, choice, 0)
            bad = (choice >= 0) & (self._cost[idx, probe] > energy)
            if not bad.any():
                break
            choice = choice - bad
        return choice


class QLearningBatch(BatchedControllerGroup):
    """Stacked per-device Q tables with pooled exploration draws.

    State evolution (pending transition, reward latch, epsilon anneal) is
    kept as columns so one fancy-indexed pass applies the paper's Eq. 16
    across every device that resolved an event this step.
    """

    always_valid = True  # epsilon-greedy actions are always in [0, num_exits)
    wants_rewards = True

    def __init__(self, num_rows, rows, controllers, exit_cost_matrix):
        super().__init__(num_rows, rows, controllers, exit_cost_matrix)
        shapes = {c.qtable.table.shape for c in controllers}
        if len(shapes) != 1:
            raise ConfigError("one Q-learning group must share table shape")
        (self._energy_bins, self._power_bins, self._num_actions) = shapes.pop()
        m = len(controllers)
        self._covers_all = m == num_rows
        self._ebins_f = np.float64(self._energy_bins)
        self._pbins_f = np.float64(self._power_bins)
        self._tables = np.stack([c.qtable.table for c in controllers])
        self._alpha = np.array([c.qtable.alpha for c in controllers])
        self._gamma = np.array([c.qtable.gamma for c in controllers])
        self._epsilon = np.array([c.qtable.epsilon for c in controllers])
        self._eps_decay = np.array([c.qtable.epsilon_decay for c in controllers])
        self._eps_min = np.array([c.qtable.epsilon_min for c in controllers])
        self._draws = DrawBatch([c.qtable._rng for c in controllers])
        self._pend_e = np.zeros(m, dtype=np.int64)
        self._pend_p = np.zeros(m, dtype=np.int64)
        self._pend_a = np.zeros(m, dtype=np.int64)
        self._has_pending = np.zeros(m, dtype=bool)
        self._reward = np.zeros(m, dtype=np.float64)
        self._has_reward = np.zeros(m, dtype=bool)

    def _apply_update(self, loc: np.ndarray, bootstrap: np.ndarray) -> None:
        """Eq. 16 for the group-local rows ``loc`` with given bootstraps."""
        e, p, a = self._pend_e[loc], self._pend_p[loc], self._pend_a[loc]
        q = self._tables[loc, e, p, a]
        td = self._reward[loc] + self._gamma[loc] * bootstrap - q
        self._tables[loc, e, p, a] = q + self._alpha[loc] * td

    def select_exit_batch(self, idx, state):
        # When the group owns the whole fleet and every device is stepping,
        # engine rows ARE group rows — skip the translation/state gathers.
        if self._covers_all and len(idx) == len(self.rows):
            loc = idx
            view = None
        else:
            loc = self._local[idx]
            view = idx
        # Unclamped ratio -> bin shortcut: level <= capacity and the
        # windowed mean power <= the trace peak by construction, so the
        # scalar path's [0, 1] clamp only matters at the exact edges —
        # where the bin clamp below (and astype's truncation toward zero
        # for sub-epsilon negatives) lands in the same bin regardless.
        ef = state.energy_ratio(view)
        cf = state.charge_ratio(view)
        e = np.minimum(
            self._energy_bins - 1,
            np.maximum(0, (ef * self._ebins_f).astype(np.int64)),
        )
        p = np.minimum(
            self._power_bins - 1,
            np.maximum(0, (cf * self._pbins_f).astype(np.int64)),
        )
        # Close the previous transition: bootstrap on the state observed
        # now.  After the first resolved event every selecting device has a
        # latched (transition, reward) pair, so the all-true fast path is
        # the common one.
        upd = self._has_pending[loc] & self._has_reward[loc]
        if upd.all():
            if view is None:
                # Whole group stepping: pending columns used directly, no
                # translation gathers.
                pe, pp, pa = self._pend_e, self._pend_p, self._pend_a
                boot = self._tables[loc, e, p].max(axis=-1)
                q = self._tables[loc, pe, pp, pa]
                td = self._reward + self._gamma * boot - q
                self._tables[loc, pe, pp, pa] = q + self._alpha * td
                self._has_pending[:] = False
                self._has_reward[:] = False
            else:
                self._apply_update(loc, self._tables[loc, e, p].max(axis=-1))
                self._has_pending[loc] = False
                self._has_reward[loc] = False
        elif upd.any():
            ul = loc[upd]
            self._apply_update(ul, self._tables[ul, e[upd], p[upd]].max(axis=-1))
            self._has_pending[ul] = False
            self._has_reward[ul] = False
        r = self._draws.random(loc)
        explore = r < (self._epsilon if view is None else self._epsilon[loc])
        # Greedy argmax for every device in one gather (reading the
        # just-updated table, like the scalar update-then-select order);
        # explorers then overwrite theirs with the pooled integer draw.
        action = self._tables[loc, e, p].argmax(axis=-1)
        if explore.any():
            action[explore] = self._draws.integers(self._num_actions, loc[explore])
        if view is None:
            self._pend_e[:] = e
            self._pend_p[:] = p
            self._pend_a[:] = action
            self._has_pending[:] = True
            self._has_reward[:] = False
        else:
            self._pend_e[loc] = e
            self._pend_p[loc] = p
            self._pend_a[loc] = action
            self._has_pending[loc] = True
            self._has_reward[loc] = False
        return action

    def report_event_batch(self, idx, rewards):
        # The engine contract mirrors the simulator's: a report always
        # follows select_exit_batch on the same devices, so every reported
        # device has a pending transition (select just latched it) and the
        # scalar path's pending-is-None guard can never fire here.
        if self._covers_all and len(idx) == len(self.rows):
            self._reward[:] = rewards
            self._has_reward[:] = True
        else:
            loc = self._local[idx]
            self._reward[loc] = rewards
            self._has_reward[loc] = True

    def end_episode_batch(self, idx):
        loc = self._local[idx]
        fin = self._has_pending[loc] & self._has_reward[loc]
        if fin.any():
            fl = loc[fin]
            # Terminal transition: gamma * 0.0 bootstraps, like the scalar
            # update(..., next_state=None).
            self._apply_update(fl, np.zeros(len(fl)))
        self._has_pending[loc] = False
        self._has_reward[loc] = False
        self._epsilon[loc] = np.maximum(
            self._eps_min[loc], self._epsilon[loc] * self._eps_decay[loc]
        )


# --------------------------------------------------------------------- #
# Continue-rule groups: the second runtime decision, across the device axis
# --------------------------------------------------------------------- #

class BatchedRuleGroup:
    """One homogeneous slice of a fleet's continue rules.

    The engine's incremental-inference loop asks, for a vector of devices
    that just produced a result, "continue to the next exit?".  A rule
    group answers for the rows it owns with the scalar rule's arithmetic
    applied elementwise; a learned group additionally records the
    per-device decision trajectory the scalar
    :meth:`~repro.runtime.controller.Controller.decide_continue` would
    have appended, and replays the scalar
    :meth:`~repro.runtime.incremental.IncrementalDecider.observe_trajectory`
    update chain when the event's reward arrives.
    """

    #: Does :meth:`decide_batch` consume RNG / record trajectories?
    learns = False

    def __init__(self, num_rows: int, rows, rules):
        self.rows = np.asarray(rows, dtype=np.int64)
        self.rules = list(rules)
        self._local = np.full(num_rows, -1, dtype=np.int64)
        self._local[self.rows] = np.arange(len(self.rows), dtype=np.int64)

    def decide_batch(
        self,
        idx: np.ndarray,
        entropy: np.ndarray,
        energy_fraction: np.ndarray,
        affordable: np.ndarray,
    ) -> np.ndarray:
        """Continue mask for the devices in ``idx`` (True = CONTINUE)."""
        raise NotImplementedError

    def observe_batch(self, idx: np.ndarray, rewards: np.ndarray) -> None:
        """Event resolved: credit the recorded trajectories (learning)."""

    def end_episode_batch(self, idx: np.ndarray) -> None:
        """Episode boundary for the devices in ``idx``."""


class ThresholdRuleBatch(BatchedRuleGroup):
    """Vectorized :class:`ThresholdContinue`: continue while entropy is
    high and the marginal inference is affordable.  Stateless, no RNG."""

    def __init__(self, num_rows, rows, rules):
        super().__init__(num_rows, rows, rules)
        self._threshold = np.array(
            [r.entropy_threshold for r in rules], dtype=np.float64
        )

    def decide_batch(self, idx, entropy, energy_fraction, affordable):
        if not affordable.any():
            # Draw-free STOP for every lane: skip the threshold gather —
            # with the widened intermittent lanes the engine hands the
            # continue loop larger, often fully-exhausted vectors.
            return np.zeros(len(idx), dtype=bool)
        return affordable & (entropy > self._threshold[self._local[idx]])


class LearnedRuleBatch(BatchedRuleGroup):
    """Stacked :class:`IncrementalDecider` Q-tables with pooled draws.

    Decision order per device replicates the scalar path exactly: an
    unaffordable marginal is a draw-free STOP, an affordable one consumes
    one uniform (plus one integer when exploring) from the rule's own
    generator through :class:`~repro.utils.rng.DrawBatch`; every decision
    records ``(state bins, action)`` for the trajectory credit pass.
    ``decay_rows`` are the engine rows whose *exit* controller is
    Q-learning — the scalar path only anneals a rule's epsilon from
    :meth:`QLearningController.end_episode`, so a static-controller
    device's learned rule never decays, and the batched twin must not
    either.
    """

    learns = True

    def __init__(self, num_rows, rows, rules, max_steps: int, decay_rows):
        super().__init__(num_rows, rows, rules)
        shapes = {r.qtable.table.shape for r in rules}
        if len(shapes) != 1:
            raise ConfigError("one learned-rule group must share table shape")
        self._conf_bins, self._energy_bins, _ = shapes.pop()
        m = len(rules)
        self._tables = np.stack([r.qtable.table for r in rules])
        self._alpha = np.array([r.qtable.alpha for r in rules])
        self._gamma = np.array([r.qtable.gamma for r in rules])
        self._epsilon = np.array([r.qtable.epsilon for r in rules])
        self._eps_decay = np.array([r.qtable.epsilon_decay for r in rules])
        self._eps_min = np.array([r.qtable.epsilon_min for r in rules])
        self._draws = DrawBatch([r.qtable._rng for r in rules])
        self._decay = np.zeros(m, dtype=bool)
        self._decay[self._local[np.asarray(decay_rows, dtype=np.int64)]] = True
        # Per-device decision trajectories for the current event, as
        # (step, device) columns; ``max_steps`` bounds the continue chain
        # (at most num_exits - 1 decisions per event).
        steps = max(int(max_steps), 1)
        self._traj_c = np.zeros((steps, m), dtype=np.int64)
        self._traj_e = np.zeros((steps, m), dtype=np.int64)
        self._traj_a = np.zeros((steps, m), dtype=np.int64)
        self._traj_len = np.zeros(m, dtype=np.int64)

    def decide_batch(self, idx, entropy, energy_fraction, affordable):
        loc = self._local[idx]
        c = discretize_batch(entropy, self._conf_bins)
        e = discretize_batch(energy_fraction, self._energy_bins)
        action = np.zeros(len(loc), dtype=np.int64)  # STOP unless selected
        if affordable.any():
            al = loc[affordable]
            r = self._draws.random(al)
            explore = r < self._epsilon[al]
            chosen = self._tables[al, c[affordable], e[affordable]].argmax(
                axis=-1
            )
            if explore.any():
                chosen[explore] = self._draws.integers(2, al[explore])
            action[affordable] = chosen
        step = self._traj_len[loc]
        self._traj_c[step, loc] = c
        self._traj_e[step, loc] = e
        self._traj_a[step, loc] = action
        self._traj_len[loc] = step + 1
        return action == CONTINUE

    def observe_batch(self, idx, rewards):
        loc = self._local[idx]
        length = self._traj_len[loc]
        max_len = int(length.max()) if len(length) else 0
        if not max_len:
            return
        # Intermediate transitions earn 0 and bootstrap on the next
        # decision state; step order is preserved per device because
        # update i can touch the cells update i+1 bootstraps from.
        for i in range(max_len - 1):
            has_next = length > i + 1
            if not has_next.any():
                continue
            ml = loc[has_next]
            boot = self._tables[
                ml, self._traj_c[i + 1, ml], self._traj_e[i + 1, ml]
            ].max(axis=-1)
            c, e, a = self._traj_c[i, ml], self._traj_e[i, ml], self._traj_a[i, ml]
            q = self._tables[ml, c, e, a]
            td = self._gamma[ml] * boot - q
            self._tables[ml, c, e, a] = q + self._alpha[ml] * td
        # Final decision earns the event's realized correctness
        # (terminal: gamma * 0 bootstrap, like the scalar next_state=None).
        final = length > 0
        fl = loc[final]
        li = length[final] - 1
        c, e, a = self._traj_c[li, fl], self._traj_e[li, fl], self._traj_a[li, fl]
        q = self._tables[fl, c, e, a]
        td = rewards[final] - q
        self._tables[fl, c, e, a] = q + self._alpha[fl] * td
        self._traj_len[loc] = 0

    def end_episode_batch(self, idx):
        loc = self._local[idx]
        self._traj_len[loc] = 0
        dec = loc[self._decay[loc]]
        if len(dec):
            self._epsilon[dec] = np.maximum(
                self._eps_min[dec], self._epsilon[dec] * self._eps_decay[dec]
            )


def _rule_key(rule):
    """Rule-batching key, or None when the rule cannot be batched."""
    if isinstance(rule, NeverContinue):
        return ("never",)
    if isinstance(rule, ThresholdContinue):
        return ("threshold",)
    if isinstance(rule, IncrementalDecider):
        return ("learned",) + rule.qtable.table.shape
    return None


def rule_batchable(rule) -> bool:
    """Can this continue rule run under the lockstep engine?"""
    return _rule_key(rule) is not None


def batch_continue_rules(controllers, max_steps: int, rows=None):
    """Partition per-device continue rules into batched rule groups.

    Returns ``(groups, group_of)``; rows whose rule is
    :class:`NeverContinue` get ``group_of[row] == -1`` (the engine skips
    the continue loop for them entirely — the scalar rule is a draw-free,
    state-free STOP, so skipping is bit-identical).  Unbatchable rules are
    a :class:`ConfigError` (callers pre-filter with :func:`batchable`).
    ``rows`` restricts grouping to a subset of engine rows (the batched
    engine excludes intermittent-execution devices, whose controllers are
    never consulted).
    """
    num_rows = len(controllers)
    row_iter = range(num_rows) if rows is None else [int(r) for r in rows]
    buckets: dict = {}
    for row in row_iter:
        rule = controllers[row].continue_rule
        key = _rule_key(rule)
        if key is None:
            raise ConfigError(
                f"continue rule {type(rule).__name__} cannot be batched"
            )
        if key == ("never",):
            continue
        buckets.setdefault(key, []).append(row)
    groups = []
    group_of = np.full(num_rows, -1, dtype=np.int64)
    for key, members in buckets.items():
        rules = [controllers[r].continue_rule for r in members]
        if key[0] == "threshold":
            group = ThresholdRuleBatch(num_rows, members, rules)
        else:
            decay_rows = [
                r for r in members
                if isinstance(controllers[r], QLearningController)
            ]
            group = LearnedRuleBatch(num_rows, members, rules, max_steps, decay_rows)
        groups.append(group)
        group_of[members] = len(groups) - 1
    return groups, group_of


def _group_key(controller: Controller):
    """Batching key, or None when the controller cannot be batched."""
    rule = controller.continue_rule
    if _rule_key(rule) is None:
        return None
    if isinstance(controller, QLearningController):
        if (
            isinstance(rule, IncrementalDecider)
            and rule.qtable._rng is controller.qtable._rng
        ):
            # Shared generator state between the two tables: the scalar
            # pools would interleave refills in a call-order the batched
            # per-table DrawBatches cannot replicate.
            return None
        return ("qlearning",) + controller.qtable.table.shape
    if isinstance(controller, StaticController):
        policy = controller.policy
        if isinstance(policy, FixedExitPolicy):
            return ("fixed",)
        if isinstance(policy, GreedyEnergyPolicy):
            return ("greedy",)
        if isinstance(policy, StaticLUTPolicy):
            return ("lut", policy.num_levels)
    return None


_GROUP_CLASSES = {"qlearning": QLearningBatch, "fixed": FixedBatch,
                  "greedy": GreedyBatch, "lut": LUTBatch}


def batchable(controller: Controller) -> bool:
    """Can this controller instance run under the lockstep engine?"""
    return _group_key(controller) is not None


def batch_controllers(controllers, exit_cost_matrix, rows=None):
    """Partition per-device controllers into batched groups.

    ``controllers`` is one :class:`Controller` per engine row; the returned
    pair is ``(groups, group_of)`` where ``group_of[row]`` indexes into
    ``groups``.  Raises :class:`ConfigError` for controller families the
    lockstep engine cannot express (callers pre-filter with
    :func:`batchable`).  ``rows`` restricts grouping to a subset of engine
    rows; the rest get ``group_of == -1`` (the engine leaves
    intermittent-execution devices ungrouped — their controller is never
    consulted, exactly like the scalar SONIC path).
    """
    num_rows = len(controllers)
    row_iter = range(num_rows) if rows is None else [int(r) for r in rows]
    buckets: dict = {}
    for row in row_iter:
        key = _group_key(controllers[row])
        if key is None:
            raise ConfigError(
                f"controller {type(controllers[row]).__name__} cannot be batched"
            )
        buckets.setdefault(key, []).append(row)
    groups = []
    group_of = np.full(num_rows, -1, dtype=np.int64)
    for key, members in buckets.items():
        cls = _GROUP_CLASSES[key[0]]
        groups.append(
            cls(num_rows, members, [controllers[r] for r in members], exit_cost_matrix)
        )
        group_of[members] = len(groups) - 1
    return groups, group_of
