"""The second runtime decision: continue to the next exit or stop?

Paper Section IV: "If the confidence of the result is low and the
remaining energy is high, the algorithm can decide to propagate the input
further to the next exit for higher accuracy. ... We use another Q-table
to make the decision."  Confidence is the normalized entropy of the
current exit's softmax output (lower entropy = more confident).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.runtime.qlearning import QTable, discretize

STOP = 0
CONTINUE = 1


class ContinueRule:
    """Interface for the continue/stop decision."""

    def decide(self, confidence_entropy: float, energy_fraction: float, affordable: bool) -> int:
        raise NotImplementedError

    def observe_trajectory(self, trajectory, final_reward: float) -> None:
        """Learning hook; default no-op for static rules."""

    def state_of(self, confidence_entropy: float, energy_fraction: float):
        """Discretized state; static rules return None."""
        return None


class NeverContinue(ContinueRule):
    """Always accept the selected exit's result (incremental inference off)."""

    def decide(self, confidence_entropy: float, energy_fraction: float, affordable: bool) -> int:
        return STOP


class ThresholdContinue(ContinueRule):
    """Fixed-threshold rule from Fig. 1(a): continue while entropy is high.

    Continues when the normalized entropy exceeds ``entropy_threshold``
    and the marginal inference is affordable.
    """

    def __init__(self, entropy_threshold: float = 0.5):
        if not 0.0 <= entropy_threshold <= 1.0:
            raise ConfigError("entropy threshold must be in [0, 1]")
        self.entropy_threshold = entropy_threshold

    def decide(self, confidence_entropy: float, energy_fraction: float, affordable: bool) -> int:
        if not affordable:
            return STOP
        return CONTINUE if confidence_entropy > self.entropy_threshold else STOP


class IncrementalDecider(ContinueRule):
    """Q-learned continue/stop rule over (confidence, energy) states."""

    def __init__(
        self,
        confidence_bins: int = 6,
        energy_bins: int = 8,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: float = 0.1,
        epsilon_decay: float = 0.99,
        rng=None,
    ):
        self.confidence_bins = int(confidence_bins)
        self.energy_bins = int(energy_bins)
        self.qtable = QTable(
            state_shape=(confidence_bins, energy_bins),
            num_actions=2,
            alpha=alpha,
            gamma=gamma,
            epsilon=epsilon,
            epsilon_decay=epsilon_decay,
            rng=rng,
        )

    def state_of(self, confidence_entropy: float, energy_fraction: float):
        return (
            discretize(confidence_entropy, self.confidence_bins),
            discretize(energy_fraction, self.energy_bins),
        )

    def decide(self, confidence_entropy: float, energy_fraction: float, affordable: bool) -> int:
        if not affordable:
            return STOP
        return self.qtable.select_action(self.state_of(confidence_entropy, energy_fraction))

    def observe_trajectory(self, trajectory, final_reward: float) -> None:
        """Credit a finished event's decision chain.

        ``trajectory`` is a list of (state, action) pairs for this event,
        in order.  Intermediate continues earn 0 and bootstrap onto the
        next decision state; the final decision earns the event's realized
        correctness.
        """
        if not trajectory:
            return
        for (state, action), (next_state, _) in zip(trajectory[:-1], trajectory[1:]):
            self.qtable.update(state, action, 0.0, next_state)
        last_state, last_action = trajectory[-1]
        self.qtable.update(last_state, last_action, final_reward, None)

    def decay_epsilon(self) -> None:
        self.qtable.decay_epsilon()


#: Continue-rule kinds accepted by :func:`resolve_continue_rule` (and by
#: the ``"continue_rule"`` entry of a declarative controller spec).
CONTINUE_RULE_KINDS = ("never", "threshold", "learned")


def resolve_continue_rule(spec, rng=None) -> ContinueRule:
    """Build a :class:`ContinueRule` from a declarative description.

    ``spec`` is ``None`` (incremental inference off), an existing
    :class:`ContinueRule` instance (returned unchanged), or a dict
    ``{"kind": <name>, **params}`` with ``kind`` one of
    :data:`CONTINUE_RULE_KINDS`.  ``rng`` seeds the ``"learned"`` rule's
    Q-table exploration; static rules ignore it.  The fleet layer composes
    controllers from JSON, so rules must be nameable the same way
    controller kinds are.
    """
    if spec is None:
        return NeverContinue()
    if isinstance(spec, ContinueRule):
        return spec
    if not isinstance(spec, dict):
        raise ConfigError(
            f"continue_rule must be None, a ContinueRule, or a dict, "
            f"got {type(spec).__name__}"
        )
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind not in CONTINUE_RULE_KINDS:
        raise ConfigError(
            f"continue_rule kind must be one of {CONTINUE_RULE_KINDS}, "
            f"got {kind!r}"
        )
    try:
        if kind == "never":
            return NeverContinue(**params)
        if kind == "threshold":
            return ThresholdContinue(**params)
        return IncrementalDecider(rng=rng, **params)
    except TypeError as exc:
        raise ConfigError(f"{kind} continue_rule: {exc}") from exc
