"""Exit-selection policies.

A policy maps the runtime state (available energy, charging conditions) to
an exit index, given the per-exit energy costs of the deployed network.
``-1`` means "skip this event" (no exit affordable).

:class:`StaticLUTPolicy` is the paper's static baseline: the exit choice is
frozen at compression time into a lookup table over energy levels, using
the simple rule "select the deepest exit whose energy cost does not exceed
currently available energy" (Section III-A).  The runtime Q-learning
controller in :mod:`repro.runtime.controller` is what the paper compares
against it (Fig. 7).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.runtime.qlearning import discretize
from repro.runtime.state import RuntimeState


class ExitPolicy:
    """Interface: pick an exit for the current event."""

    def select(self, state: RuntimeState, exit_energies_mj) -> int:
        raise NotImplementedError


class FixedExitPolicy(ExitPolicy):
    """Always exit at a fixed index (used for single-exit baselines).

    Skips the event when the exit is unaffordable.
    """

    def __init__(self, exit_index: int):
        if exit_index < 0:
            raise ConfigError("exit index must be non-negative")
        self.exit_index = exit_index

    def select(self, state: RuntimeState, exit_energies_mj) -> int:
        if state.energy_mj >= exit_energies_mj[self.exit_index]:
            return self.exit_index
        return -1


class GreedyEnergyPolicy(ExitPolicy):
    """Deepest exit affordable right now, optionally keeping a reserve.

    ``reserve_fraction`` holds back a fraction of the storage capacity for
    future events — the hand-tuned version of the behaviour Q-learning
    discovers automatically.
    """

    def __init__(self, reserve_fraction: float = 0.0):
        if not 0.0 <= reserve_fraction < 1.0:
            raise ConfigError("reserve_fraction must be in [0, 1)")
        self.reserve_fraction = reserve_fraction

    def select(self, state: RuntimeState, exit_energies_mj) -> int:
        budget = state.energy_mj - self.reserve_fraction * state.capacity_mj
        choice = -1
        for i, cost in enumerate(exit_energies_mj):
            if cost <= budget:
                choice = i
        return choice


class StaticLUTPolicy(ExitPolicy):
    """Energy-level lookup table frozen at compression time.

    The table is built once from the exit energy costs (greedy deepest-
    affordable rule evaluated at each quantized energy level) and never
    adapts — exactly the "static LUT" the paper's runtime adaptation is
    measured against.
    """

    def __init__(self, exit_energies_mj, capacity_mj: float, num_levels: int = 32):
        if num_levels < 2:
            raise ConfigError("need at least 2 energy levels")
        if capacity_mj <= 0:
            raise ConfigError("capacity must be positive")
        self.capacity_mj = float(capacity_mj)
        self.num_levels = int(num_levels)
        self.exit_energies_mj = [float(e) for e in exit_energies_mj]
        self.table = np.full(num_levels, -1, dtype=np.int64)
        for level in range(num_levels):
            # Energy at the conservative (lower) edge of the bin.
            energy = level / num_levels * capacity_mj
            for i, cost in enumerate(self.exit_energies_mj):
                if cost <= energy:
                    self.table[level] = i

    def select(self, state: RuntimeState, exit_energies_mj) -> int:
        level = discretize(state.energy_mj, self.num_levels, 0.0, self.capacity_mj)
        choice = int(self.table[level])
        # Guard against bin-edge optimism: never pick an unaffordable exit.
        while choice >= 0 and exit_energies_mj[choice] > state.energy_mj:
            choice -= 1
        return choice


class OraclePolicy(ExitPolicy):
    """Clairvoyant upper-bound policy for analysis (not deployable).

    Knows the full event schedule and future harvest in advance and plans
    greedily with that knowledge: it spends down to the deepest exit only
    when the energy that would remain still covers the cheapest exit for
    every event expected before the storage refills.  Used to bound how
    much headroom is left above the learned runtime policies.
    """

    def __init__(self, exit_energies_mj, event_times, trace, storage_capacity_mj: float, efficiency: float = 0.8):
        self.exit_energies_mj = [float(e) for e in exit_energies_mj]
        self.event_times = sorted(float(t) for t in event_times)
        self.trace = trace
        self.capacity_mj = float(storage_capacity_mj)
        self.efficiency = float(efficiency)

    def _upcoming_events(self, t: float, horizon: float) -> int:
        return sum(1 for e in self.event_times if t < e <= t + horizon)

    def select(self, state: RuntimeState, exit_energies_mj) -> int:
        cheapest = min(exit_energies_mj)
        # Energy expected to arrive before the next few events, from the
        # actual (future) trace — the oracle's unfair advantage.
        horizon = 120.0
        inflow = self.trace.energy_between(state.time, state.time + horizon) * self.efficiency
        demand = self._upcoming_events(state.time, horizon) * cheapest
        # Spendable now = current charge plus the net balance of what the
        # future will deliver vs. what upcoming events will need.  A
        # shortfall shrinks the budget (reserve energy for those events).
        budget = state.energy_mj + inflow - demand
        choice = -1
        for i, cost in enumerate(exit_energies_mj):
            if cost <= min(budget, state.energy_mj):
                choice = i
        return choice
