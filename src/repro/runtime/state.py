"""The observable state a runtime policy sees when an event fires.

Paper Section IV: "the state set S contains the current available energy E
and the charging efficiency P" — both directly observable on the device
(capacitor voltage and recent harvest rate).  Nothing about the future
trace or event stream is exposed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class RuntimeState:
    """Snapshot of the device's energy situation at an event."""

    time: float               # event time (s)
    energy_mj: float          # stored energy E
    capacity_mj: float        # storage capacity (for normalization)
    charge_power_mw: float    # recent harvest rate P ("charging efficiency")
    peak_power_mw: float      # normalization reference for P

    @property
    def energy_fraction(self) -> float:
        """E normalized to [0, 1] by the storage capacity."""
        if self.capacity_mj <= 0:
            return 0.0
        return min(1.0, max(0.0, self.energy_mj / self.capacity_mj))

    @property
    def charge_fraction(self) -> float:
        """P normalized to [0, 1] by the trace's peak power."""
        if self.peak_power_mw <= 0:
            return 0.0
        return min(1.0, max(0.0, self.charge_power_mw / self.peak_power_mw))


class RuntimeStateBatch:
    """:class:`RuntimeState` across a device axis (one array per field).

    The batched fleet engine snapshots every lockstep device's energy
    situation into numpy columns; batched controllers index these with the
    device rows they own.  The normalization arithmetic mirrors the scalar
    properties exactly (same clamp order, same zero guards), so a batched
    decision sees bit-identical state to its per-device twin.

    A deliberately mutable view: the engine allocates one instance per
    episode and re-points ``time`` / ``charge_power_mw`` at each step's
    columns (``energy_mj`` aliases the live storage-level column, which is
    only ever mutated in place).  ``capacity_mj`` / ``peak_power_mw`` are
    static, so their positivity guards are evaluated once here instead of
    per decision.
    """

    __slots__ = (
        "time", "energy_mj", "capacity_mj", "charge_power_mw",
        "peak_power_mw", "_cap_positive", "_peak_positive",
    )

    def __init__(self, time, energy_mj, capacity_mj, charge_power_mw, peak_power_mw):
        self.time = time                         # event times (s)
        self.energy_mj = energy_mj               # stored energy E
        self.capacity_mj = capacity_mj           # storage capacity
        self.charge_power_mw = charge_power_mw   # recent harvest rate P
        self.peak_power_mw = peak_power_mw       # normalization for P
        self._cap_positive = bool(np.all(capacity_mj > 0))
        self._peak_positive = bool(np.all(peak_power_mw > 0))

    def energy_fraction(self, idx=None) -> np.ndarray:
        """E normalized to [0, 1] for the devices in ``idx`` (None = all)."""
        cap = self.capacity_mj if idx is None else self.capacity_mj[idx]
        energy = self.energy_mj if idx is None else self.energy_mj[idx]
        if self._cap_positive:
            return np.minimum(1.0, np.maximum(0.0, energy / cap))
        frac = np.where(cap > 0, energy / np.where(cap > 0, cap, 1.0), 0.0)
        return np.minimum(1.0, np.maximum(0.0, frac))

    def charge_fraction(self, idx=None) -> np.ndarray:
        """P normalized to [0, 1] for the devices in ``idx`` (None = all)."""
        peak = self.peak_power_mw if idx is None else self.peak_power_mw[idx]
        power = self.charge_power_mw if idx is None else self.charge_power_mw[idx]
        if self._peak_positive:
            return np.minimum(1.0, np.maximum(0.0, power / peak))
        frac = np.where(peak > 0, power / np.where(peak > 0, peak, 1.0), 0.0)
        return np.minimum(1.0, np.maximum(0.0, frac))

    def energy_ratio(self, idx=None) -> np.ndarray:
        """E / capacity *without* the [0, 1] clamp.

        Safe wherever the consumer clamps anyway (binning): the level
        cannot exceed the capacity, so the ratio only leaves [0, 1] by a
        float epsilon at the edges, which bin-clamping absorbs into the
        same bucket the clamped value would land in.
        """
        cap = self.capacity_mj if idx is None else self.capacity_mj[idx]
        energy = self.energy_mj if idx is None else self.energy_mj[idx]
        if self._cap_positive:
            return energy / cap
        return self.energy_fraction(idx)

    def charge_ratio(self, idx=None) -> np.ndarray:
        """P / peak without the [0, 1] clamp (see :meth:`energy_ratio`)."""
        peak = self.peak_power_mw if idx is None else self.peak_power_mw[idx]
        power = self.charge_power_mw if idx is None else self.charge_power_mw[idx]
        if self._peak_positive:
            return power / peak
        return self.charge_fraction(idx)
