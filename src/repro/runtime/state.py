"""The observable state a runtime policy sees when an event fires.

Paper Section IV: "the state set S contains the current available energy E
and the charging efficiency P" — both directly observable on the device
(capacitor voltage and recent harvest rate).  Nothing about the future
trace or event stream is exposed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RuntimeState:
    """Snapshot of the device's energy situation at an event."""

    time: float               # event time (s)
    energy_mj: float          # stored energy E
    capacity_mj: float        # storage capacity (for normalization)
    charge_power_mw: float    # recent harvest rate P ("charging efficiency")
    peak_power_mw: float      # normalization reference for P

    @property
    def energy_fraction(self) -> float:
        """E normalized to [0, 1] by the storage capacity."""
        if self.capacity_mj <= 0:
            return 0.0
        return min(1.0, max(0.0, self.energy_mj / self.capacity_mj))

    @property
    def charge_fraction(self) -> float:
        """P normalized to [0, 1] by the trace's peak power."""
        if self.peak_power_mw <= 0:
            return 0.0
        return min(1.0, max(0.0, self.charge_power_mw / self.peak_power_mw))
