"""Tabular Q-learning (Watkins & Dayan [12], paper Eq. 16).

The paper stresses that the runtime learner must be lightweight enough for
an MCU: "It only needs a lookup table (LUT) with state-action pairs as the
entries, and the learning process is updating the LUT."  This module is
that LUT.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import PooledDraws, as_generator


def discretize(value: float, num_bins: int, lo: float = 0.0, hi: float = 1.0) -> int:
    """Map a continuous value in ``[lo, hi]`` onto ``num_bins`` buckets."""
    if num_bins < 1:
        raise ConfigError("num_bins must be >= 1")
    if hi <= lo:
        raise ConfigError("need hi > lo")
    frac = (value - lo) / (hi - lo)
    return int(min(num_bins - 1, max(0, int(frac * num_bins))))


class QTable:
    """A dense Q-value table over a discrete state grid.

    ``state_shape`` is the per-dimension bin count, e.g. ``(10, 5)`` for 10
    energy levels x 5 charging-efficiency levels; ``num_actions`` is the
    number of exits (or 2 for the continue/stop decision).
    """

    def __init__(
        self,
        state_shape,
        num_actions: int,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: float = 0.1,
        epsilon_decay: float = 1.0,
        epsilon_min: float = 0.01,
        optimistic_init: float = 0.0,
        rng=None,
    ):
        self.state_shape = tuple(int(s) for s in state_shape)
        if any(s < 1 for s in self.state_shape):
            raise ConfigError("state dimensions must be >= 1")
        if num_actions < 1:
            raise ConfigError("num_actions must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ConfigError("alpha must be in (0, 1]")
        if not 0.0 <= gamma <= 1.0:
            raise ConfigError("gamma must be in [0, 1]")
        self.num_actions = int(num_actions)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.epsilon = float(epsilon)
        self.epsilon_decay = float(epsilon_decay)
        self.epsilon_min = float(epsilon_min)
        self.table = np.full(self.state_shape + (num_actions,), float(optimistic_init))
        self._rng = as_generator(rng)
        # Exploration draws are pooled: the simulator queries the LUT once
        # or twice per event, and per-call Generator dispatch would
        # otherwise dominate the (tiny) table lookups.
        self._draws = PooledDraws(self._rng)
        # States already validated once skip re-validation — the grid is
        # tiny (tens of cells) and the event loop revisits the same bins
        # thousands of times per run.  Keyed by equality, valued by the
        # normalized int tuple, so e.g. (1.0, 2.0) (== (1, 2)) resolves to
        # the index-safe form on the fast path too.
        self._validated: dict = {}

    def _check_state(self, state) -> tuple:
        try:
            cached = self._validated.get(state)
        except TypeError:
            cached = None  # unhashable container (e.g. list): normalize below
        if cached is not None:
            return cached
        state = tuple(int(s) for s in state)
        if len(state) != len(self.state_shape):
            raise ConfigError(f"state {state} has wrong rank for {self.state_shape}")
        for s, bound in zip(state, self.state_shape):
            if not 0 <= s < bound:
                raise ConfigError(f"state {state} outside grid {self.state_shape}")
        self._validated[state] = state
        return state

    def q_values(self, state) -> np.ndarray:
        return self.table[self._check_state(state)]

    def best_action(self, state) -> int:
        """Greedy action: argmax_a Q(s, a), ties broken by lowest index."""
        return int(self.table[self._check_state(state)].argmax())

    def select_action(self, state) -> int:
        """Epsilon-greedy action selection."""
        if self._draws.random() < self.epsilon:
            return self._draws.integers(self.num_actions)
        return self.best_action(state)

    def update(self, state, action: int, reward: float, next_state=None) -> float:
        """Apply Eq. 16; ``next_state=None`` marks a terminal transition.

        Returns the new Q(s, a).
        """
        state = self._check_state(state)
        if not 0 <= action < self.num_actions:
            raise ConfigError(f"action {action} out of range")
        bootstrap = (
            0.0
            if next_state is None
            else float(self.table[self._check_state(next_state)].max())
        )
        key = state + (action,)
        td_error = reward + self.gamma * bootstrap - self.table[key]
        self.table[key] += self.alpha * td_error
        return float(self.table[key])

    def decay_epsilon(self) -> None:
        """Anneal exploration (called once per episode)."""
        self.epsilon = max(self.epsilon_min, self.epsilon * self.epsilon_decay)

    @property
    def size(self) -> int:
        """Number of LUT entries (the paper's 'negligible overhead')."""
        return int(self.table.size)
