"""Runtime controllers: the two sequential decisions per event.

A controller owns (1) exit selection when an event fires and (2) the
incremental continue/stop rule at the chosen exit.  The simulator calls:

* :meth:`Controller.select_exit` with the runtime state;
* :meth:`Controller.report_event` once the event resolves, with the reward
  (realized correctness; 0 for a miss) — learning controllers use this to
  update their tables across the event sequence;
* :meth:`Controller.end_episode` when a trace run finishes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigError
from repro.runtime.incremental import (
    CONTINUE,
    ContinueRule,
    IncrementalDecider,
    NeverContinue,
    resolve_continue_rule,
)
from repro.runtime.policies import (
    ExitPolicy,
    FixedExitPolicy,
    GreedyEnergyPolicy,
    StaticLUTPolicy,
)
from repro.runtime.qlearning import QTable, discretize
from repro.runtime.state import RuntimeState


class Controller:
    """Base controller: wires a continue rule, no learning for exits."""

    def __init__(self, continue_rule: ContinueRule = None):
        self.continue_rule = continue_rule or NeverContinue()
        self._incremental_trajectory = []

    # ---------------- exit selection ---------------- #
    def select_exit(self, state: RuntimeState, exit_energies_mj) -> int:
        raise NotImplementedError

    def report_event(self, reward: float) -> None:
        """Reward feedback for the last selected event (0/1 correctness)."""
        rule = self.continue_rule
        rule.observe_trajectory(self._incremental_trajectory, reward)
        self._incremental_trajectory = []

    def end_episode(self) -> None:
        """Episode boundary (one pass over a trace)."""
        self._incremental_trajectory = []

    # ---------------- incremental inference ---------------- #
    def decide_continue(
        self, confidence_entropy: float, state_energy_fraction: float, affordable: bool
    ) -> bool:
        """Continue to the next exit?  Records the decision for learning."""
        action = self.continue_rule.decide(
            confidence_entropy, state_energy_fraction, affordable
        )
        inc_state = self.continue_rule.state_of(confidence_entropy, state_energy_fraction)
        if inc_state is not None:
            self._incremental_trajectory.append((inc_state, action))
        return action == CONTINUE


class StaticController(Controller):
    """Wraps a fixed :class:`ExitPolicy` (e.g. the static LUT baseline)."""

    def __init__(self, policy: ExitPolicy, continue_rule: ContinueRule = None):
        super().__init__(continue_rule)
        if not isinstance(policy, ExitPolicy):
            raise ConfigError("policy must be an ExitPolicy")
        self.policy = policy

    def select_exit(self, state: RuntimeState, exit_energies_mj) -> int:
        return self.policy.select(state, exit_energies_mj)


class QLearningController(Controller):
    """Paper Section IV: Q-learning over (E, P) states with exits as actions.

    The temporal credit assignment runs across the *event sequence*: the
    transition stored for event ``j`` bootstraps on the state observed at
    event ``j+1``, so the controller learns that draining the capacitor now
    lowers the value of the states future events will see.
    """

    def __init__(
        self,
        num_exits: int,
        energy_bins: int = 10,
        power_bins: int = 5,
        alpha: float = 0.2,
        gamma: float = 0.9,
        epsilon: float = 0.15,
        epsilon_decay: float = 0.95,
        continue_rule: ContinueRule = None,
        rng=None,
    ):
        super().__init__(continue_rule)
        if num_exits < 1:
            raise ConfigError("need at least one exit")
        self.num_exits = int(num_exits)
        self.energy_bins = int(energy_bins)
        self.power_bins = int(power_bins)
        self.qtable = QTable(
            state_shape=(energy_bins, power_bins),
            num_actions=num_exits,
            alpha=alpha,
            gamma=gamma,
            epsilon=epsilon,
            epsilon_decay=epsilon_decay,
            rng=rng,
        )
        self._pending = None  # (state_bins, action) awaiting reward/next state
        self._pending_reward = None

    def _bins_of(self, state: RuntimeState) -> tuple:
        return (
            discretize(state.energy_fraction, self.energy_bins),
            discretize(state.charge_fraction, self.power_bins),
        )

    def select_exit(self, state: RuntimeState, exit_energies_mj) -> int:
        bins = self._bins_of(state)
        if self._pending is not None and self._pending_reward is not None:
            prev_bins, prev_action = self._pending
            self.qtable.update(prev_bins, prev_action, self._pending_reward, bins)
            self._pending = None
            self._pending_reward = None
        action = self.qtable.select_action(bins)
        self._pending = (bins, action)
        return action

    def report_event(self, reward: float) -> None:
        super().report_event(reward)
        if self._pending is not None:
            self._pending_reward = float(reward)

    def end_episode(self) -> None:
        super().end_episode()
        if self._pending is not None and self._pending_reward is not None:
            bins, action = self._pending
            self.qtable.update(bins, action, self._pending_reward, None)
        self._pending = None
        self._pending_reward = None
        self.qtable.decay_epsilon()
        if isinstance(self.continue_rule, IncrementalDecider):
            self.continue_rule.decay_epsilon()


#: Controller kinds accepted by :func:`make_controller`.
CONTROLLER_KINDS = ("qlearning", "static-lut", "greedy", "fixed")

#: Named controller presets: short names the campaign layer (and spec
#: files) can use instead of spelling out a full ``{"kind": ..., **params}``
#: controller dict.  A preset pins the *parameters* of a controller family
#: so sweeps compare the same configuration everywhere it appears.
CONTROLLER_PRESETS: dict = {}
_PRESET_DESCRIPTIONS: dict = {}


def register_controller_preset(name: str, spec: dict, description: str = "") -> None:
    """Register a named controller spec (``{"kind": ..., **params}``).

    Presets are looked up by :func:`controller_preset`; re-registering a
    name is a :class:`ConfigError` so campaign grids stay unambiguous.
    """
    if not name:
        raise ConfigError("controller preset needs a non-empty name")
    if name in CONTROLLER_PRESETS:
        raise ConfigError(f"controller preset {name!r} already registered")
    kind = dict(spec).get("kind")
    if kind not in CONTROLLER_KINDS:
        raise ConfigError(
            f"preset {name!r}: controller kind must be one of "
            f"{CONTROLLER_KINDS}, got {kind!r}"
        )
    CONTROLLER_PRESETS[name] = dict(spec)
    _PRESET_DESCRIPTIONS[name] = description


def controller_preset(name: str) -> dict:
    """Resolve a preset name to a fresh copy of its controller spec."""
    if name not in CONTROLLER_PRESETS:
        raise ConfigError(
            f"unknown controller preset {name!r}; "
            f"available: {sorted(CONTROLLER_PRESETS)}"
        )
    return dict(CONTROLLER_PRESETS[name])


def preset_names() -> list:
    return sorted(CONTROLLER_PRESETS)


def describe_preset(name: str) -> str:
    controller_preset(name)  # raises on unknown names
    return _PRESET_DESCRIPTIONS[name]


# The paper's comparison set (Fig. 7): the learned runtime against the
# static baselines, each with the parameters used by the fleet scenarios.
register_controller_preset(
    "qlearning",
    {"kind": "qlearning", "epsilon": 0.25, "epsilon_decay": 0.9},
    "runtime Q-learning over (E, P) states (paper Section IV)",
)
register_controller_preset(
    "static-lut",
    {"kind": "static-lut"},
    "compression-time static LUT baseline (paper Section III-A)",
)
register_controller_preset(
    "greedy",
    {"kind": "greedy", "reserve_fraction": 0.2},
    "deepest affordable exit, holding back a 20% energy reserve",
)
register_controller_preset(
    "greedy-all-in",
    {"kind": "greedy", "reserve_fraction": 0.0},
    "deepest affordable exit with no reserve",
)
register_controller_preset(
    "fixed-first",
    {"kind": "fixed", "exit_index": 0},
    "always the earliest exit (cheapest inference)",
)


#: ``spawn_key`` deriving a learned continue rule's exploration stream
#: from the controller seed.  Distinct from the exit-table stream so the
#: two Q-tables never share (or interleave) pooled draws — which is also
#: what lets the batched engine replay each stream independently.
_RULE_SPAWN_KEY = 0x1C0DE


def _rule_rng(rng):
    """Derive the continue-rule RNG from a controller seed-like value."""
    if rng is None:
        return None
    if isinstance(rng, (int, np.integer)):
        return np.random.SeedSequence(int(rng), spawn_key=(_RULE_SPAWN_KEY,))
    if isinstance(rng, np.random.SeedSequence):
        return rng.spawn(1)[0]
    # A live Generator is shared as-is (single-process callers that want
    # coupled randomness); such controllers stay on the scalar path.
    return rng


def make_controller(
    kind: str,
    num_exits: int,
    exit_energies_mj=None,
    capacity_mj: Optional[float] = None,
    rng=None,
    continue_rule=None,
    **params,
):
    """Build a controller from a declarative description.

    The fleet layer composes devices from JSON, so controllers must be
    nameable: ``kind`` is one of :data:`CONTROLLER_KINDS`, ``params`` are
    forwarded to the underlying controller/policy constructor.
    ``exit_energies_mj``/``capacity_mj`` are required by ``"static-lut"``
    (the LUT is frozen against the deployed profile and the capacitor).

    ``continue_rule`` is a :class:`~repro.runtime.incremental.ContinueRule`
    instance or a declarative dict (``{"kind": "threshold", ...}`` /
    ``{"kind": "learned", ...}``); a dict's learned rule draws exploration
    from a stream derived from ``rng`` by a fixed spawn key, so one
    controller seed pins both decision tables.
    """
    if isinstance(continue_rule, dict):
        continue_rule = resolve_continue_rule(continue_rule, rng=_rule_rng(rng))
    if kind == "qlearning":
        return QLearningController(
            num_exits, rng=rng, continue_rule=continue_rule, **params
        )
    if kind == "static-lut":
        if exit_energies_mj is None or capacity_mj is None:
            raise ConfigError(
                "static-lut controller needs exit_energies_mj and capacity_mj"
            )
        return StaticController(
            StaticLUTPolicy(exit_energies_mj, capacity_mj, **params),
            continue_rule=continue_rule,
        )
    if kind == "greedy":
        return StaticController(GreedyEnergyPolicy(**params), continue_rule=continue_rule)
    if kind == "fixed":
        return StaticController(
            FixedExitPolicy(params.pop("exit_index", 0), **params),
            continue_rule=continue_rule,
        )
    raise ConfigError(
        f"controller kind must be one of {CONTROLLER_KINDS}, got {kind!r}"
    )
