"""Channel pruning by input-channel importance (paper Eq. 2)."""

from repro.prune.channel_pruning import (
    channel_importance,
    kept_channel_indices,
    prune_layer_inputs,
)

__all__ = ["channel_importance", "kept_channel_indices", "prune_layer_inputs"]
