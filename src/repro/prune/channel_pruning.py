"""Channel pruning of input channels (paper Section III, Eq. 2).

Given a pruning (preserve) ratio ``alpha_l`` for layer ``l``, the paper
prunes entire *input channels* of a convolutional or fully-connected layer,
selected by the sum of absolute weights applied to them::

    s_j = sum_i |W_{i,j}|        (Eq. 2)

The least-important channels are removed so ``c' = ceil(alpha * c)``.
For fully-connected layers, "channels" are individual input activations.

This module implements pruning as *masking*: the pruned input slices of the
weight tensor are zeroed in place.  Masking is mathematically identical to
physically slicing the tensors (the removed channels contribute nothing)
while keeping the network graph intact — the cost bookkeeping in
:mod:`repro.compress` accounts for the removed channels analytically,
including the paper's "two-fold" FLOPs reduction where a producing layer's
unused output channels are also discounted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import CompressionError
from repro.nn.layers import Conv2d, Linear


def channel_importance(weight: np.ndarray, criterion: str = "l1") -> np.ndarray:
    """Importance score of each input channel of a weight tensor.

    ``weight`` is ``(n, c, k, k)`` for conv or ``(n, c)`` for linear.
    ``criterion`` selects the reduction: ``"l1"`` (paper Eq. 2), ``"l2"``,
    used by the ablation study.
    """
    w = np.asarray(weight)
    if w.ndim == 4:
        per_channel = w.transpose(1, 0, 2, 3).reshape(w.shape[1], -1)
    elif w.ndim == 2:
        per_channel = w.T
    else:
        raise CompressionError(f"unsupported weight rank {w.ndim}")
    if criterion == "l1":
        return np.abs(per_channel).sum(axis=1)
    if criterion == "l2":
        return np.sqrt((per_channel ** 2).sum(axis=1))
    raise CompressionError(f"unknown importance criterion {criterion!r}")


def kept_channel_indices(
    weight: np.ndarray,
    preserve_ratio: float,
    criterion: str = "l1",
    rng=None,
) -> np.ndarray:
    """Indices of input channels to keep under ``preserve_ratio``.

    At least one channel is always kept.  ``criterion="random"`` (with an
    ``rng``) supports the ablation baseline.
    """
    if not 0.0 < preserve_ratio <= 1.0:
        raise CompressionError(f"preserve ratio must be in (0, 1], got {preserve_ratio}")
    w = np.asarray(weight)
    c = w.shape[1]
    keep = max(1, int(math.ceil(preserve_ratio * c)))
    if keep >= c:
        return np.arange(c)
    if criterion == "random":
        if rng is None:
            raise CompressionError("random criterion requires an rng")
        return np.sort(rng.choice(c, size=keep, replace=False))
    scores = channel_importance(w, criterion)
    # Stable selection: ties broken by channel index for reproducibility.
    order = np.lexsort((np.arange(c), -scores))
    return np.sort(order[:keep])


def prune_layer_inputs(
    layer,
    preserve_ratio: float,
    criterion: str = "l1",
    rng=None,
) -> np.ndarray:
    """Zero the pruned input channels of ``layer`` in place.

    Returns the kept-channel index array.  The layer's weight tensor keeps
    its shape (masking, see module docstring); callers use the returned
    indices for cost accounting and producer-side cleanup.
    """
    if not isinstance(layer, (Conv2d, Linear)):
        raise CompressionError(f"cannot channel-prune a {type(layer).__name__}")
    kept = kept_channel_indices(layer.weight.data, preserve_ratio, criterion, rng)
    mask = np.zeros(layer.weight.data.shape[1], dtype=bool)
    mask[kept] = True
    if layer.weight.data.ndim == 4:
        layer.weight.data[:, ~mask, :, :] = 0.0
    else:
        layer.weight.data[:, ~mask] = 0.0
    return kept
