"""On-disk campaign checkpoints: one JSON artifact per completed cell.

Layout under the store root::

    campaign.json          # the CampaignSpec that owns this directory
    cells/<cell-key>.json  # deterministic payload of one completed cell
    report.json            # aggregate report (rewritten after every run)
    manifest.json          # provenance of the latest run (git SHA, host,
                           # versions — see repro.obs.manifest)

Every write is atomic (temp file + ``os.replace`` in the same directory),
so a campaign killed mid-cell leaves either a complete artifact or none —
never a torn file — and ``--resume`` can trust anything it finds.  Cell
payloads carry no wall-clock content, which is what makes an interrupted
and resumed campaign byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigError


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as canonical JSON via rename (all-or-nothing)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        # Includes KeyboardInterrupt: never leave a half-written temp file
        # that a later directory scan could mistake for an artifact.
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


class CampaignStore:
    """Checkpoint directory for one campaign run."""

    SPEC_FILE = "campaign.json"
    REPORT_FILE = "report.json"
    MANIFEST_FILE = "manifest.json"
    CELLS_DIR = "cells"

    def __init__(self, root: str):
        self.root = os.path.abspath(root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> str:
        return os.path.join(self.root, self.SPEC_FILE)

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, self.REPORT_FILE)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, self.MANIFEST_FILE)

    @property
    def cells_dir(self) -> str:
        return os.path.join(self.root, self.CELLS_DIR)

    def cell_path(self, key: str) -> str:
        return os.path.join(self.cells_dir, f"{key}.json")

    # ------------------------------------------------------------------ #
    # Spec manifest
    # ------------------------------------------------------------------ #
    def has_spec(self) -> bool:
        return os.path.exists(self.spec_path)

    def initialize(self, spec: CampaignSpec, resume: bool = False) -> None:
        """Claim the directory for ``spec`` (or validate a prior claim).

        A directory already owned by a *different* grid is always an
        error; one owned by the same grid requires ``resume`` so finished
        cells are only ever skipped on an explicit ``--resume``.
        """
        os.makedirs(self.cells_dir, exist_ok=True)
        if self.has_spec():
            existing = self.load_spec()
            if existing.digest() != spec.digest():
                raise ConfigError(
                    f"store {self.root!r} holds campaign {existing.name!r} "
                    f"(digest {existing.digest()}), which differs from "
                    f"{spec.name!r} (digest {spec.digest()}); use a fresh "
                    "--out directory"
                )
            if not resume and self.completed_keys():
                raise ConfigError(
                    f"store {self.root!r} already has "
                    f"{len(self.completed_keys())} completed cell(s); pass "
                    "--resume to continue it or point --out elsewhere"
                )
        else:
            atomic_write_json(self.spec_path, spec.to_dict())

    def load_spec(self) -> CampaignSpec:
        if not self.has_spec():
            raise ConfigError(f"no campaign spec in store {self.root!r}")
        return CampaignSpec.from_json(self.spec_path)

    # ------------------------------------------------------------------ #
    # Cells
    # ------------------------------------------------------------------ #
    def completed_keys(self) -> set:
        if not os.path.isdir(self.cells_dir):
            return set()
        return {
            name[: -len(".json")]
            for name in os.listdir(self.cells_dir)
            if name.endswith(".json")
        }

    def has_cell(self, key: str) -> bool:
        return os.path.exists(self.cell_path(key))

    def save_cell(self, key: str, payload: dict) -> None:
        atomic_write_json(self.cell_path(key), payload)

    def load_cell(self, key: str) -> dict:
        path = self.cell_path(key)
        try:
            with open(path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load cell artifact {path!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    # Run manifest (provenance of the latest run; never read by resume)
    # ------------------------------------------------------------------ #
    def write_run_manifest(self, **extra) -> str:
        """Stamp the store with this run's provenance (rewritten per run).

        The manifest is observability metadata only — resume and report
        logic never consult it, so it carries wall-clock content without
        threatening report byte-identity.
        """
        from repro.obs.manifest import build_manifest

        atomic_write_json(self.manifest_path, build_manifest(**extra))
        return self.manifest_path

    def load_run_manifest(self) -> dict:
        try:
            with open(self.manifest_path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot load run manifest {self.manifest_path!r}: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Report
    # ------------------------------------------------------------------ #
    def write_report(self, report: dict) -> str:
        atomic_write_json(self.report_path, report)
        return self.report_path

    def load_report(self) -> dict:
        try:
            with open(self.report_path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot load campaign report {self.report_path!r}: {exc}"
            ) from exc
