"""On-disk campaign checkpoints: one JSON artifact per completed cell.

Layout under the store root::

    campaign.json          # the CampaignSpec that owns this directory
    cells/<cell-key>.json  # deterministic payload of one completed cell
    report.json            # aggregate report (rewritten after every run)
    manifest.json          # provenance of the latest run (git SHA, host,
                           # versions — see repro.obs.manifest)

Every write is atomic (temp file + ``os.replace`` in the same directory),
so a campaign killed mid-cell leaves either a complete artifact or none —
never a torn file — and ``--resume`` can trust anything it finds.  Cell
payloads carry no wall-clock content, which is what makes an interrupted
and resumed campaign byte-identical to an uninterrupted one.

Atomicity protects against torn *writes*; it cannot protect a finished
artifact against what happens to it afterwards (bad disks, bit rot, a
stray editor).  Every cell is therefore sealed with a content checksum
on write and verified on load: :meth:`CampaignStore.load_cell` raises
:class:`~repro.errors.CorruptCellError` — naming the offending path —
for zero-byte files, torn/invalid JSON, and checksum mismatches, and the
campaign runner responds by quarantining the artifact and re-running
just that cell (see :meth:`CampaignStore.quarantine_cell`).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigError, CorruptCellError
from repro.faults.injector import get_fault_injector


def atomic_write_json(path: str, payload: dict) -> None:
    """Write ``payload`` as canonical JSON via rename (all-or-nothing)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        # Includes KeyboardInterrupt: never leave a half-written temp file
        # that a later directory scan could mistake for an artifact.
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def cell_checksum(payload: dict) -> str:
    """Canonical content digest of a cell payload (sans integrity seal)."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _apply_save_faults(path: str, ops) -> None:
    """Damage a just-written artifact per injected ``campaign.cell.save``
    directives — the chaos stand-in for bit rot, torn disks, and truncated
    writes that the load-side verification must catch."""
    for op in ops:
        kind = op["op"]
        size = os.path.getsize(path)
        if kind == "empty":
            with open(path, "w"):
                pass
        elif kind == "truncate":
            keep = int(size * float(op.get("keep_frac", 0.5)))
            os.truncate(path, keep)
        elif kind == "bitflip":
            offset = min(int(size * float(op.get("offset_frac", 0.5))), size - 1)
            with open(path, "r+b") as fh:
                fh.seek(max(offset, 0))
                byte = fh.read(1)
                fh.seek(max(offset, 0))
                fh.write(bytes([byte[0] ^ 0xFF]))


class CampaignStore:
    """Checkpoint directory for one campaign run."""

    SPEC_FILE = "campaign.json"
    REPORT_FILE = "report.json"
    MANIFEST_FILE = "manifest.json"
    CELLS_DIR = "cells"

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        #: Cells loaded without verification because they predate content
        #: checksums (no ``"integrity"`` key).  They still resume fine,
        #: but silent acceptance would hide how much of a report rests on
        #: unverifiable artifacts — so every load is counted and surfaced
        #: in the campaign summary line.
        self.legacy_unverified = 0

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #
    @property
    def spec_path(self) -> str:
        return os.path.join(self.root, self.SPEC_FILE)

    @property
    def report_path(self) -> str:
        return os.path.join(self.root, self.REPORT_FILE)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, self.MANIFEST_FILE)

    @property
    def cells_dir(self) -> str:
        return os.path.join(self.root, self.CELLS_DIR)

    def cell_path(self, key: str) -> str:
        return os.path.join(self.cells_dir, f"{key}.json")

    # ------------------------------------------------------------------ #
    # Spec manifest
    # ------------------------------------------------------------------ #
    def has_spec(self) -> bool:
        return os.path.exists(self.spec_path)

    def initialize(self, spec: CampaignSpec, resume: bool = False) -> None:
        """Claim the directory for ``spec`` (or validate a prior claim).

        A directory already owned by a *different* grid is always an
        error; one owned by the same grid requires ``resume`` so finished
        cells are only ever skipped on an explicit ``--resume``.
        """
        os.makedirs(self.cells_dir, exist_ok=True)
        if self.has_spec():
            existing = self.load_spec()
            if existing.digest() != spec.digest():
                raise ConfigError(
                    f"store {self.root!r} holds campaign {existing.name!r} "
                    f"(digest {existing.digest()}), which differs from "
                    f"{spec.name!r} (digest {spec.digest()}); use a fresh "
                    "--out directory"
                )
            if not resume and self.completed_keys():
                raise ConfigError(
                    f"store {self.root!r} already has "
                    f"{len(self.completed_keys())} completed cell(s); pass "
                    "--resume to continue it or point --out elsewhere"
                )
        else:
            atomic_write_json(self.spec_path, spec.to_dict())

    def load_spec(self) -> CampaignSpec:
        if not self.has_spec():
            raise ConfigError(f"no campaign spec in store {self.root!r}")
        return CampaignSpec.from_json(self.spec_path)

    # ------------------------------------------------------------------ #
    # Cells
    # ------------------------------------------------------------------ #
    def completed_keys(self) -> set:
        if not os.path.isdir(self.cells_dir):
            return set()
        return {
            name[: -len(".json")]
            for name in os.listdir(self.cells_dir)
            if name.endswith(".json")
        }

    def has_cell(self, key: str) -> bool:
        return os.path.exists(self.cell_path(key))

    def save_cell(self, key: str, payload: dict) -> None:
        """Checkpoint one completed cell, sealed with a content checksum.

        The seal lives alongside the payload under an ``"integrity"`` key
        (stripped again on load), so the artifact stays a plain readable
        JSON file.  When chaos is armed, ``campaign.cell.save``
        directives damage the artifact *after* the atomic write — the
        injected stand-in for bit rot and torn disks.
        """
        body = dict(payload)
        body["integrity"] = {"algo": "sha256", "digest": cell_checksum(payload)}
        path = self.cell_path(key)
        atomic_write_json(path, body)
        injector = get_fault_injector()
        if injector.enabled:
            ops = [f.directive() for f in injector.poll("campaign.cell.save")]
            if ops:
                _apply_save_faults(path, ops)

    #: Attempts per cell read — tolerates up to three transient OSErrors,
    #: one more than the dispatch retry default, so a fault plan that is
    #: recoverable for the fleet layer is recoverable here too.
    LOAD_ATTEMPTS = 4

    def load_cell(self, key: str) -> dict:
        """Load and *verify* one checkpointed cell.

        Raises :class:`CorruptCellError` (naming the offending path) for
        a zero-byte file, torn or invalid JSON, or a checksum mismatch;
        the campaign runner quarantines such cells and re-runs them.
        Artifacts written before checksums existed (no ``"integrity"``
        key) load without verification.  Transient ``OSError`` reads are
        retried a couple of times before giving up.
        """
        path = self.cell_path(key)
        injector = get_fault_injector()
        last_os_error = None
        for _ in range(self.LOAD_ATTEMPTS):
            try:
                if injector.enabled:
                    for fault in injector.poll("campaign.cell.load"):
                        if fault.op == "oserror":
                            raise OSError("injected transient read failure")
                with open(path, "rb") as fh:
                    raw = fh.read()
            except OSError as exc:
                last_os_error = exc
                continue
            if not raw.strip():
                raise CorruptCellError(
                    f"corrupt cell artifact {path!r}: zero-byte file "
                    "(torn or interrupted write)"
                )
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CorruptCellError(
                    f"corrupt cell artifact {path!r}: invalid JSON ({exc})"
                ) from exc
            if not isinstance(body, dict):
                raise CorruptCellError(
                    f"corrupt cell artifact {path!r}: expected a JSON object, "
                    f"got {type(body).__name__}"
                )
            integrity = body.pop("integrity", None)
            if integrity is not None:
                expected = integrity.get("digest")
                actual = cell_checksum(body)
                if actual != expected:
                    raise CorruptCellError(
                        f"corrupt cell artifact {path!r}: checksum mismatch "
                        f"(stored {str(expected)[:12]}…, computed "
                        f"{actual[:12]}…)"
                    )
            else:
                # Pre-checksum artifact: accepted, but never silently.
                self.legacy_unverified += 1
                from repro.obs.recorder import get_recorder

                metrics = get_recorder().metrics
                if metrics is not None:
                    metrics.inc("campaign.cells.legacy_unverified")
            return body
        raise ConfigError(
            f"cannot load cell artifact {path!r}: {last_os_error}"
        ) from last_os_error

    def quarantine_cell(self, key: str) -> str:
        """Move a corrupt cell artifact aside (``quarantine/<key>.json``).

        The artifact is preserved for post-mortem rather than deleted,
        and the cells directory no longer lists the key — so the resume
        loop re-executes exactly that cell.
        """
        src = self.cell_path(key)
        quarantine_dir = os.path.join(self.root, "quarantine")
        os.makedirs(quarantine_dir, exist_ok=True)
        dst = os.path.join(quarantine_dir, f"{key}.json")
        os.replace(src, dst)
        return dst

    # ------------------------------------------------------------------ #
    # Run manifest (provenance of the latest run; never read by resume)
    # ------------------------------------------------------------------ #
    def write_run_manifest(self, **extra) -> str:
        """Stamp the store with this run's provenance (rewritten per run).

        The manifest is observability metadata only — resume and report
        logic never consult it, so it carries wall-clock content without
        threatening report byte-identity.
        """
        from repro.obs.manifest import build_manifest

        atomic_write_json(self.manifest_path, build_manifest(**extra))
        return self.manifest_path

    def load_run_manifest(self) -> dict:
        try:
            with open(self.manifest_path) as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot load run manifest {self.manifest_path!r}: {exc}"
            ) from exc

    # ------------------------------------------------------------------ #
    # Report
    # ------------------------------------------------------------------ #
    def write_report(self, report: dict) -> str:
        atomic_write_json(self.report_path, report)
        return self.report_path

    def load_report(self) -> dict:
        path = self.report_path
        try:
            with open(path, "rb") as fh:
                raw = fh.read()
        except OSError as exc:
            raise ConfigError(
                f"cannot load campaign report {path!r}: {exc}"
            ) from exc
        if not raw.strip():
            raise CorruptCellError(
                f"corrupt campaign report {path!r}: zero-byte file "
                "(torn or interrupted write)"
            )
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot load campaign report {path!r}: {exc}"
            ) from exc
