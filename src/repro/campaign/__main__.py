"""Campaign CLI.

    python -m repro.campaign list
    python -m repro.campaign show policy-shootout [--spec-json grid.json]
    python -m repro.campaign run policy-shootout --out runs/shootout \
        [--workers 4] [--resume] [--report-json report.json]
    python -m repro.campaign run --spec grid.json --out runs/custom
    python -m repro.campaign resume runs/shootout [--workers 4]
    python -m repro.campaign report runs/shootout [--json report.json]

``run`` executes a registered campaign (or a ``--spec`` JSON grid),
checkpointing one artifact per completed cell under ``--out``; a killed
run continues with ``--resume`` (or the ``resume`` subcommand, which
reads the grid back from the store) and produces a report byte-identical
to an uninterrupted run.  ``report`` re-aggregates from checkpoints
without executing anything.

``run`` also takes ``--trace-out`` (span JSONL, first line the run's
provenance manifest) and ``--metrics-out`` (metrics summary JSON); every
run stamps ``manifest.json`` into the store.  Observability never touches
the simulation — reports stay byte-identical with it on or off.
"""

from __future__ import annotations

import argparse
import os
import sys

import json

from repro.campaign.builtins import CAMPAIGNS
from repro.campaign.runner import CampaignRunner, report_from_store
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore
from repro.errors import ConfigError, ReproError
from repro.faults import FaultPlan, chaos
from repro.fleet.__main__ import add_fault_flags, build_retry_policy
from repro.obs.manifest import build_manifest
from repro.obs.recorder import Recorder, recording


def _build_spec(args) -> CampaignSpec:
    if args.spec:
        if getattr(args, "campaign", None):
            raise ConfigError(
                f"got both a campaign name ({args.campaign!r}) and --spec "
                f"({args.spec!r}); pick one"
            )
        return CampaignSpec.from_json(args.spec)
    if not args.campaign:
        raise ConfigError("need a campaign name or --spec FILE")
    return CAMPAIGNS.build(args.campaign)


def _progress(cell, status) -> None:
    if status == "corrupt":
        print(f"  ! {cell.key}  (checkpoint corrupt: quarantined, re-running)")
        return
    marker = "·" if status == "skip" else ">"
    print(f"  {marker} {cell.key}" + ("  (checkpointed, skipping)" if status == "skip" else ""))


def _run(
    spec: CampaignSpec, out: str, workers: int, resume: bool, report_json,
    engine: str = "auto", trace_out=None, metrics_out=None,
    chaos_plan=None, retry=None, shard_devices=None,
) -> int:
    store = CampaignStore(out)
    runner = CampaignRunner(
        spec, store=store, workers=workers, resume=resume, engine=engine,
        retry=retry, shard_devices=shard_devices,
    )
    recorder = None
    if trace_out or metrics_out:
        recorder = Recorder(metrics=True, trace=trace_out)
        if recorder.trace is not None:
            recorder.trace.emit(
                {
                    "type": "manifest",
                    **build_manifest(
                        campaign=spec.name,
                        campaign_digest=spec.digest(),
                        workers=workers,
                        engine=engine,
                    ),
                }
            )
    with chaos(chaos_plan) as injector:
        if recorder is None:
            result = runner.run(progress=_progress)
        else:
            with recording(recorder):
                result = runner.run(progress=_progress)
            recorder.close()
    if chaos_plan is not None:
        fired = sum(injector.fired_summary().values())
        print(f"chaos: {len(chaos_plan)} fault(s) planned, {fired} injected")
    quarantined = (
        f", {runner.quarantined} corrupt checkpoint(s) quarantined + re-run"
        if runner.quarantined
        else ""
    )
    legacy = (
        f", {runner.legacy_unverified} legacy cell(s) loaded unverified "
        "(no checksum)"
        if runner.legacy_unverified
        else ""
    )
    print(
        f"campaign {spec.name!r}: {runner.executed} cell(s) executed, "
        f"{runner.skipped} loaded from checkpoints{quarantined}{legacy}"
    )
    print(result.render_text())
    print(f"wrote report to {store.report_path}")
    if report_json:
        result.to_json(report_json)
        print(f"wrote report copy to {report_json}")
    if recorder is not None:
        if trace_out:
            print(f"wrote trace to {trace_out}")
        if metrics_out:
            payload = {
                "manifest": build_manifest(
                    campaign=spec.name,
                    campaign_digest=spec.digest(),
                    workers=workers,
                    engine=engine,
                ),
            }
            payload.update(recorder.to_dict())
            with open(metrics_out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote metrics to {metrics_out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run resumable controller×scenario×seed sweep campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered campaigns")

    show = sub.add_parser("show", help="print (or export) a campaign's grid spec")
    show.add_argument("campaign")
    show.add_argument("--spec-json", default=None, help="write the CampaignSpec to this path")

    run = sub.add_parser("run", help="execute a campaign with checkpointing")
    run.add_argument("campaign", nargs="?", default=None, help="registered campaign name")
    run.add_argument("--spec", default=None, help="run a CampaignSpec JSON file instead")
    run.add_argument("--out", required=True, help="checkpoint/report directory")
    run.add_argument("--workers", type=int, default=1, help="process count (<=1: serial)")
    run.add_argument("--engine", choices=("auto", "batched", "device"), default="auto",
                     help="fleet engine for every cell (see repro.fleet)")
    run.add_argument("--resume", action="store_true",
                     help="skip cells already checkpointed under --out")
    run.add_argument("--shard-cells", type=int, default=None, metavar="N",
                     help="route cells larger than N devices through a "
                          "durable shard ledger (N-device shards under "
                          "<out>/shard-ledgers/; crash-safe at shard "
                          "granularity, reports byte-identical)")
    run.add_argument("--report-json", default=None, help="also write the report here")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write tracing spans as JSON lines (first line: "
                          "the run manifest)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the collected metrics summary as JSON")
    add_fault_flags(run)

    resume = sub.add_parser("resume", help="continue an interrupted run from its store")
    resume.add_argument("out", help="checkpoint directory of the interrupted run")
    resume.add_argument("--workers", type=int, default=1, help="process count (<=1: serial)")
    resume.add_argument("--report-json", default=None, help="also write the report here")
    add_fault_flags(resume)

    report = sub.add_parser("report", help="re-aggregate a finished run (no execution)")
    report.add_argument("out", help="checkpoint directory")
    report.add_argument("--json", default=None, help="also write the report here")

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for name in CAMPAIGNS.names():
                print(f"{name:<24} {CAMPAIGNS.describe(name)}")
            return 0
        if args.command == "show":
            spec = CAMPAIGNS.build(args.campaign)
            if args.spec_json:
                spec.to_json(args.spec_json)
                print(f"wrote {spec.num_cells}-cell campaign spec to {args.spec_json}")
            else:
                print(spec.canonical_json())
            return 0
        if args.command == "run":
            spec = _build_spec(args)
            plan = FaultPlan.from_json(args.chaos) if args.chaos else None
            return _run(spec, args.out, args.workers, args.resume, args.report_json,
                        engine=args.engine, trace_out=args.trace_out,
                        metrics_out=args.metrics_out,
                        chaos_plan=plan, retry=build_retry_policy(args),
                        shard_devices=args.shard_cells)
        if args.command == "resume":
            spec = CampaignStore(args.out).load_spec()
            plan = FaultPlan.from_json(args.chaos) if args.chaos else None
            return _run(spec, args.out, args.workers, True, args.report_json,
                        chaos_plan=plan, retry=build_retry_policy(args))
        # report
        store = CampaignStore(args.out)
        result = report_from_store(store)
        print(result.render_text())
        if store.legacy_unverified:
            print(
                f"note: {store.legacy_unverified} cell(s) loaded unverified "
                "(legacy artifacts with no checksum)"
            )
        if args.json:
            result.to_json(args.json)
            print(f"wrote report copy to {args.json}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
