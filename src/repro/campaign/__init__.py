"""Resumable controller×scenario×seed sweep campaigns.

The paper's core claim is comparative — the learned runtime controller
beats static exit policies *across harvesting conditions* — so the unit
of evaluation is not one simulation but a grid.  This package turns the
fleet layer into that grid engine:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, a JSON-serializable
  grid over scenarios × controller presets × a seed bank, expanding into
  :class:`CampaignCell` jobs with unique, filesystem-safe keys;
* :mod:`repro.campaign.store` — :class:`CampaignStore`, the on-disk
  checkpoint layout (one atomic JSON artifact per completed cell) behind
  ``--resume``;
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, which executes
  cells through :class:`~repro.fleet.runner.FleetRunner` over one warm
  worker pool and checkpoints each one;
* :mod:`repro.campaign.report` — :class:`CampaignResult`, per-cell tables
  plus seed-matched controller marginals and seed-spread percentiles;
* :mod:`repro.campaign.builtins` — the :data:`CAMPAIGNS` registry
  (``policy-shootout``, ``harvester-ablation``, ``seed-robustness``,
  ``dev-smoke``).

CLI: ``python -m repro.campaign run policy-shootout --out runs/shootout``.
"""

from repro.campaign.builtins import CAMPAIGNS
from repro.campaign.report import CampaignResult
from repro.campaign.runner import (
    CampaignRunner,
    build_cell_fleet,
    report_from_store,
    run_campaign,
    run_cell,
)
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CampaignStore

__all__ = [
    "CAMPAIGNS",
    "CampaignCell",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStore",
    "build_cell_fleet",
    "report_from_store",
    "run_campaign",
    "run_cell",
]
