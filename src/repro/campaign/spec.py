"""Declarative sweep grids: :class:`CampaignSpec` and :class:`CampaignCell`.

A campaign is the cartesian product of three axes:

* **scenarios** — named fleet scenarios (with factory overrides) from the
  :data:`~repro.fleet.scenarios.SCENARIOS` registry;
* **controllers** — named controller presets (or inline controller dicts)
  that replace the controller of *every* device in the scenario's fleet;
* **seeds** — a bank of fleet seeds replicated across the grid.

Controllers are compared under **identical seeds**: for a fixed
(scenario, seed), every controller cell sees the same fleet layout, the
same harvesting traces, and the same event arrivals — only the exit
policy differs, which is exactly the comparison the paper's evaluation
(learned runtime vs. static policies, Fig. 7) is built on.

Like :mod:`repro.fleet.spec`, everything here is plain data with an exact
JSON round-trip, so a campaign file plus the code version pins the whole
evaluation matrix.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Optional
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fleet.scenarios import SCENARIOS
from repro.runtime.controller import CONTROLLER_KINDS, controller_preset

#: Cell keys double as checkpoint filenames, so every axis label must be
#: filesystem-safe on every platform.
_LABEL_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def _check_label(kind: str, label) -> str:
    if not isinstance(label, str) or not _LABEL_RE.fullmatch(label):
        raise ConfigError(
            f"{kind} label must match {_LABEL_RE.pattern} "
            f"(it names checkpoint files), got {label!r}"
        )
    if "--" in label:
        # "--" is the cell-key separator; a label containing it could make
        # two distinct cells collide on one checkpoint file.
        raise ConfigError(f"{kind} label must not contain '--', got {label!r}")
    return label


@dataclass(frozen=True)
class CampaignCell:
    """One point of the grid: (scenario entry, controller entry, seed)."""

    scenario_label: str
    scenario: str          # registered scenario name
    overrides: tuple       # sorted (key, value) pairs for the factory
    controller_name: str
    controller: tuple      # sorted (key, value) pairs of the controller spec
    seed: int

    @property
    def key(self) -> str:
        """Unique, filesystem-safe cell id (one checkpoint file per key)."""
        return f"{self.scenario_label}--{self.controller_name}--s{self.seed}"

    def controller_spec(self) -> dict:
        return dict(self.controller)

    def override_kwargs(self) -> dict:
        return dict(self.overrides)


def _normalize_scenario(entry) -> dict:
    if isinstance(entry, str):
        entry = {"scenario": entry}
    if not isinstance(entry, dict):
        raise ConfigError(
            f"scenario axis entries must be names or dicts, got {type(entry).__name__}"
        )
    entry = dict(entry)
    name = entry.pop("scenario", None)
    if name not in SCENARIOS.names():
        raise ConfigError(
            f"unknown scenario {name!r} in campaign; available: {SCENARIOS.names()}"
        )
    label = _check_label("scenario", entry.pop("label", name))
    overrides = entry.pop("overrides", {})
    if entry:
        raise ConfigError(f"unknown scenario-entry fields: {sorted(entry)}")
    if not isinstance(overrides, dict):
        raise ConfigError("scenario overrides must be a dict")
    if "seed" in overrides:
        raise ConfigError(
            f"scenario {label!r}: the seed comes from the campaign's seed "
            "axis, not from scenario overrides"
        )
    return {"label": label, "scenario": name, "overrides": dict(overrides)}


def _normalize_controller(entry) -> dict:
    if isinstance(entry, str):
        return {"name": _check_label("controller", entry),
                "controller": controller_preset(entry)}
    if not isinstance(entry, dict):
        raise ConfigError(
            f"controller axis entries must be preset names or dicts, "
            f"got {type(entry).__name__}"
        )
    entry = dict(entry)
    name = _check_label("controller", entry.pop("name", None))
    controller = entry.pop("controller", None)
    if entry:
        raise ConfigError(f"unknown controller-entry fields: {sorted(entry)}")
    if not isinstance(controller, dict):
        raise ConfigError(f"controller {name!r}: needs a controller spec dict")
    kind = controller.get("kind")
    if kind not in CONTROLLER_KINDS:
        raise ConfigError(
            f"controller {name!r}: kind must be one of {CONTROLLER_KINDS}, "
            f"got {kind!r}"
        )
    return {"name": name, "controller": dict(controller)}


@dataclass
class CampaignSpec:
    """A named controller×scenario×seed sweep grid (JSON round-trippable).

    ``baseline`` names the controller the marginal report diffs the others
    against; it defaults to the first controller-axis entry.
    """

    name: str
    scenarios: list
    controllers: list
    seeds: list
    baseline: Optional[str] = None
    description: str = ""

    def __post_init__(self):
        _check_label("campaign", self.name)
        if not self.scenarios:
            raise ConfigError(f"campaign {self.name!r} has an empty scenario axis")
        if not self.controllers:
            raise ConfigError(f"campaign {self.name!r} has an empty controller axis")
        if not self.seeds:
            raise ConfigError(f"campaign {self.name!r} has an empty seed axis")
        self.scenarios = [_normalize_scenario(s) for s in self.scenarios]
        self.controllers = [_normalize_controller(c) for c in self.controllers]
        labels = [s["label"] for s in self.scenarios]
        if len(set(labels)) != len(labels):
            raise ConfigError(f"campaign {self.name!r}: duplicate scenario labels")
        names = [c["name"] for c in self.controllers]
        if len(set(names)) != len(names):
            raise ConfigError(f"campaign {self.name!r}: duplicate controller names")
        for s in self.seeds:
            if not isinstance(s, int) or isinstance(s, bool):
                raise ConfigError(
                    f"campaign {self.name!r}: seeds must be ints, got {s!r}"
                )
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigError(f"campaign {self.name!r}: duplicate seeds")
        if self.baseline is None:
            self.baseline = self.controllers[0]["name"]
        elif self.baseline not in names:
            raise ConfigError(
                f"campaign {self.name!r}: baseline {self.baseline!r} is not "
                f"on the controller axis {names}"
            )

    # ------------------------------------------------------------------ #
    # Grid expansion
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return len(self.scenarios) * len(self.controllers) * len(self.seeds)

    def cells(self) -> list:
        """Expand the grid, scenario-major then controller then seed.

        The order is part of the contract: checkpoint resume walks the
        same list, and reports group cells per (scenario, seed) block.
        """
        out = []
        for s in self.scenarios:
            for c in self.controllers:
                for seed in self.seeds:
                    out.append(
                        CampaignCell(
                            scenario_label=s["label"],
                            scenario=s["scenario"],
                            overrides=tuple(sorted(s["overrides"].items())),
                            controller_name=c["name"],
                            controller=tuple(sorted(c["controller"].items())),
                            seed=int(seed),
                        )
                    )
        return out

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "baseline": self.baseline,
            "scenarios": [
                {"label": s["label"], "scenario": s["scenario"],
                 "overrides": dict(s["overrides"])}
                for s in self.scenarios
            ],
            "controllers": [
                {"name": c["name"], "controller": dict(c["controller"])}
                for c in self.controllers
            ],
            "seeds": list(self.seeds),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        missing = {"name", "scenarios", "controllers", "seeds"} - set(data)
        if missing:
            raise ConfigError(f"campaign spec is missing fields: {sorted(missing)}")
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigError(f"unknown CampaignSpec fields: {sorted(unknown)}")
        return cls(
            name=data["name"],
            scenarios=data["scenarios"],
            controllers=data["controllers"],
            seeds=data["seeds"],
            baseline=data.get("baseline"),
            description=data.get("description", ""),
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """Content hash of the grid — the resume-compatibility check."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.canonical_json())
            fh.write("\n")

    @classmethod
    def from_json(cls, path: str) -> "CampaignSpec":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load campaign spec {path!r}: {exc}") from exc
        return cls.from_dict(data)
