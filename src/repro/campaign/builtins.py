"""Built-in campaigns: the paper's evaluation matrix as named grids.

Mirrors :data:`repro.fleet.scenarios.SCENARIOS`: a registry of factories
that expand a few knobs into a full :class:`CampaignSpec`, addressable
from the CLI (``python -m repro.campaign run policy-shootout``) and from
tests.  ``BENCH_SMOKE=1`` shrinks every grid to a seconds-scale version
for CI smoke lanes, the same contract the benchmark suite uses.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.campaign.spec import CampaignSpec
from repro.experiment import seed_bank
from repro.fleet.scenarios import ScenarioRegistry

#: The global campaign registry the CLI and tests resolve against.
CAMPAIGNS = ScenarioRegistry(kind="campaign")


def _smoke() -> bool:
    return os.environ.get("BENCH_SMOKE", "").strip().lower() in (
        "1", "true", "yes", "on"
    )


@CAMPAIGNS.register(
    "policy-shootout",
    "Every controller preset against the dev-smoke fleet under a shared "
    "seed bank: the paper's learned-vs-static comparison (Fig. 7) as a grid.",
)
def policy_shootout(
    num_devices: int = 4, duration: float = 900.0, num_seeds: Optional[int] = None
) -> CampaignSpec:
    if num_seeds is None:
        num_seeds = 2 if _smoke() else 3
    return CampaignSpec(
        name="policy-shootout",
        description="all controller presets, seed-matched, on dev-smoke",
        scenarios=[
            {"scenario": "dev-smoke", "label": "dev-smoke",
             "overrides": {"num_devices": num_devices, "duration": duration}},
        ],
        controllers=[
            "static-lut", "qlearning", "greedy", "greedy-all-in", "fixed-first",
        ],
        seeds=seed_bank(num_seeds),
        baseline="static-lut",
    )


@CAMPAIGNS.register(
    "harvester-ablation",
    "Q-learning vs greedy across harvesting regimes (solar farm, indoor "
    "RF, mixed city): which environments need a learned runtime?",
)
def harvester_ablation(
    num_devices: Optional[int] = None, num_seeds: int = 2
) -> CampaignSpec:
    if num_devices is None:
        num_devices = 2 if _smoke() else 4
    duration = 900.0 if _smoke() else 3600.0
    return CampaignSpec(
        name="harvester-ablation",
        description="learned vs greedy runtime across harvesting regimes",
        scenarios=[
            {"scenario": "solar-farm-100", "label": "solar",
             "overrides": {"num_devices": num_devices, "duration": duration}},
            {"scenario": "indoor-rf-swarm", "label": "indoor-rf",
             "overrides": {"num_devices": num_devices, "duration": duration}},
            {"scenario": "mixed-harvester-city", "label": "mixed-city",
             "overrides": {"num_devices": num_devices, "duration": duration}},
        ],
        controllers=["greedy", "qlearning"],
        seeds=seed_bank(num_seeds),
        baseline="greedy",
    )


@CAMPAIGNS.register(
    "seed-robustness",
    "One controller pair over a deep seed bank on dev-smoke: how much of "
    "the comparison survives trace/event randomness?",
)
def seed_robustness(
    num_devices: int = 4, duration: float = 900.0, num_seeds: Optional[int] = None
) -> CampaignSpec:
    if num_seeds is None:
        num_seeds = 3 if _smoke() else 8
    return CampaignSpec(
        name="seed-robustness",
        description="controller deltas across a deep seed bank",
        scenarios=[
            {"scenario": "dev-smoke", "label": "dev-smoke",
             "overrides": {"num_devices": num_devices, "duration": duration}},
        ],
        controllers=["static-lut", "qlearning"],
        seeds=seed_bank(num_seeds),
        baseline="static-lut",
    )


@CAMPAIGNS.register(
    "dev-smoke",
    "2-cell micro-campaign for tests, docs, and the CI campaign-smoke lane.",
)
def dev_smoke_campaign(num_devices: int = 2, duration: float = 300.0) -> CampaignSpec:
    return CampaignSpec(
        name="dev-smoke",
        description="micro campaign exercising run/checkpoint/report",
        scenarios=[
            {"scenario": "dev-smoke", "label": "dev-smoke",
             "overrides": {"num_devices": num_devices, "duration": duration}},
        ],
        controllers=["greedy", "fixed-first"],
        seeds=seed_bank(1),
    )
