"""Campaign aggregation: per-cell tables and cross-controller marginals.

:class:`CampaignResult` consumes the deterministic per-cell payloads the
runner checkpoints (no wall-clock content) and reduces them two ways:

* **marginals** — for every (scenario, seed), each controller's fleet
  summary minus the baseline controller's under the *same* seed (same
  traces, same arrivals), then averaged over the seed bank.  This is the
  paper's comparison: does the learned runtime beat the static policies
  under identical harvesting conditions?
* **seed spread** — per (scenario, controller) percentile tables over the
  seed axis, the robustness view.

Everything reduces in grid order from JSON-safe scalars, so a report
rebuilt from checkpoints is byte-identical to the one produced live.
"""

from __future__ import annotations

import json

from repro.errors import ConfigError
from repro.sim.results import reduce_summaries, summary_delta

#: Fleet-aggregate metrics the comparative reductions run over.
COMPARE_METRICS = (
    "average_accuracy",
    "fleet_iepmj",
    "total_consumed_mj",
    "mean_exit_depth",
)


class CampaignResult:
    """All completed cells of one campaign, plus the comparative reductions."""

    def __init__(self, spec, cell_payloads: dict):
        """``cell_payloads`` maps cell key -> checkpointed payload dict."""
        self.spec = spec
        self.cells = []
        #: cell key -> ``{"wall_s", "engine", "workers", "parallel"}`` for
        #: cells whose payload carried a ``"timing"`` key.  Timing is
        #: stripped *before* aggregation so ``report.json`` stays free of
        #: wall-clock content (the resume byte-identity contract); it only
        #: surfaces in :meth:`render_text`'s per-cell columns.
        self.cell_timing = {}
        missing = []
        for cell in spec.cells():
            payload = cell_payloads.get(cell.key)
            if payload is None:
                missing.append(cell.key)
            else:
                payload = dict(payload)
                timing = payload.pop("timing", None)
                if timing is not None:
                    self.cell_timing[cell.key] = timing
                self.cells.append(payload)
        if missing:
            raise ConfigError(
                f"campaign {spec.name!r}: {len(missing)} cell(s) missing "
                f"from the store (first: {missing[0]!r}); finish the grid "
                "with the `resume` subcommand (or `run ... --resume`) first"
            )
        # Checkpoints can come from disk, so validate the payload schema
        # up front: a hand-edited or cross-version artifact surfaces as a
        # ConfigError here, not a KeyError deep inside a reduction.
        for cell, payload in zip(spec.cells(), self.cells):
            fleet = payload.get("fleet")
            bad = (
                [k for k in COMPARE_METRICS if k not in fleet]
                if isinstance(fleet, dict) else list(COMPARE_METRICS)
            )
            if bad:
                raise ConfigError(
                    f"cell artifact {cell.key!r} is missing fleet metric(s) "
                    f"{bad}; the checkpoint predates this code version or "
                    "was edited — delete it and resume to re-execute"
                )
        # Cells and spec never change after construction, so lookups and
        # the (O(cells * metrics)) reductions are computed once.  Keyed by
        # (scenario, controller, seed) so the cell-key *format* stays
        # defined in exactly one place (CampaignCell.key).
        self._index = {
            (c.scenario_label, c.controller_name, c.seed): p
            for c, p in zip(spec.cells(), self.cells)
        }
        self._marginals = None
        self._seed_spread = None

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def _fleet(self, scenario_label: str, controller_name: str, seed: int) -> dict:
        return self._index[(scenario_label, controller_name, seed)]["fleet"]

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def marginals(self) -> dict:
        """Per-scenario controller deltas vs. the baseline, seed-matched."""
        if self._marginals is not None:
            return self._marginals
        out = {}
        baseline = self.spec.baseline
        for s in self.spec.scenarios:
            label = s["label"]
            per_controller = {}
            for c in self.spec.controllers:
                name = c["name"]
                if name == baseline:
                    continue
                per_seed = {}
                for seed in self.spec.seeds:
                    per_seed[str(seed)] = summary_delta(
                        self._fleet(label, baseline, seed),
                        self._fleet(label, name, seed),
                        keys=list(COMPARE_METRICS),
                    )
                mean = {
                    metric: sum(d[metric] for d in per_seed.values()) / len(per_seed)
                    for metric in COMPARE_METRICS
                }
                per_controller[name] = {
                    "vs": baseline,
                    "mean": mean,
                    "per_seed": per_seed,
                }
            out[label] = per_controller
        self._marginals = out
        return out

    def seed_spread(self, qs=(10, 50, 90)) -> dict:
        """Percentile tables over the seed axis per (scenario, controller)."""
        if qs == (10, 50, 90) and self._seed_spread is not None:
            return self._seed_spread
        out = {}
        for s in self.spec.scenarios:
            label = s["label"]
            per_controller = {}
            for c in self.spec.controllers:
                name = c["name"]
                summaries = [
                    self._fleet(label, name, seed) for seed in self.spec.seeds
                ]
                per_controller[name] = reduce_summaries(
                    summaries, COMPARE_METRICS, qs
                )
            out[label] = per_controller
        if qs == (10, 50, 90):
            self._seed_spread = out
        return out

    # ------------------------------------------------------------------ #
    # Serialization / rendering
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "campaign": self.spec.name,
            "description": self.spec.description,
            "digest": self.spec.digest(),
            "baseline": self.spec.baseline,
            "num_cells": self.spec.num_cells,
            "cells": self.cells,
            "marginals": self.marginals(),
            "seed_spread": self.seed_spread(),
        }

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def render_text(self) -> str:
        """Human-readable report for the CLI (tables + marginal summary)."""
        lines = []
        spec = self.spec
        lines.append(
            f"campaign {spec.name!r}: {len(spec.scenarios)} scenario(s) x "
            f"{len(spec.controllers)} controller(s) x {len(spec.seeds)} "
            f"seed(s) = {spec.num_cells} cells"
        )
        lines.append(
            f"  {'cell':<42} {'acc':>6} {'IEpmJ':>7} {'depth':>6} "
            f"{'consumed mJ':>12} {'missed':>7} {'wall s':>8} {'engine':>8}"
        )
        for payload in self.cells:
            fleet = payload["fleet"]
            timing = self.cell_timing.get(payload["key"])
            if timing is None:
                wall, engine = f"{'-':>8}", f"{'-':>8}"
            else:
                wall = f"{timing['wall_s']:8.2f}"
                engine = f"{timing.get('engine', '-'):>8}"
            lines.append(
                f"  {payload['key']:<42} {fleet['average_accuracy']:6.3f} "
                f"{fleet['fleet_iepmj']:7.3f} {fleet['mean_exit_depth']:6.3f} "
                f"{fleet['total_consumed_mj']:12.2f} {fleet['missed']:7d} "
                f"{wall} {engine}"
            )
        marginals = self.marginals()
        for label, per_controller in marginals.items():
            for name, entry in per_controller.items():
                mean = entry["mean"]
                lines.append(
                    f"  [{label}] {name} vs {entry['vs']}: "
                    f"acc {mean['average_accuracy']:+.3f}  "
                    f"IEpmJ {mean['fleet_iepmj']:+.3f}  "
                    f"depth {mean['mean_exit_depth']:+.3f}  "
                    f"energy {mean['total_consumed_mj']:+.2f} mJ "
                    f"(mean over {len(entry['per_seed'])} seed(s))"
                )
        return "\n".join(lines)
