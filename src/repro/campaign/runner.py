"""Campaign execution: expand the grid, run cells, checkpoint, aggregate.

A cell executes as one fleet run: the scenario factory expands with the
cell's seed, every device's controller is replaced by the cell's
controller spec (same layout + traces + arrivals, different policy), and
the fleet goes through :class:`~repro.fleet.runner.FleetRunner`.

Two properties matter more than speed:

* **resumability** — each completed cell is checkpointed atomically via
  :class:`~repro.campaign.store.CampaignStore` before the next one
  starts, and a ``resume`` run loads finished cells instead of
  re-executing them;
* **determinism** — cell payloads carry only seed-pinned content, so
  resumed, re-ordered, or re-run campaigns aggregate byte-identically.

Parallel campaigns reuse one :func:`~repro.fleet.runner.worker_pool`
across *all* cells, so the per-process trace memo cache in the workers
stays warm between cells that share harvesting environments (the same
(family, params, seed) appears once per seed, not once per controller).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.campaign.report import CampaignResult
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.errors import ConfigError, CorruptCellError
from repro.faults.retry import RetryPolicy
from repro.fleet.runner import FleetRunner, worker_pool
from repro.obs.recorder import get_recorder
from repro.obs.tracing import span
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.spec import FleetSpec


def build_cell_fleet(cell: CampaignCell) -> FleetSpec:
    """Expand one cell into its fleet: scenario @ seed, controller swapped."""
    fleet = SCENARIOS.build(cell.scenario, seed=cell.seed, **cell.override_kwargs())
    controller = cell.controller_spec()
    devices = [replace(d, controller=dict(controller)) for d in fleet.devices]
    return replace(fleet, devices=devices, name=cell.key)


def run_cell(
    cell: CampaignCell,
    workers: int = 1,
    pool=None,
    engine: str = "auto",
    retry: Optional[RetryPolicy] = None,
) -> dict:
    """Execute one cell and summarize it as a JSON-safe checkpoint payload.

    Everything outside the ``"timing"`` key is deterministic in the cell
    alone — no wall-clock, no worker count, no engine choice (the batched
    engine is bit-identical to the per-device path) — which is what lets
    resumed runs mix checkpointed and freshly-executed cells into one
    byte-identical report: :class:`~repro.campaign.report.CampaignResult`
    strips ``"timing"`` into a side table before aggregating, so it
    reaches ``campaign report``'s per-cell columns but never
    ``report.json``.
    """
    with span("campaign.cell", cell=cell.key):
        fleet_spec = build_cell_fleet(cell)
        runner = FleetRunner(fleet_spec, workers=workers, engine=engine, retry=retry)
        result = runner.run(pool=pool)
    payload = {
        "key": cell.key,
        "scenario_label": cell.scenario_label,
        "scenario": cell.scenario,
        "overrides": cell.override_kwargs(),
        "controller_name": cell.controller_name,
        "controller": cell.controller_spec(),
        "seed": cell.seed,
        "devices": result.num_devices,
        "fleet": result.aggregate(),
        "timing": {
            "wall_s": result.wall_s,
            "engine": engine,
            "workers": result.workers,
            "parallel": bool(runner.last_run_parallel),
        },
    }
    if result.failures:
        # Quarantined devices are part of the deterministic payload: a
        # resumed report must state them the same way a fresh one would.
        payload["failures"] = [f.to_dict() for f in result.failures]
    return payload


class CampaignRunner:
    """Drives one campaign against a checkpoint store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[CampaignStore] = None,
        workers: int = 1,
        resume: bool = False,
        engine: str = "auto",
        retry: Optional[RetryPolicy] = None,
    ):
        if not isinstance(spec, CampaignSpec):
            raise ConfigError("CampaignRunner needs a CampaignSpec")
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigError("retry must be a RetryPolicy (or None)")
        self.spec = spec
        self.store = store
        self.workers = int(workers)
        self.resume = bool(resume)
        self.engine = engine
        self.retry = retry
        #: Filled by :meth:`run`: cells executed vs. loaded from checkpoints.
        self.executed = 0
        self.skipped = 0
        #: Checkpoints found corrupt on resume, moved aside, and re-run.
        self.quarantined = 0

    def _load_checkpoint(self, cell, progress):
        """Load one finished cell; quarantine and signal re-run if corrupt.

        Returns the payload, or ``None`` when the artifact failed
        verification — in which case it has been moved to
        ``quarantine/`` and the caller re-executes the cell.  Corruption
        costs one checkpoint, never the campaign.
        """
        try:
            return self.store.load_cell(cell.key)
        except CorruptCellError:
            self.store.quarantine_cell(cell.key)
            self.quarantined += 1
            if progress is not None:
                progress(cell, "corrupt")
            return None

    def run(self, progress=None) -> CampaignResult:
        """Execute (or finish) the grid; returns the aggregated result.

        ``progress`` is an optional ``callback(cell, status)`` with status
        ``"run"``, ``"skip"``, or ``"corrupt"`` (a checkpoint that failed
        integrity verification on resume and is being re-run), called
        before each cell — the CLI's ticker, and the injection point
        tests use to interrupt mid-grid.
        """
        cells = self.spec.cells()
        done = set()
        if self.store is not None:
            self.store.initialize(self.spec, resume=self.resume)
            self.store.write_run_manifest(
                campaign=self.spec.name,
                campaign_digest=self.spec.digest(),
                workers=self.workers,
                engine=self.engine,
                resume=self.resume,
            )
            if self.resume:
                done = self.store.completed_keys()
        payloads = {}
        self.executed = 0
        self.skipped = 0
        self.quarantined = 0
        with span(
            "campaign.run", campaign=self.spec.name, cells=len(cells)
        ), worker_pool(self.workers) as pool:
            for cell in cells:
                if cell.key in done:
                    payload = self._load_checkpoint(cell, progress)
                    if payload is not None:
                        if progress is not None:
                            progress(cell, "skip")
                        payloads[cell.key] = payload
                        self.skipped += 1
                        continue
                    # fall through: corrupt checkpoint, re-run the cell
                elif progress is not None:
                    progress(cell, "run")
                payload = run_cell(
                    cell,
                    workers=self.workers,
                    pool=pool,
                    engine=self.engine,
                    retry=self.retry,
                )
                if self.store is not None:
                    self.store.save_cell(cell.key, payload)
                payloads[cell.key] = payload
                self.executed += 1
        metrics = get_recorder().metrics
        if metrics is not None:
            metrics.inc("campaign.runs")
            metrics.inc("campaign.cells.executed", self.executed)
            metrics.inc("campaign.cells.skipped", self.skipped)
            metrics.inc("campaign.cells.quarantined", self.quarantined)
        result = CampaignResult(self.spec, payloads)
        if self.store is not None:
            self.store.write_report(result.to_dict())
        return result


def run_campaign(
    spec: CampaignSpec,
    out: Optional[str] = None,
    workers: int = 1,
    resume: bool = False,
    progress=None,
    engine: str = "auto",
    retry: Optional[RetryPolicy] = None,
) -> CampaignResult:
    """One-call convenience wrapper: optional store at ``out``."""
    store = CampaignStore(out) if out else None
    return CampaignRunner(
        spec,
        store=store,
        workers=workers,
        resume=resume,
        engine=engine,
        retry=retry,
    ).run(progress=progress)


def report_from_store(store: CampaignStore) -> CampaignResult:
    """Rebuild the aggregate report purely from checkpoints (no execution)."""
    spec = store.load_spec()
    payloads = {key: store.load_cell(key) for key in store.completed_keys()}
    return CampaignResult(spec, payloads)
