"""Campaign execution: expand the grid, run cells, checkpoint, aggregate.

A cell executes as one fleet run: the scenario factory expands with the
cell's seed, every device's controller is replaced by the cell's
controller spec (same layout + traces + arrivals, different policy), and
the fleet goes through :class:`~repro.fleet.runner.FleetRunner`.

Two properties matter more than speed:

* **resumability** — each completed cell is checkpointed atomically via
  :class:`~repro.campaign.store.CampaignStore` before the next one
  starts, and a ``resume`` run loads finished cells instead of
  re-executing them;
* **determinism** — cell payloads carry only seed-pinned content, so
  resumed, re-ordered, or re-run campaigns aggregate byte-identically.

Parallel campaigns reuse one :func:`~repro.fleet.runner.worker_pool`
across *all* cells, so the per-process trace memo cache in the workers
stays warm between cells that share harvesting environments (the same
(family, params, seed) appears once per seed, not once per controller).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Optional

from repro.campaign.report import CampaignResult
from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CampaignStore
from repro.errors import ConfigError, CorruptCellError
from repro.faults.retry import RetryPolicy
from repro.fleet.runner import FleetRunner, worker_pool
from repro.obs.recorder import get_recorder
from repro.obs.tracing import span
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.spec import FleetSpec


def build_cell_fleet(cell: CampaignCell) -> FleetSpec:
    """Expand one cell into its fleet: scenario @ seed, controller swapped."""
    fleet = SCENARIOS.build(cell.scenario, seed=cell.seed, **cell.override_kwargs())
    controller = cell.controller_spec()
    devices = [replace(d, controller=dict(controller)) for d in fleet.devices]
    return replace(fleet, devices=devices, name=cell.key)


def _run_cell_sharded(cell, fleet_spec, engine, retry, shard_devices, shard_root):
    """Route one large cell through the durable shard ledger.

    The ledger lives under ``<store>/shard-ledgers/<cell.key>``, so a
    campaign killed mid-cell resumes *inside* the cell — completed shards
    are loaded, not re-simulated — one checkpoint granularity finer than
    the cell artifact itself.  ``resume=True`` because re-entering a cell
    whose ledger happens to be complete (the cell artifact was corrupt or
    the crash hit between ledger merge and checkpoint write) is exactly
    the recovery path, never an accident worth refusing.
    """
    import tempfile as _tempfile

    from repro.fleet.shards import FleetShardSource, run_sharded

    ledger_dir = (
        os.path.join(shard_root, cell.key)
        if shard_root is not None
        else _tempfile.mkdtemp(prefix=f"shard-{cell.key}-")
    )
    return run_sharded(
        FleetShardSource(fleet_spec),
        ledger_dir,
        shard_width=int(shard_devices),
        engine=engine,
        retry=retry,
        resume=True,
    )


def run_cell(
    cell: CampaignCell,
    workers: int = 1,
    pool=None,
    engine: str = "auto",
    retry: Optional[RetryPolicy] = None,
    shard_devices: Optional[int] = None,
    shard_root: Optional[str] = None,
) -> dict:
    """Execute one cell and summarize it as a JSON-safe checkpoint payload.

    Everything outside the ``"timing"`` key is deterministic in the cell
    alone — no wall-clock, no worker count, no engine choice (the batched
    engine is bit-identical to the per-device path), no shard routing
    (sharded aggregation is bit-identical by construction) — which is
    what lets resumed runs mix checkpointed and freshly-executed cells
    into one byte-identical report:
    :class:`~repro.campaign.report.CampaignResult` strips ``"timing"``
    into a side table before aggregating, so it reaches ``campaign
    report``'s per-cell columns but never ``report.json``.

    Cells larger than ``shard_devices`` execute through a durable shard
    ledger under ``shard_root`` instead of one monolithic fleet run —
    memory stays bounded by the shard width and a crash mid-cell resumes
    at shard granularity.
    """
    with span("campaign.cell", cell=cell.key):
        fleet_spec = build_cell_fleet(cell)
        if (
            shard_devices is not None
            and fleet_spec.num_devices > int(shard_devices)
        ):
            sharded = _run_cell_sharded(
                cell, fleet_spec, engine, retry, shard_devices, shard_root
            )
            return {
                "key": cell.key,
                "scenario_label": cell.scenario_label,
                "scenario": cell.scenario,
                "overrides": cell.override_kwargs(),
                "controller_name": cell.controller_name,
                "controller": cell.controller_spec(),
                "seed": cell.seed,
                "devices": sharded.num_devices,
                "fleet": sharded.aggregate(),
                "timing": {
                    "wall_s": sharded.wall_s,
                    "engine": engine,
                    "workers": sharded.workers,
                    "parallel": False,
                    "shards": sharded.num_shards,
                },
            }
        runner = FleetRunner(fleet_spec, workers=workers, engine=engine, retry=retry)
        result = runner.run(pool=pool)
    payload = {
        "key": cell.key,
        "scenario_label": cell.scenario_label,
        "scenario": cell.scenario,
        "overrides": cell.override_kwargs(),
        "controller_name": cell.controller_name,
        "controller": cell.controller_spec(),
        "seed": cell.seed,
        "devices": result.num_devices,
        "fleet": result.aggregate(),
        "timing": {
            "wall_s": result.wall_s,
            "engine": engine,
            "workers": result.workers,
            "parallel": bool(runner.last_run_parallel),
        },
    }
    if result.failures:
        # Quarantined devices are part of the deterministic payload: a
        # resumed report must state them the same way a fresh one would.
        payload["failures"] = [f.to_dict() for f in result.failures]
    return payload


class CampaignRunner:
    """Drives one campaign against a checkpoint store."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[CampaignStore] = None,
        workers: int = 1,
        resume: bool = False,
        engine: str = "auto",
        retry: Optional[RetryPolicy] = None,
        shard_devices: Optional[int] = None,
    ):
        if not isinstance(spec, CampaignSpec):
            raise ConfigError("CampaignRunner needs a CampaignSpec")
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigError("retry must be a RetryPolicy (or None)")
        if shard_devices is not None and shard_devices < 1:
            raise ConfigError(
                f"shard_devices must be >= 1, got {shard_devices}"
            )
        self.spec = spec
        self.store = store
        self.workers = int(workers)
        self.resume = bool(resume)
        self.engine = engine
        self.retry = retry
        #: Cells with more devices than this route through a durable
        #: shard ledger (``<store>/shard-ledgers/<cell-key>``) instead of
        #: one monolithic fleet run.
        self.shard_devices = shard_devices
        #: Filled by :meth:`run`: cells executed vs. loaded from checkpoints.
        self.executed = 0
        self.skipped = 0
        #: Checkpoints found corrupt on resume, moved aside, and re-run.
        self.quarantined = 0
        #: Checkpoints accepted without verification (pre-checksum
        #: artifacts with no ``"integrity"`` seal) during this run.
        self.legacy_unverified = 0

    def _load_checkpoint(self, cell, progress):
        """Load one finished cell; quarantine and signal re-run if corrupt.

        Returns the payload, or ``None`` when the artifact failed
        verification — in which case it has been moved to
        ``quarantine/`` and the caller re-executes the cell.  Corruption
        costs one checkpoint, never the campaign.
        """
        try:
            return self.store.load_cell(cell.key)
        except CorruptCellError:
            self.store.quarantine_cell(cell.key)
            self.quarantined += 1
            if progress is not None:
                progress(cell, "corrupt")
            return None

    def run(self, progress=None) -> CampaignResult:
        """Execute (or finish) the grid; returns the aggregated result.

        ``progress`` is an optional ``callback(cell, status)`` with status
        ``"run"``, ``"skip"``, or ``"corrupt"`` (a checkpoint that failed
        integrity verification on resume and is being re-run), called
        before each cell — the CLI's ticker, and the injection point
        tests use to interrupt mid-grid.
        """
        cells = self.spec.cells()
        done = set()
        if self.store is not None:
            self.store.initialize(self.spec, resume=self.resume)
            self.store.write_run_manifest(
                campaign=self.spec.name,
                campaign_digest=self.spec.digest(),
                workers=self.workers,
                engine=self.engine,
                resume=self.resume,
            )
            if self.resume:
                done = self.store.completed_keys()
        payloads = {}
        self.executed = 0
        self.skipped = 0
        self.quarantined = 0
        legacy_before = self.store.legacy_unverified if self.store else 0
        with span(
            "campaign.run", campaign=self.spec.name, cells=len(cells)
        ), worker_pool(self.workers) as pool:
            for cell in cells:
                if cell.key in done:
                    payload = self._load_checkpoint(cell, progress)
                    if payload is not None:
                        if progress is not None:
                            progress(cell, "skip")
                        payloads[cell.key] = payload
                        self.skipped += 1
                        continue
                    # fall through: corrupt checkpoint, re-run the cell
                elif progress is not None:
                    progress(cell, "run")
                payload = run_cell(
                    cell,
                    workers=self.workers,
                    pool=pool,
                    engine=self.engine,
                    retry=self.retry,
                    shard_devices=self.shard_devices,
                    shard_root=(
                        os.path.join(self.store.root, "shard-ledgers")
                        if self.store is not None
                        else None
                    ),
                )
                if self.store is not None:
                    self.store.save_cell(cell.key, payload)
                payloads[cell.key] = payload
                self.executed += 1
        if self.store is not None:
            self.legacy_unverified = (
                self.store.legacy_unverified - legacy_before
            )
        metrics = get_recorder().metrics
        if metrics is not None:
            metrics.inc("campaign.runs")
            metrics.inc("campaign.cells.executed", self.executed)
            metrics.inc("campaign.cells.skipped", self.skipped)
            metrics.inc("campaign.cells.quarantined", self.quarantined)
        result = CampaignResult(self.spec, payloads)
        if self.store is not None:
            self.store.write_report(result.to_dict())
        return result


def run_campaign(
    spec: CampaignSpec,
    out: Optional[str] = None,
    workers: int = 1,
    resume: bool = False,
    progress=None,
    engine: str = "auto",
    retry: Optional[RetryPolicy] = None,
    shard_devices: Optional[int] = None,
) -> CampaignResult:
    """One-call convenience wrapper: optional store at ``out``."""
    store = CampaignStore(out) if out else None
    return CampaignRunner(
        spec,
        store=store,
        workers=workers,
        resume=resume,
        engine=engine,
        retry=retry,
        shard_devices=shard_devices,
    ).run(progress=progress)


def report_from_store(store: CampaignStore) -> CampaignResult:
    """Rebuild the aggregate report purely from checkpoints (no execution)."""
    spec = store.load_spec()
    payloads = {key: store.load_cell(key) for key in store.completed_keys()}
    return CampaignResult(spec, payloads)
