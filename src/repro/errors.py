"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ShapeError(ReproError):
    """An array did not have the expected shape or rank."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied to a constructor."""


class IntegrityError(ReproError):
    """A content checksum did not match — a wire payload or on-disk
    artifact was corrupted in transit, truncated, or bit-flipped, or a
    re-executed chunk diverged from its first execution (a determinism
    violation)."""


class CorruptCellError(ConfigError):
    """A campaign cell artifact is corrupt (zero-byte, truncated, torn
    JSON, or checksum mismatch).  Subclasses :class:`ConfigError` so
    existing callers keep working; the campaign runner catches it
    specifically to quarantine the cell and re-execute instead of
    aborting a ``--resume``."""


class CorruptShardError(ConfigError):
    """A shard-ledger artifact is corrupt (zero-byte, truncated, torn
    JSON, or checksum mismatch).  Mirrors :class:`CorruptCellError` one
    layer down: the sharded fleet runner quarantines the artifact and
    re-executes just that shard instead of aborting the run."""


class InjectedFault(ReproError):
    """A fault deliberately raised by the chaos injector (never seen in
    production runs; the fault-tolerant dispatcher retries it)."""


class CompressionError(ReproError):
    """A compression specification could not be applied to a network."""


class EnergyError(ReproError):
    """An energy-accounting invariant was violated (e.g. negative charge)."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class SerializationError(ReproError):
    """A model or result artifact could not be saved or loaded."""


class GatewayError(ReproError):
    """A gateway request failed server-side (unknown fleet, bad verb,
    querying aggregates before the fleet finished, ...).  The server
    ships it across the wire as an error envelope and the client
    re-raises it, so gateway misuse reads the same locally and
    remotely."""
