"""Crash-safe sharded fleet execution: the durable shard ledger.

Splits any fleet along the device axis into contiguous *shards* that
execute independently and publish one atomic, content-sealed JSON
artifact each into a **shard ledger** directory.  Because every device
derives its random streams from ``SeedSequence(fleet_seed,
spawn_key=(global_index,))``, partitioning cannot change results — the
merged aggregate is byte-identical to an unsharded run no matter how the
fleet is cut, which worker executed which shard, or how many times a
shard was re-run.

Layout under the ledger root::

    ledger.json             # fleet identity + the shard plan (claim check)
    shards/<key>.json       # one sealed artifact per completed shard
    leases/<key>.lease      # advisory claims (work-stealing efficiency)
    quarantine/<key>.json   # artifacts that failed verification
    report.json             # merged aggregate (rewritten after each merge)

Three mechanisms, in order of load-bearing-ness:

* **Publish-once artifacts** are the correctness mechanism.  A completed
  shard is written to a temp file and published with ``os.link`` — an
  atomic operation that exactly one process can win.  A loser (late
  straggler, stolen-lease victim that finished anyway) verifies its
  payload digest against the winner's: a match is counted
  (``fleet.shard.straggler_verified``, the PR-7 idiom one layer up), a
  mismatch is a determinism violation and raises
  :class:`~repro.errors.IntegrityError`.
* **Leases** are an efficiency mechanism only.  A worker claims a shard
  by creating ``leases/<key>.lease`` with ``O_CREAT | O_EXCL``; a
  process that dies mid-shard simply stops refreshing nothing — after
  the lease TTL any other worker *steals* it (atomic ``os.rename`` to a
  reap token picks exactly one thief) and re-executes.  Correctness
  never depends on a lease: double execution is resolved by
  publish-once + digest verification.
* **The merge** loads shard artifacts in plan order, verifies each
  checksum, and folds the packed device columns through
  :class:`~repro.fleet.results.ShardAggregator` — concatenating columns
  before reduction so the aggregate is bit-identical to
  ``FleetResult.aggregate()``.  A corrupt artifact is quarantined and
  its shard re-executed (bounded heal rounds), mirroring the campaign
  store's :class:`~repro.errors.CorruptCellError` path.

Memory stays bounded: a worker holds one shard's device results at a
time (released after the artifact is published), and a ``max_rss_mb``
budget degrades gracefully — the execution sub-batch width halves
(``fleet.shard.degraded`` telemetry) instead of the process OOMing.
Sub-batch width never changes results.

Chaos sites ``fleet.shard.claim`` / ``fleet.shard.save`` /
``fleet.shard.merge`` make the whole layer testable under the PR-7
injector; all recoverable plans leave the merged report byte-identical.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import multiprocessing
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.campaign.store import atomic_write_json, cell_checksum
from repro.errors import ConfigError, CorruptShardError, IntegrityError
from repro.faults.injector import get_fault_injector
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.fleet.results import (
    ShardAggregator,
    jsonable_to_packed,
    pack_device_results,
    packed_to_jsonable,
)
from repro.fleet.runner import ENGINES, run_device_batch
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.spec import FleetSpec
from repro.obs.profiler import memory_snapshot
from repro.obs.recorder import get_recorder, set_recorder
from repro.obs.tracing import span

#: Default lease time-to-live.  There is no lease renewal: the TTL must
#: exceed one shard's runtime, so size shards for minutes, not hours.
#: A stolen lease whose original owner was merely slow is still safe —
#: publish-once resolves the race and digest-verifies the loser.
DEFAULT_LEASE_TTL_S = 120.0

#: How many quarantine-and-re-execute rounds a merge will attempt before
#: concluding the corruption is persistent (bad disk, hostile chaos plan).
MAX_HEAL_ROUNDS = 4

#: Sleep between work-steal scans when every incomplete shard is leased
#: by someone else.
DEFAULT_POLL_S = 0.05


def shard_key(start: int, end: int) -> str:
    """Canonical artifact key of the shard covering ``[start, end)``."""
    return f"s{int(start):07d}-{int(end):07d}"


class ShardPlan:
    """A contiguous partition of ``[0, num_devices)`` into shards.

    Stored as the sorted edge list ``[0, e1, ..., num_devices]`` so
    uneven, hand-crafted partitions round-trip exactly (the hypothesis
    property in ``tests/test_property_shards.py`` exercises arbitrary
    cuts, not just equal widths).
    """

    def __init__(self, num_devices: int, edges):
        self.num_devices = int(num_devices)
        self.edges = [int(e) for e in edges]
        if self.num_devices < 1:
            raise ConfigError(
                f"shard plan needs num_devices >= 1, got {num_devices}"
            )
        if (
            len(self.edges) < 2
            or self.edges[0] != 0
            or self.edges[-1] != self.num_devices
            or any(a >= b for a, b in zip(self.edges, self.edges[1:]))
        ):
            raise ConfigError(
                f"shard edges must rise strictly from 0 to "
                f"{self.num_devices}, got {self.edges}"
            )

    @classmethod
    def from_counts(
        cls,
        num_devices: int,
        shards: Optional[int] = None,
        width: Optional[int] = None,
    ) -> "ShardPlan":
        """Equal-width plan from a shard count *or* a shard width."""
        num_devices = int(num_devices)
        if (shards is None) == (width is None):
            raise ConfigError(
                "pass exactly one of shards=N or width=W to plan a partition"
            )
        if shards is not None:
            if shards < 1:
                raise ConfigError(f"shards must be >= 1, got {shards}")
            width = -(-num_devices // int(shards))  # ceil division
        if width < 1:
            raise ConfigError(f"shard width must be >= 1, got {width}")
        edges = list(range(0, num_devices, int(width))) + [num_devices]
        return cls(num_devices, edges)

    @property
    def shards(self) -> list:
        """``(start, end)`` device ranges, one per shard, in index order."""
        return list(zip(self.edges, self.edges[1:]))

    @property
    def num_shards(self) -> int:
        """How many shards the plan splits the device axis into."""
        return len(self.edges) - 1

    def keys(self) -> list:
        """The canonical ``s<start>-e<end>`` key of every shard, in order."""
        return [shard_key(s, e) for s, e in self.shards]

    def to_dict(self) -> dict:
        """JSON-safe form (round-trips through :meth:`from_dict`)."""
        return {"num_devices": self.num_devices, "edges": list(self.edges)}

    @classmethod
    def from_dict(cls, data: dict) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        if not isinstance(data, dict) or "edges" not in data:
            raise ConfigError(f"not a shard plan: {data!r}")
        return cls(data.get("num_devices", 0), data["edges"])


# ---------------------------------------------------------------------- #
# Shard sources: where device specs come from
# ---------------------------------------------------------------------- #
class FleetShardSource:
    """Shard source wrapping a fully materialized :class:`FleetSpec`."""

    def __init__(self, spec: FleetSpec):
        if not isinstance(spec, FleetSpec):
            raise ConfigError("FleetShardSource needs a FleetSpec")
        self.spec = spec

    @property
    def name(self) -> str:
        """The fleet name stamped into artifacts and the merged result."""
        return self.spec.name

    @property
    def seed(self) -> int:
        """The fleet seed every shard derives device streams from."""
        return self.spec.seed

    @property
    def num_devices(self) -> int:
        """Total devices across the whole (unsharded) fleet."""
        return self.spec.num_devices

    def source_digest(self) -> str:
        """Content hash of the source fleet (pins ledger identity)."""
        return self.spec.digest()

    def device_specs(self, start: int, end: int) -> list:
        """The DeviceSpecs for one shard's ``[start, end)`` index range."""
        return self.spec.devices[start:end]


class ScenarioShardSource:
    """Shard source resolving a registered scenario lazily.

    When the scenario factory accepts ``device_range=(start, end)`` (the
    megacity contract), each shard materializes only its own slice of
    DeviceSpecs — a million-device fleet never exists in any one
    process's memory.  Factories without range support are built once and
    sliced (fine at brownout-grid scale, the memory win only matters at
    megacity scale).
    """

    def __init__(self, scenario: str, overrides: Optional[dict] = None):
        self.scenario = scenario
        self.overrides = dict(overrides or {})
        factory = SCENARIOS.factory(scenario)
        parameters = inspect.signature(factory).parameters
        self.ranged = "device_range" in parameters
        if not self.ranged:
            self._full = SCENARIOS.build(scenario, **self.overrides)
            self._name = self._full.name
            self._seed = self._full.seed
            self._num_devices = self._full.num_devices
            return
        self._full = None
        num = self.overrides.get("num_devices")
        if num is None:
            num = parameters["num_devices"].default
        self._num_devices = int(num)
        probe = SCENARIOS.build(scenario, device_range=(0, 1), **self.overrides)
        self._name = probe.name
        self._seed = probe.seed

    @property
    def name(self) -> str:
        """The fleet name stamped into artifacts and the merged result."""
        return self._name

    @property
    def seed(self) -> int:
        """The fleet seed every shard derives device streams from."""
        return self._seed

    @property
    def num_devices(self) -> int:
        """Total devices across the whole (unsharded) fleet."""
        return self._num_devices

    def source_digest(self) -> str:
        """Content hash of the scenario call (pins ledger identity)."""
        if self._full is not None:
            return self._full.digest()
        body = json.dumps(
            {
                "scenario": self.scenario,
                "overrides": self.overrides,
                "num_devices": self._num_devices,
                "seed": self._seed,
            },
            sort_keys=True,
        )
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def device_specs(self, start: int, end: int) -> list:
        """Materialize one shard's DeviceSpecs (range-lazy when possible)."""
        if self._full is not None:
            return self._full.devices[start:end]
        return SCENARIOS.build(
            self.scenario, device_range=(int(start), int(end)), **self.overrides
        ).devices


# ---------------------------------------------------------------------- #
# The ledger
# ---------------------------------------------------------------------- #
class ShardLedger:
    """Durable, multi-process-safe shard checkpoint directory."""

    LEDGER_FILE = "ledger.json"
    REPORT_FILE = "report.json"
    SHARDS_DIR = "shards"
    LEASES_DIR = "leases"
    QUARANTINE_DIR = "quarantine"

    #: Attempts per shard read — same transient-OSError budget as the
    #: campaign store, so a plan recoverable there is recoverable here.
    LOAD_ATTEMPTS = 4

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        # Unique per ledger *instance*, so one process can hold several
        # ledgers and a respawned pid cannot impersonate a dead claimer.
        self.owner = (
            f"{socket.gethostname()}:{os.getpid()}:{os.urandom(4).hex()}"
        )

    # ------------------------------ paths ----------------------------- #
    @property
    def ledger_path(self) -> str:
        """The sealed plan file at the ledger root."""
        return os.path.join(self.root, self.LEDGER_FILE)

    @property
    def report_path(self) -> str:
        """The merged report file at the ledger root."""
        return os.path.join(self.root, self.REPORT_FILE)

    @property
    def shards_dir(self) -> str:
        """Directory of published (sealed) shard artifacts."""
        return os.path.join(self.root, self.SHARDS_DIR)

    @property
    def leases_dir(self) -> str:
        """Directory of live lease files."""
        return os.path.join(self.root, self.LEASES_DIR)

    @property
    def quarantine_dir(self) -> str:
        """Directory damaged artifacts are moved into before re-execution."""
        return os.path.join(self.root, self.QUARANTINE_DIR)

    def shard_path(self, key: str) -> str:
        """The artifact path for one shard key."""
        return os.path.join(self.shards_dir, f"{key}.json")

    def lease_path(self, key: str) -> str:
        """The lease-file path for one shard key."""
        return os.path.join(self.leases_dir, f"{key}.lease")

    # --------------------------- identity ----------------------------- #
    def read_meta(self) -> Optional[dict]:
        """The ledger's identity record, or ``None`` before initialize."""
        try:
            with open(self.ledger_path) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(
                f"cannot read shard ledger {self.ledger_path!r}: {exc}"
            ) from exc

    def initialize(self, meta: dict, plan: ShardPlan, resume: bool = False) -> None:
        """Claim the directory for (fleet, plan), or validate a prior claim.

        Joining an *in-flight* ledger is the multi-worker scale-out path
        and always allowed (completed shards are simply skipped); only a
        ledger that is already **fully complete** demands an explicit
        ``resume`` — re-running a finished fleet by accident should be
        loud, re-merging it on purpose should be one flag.
        """
        os.makedirs(self.shards_dir, exist_ok=True)
        os.makedirs(self.leases_dir, exist_ok=True)
        body = {**meta, "plan": plan.to_dict()}
        existing = self.read_meta()
        if existing is None:
            # Two workers racing the first write both write identical
            # bytes (the meta is deterministic); os.replace last-wins.
            atomic_write_json(self.ledger_path, body)
            return
        if existing != body:
            raise ConfigError(
                f"shard ledger {self.root!r} belongs to fleet "
                f"{existing.get('fleet')!r} (digest "
                f"{existing.get('source_digest')!r}, "
                f"{len(existing.get('plan', {}).get('edges', [])) - 1} "
                f"shard(s)), which differs from this run; use a fresh "
                "--ledger directory"
            )
        if not resume and all(self.has_shard(k) for k in plan.keys()):
            raise ConfigError(
                f"shard ledger {self.root!r} is already complete; pass "
                "--resume to re-merge it or point --ledger elsewhere"
            )

    # ---------------------------- shards ------------------------------ #
    def completed_keys(self) -> set:
        """Keys of every shard with a published artifact on disk."""
        if not os.path.isdir(self.shards_dir):
            return set()
        return {
            name[: -len(".json")]
            for name in os.listdir(self.shards_dir)
            if name.endswith(".json")
        }

    def has_shard(self, key: str) -> bool:
        """Whether ``key`` already has a published artifact."""
        return os.path.exists(self.shard_path(key))

    def save_shard(self, key: str, payload: dict) -> str:
        """Publish one completed shard; returns ``"published"`` or
        ``"verified"``.

        Exactly one writer wins the atomic ``os.link`` publish.  A loser
        compares content digests against the incumbent: equal means a
        re-execution (stolen lease, straggler) reproduced the accepted
        artifact bit-for-bit; different raises
        :class:`~repro.errors.IntegrityError` — sharded work is
        deterministic by construction and this is where that is asserted.
        A corrupt incumbent is quarantined and the publish retried (our
        copy is known-good).
        """
        body = dict(payload)
        body.pop("integrity", None)
        digest = cell_checksum(body)
        body["integrity"] = {"algo": "sha256", "digest": digest}
        path = self.shard_path(key)
        os.makedirs(self.shards_dir, exist_ok=True)
        injector = get_fault_injector()
        for _ in range(2):  # second pass only after quarantining a corrupt winner
            fd, tmp = tempfile.mkstemp(dir=self.shards_dir, suffix=".tmp")
            published = False
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(body, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                try:
                    os.link(tmp, path)
                    published = True
                except FileExistsError:
                    pass
            finally:
                os.unlink(tmp)
            if published:
                if injector.enabled:
                    ops = [
                        f.directive() for f in injector.poll("fleet.shard.save")
                    ]
                    if ops:
                        from repro.campaign.store import _apply_save_faults

                        _apply_save_faults(path, ops)
                return "published"
            try:
                _, incumbent_digest = self._read_shard(key, poll_chaos=False)
            except CorruptShardError:
                self.quarantine_shard(key)
                continue
            if incumbent_digest == digest:
                return "verified"
            raise IntegrityError(
                f"shard {key} re-execution diverged from the published "
                f"artifact (ours {digest[:12]}…, published "
                f"{incumbent_digest[:12]}…): a re-run shard must be "
                "bit-identical (determinism violation)"
            )
        raise CorruptShardError(  # pragma: no cover - needs a racing corruptor
            f"shard {key}: could not publish over a persistently corrupt "
            f"artifact at {path!r}"
        )

    def _read_shard(self, key: str, poll_chaos: bool) -> tuple:
        """Read + verify one artifact; returns ``(body, digest)``.

        Transient OSErrors (and injected ``fleet.shard.merge`` ones) are
        retried; zero-byte files, torn JSON, and checksum mismatches
        raise :class:`CorruptShardError` naming the path.
        """
        path = self.shard_path(key)
        injector = get_fault_injector()
        last_os_error = None
        for _ in range(self.LOAD_ATTEMPTS):
            try:
                if poll_chaos and injector.enabled:
                    for fault in injector.poll("fleet.shard.merge"):
                        if fault.op == "oserror":
                            raise OSError("injected transient shard read failure")
                with open(path, "rb") as fh:
                    raw = fh.read()
            except OSError as exc:
                last_os_error = exc
                continue
            if not raw.strip():
                raise CorruptShardError(
                    f"corrupt shard artifact {path!r}: zero-byte file "
                    "(torn or interrupted write)"
                )
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise CorruptShardError(
                    f"corrupt shard artifact {path!r}: invalid JSON ({exc})"
                ) from exc
            if not isinstance(body, dict):
                raise CorruptShardError(
                    f"corrupt shard artifact {path!r}: expected a JSON "
                    f"object, got {type(body).__name__}"
                )
            integrity = body.pop("integrity", None)
            expected = (integrity or {}).get("digest")
            actual = cell_checksum(body)
            if expected != actual:
                raise CorruptShardError(
                    f"corrupt shard artifact {path!r}: checksum mismatch "
                    f"(stored {str(expected)[:12]}…, computed {actual[:12]}…)"
                )
            return body, actual
        raise ConfigError(
            f"cannot load shard artifact {path!r}: {last_os_error}"
        ) from last_os_error

    def load_shard(self, key: str) -> dict:
        """Load + verify one artifact for the merge path."""
        return self._read_shard(key, poll_chaos=True)[0]

    def quarantine_shard(self, key: str) -> str:
        """Move a corrupt artifact aside; the shard becomes re-executable."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        dst = os.path.join(self.quarantine_dir, f"{key}.json")
        os.replace(self.shard_path(key), dst)
        return dst

    # ---------------------------- leases ------------------------------ #
    def _try_lease(self, path: str, ttl_s: float) -> bool:
        os.makedirs(self.leases_dir, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            json.dump(
                {"owner": self.owner, "pid": os.getpid(), "ttl_s": float(ttl_s)},
                fh,
            )
        return True

    def claim(self, key: str, ttl_s: float = DEFAULT_LEASE_TTL_S):
        """Try to claim ``key``; returns ``"fresh"``, ``"stolen"``, or
        ``None`` (someone else holds a live lease).

        The *caller's* ``ttl_s`` governs expiry — it is an operator
        setting (``--lease-ttl``), uniform across the fleet of workers,
        so a dead process cannot pin a shard longer than the operator
        allows (the recorded lease body is post-mortem metadata only).
        Stealing renames the expired lease to a per-owner reap token
        first — ``os.rename`` is atomic, so exactly one thief wins even
        when several workers notice the expiry together.  A zero-byte
        lease (owner died between ``O_EXCL`` create and the JSON write)
        steals on the same clock.
        """
        path = self.lease_path(key)
        if self._try_lease(path, ttl_s):
            return "fresh"
        try:
            age = time.time() - os.stat(path).st_mtime
        except FileNotFoundError:
            return "fresh" if self._try_lease(path, ttl_s) else None
        if age <= float(ttl_s):
            return None
        reap = f"{path}.reap-{self.owner}"
        try:
            os.rename(path, reap)
        except FileNotFoundError:
            return None  # another thief won the reap
        os.unlink(reap)
        return "stolen" if self._try_lease(path, ttl_s) else None

    def release(self, key: str) -> None:
        """Drop our lease on ``key`` (a stranger's lease is left alone)."""
        path = self.lease_path(key)
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return
        if data.get("owner") == self.owner:
            try:
                os.unlink(path)
            except FileNotFoundError:  # pragma: no cover - concurrent reap
                pass

    # ---------------------------- report ------------------------------ #
    def write_report(self, report: dict) -> str:
        """Atomically write the merged report; returns its path."""
        atomic_write_json(self.report_path, report)
        return self.report_path


# ---------------------------------------------------------------------- #
# Execution
# ---------------------------------------------------------------------- #
class _ShardExecutor:
    """One worker's claim → execute → publish → release loop."""

    def __init__(
        self,
        source,
        plan: ShardPlan,
        ledger: ShardLedger,
        engine: str = "auto",
        retry: Optional[RetryPolicy] = None,
        max_rss_mb: Optional[float] = None,
        lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    ):
        self.source = source
        self.plan = plan
        self.ledger = ledger
        self.engine = engine
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        self.max_rss_mb = max_rss_mb
        self.lease_ttl_s = float(lease_ttl_s)
        self.executed = 0
        self.stolen = 0
        self.verified = 0
        self.degraded = 0
        self._exec_width: Optional[int] = None
        self._last_degrade_peak = 0.0

    def _inc(self, name: str, n: int = 1) -> None:
        metrics = get_recorder().metrics
        if metrics is not None:
            metrics.inc(name, n)

    def drain(self, poll_s: float = DEFAULT_POLL_S) -> None:
        """Work-steal until every shard in the plan has an artifact."""
        injector = get_fault_injector()
        while True:
            remaining = [
                (start, end)
                for start, end in self.plan.shards
                if not self.ledger.has_shard(shard_key(start, end))
            ]
            if not remaining:
                return
            progressed = False
            for start, end in remaining:
                key = shard_key(start, end)
                if self.ledger.has_shard(key):
                    progressed = True
                    continue
                if injector.enabled:
                    ops = [
                        f.directive()
                        for f in injector.poll("fleet.shard.claim")
                    ]
                    if ops:
                        # An injected claim failure: skip the shard this
                        # pass; the steal loop comes back to it.
                        self._inc("fleet.shard.claim_faults")
                        continue
                claim = self.ledger.claim(key, self.lease_ttl_s)
                if claim is None:
                    continue
                if claim == "stolen":
                    self.stolen += 1
                    self._inc("fleet.shard.leases_stolen")
                try:
                    payload = self._execute_shard(start, end)
                    outcome = self.ledger.save_shard(key, payload)
                finally:
                    self.ledger.release(key)
                self.executed += 1
                progressed = True
                self._inc("fleet.shard.completed")
                if outcome == "verified":
                    self.verified += 1
                    self._inc("fleet.shard.straggler_verified")
            if not progressed:
                time.sleep(poll_s)

    def _execute_shard(self, start: int, end: int) -> dict:
        key = shard_key(start, end)
        with span("fleet.shard.run", shard=key, devices=end - start):
            specs = self.source.device_specs(start, end)
            tasks = [
                (start + j, spec, self.source.seed)
                for j, spec in enumerate(specs)
            ]
            results = []
            pos = 0
            while pos < len(tasks):
                width = self._effective_width(len(tasks) - pos)
                results.extend(self._run_batch(tasks[pos:pos + width]))
                pos += width
        packed = pack_device_results(results)
        # Wall-clock is observability, not content: zero it so a re-run
        # shard (stolen lease, straggler) publishes the same bytes and
        # the digest-verify straggler path can confirm determinism.
        packed["wall_s"] = np.zeros(len(results), dtype=np.float64)
        return {
            "key": key,
            "start": int(start),
            "end": int(end),
            "fleet": self.source.name,
            "seed": int(self.source.seed),
            "devices": packed_to_jsonable(packed),
        }

    def _effective_width(self, remaining: int) -> int:
        """Sub-batch width, halved under RSS pressure (results invariant).

        ``ru_maxrss`` is a monotonic high-water mark, so the halving only
        re-fires when the peak *grows past* the level that triggered the
        last cut — otherwise one excursion would degrade forever.
        """
        width = self._exec_width if self._exec_width is not None else remaining
        if self.max_rss_mb is not None:
            peak = float(memory_snapshot().get("peak_rss_mb") or 0.0)
            if peak > self.max_rss_mb and peak > self._last_degrade_peak:
                width = max(1, width // 2)
                self._exec_width = width
                self._last_degrade_peak = peak
                self.degraded += 1
                self._inc("fleet.shard.degraded")
                metrics = get_recorder().metrics
                if metrics is not None:
                    metrics.set_gauge("fleet.shard.exec_width", width)
        return max(1, min(width, remaining))

    def _run_batch(self, batch) -> list:
        """One deterministic sub-batch with bounded in-process retries."""
        attempts = 0
        while True:
            try:
                return run_device_batch(batch, self.engine)
            except ConfigError:
                raise  # a spec problem fails identically forever
            except Exception:
                attempts += 1
                if attempts > self.retry.max_retries:
                    raise
                self._inc("fleet.shard.retries")
                time.sleep(self.retry.backoff(attempts - 1))


def _drain_worker(source, ledger_dir, plan_dict, engine, retry, max_rss_mb,
                  lease_ttl_s, poll_s) -> None:
    """Child-process entry: drain the ledger and exit.

    Shard workers never write to the parent's observability sinks (a
    fork-inherited trace file descriptor would interleave); outcome
    metrics are recorded once, parent-side, from the merged result.
    """
    set_recorder(None)
    executor = _ShardExecutor(
        source,
        ShardPlan.from_dict(plan_dict),
        ShardLedger(ledger_dir),
        engine=engine,
        retry=retry,
        max_rss_mb=max_rss_mb,
        lease_ttl_s=lease_ttl_s,
    )
    executor.drain(poll_s)


# ---------------------------------------------------------------------- #
# Merge + result
# ---------------------------------------------------------------------- #
@dataclass
class ShardedFleetResult:
    """Aggregate-only outcome of a sharded run (no per-device list — a
    million-device fleet must never be resident at once)."""

    fleet_name: str
    seed: int
    num_devices: int
    num_shards: int
    shards_executed: int  # this run, by any worker (plan minus resumed)
    shards_resumed: int   # already complete when this run started
    shards_stolen: int
    degraded: int
    workers: int
    wall_s: float
    aggregate_data: dict = field(repr=False)

    def aggregate(self) -> dict:
        """The merged fleet summary (same key set as ``FleetResult``)."""
        return self.aggregate_data

    def to_dict(self, include_timing: bool = False) -> dict:
        """JSON-safe form; ``include_timing`` adds the wall-clock section."""
        out = {"aggregate": self.aggregate()}
        if include_timing:
            out["timing"] = {
                "workers": self.workers,
                "wall_s": self.wall_s,
                "shards": self.num_shards,
                "shards_executed": self.shards_executed,
                "shards_resumed": self.shards_resumed,
                "shards_stolen": self.shards_stolen,
                "degraded": self.degraded,
            }
        return out

    def to_json(self, path: str, include_timing: bool = False) -> None:
        """Write :meth:`to_dict` as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(include_timing), fh, indent=2, sort_keys=True)
            fh.write("\n")


def _merge_ledger(source, plan: ShardPlan, ledger: ShardLedger) -> tuple:
    """Fold every artifact in plan order; ``(aggregator | None, corrupt)``.

    Scans the whole plan even after the first corruption so one heal
    round can quarantine every bad artifact at once.
    """
    agg = ShardAggregator(source.name, source.seed)
    corrupt = []
    for start, end in plan.shards:
        key = shard_key(start, end)
        try:
            body = ledger.load_shard(key)
            if (body.get("start"), body.get("end")) != (start, end):
                raise CorruptShardError(
                    f"shard artifact {key} covers devices "
                    f"[{body.get('start')}, {body.get('end')}), expected "
                    f"[{start}, {end})"
                )
        except CorruptShardError:
            corrupt.append(key)
            continue
        if not corrupt:
            agg.add_packed(jsonable_to_packed(body["devices"]))
    if corrupt:
        return None, corrupt
    return agg, []


def _record_outcome_metrics(metrics, agg: ShardAggregator, aggregate: dict,
                            plan: ShardPlan, workers: int, engine: str,
                            wall_s: float) -> None:
    """Parent-side outcome metrics from the merged columns — the same
    names, values, and recording order as ``FleetRunner`` over the same
    devices, so sharded and unsharded registries agree on every
    chunking-invariant metric.  (Engine internals — ``batch.*`` counters
    — are recorded where each shard executes and are sub-batch-granular
    by nature; engine-selection telemetry likewise stays with the
    executing process.)"""
    metrics.inc("fleet.runs")
    metrics.inc("fleet.devices", aggregate["devices"])
    metrics.inc("fleet.events", aggregate["events"])
    metrics.inc("fleet.events.processed", aggregate["processed"])
    metrics.inc("fleet.events.missed", aggregate["missed"])
    metrics.inc("fleet.events.correct", aggregate["correct"])
    metrics.observe_many(
        "fleet.device.iepmj", [float(v) for v in agg._column("iepmj")]
    )
    metrics.observe("fleet.run.wall_s", wall_s)
    metrics.set_gauge("fleet.engine", engine)
    metrics.set_gauge("fleet.workers", workers)
    metrics.set_gauge("fleet.shards", plan.num_shards)


def run_sharded(
    source,
    ledger_dir: str,
    *,
    shards: Optional[int] = None,
    shard_width: Optional[int] = None,
    plan: Optional[ShardPlan] = None,
    engine: str = "auto",
    workers: int = 1,
    resume: bool = False,
    retry: Optional[RetryPolicy] = None,
    max_rss_mb: Optional[float] = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    poll_s: float = DEFAULT_POLL_S,
) -> ShardedFleetResult:
    """Execute ``source`` shard-by-shard through a durable ledger.

    ``source`` is a :class:`FleetShardSource` or
    :class:`ScenarioShardSource`; the partition comes from ``shards=N``,
    ``shard_width=W``, an explicit ``plan``, or — when all are ``None`` —
    the plan recorded in an existing ledger (the ``--resume`` path).
    ``workers > 1`` forks additional drain processes that work-steal from
    the same ledger; the calling process drains too, then merges.

    Crash-anywhere safety: kill any worker (or the whole process tree) at
    any point and a later call over the same ledger re-executes only the
    unfinished shards, producing a byte-identical aggregate.
    """
    t0 = time.perf_counter()
    if engine not in ENGINES:
        raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    ledger = ShardLedger(ledger_dir)
    if plan is None:
        if shards is None and shard_width is None:
            meta = ledger.read_meta()
            if meta is None:
                raise ConfigError(
                    "need shards=N, shard_width=W, or an existing ledger "
                    "(--resume) to determine the shard plan"
                )
            plan = ShardPlan.from_dict(meta.get("plan", {}))
        else:
            plan = ShardPlan.from_counts(
                source.num_devices, shards=shards, width=shard_width
            )
    if plan.num_devices != source.num_devices:
        raise ConfigError(
            f"shard plan covers {plan.num_devices} device(s) but fleet "
            f"{source.name!r} has {source.num_devices}"
        )
    meta = {
        "fleet": source.name,
        "seed": int(source.seed),
        "num_devices": source.num_devices,
        "source_digest": source.source_digest(),
    }
    ledger.initialize(meta, plan, resume=resume)
    resumed = sum(1 for key in plan.keys() if ledger.has_shard(key))
    executor = _ShardExecutor(
        source,
        plan,
        ledger,
        engine=engine,
        retry=retry,
        max_rss_mb=max_rss_mb,
        lease_ttl_s=lease_ttl_s,
    )
    with span(
        "fleet.shard.fleet",
        fleet=source.name,
        shards=plan.num_shards,
        workers=workers,
    ):
        procs = []
        for _ in range(max(workers - 1, 0)):
            proc = multiprocessing.Process(
                target=_drain_worker,
                args=(
                    source, ledger.root, plan.to_dict(), engine,
                    executor.retry, max_rss_mb, lease_ttl_s, poll_s,
                ),
            )
            proc.start()
            procs.append(proc)
        try:
            agg = None
            corrupt: list = []
            for _ in range(1 + MAX_HEAL_ROUNDS):
                executor.drain(poll_s)
                agg, corrupt = _merge_ledger(source, plan, ledger)
                if agg is not None:
                    break
                for key in corrupt:
                    ledger.quarantine_shard(key)
                    executor._inc("fleet.shard.quarantined")
            if agg is None:
                raise CorruptShardError(
                    f"shard artifact(s) {corrupt} still failed verification "
                    f"after {MAX_HEAL_ROUNDS} quarantine-and-re-run round(s)"
                )
        finally:
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - wedged child
                    proc.terminate()
                    proc.join()
    aggregate = agg.aggregate()
    ledger.write_report({"aggregate": aggregate})
    result = ShardedFleetResult(
        fleet_name=source.name,
        seed=int(source.seed),
        num_devices=source.num_devices,
        num_shards=plan.num_shards,
        # A successful merge means every non-resumed shard was executed
        # (and published) during this run — counting the plan, not
        # executor.executed, keeps the tally right when --shard-workers
        # children (whose counters die with their process) did the work.
        shards_executed=plan.num_shards - resumed,
        shards_resumed=resumed,
        shards_stolen=executor.stolen,
        degraded=executor.degraded,
        workers=workers,
        wall_s=time.perf_counter() - t0,
        aggregate_data=aggregate,
    )
    metrics = get_recorder().metrics
    if metrics is not None:
        _record_outcome_metrics(
            metrics, agg, aggregate, plan, workers, engine, result.wall_s
        )
        if resumed:
            metrics.inc("fleet.shard.resumed", resumed)
    return result
