"""Fleet CLI.

    python -m repro.fleet list
    python -m repro.fleet show solar-farm-100 [--spec-json fleet.json]
    python -m repro.fleet run solar-farm-100 --workers 4 --json out.json
    python -m repro.fleet run city-block-1k --explain
    python -m repro.fleet run solar-farm-100 --trace-out run.jsonl \
        --metrics-out metrics.json [--profile]
    python -m repro.fleet run brownout-grid-256 --shards 8 \
        --ledger led/ --shard-workers 4 --json out.json
    python -m repro.fleet run brownout-grid-256 --ledger led/ --resume

``run`` executes a named scenario (or a ``--spec`` JSON file exported by
``show``), prints the fleet report, and optionally dumps the full JSON
report.  The JSON payload is deterministic in (scenario, seed): worker
count and chunking never change it, only the ``--timing`` section.

Sharded execution (``--shards``/``--shard-width`` + ``--ledger``) splits
the fleet along the device axis and checkpoints one sealed artifact per
completed shard into the ledger directory.  Kill the process — or any
``--shard-workers`` child — at any point and a later invocation with the
same ``--ledger`` (plus ``--resume`` once complete) re-runs only the
unfinished shards; the merged report is byte-identical to an unsharded
run.  ``--max-rss-mb`` bounds memory by halving the execution sub-batch
width under pressure (results unchanged).

Observability (all off by default, and guaranteed not to change results):
``--trace-out`` streams span records as JSON lines (first line: the run's
provenance manifest), ``--metrics-out`` writes the collected metrics
summary (+ phase profile with ``--profile``), and ``--explain`` prints
the engine-selection table — which devices the lockstep engine takes and
why the rest fall back — without simulating anything.  Combining
``--explain`` with ``--chaos PLAN.json`` additionally validates the plan
(unknown sites fail loudly) and prints the armed sites, still without
simulating.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ConfigError, ReproError
from repro.faults import FaultPlan, RetryPolicy, chaos
from repro.fleet.runner import FleetRunner
from repro.fleet.scenarios import SCENARIOS
from repro.fleet.spec import FleetSpec
from repro.obs.manifest import build_manifest
from repro.obs.recorder import Recorder, recording


def build_retry_policy(args) -> RetryPolicy | None:
    """A RetryPolicy from CLI flags, or None (runner defaults) if unset."""
    overrides = {}
    if getattr(args, "max_retries", None) is not None:
        overrides["max_retries"] = args.max_retries
    if getattr(args, "worker_timeout", None) is not None:
        overrides["worker_timeout"] = args.worker_timeout
    return RetryPolicy(**overrides) if overrides else None


def add_fault_flags(parser) -> None:
    """The chaos/retry flags shared by the fleet and campaign CLIs."""
    parser.add_argument(
        "--chaos", default=None, metavar="PLAN.json",
        help="arm deterministic fault injection from a FaultPlan JSON file "
             "(results must survive unchanged; exercised in CI)")
    parser.add_argument(
        "--max-retries", type=int, default=None,
        help="retries per dispatch chunk before escalation (default 2)")
    parser.add_argument(
        "--worker-timeout", type=float, default=None, metavar="SECONDS",
        help="straggler watchdog: re-dispatch a pooled chunk attempt that "
             "exceeds this (default: none, or 30s under --chaos)")


def _build_spec(args) -> FleetSpec:
    overrides = {}
    if args.devices is not None:
        overrides["num_devices"] = args.devices
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.spec:
        if getattr(args, "scenario", None):
            raise ConfigError(
                f"got both a scenario name ({args.scenario!r}) and --spec "
                f"({args.spec!r}); pick one"
            )
        if overrides:
            raise ConfigError(
                "--devices/--seed/--duration rescale named scenarios only; "
                "a --spec file pins its fleet exactly (edit the file instead)"
            )
        return FleetSpec.from_json(args.spec)
    return SCENARIOS.build(args.scenario, **overrides)


def _print_explain(spec: FleetSpec, engine: str) -> None:
    """Per-device engine-selection table: lockstep or fallback, and why."""
    from repro.sim.batch import _ineligibility
    from repro.utils.kernelmode import KERNEL_ENV, resolve_kernel_mode

    print(
        f"fleet {spec.name!r}: engine selection for --engine {engine} "
        f"({spec.num_devices} devices)"
    )
    if engine != "device":
        mode, detail = resolve_kernel_mode()
        print(f"  batched kernel: {mode} ({KERNEL_ENV}: {detail})")
    fallbacks = 0
    for device in spec.devices:
        found = None if engine == "device" else _ineligibility(device)
        if engine == "device":
            verdict = "per-device (forced by --engine device)"
        elif found is None:
            verdict = "batched lockstep"
        else:
            code, reason = found
            verdict = f"per-device fallback [{code}]: {reason}"
            fallbacks += 1
        print(f"  {device.name:<18} {verdict}")
    if engine == "batched" and fallbacks:
        print(
            f"  note: --engine batched would refuse this fleet "
            f"({fallbacks} ineligible device(s))"
        )
    elif engine != "device":
        print(
            f"  {spec.num_devices - fallbacks} device(s) batched, "
            f"{fallbacks} per-device fallback(s)"
        )


def _run_manifest(spec: FleetSpec, args) -> dict:
    return build_manifest(
        fleet=spec.name,
        devices=spec.num_devices,
        seed=spec.seed,
        scenario_digest=spec.digest(),
        engine=args.engine,
        workers=args.workers,
    )


def _print_report(result, quiet: bool) -> None:
    agg = result.aggregate()
    print(f"fleet {agg['fleet']!r}: {agg['devices']} devices, seed {agg['seed']}")
    print(
        f"  events {agg['events']}  processed {agg['processed']}  "
        f"missed {agg['missed']} {agg['miss_counts']}  correct {agg['correct']}"
    )
    print(
        f"  fleet IEpmJ {agg['fleet_iepmj']:.4f}  "
        f"avg accuracy {agg['average_accuracy']:.3f}  "
        f"device IEpmJ p10/p50/p90 "
        + "/".join(f"{v:.3f}" for v in agg["device_iepmj_percentiles"].values())
    )
    print(
        f"  wall {result.wall_s:.2f}s with {result.workers} worker(s) "
        f"({result.devices_per_second:.1f} devices/s)"
    )
    if quiet:
        return
    print(f"  {'device':<18} {'profile':<18} {'IEpmJ':>7} {'acc':>6} "
          f"{'proc':>5} {'miss':>5} {'p90 lat(s)':>11}")
    for d in result.devices:
        print(
            f"  {d.name:<18} {d.profile:<18} {d.iepmj:7.3f} "
            f"{d.average_accuracy:6.3f} {d.num_processed:5d} {d.num_missed:5d} "
            f"{d.latency_percentiles.get('p90', 0.0):11.1f}"
        )


def _run_sharded_cli(args, plan) -> int:
    """The ``run --shards/--ledger`` path: ledger-checkpointed execution."""
    from repro.fleet.shards import (
        DEFAULT_LEASE_TTL_S,
        FleetShardSource,
        ScenarioShardSource,
        run_sharded,
    )

    if args.ledger is None:
        raise ConfigError(
            "sharded execution checkpoints into a durable ledger; pass "
            "--ledger DIR alongside --shards/--shard-width/--resume"
        )
    if args.workers > 1:
        raise ConfigError(
            "--workers parallelizes an unsharded run; sharded runs "
            "scale out with --shard-workers instead"
        )
    if args.spec:
        source = FleetShardSource(_build_spec(args))
    else:
        # Resolve the scenario lazily: a range-capable factory (megacity)
        # materializes only one shard's DeviceSpecs at a time.
        overrides = {}
        if args.devices is not None:
            overrides["num_devices"] = args.devices
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.duration is not None:
            overrides["duration"] = args.duration
        source = ScenarioShardSource(args.scenario, overrides)
    recorder = None
    if args.trace_out or args.metrics_out or args.profile:
        recorder = Recorder(
            metrics=True, trace=args.trace_out, profile=args.profile
        )
        if recorder.trace is not None:
            recorder.trace.emit({
                "type": "manifest",
                **build_manifest(
                    fleet=source.name,
                    devices=source.num_devices,
                    seed=source.seed,
                    scenario_digest=source.source_digest(),
                    engine=args.engine,
                    workers=args.shard_workers,
                ),
            })
    kwargs = dict(
        shards=args.shards,
        shard_width=args.shard_width,
        engine=args.engine,
        workers=args.shard_workers,
        resume=args.resume,
        retry=build_retry_policy(args),
        max_rss_mb=args.max_rss_mb,
        lease_ttl_s=(
            args.lease_ttl if args.lease_ttl is not None else DEFAULT_LEASE_TTL_S
        ),
    )
    with chaos(plan) as injector:
        if recorder is None:
            result = run_sharded(source, args.ledger, **kwargs)
        else:
            with recording(recorder):
                result = run_sharded(source, args.ledger, **kwargs)
            recorder.close()
    if args.chaos:
        fired = sum(injector.fired_summary().values())
        print(f"chaos: {len(plan)} fault(s) planned, {fired} injected")
    agg = result.aggregate()
    print(
        f"fleet {agg['fleet']!r}: {agg['devices']} devices, seed "
        f"{agg['seed']} — sharded x{result.num_shards} via {args.ledger}"
    )
    print(
        f"  events {agg['events']}  processed {agg['processed']}  "
        f"missed {agg['missed']} {agg['miss_counts']}  correct {agg['correct']}"
    )
    print(
        f"  fleet IEpmJ {agg['fleet_iepmj']:.4f}  "
        f"avg accuracy {agg['average_accuracy']:.3f}  "
        f"device IEpmJ p10/p50/p90 "
        + "/".join(f"{v:.3f}" for v in agg["device_iepmj_percentiles"].values())
    )
    print(
        f"  shards: {result.shards_executed} executed, "
        f"{result.shards_resumed} resumed from ledger, "
        f"{result.shards_stolen} lease(s) stolen, "
        f"{result.degraded} degradation(s); wall {result.wall_s:.2f}s "
        f"with {result.workers} worker(s)"
    )
    if args.json:
        result.to_json(args.json, include_timing=args.timing)
        print(f"wrote JSON report to {args.json}")
    if recorder is not None:
        if args.trace_out:
            print(f"wrote trace to {args.trace_out}")
        if args.metrics_out:
            payload = {
                "manifest": build_manifest(
                    fleet=source.name,
                    devices=source.num_devices,
                    seed=source.seed,
                    scenario_digest=source.source_digest(),
                    engine=args.engine,
                    workers=args.shard_workers,
                ),
            }
            payload.update(recorder.to_dict())
            with open(args.metrics_out, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote metrics to {args.metrics_out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run multi-device energy-harvesting fleet simulations.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered scenarios")

    show = sub.add_parser("show", help="print (or export) a scenario's FleetSpec")
    show.add_argument("scenario")
    show.add_argument("--devices", type=int, default=None, help="override device count")
    show.add_argument("--seed", type=int, default=None, help="override fleet seed")
    show.add_argument("--duration", type=float, default=None, help="override trace duration (s)")
    show.add_argument("--spec-json", default=None, help="write the FleetSpec to this path")

    run = sub.add_parser("run", help="execute a scenario and report")
    run.add_argument("scenario", nargs="?", default=None, help="registered scenario name")
    run.add_argument("--spec", default=None, help="run a FleetSpec JSON file instead")
    run.add_argument("--workers", type=int, default=1, help="process count (<=1: serial)")
    run.add_argument("--chunksize", type=int, default=None, help="devices per pool chunk")
    run.add_argument("--engine", choices=("auto", "batched", "device"), default="auto",
                     help="simulation engine (auto: lockstep-batch eligible devices)")
    run.add_argument("--devices", type=int, default=None, help="override device count")
    run.add_argument("--seed", type=int, default=None, help="override fleet seed")
    run.add_argument("--duration", type=float, default=None, help="override trace duration (s)")
    run.add_argument("--shards", type=int, default=None, metavar="N",
                     help="shard the fleet into N device-shards through a "
                          "durable ledger (requires --ledger)")
    run.add_argument("--shard-width", type=int, default=None, metavar="W",
                     help="shard the fleet into W-device shards (alternative "
                          "to --shards)")
    run.add_argument("--ledger", default=None, metavar="DIR",
                     help="shard ledger directory: one sealed artifact per "
                          "completed shard; re-running over the same ledger "
                          "skips finished shards (crash-safe resume)")
    run.add_argument("--shard-workers", type=int, default=1, metavar="N",
                     help="drain the shard ledger with N work-stealing "
                          "processes (sharded runs only)")
    run.add_argument("--resume", action="store_true",
                     help="allow re-merging an already-complete ledger; the "
                          "shard plan is read back from the ledger when "
                          "--shards/--shard-width are omitted")
    run.add_argument("--max-rss-mb", type=float, default=None, metavar="MB",
                     help="memory budget: halve the shard execution sub-batch "
                          "width whenever peak RSS exceeds this (results "
                          "unchanged; fleet.shard.degraded telemetry)")
    run.add_argument("--lease-ttl", type=float, default=None, metavar="SECONDS",
                     help="shard lease time-to-live before another worker may "
                          "steal it (default 120; must exceed one shard's "
                          "runtime)")
    run.add_argument("--json", default=None, help="dump the full JSON report to this path")
    run.add_argument("--timing", action="store_true",
                     help="include wall-clock timing in the JSON report")
    run.add_argument("--quiet", action="store_true", help="suppress the per-device table")
    run.add_argument("--explain", action="store_true",
                     help="print per-device engine selection (and fallback "
                          "reasons) instead of running")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write tracing spans as JSON lines (first line: "
                          "the run manifest)")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the collected metrics summary as JSON")
    run.add_argument("--profile", action="store_true",
                     help="collect the engine phase profile (reported via "
                          "--metrics-out)")
    add_fault_flags(run)

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            for name in SCENARIOS.names():
                print(f"{name:<24} {SCENARIOS.describe(name)}")
            return 0
        if args.command == "show":
            args.spec = None
            spec = _build_spec(args)
            if args.spec_json:
                spec.to_json(args.spec_json)
                print(f"wrote {spec.num_devices}-device spec to {args.spec_json}")
            else:
                json.dump(spec.to_dict(), sys.stdout, indent=2, sort_keys=True)
                print()
            return 0
        # run
        if not args.spec and not args.scenario:
            run.error("need a scenario name or --spec FILE")
        # Validate the chaos plan before anything else: --explain --chaos
        # is the dry-run path for vetting a plan file, and an unknown
        # site must fail loudly here, not 20 minutes into a campaign.
        plan = FaultPlan.from_json(args.chaos) if args.chaos else None
        if args.explain:
            spec = _build_spec(args)
            _print_explain(spec, args.engine)
            if plan is not None:
                sites = sorted(plan.sites())
                print(
                    f"chaos plan {args.chaos!r}: {len(plan)} fault(s) armed "
                    f"across site(s) {', '.join(sites) if sites else '(none)'}"
                )
            return 0
        sharded = (
            args.shards is not None
            or args.shard_width is not None
            or args.ledger is not None
            or args.resume
        )
        if sharded:
            return _run_sharded_cli(args, plan)
        spec = _build_spec(args)
        runner = FleetRunner(
            spec,
            workers=args.workers,
            chunksize=args.chunksize,
            engine=args.engine,
            retry=build_retry_policy(args),
        )
        recorder = None
        if args.trace_out or args.metrics_out or args.profile:
            recorder = Recorder(
                metrics=True, trace=args.trace_out, profile=args.profile
            )
            if recorder.trace is not None:
                recorder.trace.emit(
                    {"type": "manifest", **_run_manifest(spec, args)}
                )
        with chaos(plan) as injector:
            if recorder is None:
                result = runner.run()
            else:
                with recording(recorder):
                    result = runner.run()
                recorder.close()
        if args.chaos:
            fired = sum(injector.fired_summary().values())
            print(f"chaos: {len(plan)} fault(s) planned, {fired} injected")
        _print_report(result, quiet=args.quiet)
        for failure in result.failures:
            print(
                f"  ! quarantined {failure.name} (device {failure.index}) "
                f"after {failure.attempts} attempt(s) at stage "
                f"{failure.stage}: {failure.error}",
                file=sys.stderr,
            )
        if args.json:
            result.to_json(args.json, include_timing=args.timing)
            print(f"wrote JSON report to {args.json}")
        if recorder is not None:
            if args.trace_out:
                print(f"wrote trace to {args.trace_out}")
            if args.metrics_out:
                payload = {"manifest": _run_manifest(spec, args)}
                payload.update(recorder.to_dict())
                with open(args.metrics_out, "w") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
                print(f"wrote metrics to {args.metrics_out}")
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output piped into e.g. `head`; suppress the shutdown flush error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
