"""Declarative fleet composition: :class:`DeviceSpec` and :class:`FleetSpec`.

A device spec is plain data — trace family, storage, MCU, deployed
profile, controller, event stream — that the fleet runner materializes
into live simulator objects *inside the worker process*.  Keeping specs as
dicts/str/float makes them JSON round-trippable (mirroring
:mod:`repro.compress.spec`) and cheap to pickle across
``multiprocessing`` boundaries.

Per-device randomness is not stored in the spec: the runner derives all
seeds deterministically from the fleet seed and the device index, so a
spec file plus one integer pins an entire fleet bit-for-bit.  A spec may
still pin an explicit ``"seed"`` inside its trace/events params when a
scenario wants several devices to share one environment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.runtime.controller import CONTROLLER_KINDS
from repro.runtime.incremental import CONTINUE_RULE_KINDS, ContinueRule

#: Trace families the runner can build (see repro.energy.traces).
TRACE_FAMILIES = ("solar", "kinetic", "rf", "wind", "piezo", "constant", "csv")
#: Event-stream kinds (see repro.energy.events).
EVENT_KINDS = ("uniform", "poisson", "burst")
#: Execution models (see repro.sim.simulator).
EXECUTIONS = ("single-cycle", "intermittent")
#: Named profiles resolvable without the zoo (see repro.experiment); the
#: ``zoo:<net>`` prefix additionally resolves any trained zoo network.
NAMED_PROFILES = ("paper-multi-exit", "sonic-single-exit")


@dataclass
class DeviceSpec:
    """One simulated device, declaratively.

    ``trace`` holds ``{"family": <name>, **generator_params}``;
    ``profile`` is a named profile, a ``zoo:<net>`` reference, or an
    inline dict of :class:`~repro.sim.profiles.InferenceProfile` fields;
    ``controller`` holds ``{"kind": <name>, **params}``; ``storage`` and
    ``mcu`` hold constructor overrides; ``events`` holds
    ``{"kind": <name>, **params}``.
    """

    name: str
    trace: dict
    profile: object = "paper-multi-exit"
    controller: dict = field(default_factory=lambda: {"kind": "greedy"})
    storage: dict = field(default_factory=dict)
    mcu: dict = field(default_factory=dict)
    events: dict = field(default_factory=lambda: {"kind": "uniform", "count": 100})
    execution: str = "single-cycle"
    episodes: int = 1
    power_window_s: float = 30.0

    def __post_init__(self):
        if not self.name:
            raise ConfigError("device needs a non-empty name")
        family = dict(self.trace).get("family")
        if family not in TRACE_FAMILIES:
            raise ConfigError(
                f"device {self.name!r}: trace family must be one of "
                f"{TRACE_FAMILIES}, got {family!r}"
            )
        controller = dict(self.controller)
        kind = controller.get("kind")
        if kind not in CONTROLLER_KINDS:
            raise ConfigError(
                f"device {self.name!r}: controller kind must be one of "
                f"{CONTROLLER_KINDS}, got {kind!r}"
            )
        rule = controller.get("continue_rule")
        if rule is not None and not isinstance(rule, ContinueRule):
            # Live ContinueRule instances are accepted for in-process use
            # (they ran through make_controller before declarative rules
            # existed, and still route to the per-device engine); anything
            # else must be a declarative {"kind": ...} dict.
            rule_kind = dict(rule).get("kind") if isinstance(rule, dict) else None
            if rule_kind not in CONTINUE_RULE_KINDS:
                raise ConfigError(
                    f"device {self.name!r}: continue_rule kind must be one "
                    f"of {CONTINUE_RULE_KINDS}, got {rule!r}"
                )
        ekind = dict(self.events).get("kind")
        if ekind not in EVENT_KINDS:
            raise ConfigError(
                f"device {self.name!r}: events kind must be one of "
                f"{EVENT_KINDS}, got {ekind!r}"
            )
        if self.execution not in EXECUTIONS:
            raise ConfigError(
                f"device {self.name!r}: execution must be one of "
                f"{EXECUTIONS}, got {self.execution!r}"
            )
        if isinstance(self.profile, str):
            if self.profile not in NAMED_PROFILES and not self.profile.startswith("zoo:"):
                raise ConfigError(
                    f"device {self.name!r}: unknown profile {self.profile!r}; "
                    f"use one of {NAMED_PROFILES}, 'zoo:<net>', or an inline dict"
                )
        elif not isinstance(self.profile, dict):
            raise ConfigError(
                f"device {self.name!r}: profile must be a name or a dict, "
                f"got {type(self.profile).__name__}"
            )
        if not isinstance(self.episodes, int) or self.episodes < 1:
            raise ConfigError(
                f"device {self.name!r}: episodes must be a positive int, "
                f"got {self.episodes!r}"
            )
        if self.power_window_s <= 0:
            raise ConfigError(
                f"device {self.name!r}: power_window_s must be positive, "
                f"got {self.power_window_s!r}"
            )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "trace": dict(self.trace),
            "profile": dict(self.profile) if isinstance(self.profile, dict) else self.profile,
            "controller": dict(self.controller),
            "storage": dict(self.storage),
            "mcu": dict(self.mcu),
            "events": dict(self.events),
            "execution": self.execution,
            "episodes": self.episodes,
            "power_window_s": self.power_window_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DeviceSpec":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown DeviceSpec fields: {sorted(unknown)}")
        try:
            return cls(**{k: v for k, v in data.items()})
        except TypeError as exc:
            raise ConfigError(f"invalid DeviceSpec: {exc}") from exc


@dataclass
class FleetSpec:
    """A named fleet: one seed plus the list of devices it pins."""

    name: str
    devices: list
    seed: int = 0
    description: str = ""

    def __post_init__(self):
        if not self.name:
            raise ConfigError("fleet needs a non-empty name")
        if not self.devices:
            raise ConfigError(f"fleet {self.name!r} has no devices")
        for d in self.devices:
            if not isinstance(d, DeviceSpec):
                raise ConfigError(
                    f"fleet {self.name!r}: devices must be DeviceSpec, "
                    f"got {type(d).__name__}"
                )
        if not isinstance(self.seed, int):
            raise ConfigError(
                f"fleet {self.name!r}: seed must be an int, got {self.seed!r}"
            )

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "description": self.description,
            "devices": [d.to_dict() for d in self.devices],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        missing = {"name", "devices"} - set(data)
        if missing:
            raise ConfigError(f"fleet spec is missing fields: {sorted(missing)}")
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigError(f"unknown FleetSpec fields: {sorted(unknown)}")
        # No int() coercion: the constructor rejects non-int seeds with a
        # ConfigError instead of silently truncating e.g. 4.5 to 4.
        return cls(
            name=data["name"],
            seed=data.get("seed", 0),
            description=data.get("description", ""),
            devices=[DeviceSpec.from_dict(d) for d in data["devices"]],
        )

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def digest(self) -> str:
        """Content hash of the fleet — stamped into run manifests so an
        observability artifact pins exactly which fleet produced it."""
        import hashlib

        return hashlib.sha256(self.canonical_json().encode()).hexdigest()[:16]

    def to_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, path: str) -> "FleetSpec":
        try:
            with open(path) as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigError(f"cannot load fleet spec {path!r}: {exc}") from exc
        return cls.from_dict(data)
