"""Parallel fleet execution.

:func:`run_device` is the module-level (pickle-safe) worker entry: it
materializes one :class:`~repro.fleet.spec.DeviceSpec` into live trace /
storage / MCU / profile / controller objects, replays its episodes through
the event-driven simulator, and returns a compact
:class:`~repro.fleet.results.DeviceResult`.  :func:`run_device_batch` is
its many-device twin: it routes batch-eligible devices through the
lockstep :class:`~repro.sim.batch.BatchedFleetEngine` (one numpy step per
event index for the whole subset) and falls back to :func:`run_device`
per device for the rest — see the ``engine`` knob on :class:`FleetRunner`.

Parallel dispatch maps *chunks* of devices (one :func:`run_device_batch`
call per chunk, packed-array wire form for the results) instead of one
IPC round-trip per device, and falls back to serial outright when the
fleet is too small — or the machine too narrow — for process parallelism
to pay for its dispatch: the measured regression this replaces had a
32-device pool running ~0.7x serial speed.

Determinism: every device derives its random streams from
``SeedSequence(fleet_seed, spawn_key=(device_index,))`` — exactly the
child that ``SeedSequence(fleet_seed).spawn(n)[index]`` would produce, but
computable independently inside any worker.  The batched engine consumes
those same streams in the same per-device order (bit-identity is enforced
against ``tests/golden/``), so results do not depend on the engine, the
worker count, dispatch order, or chunking — which is what makes
``--workers 4`` bit-identical to the serial fallback.
"""

from __future__ import annotations

import contextlib
import math
import multiprocessing
import os
import threading
import time
from collections import deque
from dataclasses import replace
from typing import Optional

import numpy as np

from repro.energy.events import burst_events, poisson_events, uniform_random_events
from repro.energy.storage import EnergyStorage
from repro.energy.traces import (
    constant_trace,
    kinetic_trace,
    piezo_trace,
    rf_trace,
    solar_trace,
    trace_from_csv,
    wind_trace,
)
from repro.errors import ConfigError, InjectedFault, IntegrityError
from repro.experiment import reference_profile, sonic_profile
from repro.faults.injector import get_fault_injector
from repro.faults.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.fleet.results import (
    DeviceFailure,
    DeviceResult,
    FleetResult,
    pack_device_results,
    seal_payload,
    unpack_device_results,
    verify_payload,
)
from repro.fleet.spec import FleetSpec
from repro.intermittent.mcu import MSP432
from repro.obs.recorder import Recorder, get_recorder, set_recorder
from repro.obs.tracing import span
from repro.runtime.controller import make_controller
from repro.sim.profiles import InferenceProfile
from repro.sim.results import percentile_dict
from repro.sim.simulator import Simulator, SimulatorConfig

#: Engines a :class:`FleetRunner` can route devices through.
ENGINES = ("auto", "batched", "device")

#: Below this many devices a parallel run falls back to serial: per-device
#: work is a few milliseconds, so pool dispatch + result pickling swamps
#: the compute and the pool runs *slower* than the serial loop (the PR-2
#: benches measured a 32-device pool at ~0.7x serial throughput).
MIN_PARALLEL_DEVICES = 16

_SEEDED_TRACE_BUILDERS = {
    "solar": solar_trace,
    "kinetic": kinetic_trace,
    "rf": rf_trace,
    "wind": wind_trace,
    "piezo": piezo_trace,
}

#: Per-process cache of resolved named profiles (weights and profile maths
#: run once per worker, not once per device).
_PROFILE_CACHE: dict = {}

#: Per-process memoized traces keyed by (family, sorted params incl. the
#: resolved seed).  Identical DeviceSpecs — and repeated runs of the same
#: fleet — share one PowerTrace instead of re-synthesizing 36k-43k samples
#: each time.  Traces are treated as immutable everywhere in the simulator,
#: so sharing is safe; the cap bounds worker memory on fleets with many
#: distinct environments (FIFO eviction).
_TRACE_CACHE: dict = {}
_TRACE_CACHE_MAX = 256


def _call_declarative(label: str, fn, *args, **kwargs):
    """Call a constructor with spec-provided kwargs, mapping typo'd or
    unknown parameter names to :class:`ConfigError` so they surface as
    spec problems (clean CLI error) rather than raw tracebacks."""
    try:
        return fn(*args, **kwargs)
    except TypeError as exc:
        raise ConfigError(f"{label}: {exc}") from exc


def _trace_cache_key(family: str, params: dict):
    """Hashable cache key, or None when a param cannot key a deterministic
    result (e.g. a live Generator, whose state advances between builds)."""
    if not all(
        value is None or isinstance(value, (bool, int, float, str))
        for value in params.values()
    ):
        return None
    return (family, tuple(sorted(params.items())))


def build_trace(trace_spec: dict, fallback_seed: int):
    """Materialize a trace from its spec dict (memoized per process)."""
    params = dict(trace_spec)
    family = params.pop("family")
    if family == "csv":
        # File contents can change between builds; never cached.
        return _call_declarative("csv trace", trace_from_csv, **params)
    if family == "constant":
        label, builder = "constant trace", constant_trace
    else:
        builder = _SEEDED_TRACE_BUILDERS.get(family)
        if builder is None:
            raise ConfigError(f"unknown trace family {family!r}")
        params.setdefault("seed", fallback_seed)
        label = f"{family} trace"
    key = _trace_cache_key(family, params)
    if key is not None:
        cached = _TRACE_CACHE.get(key)
        if cached is not None:
            return cached
    trace = _call_declarative(label, builder, **params)
    if key is not None:
        while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = trace
    return trace


def build_events(events_spec: dict, duration: float, seed: int) -> np.ndarray:
    """Materialize an event stream over ``[0, duration)``."""
    params = dict(events_spec)
    kind = params.pop("kind")
    params.setdefault("rng", seed)
    try:
        if kind == "uniform":
            return uniform_random_events(params.pop("count"), duration, **params)
        if kind == "poisson":
            return poisson_events(params.pop("rate_hz"), duration, **params)
        if kind == "burst":
            return burst_events(
                params.pop("num_bursts"), params.pop("events_per_burst"), duration, **params
            )
    except KeyError as exc:
        raise ConfigError(f"{kind} events: missing parameter {exc}") from exc
    except TypeError as exc:
        raise ConfigError(f"{kind} events: {exc}") from exc
    raise ConfigError(f"unknown events kind {kind!r}")


def resolve_profile(profile) -> InferenceProfile:
    """Resolve a profile reference (named / ``zoo:<net>`` / inline dict)."""
    if isinstance(profile, dict):
        return _call_declarative("inline profile", InferenceProfile, **profile)
    if isinstance(profile, str) and profile.startswith("zoo:"):
        from repro import zoo  # heavy import chain; only pay it when asked

        return zoo.get_profile(profile[len("zoo:"):])  # zoo memoizes per process
    if profile in _PROFILE_CACHE:
        return _PROFILE_CACHE[profile]
    if profile == "paper-multi-exit":
        built = reference_profile()
    elif profile == "sonic-single-exit":
        built = sonic_profile()
    else:
        raise ConfigError(f"cannot resolve profile {profile!r}")
    _PROFILE_CACHE[profile] = built
    return built


def build_storage(storage_spec: dict) -> EnergyStorage:
    """Capacitor from overrides; defaults match the paper's 2 mJ @ 80%."""
    params = dict(storage_spec)
    capacity = float(params.pop("capacity_mj", 2.0))
    initial_fraction = float(params.pop("initial_fraction", 0.5))
    if not 0.0 <= initial_fraction <= 1.0:
        raise ConfigError(
            f"initial_fraction must be in [0, 1], got {initial_fraction!r}"
        )
    return _call_declarative(
        "storage",
        EnergyStorage,
        capacity_mj=capacity,
        efficiency=float(params.pop("efficiency", 0.8)),
        leakage_mw=float(params.pop("leakage_mw", 0.0)),
        initial_mj=capacity * initial_fraction,
        **params,
    )


def build_mcu(mcu_spec: dict):
    """MSP432 defaults with declarative field overrides."""
    if not mcu_spec:
        return MSP432
    return _call_declarative("mcu", replace, MSP432, **mcu_spec)


def build_controller(controller_spec: dict, profile, storage, seed: int):
    """Controller from its spec; LUT/learning params derived per device."""
    params = dict(controller_spec)
    kind = params.pop("kind")
    return _call_declarative(
        f"{kind} controller",
        make_controller,
        kind,
        profile.num_exits,
        exit_energies_mj=profile.exit_energy_mj,
        capacity_mj=storage.capacity_mj,
        rng=seed,
        **params,
    )


def run_device(task) -> DeviceResult:
    """Simulate one device: ``task`` is ``(index, DeviceSpec, fleet_seed)``.

    Module-level so ``multiprocessing`` can pickle it by reference; also
    the serial entry point used by the debugging fallback and by callers
    that want a single device out of a fleet.
    """
    index, spec, fleet_seed = task
    t0 = time.perf_counter()
    child = np.random.SeedSequence(fleet_seed, spawn_key=(int(index),))
    trace_seed, event_seed, sim_seed, ctrl_seed = (
        int(s) for s in child.generate_state(4, np.uint32)
    )
    trace = build_trace(spec.trace, trace_seed)
    events = build_events(spec.events, trace.duration, event_seed)
    profile = resolve_profile(spec.profile)
    storage = build_storage(spec.storage)
    mcu = build_mcu(spec.mcu)
    controller = build_controller(spec.controller, profile, storage, ctrl_seed)
    sim = Simulator(
        trace,
        profile,
        controller,
        mcu=mcu,
        storage=storage,
        config=SimulatorConfig(
            mode="profile",
            execution=spec.execution,
            power_window_s=spec.power_window_s,
            seed=sim_seed,
        ),
    )
    result = None
    for _ in range(spec.episodes):
        result = sim.run(events)
    # Bulk trace query (vectorized PowerTrace.power): how much power this
    # device's environment offered, as percentiles for the fleet report.
    harvest = percentile_dict(
        trace.power(np.linspace(0.0, trace.duration, 512)), qs=(10, 50, 90)
    )
    return DeviceResult.from_simulation(
        index,
        spec.name,
        result,
        profile,
        harvest_percentiles=harvest,
        episodes=spec.episodes,
        wall_s=time.perf_counter() - t0,
    )


def run_device_batch(tasks, engine: str = "auto") -> list:
    """Simulate many devices in one process; returns DeviceResults in task order.

    Batch-eligible devices (profile-mode single-cycle or intermittent
    execution, non-csv trace, batchable controller/continue rule — see
    :func:`repro.sim.batch.batch_eligible`) run in lockstep through one
    :class:`~repro.sim.batch.BatchedFleetEngine`; the rest run one at a
    time through :func:`run_device`.  With ``engine="batched"`` an
    ineligible device is a :class:`ConfigError` naming each offender and
    *why* it cannot batch (execution mode vs trace family vs controller)
    instead of a fallback; ``engine="device"`` skips the lockstep engine
    entirely.  All three produce bit-identical results.
    """
    from repro.sim.batch import BatchedFleetEngine, batch_eligible, batch_ineligibility

    if engine not in ENGINES:
        raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
    if engine == "device":
        return [run_device(t) for t in tasks]
    eligible = [t for t in tasks if batch_eligible(t[1])]
    if engine == "batched" and len(eligible) != len(tasks):
        reasons = "; ".join(
            f"{t[1].name}: {batch_ineligibility(t[1])}"
            for t in tasks
            if not batch_eligible(t[1])
        )
        raise ConfigError(
            f"engine='batched' but devices are not batch-eligible: {reasons}"
        )
    by_index = {}
    if eligible:
        for result in BatchedFleetEngine(eligible).run():
            by_index[result.index] = result
    if len(eligible) != len(tasks):
        batched = {t[0] for t in eligible}
        for task in tasks:
            if task[0] not in batched:
                by_index[task[0]] = run_device(task)
    return [by_index[t[0]] for t in tasks]


def _apply_worker_faults(ops, in_worker: bool) -> None:
    """Apply pre-execution fault directives (decided parent-side).

    ``in_worker`` distinguishes a pool child (where a crash really exits
    the process and a hang really sleeps, exercising the watchdog) from
    serial in-process dispatch (where both map to raised
    :class:`InjectedFault`s the retry loop handles — the parent process
    must never kill or block itself).
    """
    for op in ops:
        kind = op["op"]
        if kind == "crash":
            if in_worker:
                os._exit(int(op.get("exit_code", 70)))
            raise InjectedFault("injected worker crash (serial dispatch)")
        if kind == "exception":
            raise InjectedFault("injected worker exception")
        if kind == "oserror":
            raise OSError("injected transient OSError")
        if kind == "hang":
            if in_worker:
                # A straggler: sleep past the watchdog, then finish
                # normally so the parent can verify the late payload is
                # bit-identical to the accepted re-execution.
                time.sleep(float(op.get("seconds", 1.0)))
            else:
                raise InjectedFault("injected hang (serial dispatch)")
        # "corrupt_payload" is applied after packing, not here.


def _corrupt_packed_payload(payload: dict, ops) -> None:
    """Flip bits in a sealed payload (the ``corrupt_payload`` directive)."""
    for op in ops:
        if op["op"] != "corrupt_payload":
            continue
        column = payload.get("iepmj")
        if isinstance(column, np.ndarray) and column.size:
            column.view(np.uint64)[0] ^= np.uint64(0xFF)
        else:  # pragma: no cover - defensive: empty chunk
            payload["digest"] = "0" * 64


def _run_chunk_packed(args) -> dict:
    """Worker entry for chunked dispatch: run a batch, ship packed arrays.

    ``obs`` is ``None`` when the parent had observability off; otherwise a
    small flags dict.  The worker never writes to the parent's sinks (a
    fork-inherited recorder would share the trace file descriptor): it
    scopes a *fresh* metrics(+profiler) recorder around the batch and
    ships its wire snapshot home under the payload's ``"obs"`` key, to be
    merged parent-side in dispatch order.

    ``ops`` are the chaos directives the parent's fault injector decided
    for this attempt (empty in production).  The payload is sealed with a
    content digest *before* corruption directives run, so an injected (or
    real) wire corruption is caught by ``verify_payload`` parent-side.
    """
    tasks, engine, obs, ops = args
    if ops:
        _apply_worker_faults(ops, in_worker=True)
    if obs is None:
        payload = seal_payload(pack_device_results(run_device_batch(tasks, engine)))
        if ops:
            _corrupt_packed_payload(payload, ops)
        return payload
    recorder = Recorder(metrics=True, profile=bool(obs.get("profile")))
    previous = set_recorder(recorder)
    try:
        payload = seal_payload(pack_device_results(run_device_batch(tasks, engine)))
    finally:
        set_recorder(previous)
        recorder.close()
    wire = {"metrics": recorder.metrics.to_wire()}
    if recorder.profiler is not None:
        wire["profiler"] = recorder.profiler.to_wire()
    payload["obs"] = wire
    if ops:
        _corrupt_packed_payload(payload, ops)
    return payload


def _run_chunk_inline(tasks, engine: str, ops) -> list:
    """Run one chunk in the calling process under fault directives.

    The production serial path never comes here (it calls
    :func:`run_device_batch` directly, paying nothing); this is the
    chaos-armed serial dispatch and the dispatcher's last-resort
    in-parent attempt.  With directives present the chunk goes through
    the same pack → seal → (corrupt) → verify wire cycle a pooled chunk
    would, so payload-corruption faults are exercisable serially too.
    """
    if not ops:
        return run_device_batch(tasks, engine)
    _apply_worker_faults(ops, in_worker=False)
    payload = seal_payload(pack_device_results(run_device_batch(tasks, engine)))
    _corrupt_packed_payload(payload, ops)
    verify_payload(payload)
    return unpack_device_results(payload)


def _merge_worker_obs(rec, payloads) -> None:
    """Fold worker obs snapshots into the active recorder, in dispatch
    order (which makes histogram splicing deterministic — see
    :mod:`repro.obs.metrics`)."""
    for payload in payloads:
        wire = payload.pop("obs", None)
        if not wire:
            continue
        if rec.metrics is not None and "metrics" in wire:
            rec.metrics.merge_wire(wire["metrics"])
        if rec.profiler is not None and "profiler" in wire:
            rec.profiler.merge_wire(wire["profiler"])


class _ChunkJob:
    """One unit of fault-tolerant dispatch: a chunk at a ladder stage."""

    __slots__ = ("order", "tasks", "engine", "attempts", "stage", "not_before")

    def __init__(self, order, tasks, engine, stage="chunk"):
        self.order = order  # tuple; sorts to original submission order
        self.tasks = tasks
        self.engine = engine
        self.attempts = 0  # completed (failed) attempts at this stage
        self.stage = stage  # "chunk" | "device" (post-split) | "serial"
        self.not_before = 0.0  # monotonic deadline gating the next attempt

    def indices(self):
        return tuple(t[0] for t in self.tasks)


class _FaultTolerantDispatch:
    """Executes chunk jobs with retries, a straggler watchdog, engine
    degradation, and per-device quarantine.

    The recovery ladder per job: up to ``max_retries`` retries with
    exponential backoff at the current stage; an exhausted multi-device
    chunk splits into per-device jobs on the degraded ``"device"``
    engine (a faulting batched chunk never takes its neighbours down);
    an exhausted single device gets one last serial attempt in the
    parent process; only then is it quarantined as a
    :class:`~repro.fleet.results.DeviceFailure`.  Spec problems
    (:class:`ConfigError`) are never retried — they would fail
    identically forever and belong to the caller.

    Retried work is deterministic by construction (per-device
    ``SeedSequence`` streams), and the dispatcher *asserts* it: every
    accepted pooled payload carries a content digest, and a straggler
    that completes after its replacement must match the accepted digest
    bit-for-bit or the run fails with :class:`IntegrityError`.
    """

    POLL_S = 0.005

    def __init__(self, engine: str, policy: RetryPolicy, pool=None):
        self.engine = engine
        self.policy = policy
        self.pool = pool
        self.injector = get_fault_injector()
        self.rec = get_recorder()
        self.metrics = self.rec.metrics
        self.results: dict = {}  # device index -> DeviceResult
        self.failures: list = []  # DeviceFailure
        self._obs_wires: list = []  # (job order, wire) accepted payload obs
        self._accepted_digests: dict = {}  # device-index tuple -> digest
        self._stragglers: list = []  # (job, AsyncResult) timed-out attempts

    # ------------------------------------------------------------------ #
    # Entry
    # ------------------------------------------------------------------ #
    def run(self, chunks) -> tuple:
        """Execute ``chunks``; returns (results-by-index, failures)."""
        jobs = deque(
            _ChunkJob((i,), chunk, self.engine) for i, chunk in enumerate(chunks)
        )
        if self.pool is None:
            self._run_serial(jobs)
        else:
            self._run_pooled(jobs)
        if self._obs_wires:
            self._obs_wires.sort(key=lambda item: item[0])
            _merge_worker_obs(self.rec, [{"obs": wire} for _, wire in self._obs_wires])
        self.failures.sort(key=lambda f: f.index)
        return self.results, self.failures

    def _inc(self, name: str, n=1) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, n)

    def _poll_ops(self):
        if not self.injector.enabled:
            return ()
        return tuple(f.directive() for f in self.injector.poll("fleet.chunk"))

    # ------------------------------------------------------------------ #
    # Serial dispatch (chaos-armed; the production serial path bypasses
    # the dispatcher entirely)
    # ------------------------------------------------------------------ #
    def _run_serial(self, jobs) -> None:
        while jobs:
            job = jobs.popleft()
            delay = job.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            ops = self._poll_ops()
            try:
                accepted = _run_chunk_inline(job.tasks, job.engine, ops)
            except ConfigError:
                raise
            except Exception as exc:
                self._on_failure(job, exc, jobs)
                continue
            self._accept_devices(job, accepted)

    # ------------------------------------------------------------------ #
    # Pooled dispatch
    # ------------------------------------------------------------------ #
    def _run_pooled(self, jobs) -> None:
        obs = None
        if self.rec.enabled:
            obs = {"profile": self.rec.profiler is not None}
        timeout = self.policy.effective_timeout(self.injector.enabled)
        live: list = []  # [job, AsyncResult, deadline or None]
        while jobs or live:
            now = time.monotonic()
            held = deque()
            while jobs:
                job = jobs.popleft()
                if job.not_before > now:
                    held.append(job)
                    continue
                ops = self._poll_ops()
                handle = self.pool.apply_async(
                    _run_chunk_packed, ((job.tasks, job.engine, obs, ops),)
                )
                deadline = None if timeout is None else now + timeout
                live.append([job, handle, deadline])
            jobs.extend(held)
            progressed = False
            for entry in list(live):
                job, handle, deadline = entry
                if handle.ready():
                    live.remove(entry)
                    progressed = True
                    try:
                        payload = handle.get()
                        verify_payload(payload)
                    except ConfigError:
                        raise
                    except Exception as exc:
                        self._on_failure(job, exc, jobs)
                    else:
                        self._accept_payload(job, payload)
                elif deadline is not None and now >= deadline:
                    live.remove(entry)
                    progressed = True
                    self._stragglers.append((job, handle))
                    self._inc("fleet.retry.timeouts")
                    self._on_failure(
                        job,
                        TimeoutError(
                            f"chunk attempt exceeded worker_timeout={timeout:.3g}s"
                        ),
                        jobs,
                    )
            if not progressed and (jobs or live):
                time.sleep(self.POLL_S)
        self._reap_stragglers()

    # ------------------------------------------------------------------ #
    # Acceptance
    # ------------------------------------------------------------------ #
    def _accept_devices(self, job, devices) -> None:
        for device in devices:
            self.results[device.index] = device

    def _accept_payload(self, job, payload: dict) -> None:
        wire = payload.pop("obs", None)
        if wire:
            self._obs_wires.append((job.order, wire))
        self._accepted_digests[job.indices()] = payload.get("digest")
        self._accept_devices(job, unpack_device_results(payload))

    # ------------------------------------------------------------------ #
    # The recovery ladder
    # ------------------------------------------------------------------ #
    def _on_failure(self, job, exc, jobs) -> None:
        job.attempts += 1
        self._inc("fleet.retry.failures")
        if job.attempts <= self.policy.max_retries:
            backoff = self.policy.backoff(job.attempts - 1)
            job.not_before = time.monotonic() + backoff
            self._inc("fleet.retry.attempts")
            if self.metrics is not None:
                self.metrics.observe("fleet.retry.backoff_s", backoff)
            jobs.append(job)
            return
        if len(job.tasks) > 1:
            # Batched → per-device degradation: re-run each device alone
            # so one faulting device cannot poison the whole chunk.
            self._inc("fleet.retry.splits")
            for position, task in enumerate(job.tasks):
                jobs.append(
                    _ChunkJob(job.order + (position,), [task], "device", "device")
                )
            return
        if job.stage != "serial":
            self._final_serial_attempt(job, jobs)
            return
        self._quarantine(job, exc)

    def _final_serial_attempt(self, job, jobs) -> None:
        """Last rung before quarantine: run the device in the parent.

        Survives a broken/poisoned pool outright, and still polls the
        injector, so a chaos plan hostile enough to exhaust it proves
        quarantine works.
        """
        job.stage = "serial"
        self._inc("fleet.retry.serial_attempts")
        ops = self._poll_ops()
        try:
            accepted = _run_chunk_inline(job.tasks, "device", ops)
        except ConfigError:
            raise
        except Exception as exc:
            self._quarantine(job, exc)
            return
        self._accept_devices(job, accepted)

    def _quarantine(self, job, exc) -> None:
        index, spec, _ = job.tasks[0]
        self.failures.append(
            DeviceFailure(
                index=int(index),
                name=spec.name,
                error=f"{type(exc).__name__}: {exc}",
                attempts=job.attempts,
                stage=job.stage,
            )
        )
        self._inc("fleet.devices.quarantined")

    # ------------------------------------------------------------------ #
    # Straggler verification
    # ------------------------------------------------------------------ #
    def _reap_stragglers(self) -> None:
        """Check timed-out attempts that completed after re-dispatch.

        Re-execution is bit-identical by construction, so a straggler's
        payload must equal the accepted one — comparing the two content
        digests is the cheapest end-to-end determinism assert we can run
        in production.  Stragglers that never surface within the grace
        window are abandoned (the pool teardown reclaims their workers).
        """
        if not self._stragglers:
            return
        deadline = time.monotonic() + self.policy.straggler_grace_s
        while time.monotonic() < deadline and any(
            not handle.ready() for _, handle in self._stragglers
        ):
            time.sleep(self.POLL_S)
        abandoned = 0
        for job, handle in self._stragglers:
            if not handle.ready():
                abandoned += 1
                self._inc("fleet.straggler.abandoned")
                self._discard(handle)
                continue
            try:
                payload = handle.get()
                verify_payload(payload)
            except Exception:
                self._inc("fleet.straggler.failed")
                continue
            expected = self._accepted_digests.get(job.indices())
            if expected is None:
                # The re-execution went down the degraded per-device
                # path; there is no whole-chunk digest to compare.
                self._inc("fleet.straggler.unmatched")
            elif payload.get("digest") == expected:
                self._inc("fleet.straggler.verified")
            else:
                raise IntegrityError(
                    f"straggler re-execution diverged for devices "
                    f"{job.indices()}: a retried chunk must be bit-identical "
                    "to the accepted one (determinism violation)"
                )
        if abandoned:
            self._recycle_pool()

    def _recycle_pool(self) -> None:
        """Terminate a pool that swallowed work without returning it.

        An abandoned straggler means a worker is wedged or dead — and a
        SIGKILL'd worker can take the pool's shared task-queue lock down
        with it, after which *no* worker (including respawns) can read
        another task or the close sentinel.  A graceful
        ``close()``/``join()`` on such a pool stalls for the full
        ``JOIN_TIMEOUT_S`` escalation window, and an external long-lived
        pool (the campaign layer's) would wedge every subsequent fleet.
        Force-terminating now reclaims the processes immediately, and a
        :class:`LazyPool` transparently respawns on its next dispatch.
        """
        recycle = getattr(self.pool, "shutdown", None)
        if recycle is None:  # raw caller-owned Pool: leave teardown to them
            return
        self._inc("fleet.pool.recycled")
        recycle(force=True)

    @staticmethod
    def _discard(handle) -> None:
        """Forget an abandoned in-flight task pool-side.

        A lost task (killed or wedged worker) leaves its ``AsyncResult``
        in ``Pool._cache`` forever, and ``Pool.join`` refuses to finish
        while the cache is non-empty — the deadlock that used to wedge
        the whole parent (and leak the worker processes) on any worker
        death.  Dropping the cache entry lets a graceful
        ``close()``/``join()`` complete.
        """
        try:
            handle._cache.pop(handle._job, None)
        except AttributeError:  # pragma: no cover - non-CPython pool
            pass


def usable_cpus() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


class LazyPool:
    """A ``multiprocessing.Pool`` that forks on first use, not on entry.

    The serial-fallback fix means a pooled caller (e.g. a campaign whose
    cells are all below the parallel threshold) may never dispatch a
    single map — eagerly forking workers would charge it the pool startup
    for nothing, which was a visible slice of the pooled-campaign
    pessimization.  ``map`` / ``apply_async`` materialize the real pool
    on demand; teardown is a no-op when it never started.

    ``multiprocessing.Pool`` transparently respawns a worker that dies
    (SIGKILL, ``os._exit``), but the chunk that worker held is simply
    lost — its ``AsyncResult`` never completes.  That is why the
    dispatcher above pairs every ``apply_async`` with a watchdog
    deadline instead of using blocking ``map`` (which would wedge
    forever on a killed worker, leaking the whole pool).
    """

    def __init__(self, workers: int):
        self._workers = int(workers)
        self._pool = None

    def _materialize(self):
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=self._workers)
        return self._pool

    def map(self, func, iterable, chunksize=None):
        return self._materialize().map(func, iterable, chunksize=chunksize)

    def apply_async(self, func, args=()):
        return self._materialize().apply_async(func, args)

    #: How long a graceful shutdown waits before escalating to terminate.
    JOIN_TIMEOUT_S = 10.0

    def shutdown(self, force: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if force:
            pool.terminate()
            pool.join()
            return
        pool.close()
        # Bounded join: if anything is wedged despite the dispatcher's
        # bookkeeping (a worker stuck in non-interruptible C code, say),
        # escalate to terminate rather than hang the parent forever.
        waiter = threading.Thread(target=pool.join, daemon=True)
        waiter.start()
        waiter.join(self.JOIN_TIMEOUT_S)
        if waiter.is_alive():  # pragma: no cover - last-resort escalation
            pool.terminate()
            waiter.join()


@contextlib.contextmanager
def worker_pool(workers: int):
    """Yield a reusable lazy worker pool (or ``None`` when serial).

    Job-level hook for callers that execute *many* fleets — the campaign
    layer above all.  A :class:`FleetRunner` started per job would tear its
    pool (and the per-process ``_TRACE_CACHE`` / ``_PROFILE_CACHE`` living
    in the workers) down after every fleet; passing one long-lived pool to
    ``FleetRunner.run(pool=...)`` keeps workers warm, so cells that share
    trace families hit the memo instead of re-synthesizing samples.  The
    processes fork on first dispatch (:class:`LazyPool`), so jobs whose
    fleets all take the serial fallback never pay pool startup at all.
    """
    if workers <= 1:
        yield None
        return
    pool = LazyPool(workers)
    try:
        yield pool
    except BaseException:
        # Mirror `with Pool(...)`: kill queued work immediately on error or
        # Ctrl+C instead of close()-ing and waiting for the whole backlog.
        pool.shutdown(force=True)
        raise
    else:
        pool.shutdown()


class FleetRunner:
    """Executes a :class:`FleetSpec`, serially or via a process pool.

    ``engine`` selects the per-device simulation form:

    * ``"auto"`` (default) — the lockstep batched engine for every
      batch-eligible device (profile-mode single-cycle *and* intermittent
      execution, continue rules included), with a per-device fallback for
      the rest (dataset mode, csv traces, unbatchable controllers);
    * ``"batched"`` — like auto, but an ineligible device raises (naming
      each device and why) instead of falling back;
    * ``"device"`` — the original one-simulator-per-device path.

    All engines produce bit-identical results (see ``tests/golden/``).

    ``workers <= 1`` runs serially in-process (debuggable with plain
    pdb/profilers); larger values fan *chunks* of devices out over a
    ``multiprocessing.Pool``.  A parallel request still runs serially when
    the fleet is smaller than ``parallel_threshold`` devices (default
    :data:`MIN_PARALLEL_DEVICES`, and only when more than one CPU is
    usable) — pool dispatch on a few milliseconds of work per device is a
    measured pessimization, and falling back is what fixes it.  Passing an
    explicit ``parallel_threshold`` overrides both the device floor and
    the CPU check (tests use ``parallel_threshold=1`` to force the pool
    path on any machine).
    """

    def __init__(
        self,
        spec: FleetSpec,
        workers: int = 1,
        chunksize: Optional[int] = None,
        engine: str = "auto",
        parallel_threshold: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if not isinstance(spec, FleetSpec):
            raise ConfigError("FleetRunner needs a FleetSpec")
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigError(f"chunksize must be >= 1, got {chunksize}")
        if engine not in ENGINES:
            raise ConfigError(f"engine must be one of {ENGINES}, got {engine!r}")
        if parallel_threshold is not None and parallel_threshold < 1:
            raise ConfigError(
                f"parallel_threshold must be >= 1, got {parallel_threshold}"
            )
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise ConfigError("retry must be a RetryPolicy (or None)")
        self.spec = spec
        self.workers = int(workers)
        self.chunksize = chunksize
        self.engine = engine
        self.parallel_threshold = parallel_threshold
        self.retry = retry if retry is not None else DEFAULT_RETRY_POLICY
        #: After :meth:`run`: did the last run actually use a pool?
        self.last_run_parallel = False

    def _tasks(self) -> list:
        return [(i, d, self.spec.seed) for i, d in enumerate(self.spec.devices)]

    def _pool_fanout(self, pool) -> int:
        """How many workers the dispatch should actually chunk for.

        An external pool's own process count wins over this runner's
        ``workers`` field (which only a self-owned pool is built from) —
        otherwise ``FleetRunner(spec).run(pool=worker_pool(4))`` with the
        default ``workers=1`` would ship the whole fleet as one chunk to
        one worker.
        """
        for attr in ("_workers", "_processes"):  # LazyPool / multiprocessing.Pool
            n = getattr(pool, attr, None)
            if n:
                return max(int(n), 1)
        return max(self.workers, 1)

    def _should_parallelize(self, num_tasks: int, pool) -> bool:
        if pool is None and self.workers <= 1:
            return False
        if self.parallel_threshold is not None:
            return num_tasks >= self.parallel_threshold
        return num_tasks >= MIN_PARALLEL_DEVICES and usable_cpus() > 1

    def _batch_chunks(self, tasks, fanout: int) -> list:
        """Contiguous task chunks for one run_device_batch call each.

        The batched engine gets one chunk per worker (maximum lockstep
        width); the per-device engine gets ~4 chunks per worker so the
        pool can load-balance uneven simulation lengths.
        """
        if self.chunksize:
            size = self.chunksize
        elif self.engine == "device":
            size = max(1, math.ceil(len(tasks) / (fanout * 4)))
        else:
            size = max(1, math.ceil(len(tasks) / fanout))
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def _dispatch(self, tasks, pool) -> tuple:
        """Run chunks through the fault-tolerant dispatcher."""
        fanout = self._pool_fanout(pool) if pool is not None else 1
        dispatch = _FaultTolerantDispatch(self.engine, self.retry, pool)
        results, failures = dispatch.run(self._batch_chunks(tasks, fanout))
        return [results[i] for i in sorted(results)], failures

    def run(self, pool=None) -> FleetResult:
        """Execute the fleet; ``pool`` reuses an external :func:`worker_pool`.

        When a pool is supplied its workers do the mapping (the runner's
        own ``workers`` count only shapes chunking), so a sequence of runs
        can share warm worker processes.  Results are identical either
        way: per-device streams are pinned by (fleet seed, device index),
        never by which process executes them.

        Dispatch is fault-tolerant: failed chunk attempts are retried
        with backoff per ``self.retry``, timed-out workers are
        re-dispatched, exhausted batched chunks degrade to per-device
        then in-parent serial execution, and devices that still fail are
        quarantined on ``FleetResult.failures`` instead of aborting the
        fleet.  The serial chaos-off path skips all of it — one injector
        attribute read, then straight into the engine.
        """
        t0 = time.perf_counter()
        tasks = self._tasks()
        self.last_run_parallel = self._should_parallelize(len(tasks), pool)
        workers_used = 1
        failures: list = []
        with span(
            "fleet.run",
            fleet=self.spec.name,
            devices=len(tasks),
            engine=self.engine,
            parallel=self.last_run_parallel,
        ):
            if not self.last_run_parallel:
                if not get_fault_injector().enabled:
                    device_results = run_device_batch(tasks, self.engine)
                else:
                    device_results, failures = self._dispatch(tasks, None)
            elif pool is not None:
                workers_used = self._pool_fanout(pool)
                device_results, failures = self._dispatch(tasks, pool)
            else:
                workers_used = max(self.workers, 1)
                with worker_pool(self.workers) as owned:
                    device_results, failures = self._dispatch(tasks, owned)
        result = FleetResult(
            fleet_name=self.spec.name,
            seed=self.spec.seed,
            devices=device_results,
            workers=workers_used,
            wall_s=time.perf_counter() - t0,
            failures=failures,
        )
        rec = get_recorder()
        if rec.metrics is not None:
            self._record_fleet_metrics(rec.metrics, result)
        return result

    def _record_fleet_metrics(self, metrics, result: FleetResult) -> None:
        """Parent-side outcome metrics, computed from the aggregated device
        results *after* dispatch — serial and pooled runs therefore build
        identical outcome registries regardless of worker count or
        chunking.  (Engine internals — ``batch.*`` counters and profiler
        phases — are recorded where the engine runs and are
        chunking-granular by nature.)  Includes the engine-selection
        telemetry: one ``fleet.fallback.<code>`` counter per device that
        the lockstep engine would refuse.
        """
        from repro.sim.batch import batch_ineligibility_code

        metrics.inc("fleet.runs")
        metrics.inc("fleet.devices", result.num_devices)
        metrics.inc("fleet.events", result.num_events)
        metrics.inc("fleet.events.processed", result.num_processed)
        metrics.inc("fleet.events.missed", result.num_missed)
        metrics.inc("fleet.events.correct", result.num_correct)
        metrics.observe_many(
            "fleet.device.iepmj", [d.iepmj for d in result.devices]
        )
        metrics.observe("fleet.run.wall_s", result.wall_s)
        metrics.set_gauge("fleet.engine", self.engine)
        metrics.set_gauge("fleet.workers", result.workers)
        metrics.set_gauge("fleet.parallel", bool(self.last_run_parallel))
        if self.engine != "device":
            from repro.utils.kernelmode import resolve_kernel_mode

            metrics.set_gauge("fleet.kernel", resolve_kernel_mode()[0])
        if self.engine != "device":
            fallbacks = 0
            for device in self.spec.devices:
                code = batch_ineligibility_code(device)
                if code is not None:
                    fallbacks += 1
                    metrics.inc(f"fleet.fallback.{code}")
            metrics.inc("fleet.devices.batched", result.num_devices - fallbacks)
            metrics.inc("fleet.devices.fallback", fallbacks)


def run_fleet(
    spec: FleetSpec,
    workers: int = 1,
    chunksize: Optional[int] = None,
    engine: str = "auto",
    parallel_threshold: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
) -> FleetResult:
    """One-call convenience wrapper around :class:`FleetRunner`."""
    return FleetRunner(
        spec,
        workers=workers,
        chunksize=chunksize,
        engine=engine,
        parallel_threshold=parallel_threshold,
        retry=retry,
    ).run()
