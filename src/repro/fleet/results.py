"""Fleet-level result aggregation.

Workers return compact :class:`DeviceResult` summaries (counts, metrics,
percentiles) instead of full per-event records — a 100-device fleet ships
kilobytes across the process boundary, not megabytes.  The
:class:`FleetResult` aggregator then reports fleet-level IEpmJ,
miss-reason breakdowns, and cross-device percentile spreads.

Everything in :meth:`FleetResult.aggregate` is computed in device-index
order from per-device summaries, so the aggregate is bit-identical
regardless of how many workers produced the parts — the property the CLI
acceptance check (``--workers 4`` vs ``--workers 1``) relies on.
Wall-clock timing lives outside the deterministic payload.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, field

import numpy as np

from repro.errors import IntegrityError
from repro.sim.results import percentile_dict


@dataclass
class DeviceResult:
    """Compact outcome of one device's simulation (last episode)."""

    index: int
    name: str
    profile: str
    num_events: int
    num_processed: int
    num_missed: int
    num_correct: int
    iepmj: float
    average_accuracy: float
    processed_accuracy: float
    mean_latency_s: float
    mean_inference_energy_mj: float
    latency_percentiles: dict
    energy_percentiles: dict
    harvest_percentiles: dict  # instantaneous harvested power (mW) over the trace
    miss_counts: dict
    exit_counts: list
    total_env_energy_mj: float
    total_consumed_mj: float
    duration_s: float
    episodes: int = 1
    wall_s: float = 0.0  # measurement only; never part of aggregate()

    @classmethod
    def from_simulation(
        cls,
        index,
        name,
        result,
        profile,
        harvest_percentiles=None,
        episodes=1,
        wall_s=0.0,
    ):
        """Summarize a :class:`~repro.sim.results.SimulationResult`."""
        return cls(
            index=int(index),
            name=name,
            profile=profile.name,
            num_events=result.num_events,
            num_processed=result.num_processed,
            num_missed=result.num_missed,
            num_correct=result.num_correct,
            iepmj=result.iepmj,
            average_accuracy=result.average_accuracy,
            processed_accuracy=result.processed_accuracy,
            mean_latency_s=result.mean_latency_s,
            mean_inference_energy_mj=result.mean_inference_energy_mj,
            latency_percentiles=result.latency_percentiles(),
            energy_percentiles=result.energy_percentiles(),
            harvest_percentiles=dict(harvest_percentiles or {}),
            miss_counts=result.miss_counts(),
            exit_counts=result.exit_counts(profile.num_exits),
            total_env_energy_mj=result.total_env_energy_mj,
            total_consumed_mj=result.total_consumed_mj,
            duration_s=result.duration_s,
            episodes=int(episodes),
            wall_s=float(wall_s),
        )

    def to_dict(self, include_timing: bool = False) -> dict:
        out = {
            "index": self.index,
            "name": self.name,
            "profile": self.profile,
            "events": self.num_events,
            "processed": self.num_processed,
            "missed": self.num_missed,
            "correct": self.num_correct,
            "iepmj": self.iepmj,
            "average_accuracy": self.average_accuracy,
            "processed_accuracy": self.processed_accuracy,
            "mean_latency_s": self.mean_latency_s,
            "mean_inference_energy_mj": self.mean_inference_energy_mj,
            "latency_percentiles": dict(self.latency_percentiles),
            "energy_percentiles": dict(self.energy_percentiles),
            "harvest_percentiles": dict(self.harvest_percentiles),
            "miss_counts": dict(self.miss_counts),
            "exit_counts": list(self.exit_counts),
            "total_env_energy_mj": self.total_env_energy_mj,
            "total_consumed_mj": self.total_consumed_mj,
            "duration_s": self.duration_s,
            "episodes": self.episodes,
        }
        if include_timing:
            out["wall_s"] = self.wall_s
        return out


#: Scalar DeviceResult fields shipped as one numpy column each in the
#: packed wire form, in (attribute, dtype) order.
_PACK_SCALARS = (
    ("index", np.int64), ("num_events", np.int64), ("num_processed", np.int64),
    ("num_missed", np.int64), ("num_correct", np.int64),
    ("iepmj", np.float64), ("average_accuracy", np.float64),
    ("processed_accuracy", np.float64), ("mean_latency_s", np.float64),
    ("mean_inference_energy_mj", np.float64),
    ("total_env_energy_mj", np.float64), ("total_consumed_mj", np.float64),
    ("duration_s", np.float64), ("episodes", np.int64), ("wall_s", np.float64),
)

#: Dict-valued DeviceResult fields packed as key-table + value matrix.
_PACK_DICTS = (
    ("latency_percentiles", np.float64),
    ("energy_percentiles", np.float64),
    ("harvest_percentiles", np.float64),
    ("miss_counts", np.int64),
)


def _pack_dict_column(dicts, dtype):
    """Pack per-device dicts; one (keys, matrix) table when keys align."""
    keys = list(dicts[0])
    if all(list(d) == keys for d in dicts):
        values = np.array([[d[k] for k in keys] for d in dicts], dtype=dtype)
        return {"keys": keys, "values": values}
    return {"raw": [dict(d) for d in dicts]}


def _unpack_dict_column(packed, i, caster):
    if "raw" in packed:
        return dict(packed["raw"][i])
    row = packed["values"][i]
    return {k: caster(v) for k, v in zip(packed["keys"], row)}


def pack_device_results(results) -> dict:
    """Struct-of-arrays wire form of a list of :class:`DeviceResult`.

    Worker processes return whole chunks of devices at once; pickling one
    numpy column per field costs a fraction of pickling per-device
    dataclasses full of Python dicts and floats.  Exact round-trip:
    ``unpack_device_results(pack_device_results(rs))`` reproduces every
    field bit-for-bit (plain Python types restored).
    """
    out = {"n": len(results), "names": [r.name for r in results],
           "profiles": [r.profile for r in results]}
    for attr, dtype in _PACK_SCALARS:
        out[attr] = np.array([getattr(r, attr) for r in results], dtype=dtype)
    for attr, dtype in _PACK_DICTS:
        out[attr] = _pack_dict_column([getattr(r, attr) for r in results], dtype)
    counts = [r.exit_counts for r in results]
    width = max((len(c) for c in counts), default=0)
    exit_matrix = np.zeros((len(results), width), dtype=np.int64)
    for i, c in enumerate(counts):
        exit_matrix[i, :len(c)] = c
    out["exit_counts"] = exit_matrix
    out["exit_widths"] = np.array([len(c) for c in counts], dtype=np.int64)
    return out


def unpack_device_results(packed: dict) -> list:
    """Rebuild :class:`DeviceResult` objects from the packed wire form."""
    results = []
    for i in range(packed["n"]):
        fields = {"name": packed["names"][i], "profile": packed["profiles"][i]}
        for attr, dtype in _PACK_SCALARS:
            value = packed[attr][i]
            fields[attr] = int(value) if dtype is np.int64 else float(value)
        for attr, dtype in _PACK_DICTS:
            caster = int if dtype is np.int64 else float
            fields[attr] = _unpack_dict_column(packed[attr], i, caster)
        width = int(packed["exit_widths"][i])
        fields["exit_counts"] = [int(c) for c in packed["exit_counts"][i, :width]]
        results.append(DeviceResult(**fields))
    return results


def packed_to_jsonable(packed: dict) -> dict:
    """JSON-safe form of a packed wire payload (numpy columns → lists).

    This is what the shard ledger persists: Python's ``json`` writes
    floats via ``repr``, which round-trips every ``float64`` bit-exactly,
    so ``jsonable_to_packed(packed_to_jsonable(p))`` reproduces each
    column with the same dtype and the same bits — the property that lets
    a resumed run aggregate shard artifacts byte-identically to a fresh
    execution.
    """
    out: dict = {"n": int(packed["n"]), "names": list(packed["names"]),
                 "profiles": list(packed["profiles"])}
    for attr, dtype in _PACK_SCALARS:
        out[attr] = np.asarray(packed[attr], dtype=dtype).tolist()
    for attr, _ in _PACK_DICTS:
        column = packed[attr]
        if "raw" in column:
            out[attr] = {"raw": [dict(d) for d in column["raw"]]}
        else:
            out[attr] = {"keys": list(column["keys"]),
                         "values": column["values"].tolist()}
    out["exit_counts"] = packed["exit_counts"].tolist()
    out["exit_widths"] = packed["exit_widths"].tolist()
    return out


def jsonable_to_packed(data: dict) -> dict:
    """Rebuild the numpy wire form from :func:`packed_to_jsonable` output."""
    n = int(data["n"])
    out: dict = {"n": n, "names": list(data["names"]),
                 "profiles": list(data["profiles"])}
    for attr, dtype in _PACK_SCALARS:
        out[attr] = np.asarray(data[attr], dtype=dtype)
    for attr, dtype in _PACK_DICTS:
        column = data[attr]
        if "raw" in column:
            out[attr] = {"raw": [dict(d) for d in column["raw"]]}
        else:
            keys = list(column["keys"])
            values = np.asarray(column["values"], dtype=dtype).reshape(n, len(keys))
            out[attr] = {"keys": keys, "values": values}
    widths = np.asarray(data["exit_widths"], dtype=np.int64)
    width = int(widths.max()) if n else 0
    out["exit_counts"] = np.asarray(
        data["exit_counts"], dtype=np.int64
    ).reshape(n, width)
    out["exit_widths"] = widths
    return out


#: Payload keys excluded from the content digest: ``digest`` is the seal
#: itself, ``obs`` and ``wall_s`` carry wall-clock content that differs
#: between bit-identical executions of the same chunk.
_DIGEST_SKIP = ("digest", "obs", "wall_s")


def _digest_value(h, value) -> None:
    if isinstance(value, np.ndarray):
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, dict):
        for key in sorted(value):
            h.update(str(key).encode())
            _digest_value(h, value[key])
    elif isinstance(value, (list, tuple)):
        for item in value:
            _digest_value(h, item)
    else:
        h.update(repr(value).encode())


def payload_digest(packed: dict) -> str:
    """Content digest of a packed chunk payload (deterministic fields only).

    Wall-clock fields are excluded, so two bit-identical executions of
    the same chunk — the guarantee per-device ``SeedSequence`` streams
    make — produce the same digest even though their timings differ.
    That is what lets the dispatcher detect a corrupted wire payload
    *and* assert that a retried or straggling chunk reproduced the
    accepted one exactly.
    """
    h = hashlib.sha256()
    for key in sorted(packed):
        if key in _DIGEST_SKIP:
            continue
        h.update(key.encode())
        _digest_value(h, packed[key])
    return h.hexdigest()


def seal_payload(packed: dict) -> dict:
    """Stamp ``packed`` with its content digest (in place); returns it."""
    packed["digest"] = payload_digest(packed)
    return packed


def verify_payload(packed: dict) -> dict:
    """Check a sealed payload's digest; raises :class:`IntegrityError`."""
    sealed = packed.get("digest")
    if sealed is None:
        raise IntegrityError("chunk payload arrived without a content digest")
    actual = payload_digest(packed)
    if actual != sealed:
        raise IntegrityError(
            f"chunk payload digest mismatch (sealed {sealed[:12]}…, got "
            f"{actual[:12]}…): the wire payload was corrupted in transit"
        )
    return packed


@dataclass
class DeviceFailure:
    """A device quarantined after exhausting the retry/degradation ladder.

    Recorded on :attr:`FleetResult.failures` instead of aborting the
    fleet: the rest of the devices complete, and the failure carries
    enough to re-run the offender (index, spec name, the last error, how
    many attempts were made, and at which ladder stage it gave up).
    """

    index: int
    name: str
    error: str
    attempts: int
    stage: str = "chunk"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "error": self.error,
            "attempts": self.attempts,
            "stage": self.stage,
        }


@dataclass
class FleetResult:
    """Aggregate outcome of one fleet run."""

    fleet_name: str
    seed: int
    devices: list = field(default_factory=list)  # DeviceResult, index order
    workers: int = 1
    wall_s: float = 0.0
    failures: list = field(default_factory=list)  # DeviceFailure, index order

    def __post_init__(self):
        self.devices = sorted(self.devices, key=lambda d: d.index)
        self.failures = sorted(self.failures, key=lambda f: f.index)
        self._column_cache: dict = {}

    def _column(self, attr: str, dtype) -> np.ndarray:
        """Per-device field as a numpy column (cached).

        Fleet aggregation reduces these arrays instead of re-iterating the
        DeviceResult dataclasses per metric.  Columns are built in device-
        index order from the sorted list, so every reduction is the same
        arithmetic regardless of worker count — the bit-identity the
        serial-vs-parallel acceptance check relies on.
        """
        col = self._column_cache.get(attr)
        if col is None:
            col = np.array([getattr(d, attr) for d in self.devices], dtype=dtype)
            self._column_cache[attr] = col
        return col

    # ---------------- counts ---------------- #
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_failures(self) -> int:
        return len(self.failures)

    @property
    def num_events(self) -> int:
        return int(self._column("num_events", np.int64).sum())

    @property
    def num_processed(self) -> int:
        return int(self._column("num_processed", np.int64).sum())

    @property
    def num_missed(self) -> int:
        return int(self._column("num_missed", np.int64).sum())

    @property
    def num_correct(self) -> int:
        return int(self._column("num_correct", np.int64).sum())

    # ---------------- fleet metrics ---------------- #
    @property
    def fleet_iepmj(self) -> float:
        """Fleet-level Eq. 1: all correct events over all offered energy."""
        total_energy = float(self._column("total_env_energy_mj", np.float64).sum())
        if total_energy <= 0:
            return 0.0
        return self.num_correct / total_energy

    @property
    def average_accuracy(self) -> float:
        if self.num_events == 0:
            return 0.0
        return self.num_correct / self.num_events

    def device_iepmj_percentiles(self, qs=(10, 50, 90)) -> dict:
        """Spread of per-device IEpmJ — how unevenly the fleet performs."""
        return percentile_dict(self._column("iepmj", np.float64), qs)

    def device_latency_percentiles(self, qs=(10, 50, 90)) -> dict:
        """Spread of per-device mean latency across the fleet."""
        return percentile_dict(self._column("mean_latency_s", np.float64), qs)

    def miss_counts(self) -> dict:
        """Missed events across the fleet, grouped by reason."""
        out: dict = {}
        for d in self.devices:
            for reason, count in d.miss_counts.items():
                out[reason] = out.get(reason, 0) + count
        return out

    def exit_counts(self) -> list:
        """Processed events per final exit, summed across devices.

        Devices may deploy profiles with different exit counts (mixed
        fleets); shorter histograms are zero-padded to the deepest one.
        Campaign reports reduce this into the exit-depth comparisons the
        paper draws in Fig. 7(b).
        """
        width = max((len(d.exit_counts) for d in self.devices), default=0)
        totals = [0] * width
        for d in self.devices:
            for i, count in enumerate(d.exit_counts):
                totals[i] += int(count)
        return totals

    @property
    def mean_exit_depth(self) -> float:
        """Average final-exit index over processed events (0 = earliest).

        A controller that learns to spend energy on deeper exits moves
        this up; one that rations moves it down — the scalar the campaign
        layer uses for cross-controller exit-depth deltas.
        """
        counts = self.exit_counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        return sum(i * c for i, c in enumerate(counts)) / total

    @property
    def devices_per_second(self) -> float:
        """Simulation throughput of this run (0 when timing is absent)."""
        if self.wall_s <= 0:
            return 0.0
        return self.num_devices / self.wall_s

    # ---------------- reporting ---------------- #
    def aggregate(self) -> dict:
        """Deterministic fleet-level summary (no wall-clock content).

        The ``failures`` key appears only when devices were quarantined,
        so a fully-recovered faulted run aggregates byte-identically to
        a fault-free one (the repro.faults identity contract).
        """
        out = {
            "fleet": self.fleet_name,
            "seed": self.seed,
            "devices": self.num_devices,
            "events": self.num_events,
            "processed": self.num_processed,
            "missed": self.num_missed,
            "correct": self.num_correct,
            "fleet_iepmj": self.fleet_iepmj,
            "average_accuracy": self.average_accuracy,
            "device_iepmj_percentiles": self.device_iepmj_percentiles(),
            "device_latency_percentiles": self.device_latency_percentiles(),
            "miss_counts": self.miss_counts(),
            "exit_counts": self.exit_counts(),
            "mean_exit_depth": self.mean_exit_depth,
            "total_env_energy_mj": float(
                self._column("total_env_energy_mj", np.float64).sum()
            ),
            "total_consumed_mj": float(
                self._column("total_consumed_mj", np.float64).sum()
            ),
        }
        if self.failures:
            out["failures"] = [f.to_dict() for f in self.failures]
        return out

    def to_dict(self, include_timing: bool = False) -> dict:
        out = {
            "aggregate": self.aggregate(),
            "devices": [d.to_dict(include_timing) for d in self.devices],
        }
        if include_timing:
            out["timing"] = {
                "workers": self.workers,
                "wall_s": self.wall_s,
                "devices_per_second": self.devices_per_second,
            }
        return out

    def to_json(self, path: str, include_timing: bool = False) -> None:
        import json

        with open(path, "w") as fh:
            json.dump(self.to_dict(include_timing), fh, indent=2, sort_keys=True)


class ShardAggregator:
    """Deterministic shard-order reduction to the fleet aggregate.

    Feed the packed payload of every shard *in plan order* (global device
    indices ascending) and :meth:`aggregate` produces a dict byte-identical
    (as canonical JSON) to ``FleetResult.aggregate()`` over the same
    devices.  The subtlety this class exists for: numpy's ``sum`` uses
    pairwise summation, so adding up per-shard *partial sums* would not be
    bit-identical to reducing the full column — shard columns are therefore
    **concatenated** before any float reduction, while the miss/exit folds
    (exact integer arithmetic) accumulate incrementally so per-device dicts
    can be released with their shard.
    """

    _INT_COLS = ("num_events", "num_processed", "num_missed", "num_correct")
    _FLOAT_COLS = (
        "iepmj", "mean_latency_s", "total_env_energy_mj", "total_consumed_mj",
    )

    def __init__(self, fleet_name: str, seed: int):
        self.fleet_name = fleet_name
        self.seed = int(seed)
        self.num_devices = 0
        self.failures: list = []  # dicts, device-index order across shards
        self._cols: dict = {
            attr: [] for attr in self._INT_COLS + self._FLOAT_COLS
        }
        self._miss_counts: dict = {}
        self._exit_totals: list = []

    def add_packed(self, packed: dict) -> None:
        """Fold one shard's packed payload (device-index order within)."""
        n = int(packed["n"])
        self.num_devices += n
        for attr in self._INT_COLS:
            self._cols[attr].append(np.asarray(packed[attr], dtype=np.int64))
        for attr in self._FLOAT_COLS:
            self._cols[attr].append(np.asarray(packed[attr], dtype=np.float64))
        miss_column = packed["miss_counts"]
        for i in range(n):
            for reason, count in _unpack_dict_column(miss_column, i, int).items():
                self._miss_counts[reason] = self._miss_counts.get(reason, 0) + count
        widths, matrix = packed["exit_widths"], packed["exit_counts"]
        for i in range(n):
            width = int(widths[i])
            if width > len(self._exit_totals):
                self._exit_totals.extend([0] * (width - len(self._exit_totals)))
            for j in range(width):
                self._exit_totals[j] += int(matrix[i][j])

    def _column(self, attr: str) -> np.ndarray:
        parts = self._cols[attr]
        dtype = np.int64 if attr in self._INT_COLS else np.float64
        if not parts:
            return np.array([], dtype=dtype)
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def aggregate(self) -> dict:
        """The merged fleet summary — same arithmetic, same key set, same
        values as ``FleetResult.aggregate()`` over the concatenated
        devices (the sharded-identity contract)."""
        events = int(self._column("num_events").sum())
        processed = int(self._column("num_processed").sum())
        missed = int(self._column("num_missed").sum())
        correct = int(self._column("num_correct").sum())
        total_energy = float(self._column("total_env_energy_mj").sum())
        counts = [int(c) for c in self._exit_totals]
        total_exits = sum(counts)
        out = {
            "fleet": self.fleet_name,
            "seed": self.seed,
            "devices": self.num_devices,
            "events": events,
            "processed": processed,
            "missed": missed,
            "correct": correct,
            "fleet_iepmj": 0.0 if total_energy <= 0 else correct / total_energy,
            "average_accuracy": 0.0 if events == 0 else correct / events,
            "device_iepmj_percentiles": percentile_dict(
                self._column("iepmj"), (10, 50, 90)
            ),
            "device_latency_percentiles": percentile_dict(
                self._column("mean_latency_s"), (10, 50, 90)
            ),
            "miss_counts": dict(self._miss_counts),
            "exit_counts": counts,
            "mean_exit_depth": (
                0.0 if total_exits == 0
                else sum(i * c for i, c in enumerate(counts)) / total_exits
            ),
            "total_env_energy_mj": total_energy,
            "total_consumed_mj": float(self._column("total_consumed_mj").sum()),
        }
        if self.failures:
            out["failures"] = [dict(f) for f in self.failures]
        return out
