"""Named, parameterized fleet scenarios.

A scenario is a factory that expands a handful of knobs (device count,
seed, trace duration) into a full :class:`~repro.fleet.spec.FleetSpec`.
The registry makes scenarios addressable from the CLI
(``python -m repro.fleet run solar-farm-100``) and from tests/benchmarks,
the way the related device-server repos register per-device servers by
name.

Per-device heterogeneity (panel sizes, link budgets, machine duty cycles)
is drawn from a generator pinned by the scenario seed, so a scenario name
plus a seed pins the *whole fleet layout*; the runner then derives each
device's simulation streams from the same seed by index.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.fleet.spec import DeviceSpec, FleetSpec


class ScenarioRegistry:
    """Name -> spec-factory mapping with descriptions.

    ``kind`` only flavors error messages — the campaign layer reuses this
    class for its own registry of named sweep grids.
    """

    def __init__(self, kind: str = "scenario"):
        self.kind = kind
        self._factories: dict = {}
        self._descriptions: dict = {}

    def register(self, name: str, description: str = ""):
        """Decorator: register ``factory(num_devices, seed, duration)``."""

        def decorate(factory):
            if name in self._factories:
                raise ConfigError(f"{self.kind} {name!r} already registered")
            self._factories[name] = factory
            self._descriptions[name] = description or (factory.__doc__ or "").strip()
            return factory

        return decorate

    def names(self) -> list:
        return sorted(self._factories)

    def factory(self, name: str):
        """The raw registered factory — the shard layer inspects its
        signature to see whether it supports ``device_range`` slicing."""
        self._require(name)
        return self._factories[name]

    def describe(self, name: str) -> str:
        self._require(name)
        return self._descriptions[name]

    def _require(self, name: str) -> None:
        if name not in self._factories:
            raise ConfigError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            )

    def build(self, name: str, **overrides):
        """Expand a named entry; ``overrides`` reach the factory."""
        self._require(name)
        try:
            return self._factories[name](**overrides)
        except TypeError as exc:
            raise ConfigError(f"{self.kind} {name!r}: {exc}") from exc


#: The global registry the CLI and tests resolve against.
SCENARIOS = ScenarioRegistry()


def _layout_rng(seed: int) -> np.random.Generator:
    # Distinct spawn_key keeps fleet-layout draws decoupled from the
    # per-device simulation streams derived from the same seed.
    return np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(0xF1EE7,)))


@SCENARIOS.register(
    "solar-farm-100",
    "100 rooftop solar sensor nodes with heterogeneous panels and cloud "
    "fields, Q-learning runtimes, paper-regime multi-exit deployment.",
)
def solar_farm(num_devices: int = 100, seed: int = 42, duration: float = 7200.0) -> FleetSpec:
    gen = _layout_rng(seed)
    devices = []
    for i in range(num_devices):
        peak = 0.027 * float(gen.uniform(0.8, 1.2))      # panel size/tilt spread
        phase = float(gen.uniform(-0.05, 0.05))          # east/west orientation
        devices.append(
            DeviceSpec(
                name=f"solar-{i:03d}",
                trace={
                    "family": "solar",
                    "duration": duration,
                    "dt": 1.0,
                    "peak_mw": peak,
                    "phase": phase,
                },
                profile="paper-multi-exit",
                controller={"kind": "qlearning", "epsilon": 0.25, "epsilon_decay": 0.9},
                events={"kind": "uniform", "count": 80},
                episodes=3,
            )
        )
    return FleetSpec(
        name="solar-farm-100",
        seed=seed,
        description="heterogeneous rooftop solar farm",
        devices=devices,
    )


@SCENARIOS.register(
    "indoor-rf-swarm",
    "40 RF-harvesting indoor tags on weak, fading links; static-LUT and "
    "greedy runtimes under Poisson arrivals.",
)
def indoor_rf_swarm(num_devices: int = 40, seed: int = 17, duration: float = 5400.0) -> FleetSpec:
    gen = _layout_rng(seed)
    devices = []
    for i in range(num_devices):
        mean = float(gen.uniform(0.004, 0.012))          # distance to the RF source
        controller = (
            {"kind": "static-lut"} if i % 2 == 0 else
            {"kind": "greedy", "reserve_fraction": 0.25}
        )
        devices.append(
            DeviceSpec(
                name=f"rf-{i:03d}",
                trace={
                    "family": "rf",
                    "duration": duration,
                    "dt": 0.5,
                    "mean_mw": mean,
                },
                profile="paper-multi-exit",
                controller=controller,
                events={"kind": "poisson", "rate_hz": 0.01},
            )
        )
    return FleetSpec(
        name="indoor-rf-swarm",
        seed=seed,
        description="weak-RF indoor tag swarm",
        devices=devices,
    )


@SCENARIOS.register(
    "mixed-harvester-city",
    "City-scale mix: solar rooftops, wind masts, piezo machine mounts, "
    "kinetic wearables, and RF tags, including SONIC-style intermittent "
    "baseline nodes.",
)
def mixed_harvester_city(num_devices: int = 60, seed: int = 23, duration: float = 5400.0) -> FleetSpec:
    gen = _layout_rng(seed)
    devices = []
    for i in range(num_devices):
        family = ("solar", "wind", "piezo", "kinetic", "rf")[i % 5]
        if family == "solar":
            trace = {
                "family": "solar",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": 0.027 * float(gen.uniform(0.7, 1.3)),
            }
        elif family == "wind":
            trace = {
                "family": "wind",
                "duration": duration,
                "dt": 0.5,
                "peak_mw": float(gen.uniform(0.03, 0.09)),
                "gust_rate_hz": float(gen.uniform(0.003, 0.01)),
            }
        elif family == "piezo":
            trace = {
                "family": "piezo",
                "duration": duration,
                "dt": 0.5,
                "peak_mw": float(gen.uniform(0.02, 0.06)),
                "duty_cycle": float(gen.uniform(0.3, 0.7)),
            }
        elif family == "kinetic":
            trace = {
                "family": "kinetic",
                "duration": duration,
                "dt": 0.5,
                "burst_power_mw": float(gen.uniform(0.05, 0.12)),
                "burst_rate_hz": 0.004,
                "burst_length_s": 120.0,
                "base_mw": 0.001,
            }
        else:
            trace = {
                "family": "rf",
                "duration": duration,
                "dt": 0.5,
                "mean_mw": float(gen.uniform(0.005, 0.015)),
            }
        # Every 6th node is a SONIC-style intermittent baseline, so the
        # report contrasts execution models inside one fleet.
        if i % 6 == 5:
            profile, controller, execution = (
                "sonic-single-exit",
                {"kind": "fixed", "exit_index": 0},
                "intermittent",
            )
        else:
            profile, controller, execution = (
                "paper-multi-exit",
                {"kind": "qlearning", "epsilon": 0.25, "epsilon_decay": 0.9},
                "single-cycle",
            )
        devices.append(
            DeviceSpec(
                name=f"{family}-{i:03d}",
                trace=trace,
                profile=profile,
                controller=controller,
                events={"kind": "uniform", "count": 60},
                execution=execution,
                episodes=2 if controller["kind"] == "qlearning" else 1,
            )
        )
    return FleetSpec(
        name="mixed-harvester-city",
        seed=seed,
        description="mixed-harvester city deployment",
        devices=devices,
    )


@SCENARIOS.register(
    "city-block-1k",
    "1000 mixed-harvester devices across one city block — the batched "
    "lockstep engine's full-scale workload (fleet_heavy CI lane).  Solar "
    "rooftops, wind masts, piezo machine mounts, kinetic wearables, and "
    "RF tags; controllers rotate through the preset families and every "
    "8th node is a SONIC-style intermittent baseline.",
)
def city_block(num_devices: int = 1000, seed: int = 31, duration: float = 3600.0) -> FleetSpec:
    gen = _layout_rng(seed)
    controllers = (
        {"kind": "qlearning", "epsilon": 0.25, "epsilon_decay": 0.9},
        {"kind": "static-lut"},
        {"kind": "greedy", "reserve_fraction": 0.2},
        {"kind": "fixed", "exit_index": 0},
    )
    devices = []
    for i in range(num_devices):
        family = ("solar", "wind", "piezo", "kinetic", "rf")[i % 5]
        if family == "solar":
            trace = {
                "family": "solar",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": 0.027 * float(gen.uniform(0.75, 1.25)),
            }
        elif family == "wind":
            trace = {
                "family": "wind",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.03, 0.09)),
                "gust_rate_hz": float(gen.uniform(0.003, 0.01)),
            }
        elif family == "piezo":
            trace = {
                "family": "piezo",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.02, 0.06)),
                "duty_cycle": float(gen.uniform(0.3, 0.7)),
            }
        elif family == "kinetic":
            trace = {
                "family": "kinetic",
                "duration": duration,
                "dt": 1.0,
                "burst_power_mw": float(gen.uniform(0.05, 0.12)),
                "burst_rate_hz": 0.005,
                "burst_length_s": 90.0,
                "base_mw": 0.001,
            }
        else:
            trace = {
                "family": "rf",
                "duration": duration,
                "dt": 1.0,
                "mean_mw": float(gen.uniform(0.005, 0.015)),
            }
        if i % 8 == 7:
            # Intermittent baseline nodes keep the per-device fallback
            # path honest inside the batched engine's full-scale workload.
            profile, controller, execution = (
                "sonic-single-exit",
                {"kind": "fixed", "exit_index": 0},
                "intermittent",
            )
        else:
            profile, execution = "paper-multi-exit", "single-cycle"
            controller = dict(controllers[i % len(controllers)])
        devices.append(
            DeviceSpec(
                name=f"{family}-{i:04d}",
                trace=trace,
                profile=profile,
                controller=controller,
                events={"kind": "uniform", "count": 40},
                execution=execution,
                episodes=2 if controller["kind"] == "qlearning" else 1,
            )
        )
    return FleetSpec(
        name="city-block-1k",
        seed=seed,
        description="1000-device mixed-harvester city block",
        devices=devices,
    )


@SCENARIOS.register(
    "brownout-grid-256",
    "256 urban grid-edge sensors riding brownout-prone harvesters: weak "
    "RF links and shaded solar with undersized capacitors, so devices "
    "power-cycle constantly.  Every other node is a SONIC-style "
    "intermittent baseline; the single-cycle half mixes Q-learning and "
    "greedy runtimes with threshold/learned continue rules — the full "
    "PR-5 batched-engine eligibility surface in one fleet.",
)
def brownout_grid(num_devices: int = 256, seed: int = 47, duration: float = 1800.0) -> FleetSpec:
    gen = _layout_rng(seed)
    devices = []
    for i in range(num_devices):
        family = ("rf", "solar", "piezo")[i % 3]
        if family == "rf":
            trace = {
                "family": "rf",
                "duration": duration,
                "dt": 1.0,
                "mean_mw": float(gen.uniform(0.003, 0.009)),
            }
        elif family == "solar":
            trace = {
                "family": "solar",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": 0.02 * float(gen.uniform(0.5, 1.0)),
                "cloud_bias": 0.8,  # heavy occlusion: long brown-out dips
            }
        else:
            trace = {
                "family": "piezo",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.015, 0.04)),
                "duty_cycle": float(gen.uniform(0.25, 0.5)),
            }
        storage = {
            "capacity_mj": float(gen.uniform(0.8, 1.4)),
            "initial_fraction": 0.3,
        }
        if i % 2 == 1:
            profile, controller, execution = (
                "sonic-single-exit",
                {"kind": "fixed", "exit_index": 0},
                "intermittent",
            )
        else:
            profile, execution = "paper-multi-exit", "single-cycle"
            if i % 4 == 0:
                controller = {
                    "kind": "qlearning",
                    "epsilon": 0.25,
                    "epsilon_decay": 0.9,
                    "continue_rule": {"kind": "learned", "epsilon": 0.2},
                }
            else:
                controller = {
                    "kind": "greedy",
                    "reserve_fraction": 0.15,
                    "continue_rule": {
                        "kind": "threshold",
                        "entropy_threshold": 0.45,
                    },
                }
        devices.append(
            DeviceSpec(
                name=f"{family}-{i:03d}",
                trace=trace,
                profile=profile,
                controller=controller,
                storage=storage,
                events={"kind": "poisson", "rate_hz": 0.015},
                execution=execution,
                episodes=2 if controller["kind"] == "qlearning" else 1,
            )
        )
    return FleetSpec(
        name="brownout-grid-256",
        seed=seed,
        description="brownout-prone urban grid-edge sensors",
        devices=devices,
    )


@SCENARIOS.register(
    "duty-cycle-farm-512",
    "512 machine-mounted piezo/kinetic harvesters on a factory floor of "
    "duty-cycled equipment.  Every 4th mount is a SONIC-style "
    "intermittent baseline waiting out the off-cycles; the rest run "
    "multi-exit inference with learned continue rules, leaking a little "
    "charge between shifts — the batched engine's largest "
    "intermittency-heavy workload after city-block-1k.",
)
def duty_cycle_farm(num_devices: int = 512, seed: int = 53, duration: float = 1800.0) -> FleetSpec:
    gen = _layout_rng(seed)
    devices = []
    for i in range(num_devices):
        if i % 2 == 0:
            trace = {
                "family": "piezo",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.02, 0.05)),
                "duty_cycle": float(gen.uniform(0.3, 0.6)),
                "cycle_period_s": float(gen.uniform(90.0, 180.0)),
            }
        else:
            trace = {
                "family": "kinetic",
                "duration": duration,
                "dt": 1.0,
                "burst_power_mw": float(gen.uniform(0.04, 0.1)),
                "burst_rate_hz": 0.006,
                "burst_length_s": 60.0,
                "base_mw": 0.0015,
            }
        storage = {
            "capacity_mj": 1.6,
            "initial_fraction": 0.4,
            "leakage_mw": 0.0004,
        }
        if i % 4 == 3:
            profile, controller, execution = (
                "sonic-single-exit",
                {"kind": "fixed", "exit_index": 0},
                "intermittent",
            )
        else:
            profile, execution = "paper-multi-exit", "single-cycle"
            controller = {
                "kind": "qlearning",
                "epsilon": 0.25,
                "epsilon_decay": 0.9,
                "continue_rule": {"kind": "learned"},
            }
            if i % 8 == 2:
                controller = {
                    "kind": "static-lut",
                    "continue_rule": {
                        "kind": "threshold",
                        "entropy_threshold": 0.5,
                    },
                }
        devices.append(
            DeviceSpec(
                name=f"mount-{i:03d}",
                trace=trace,
                profile=profile,
                controller=controller,
                storage=storage,
                events={"kind": "uniform", "count": 30},
                execution=execution,
                episodes=2 if controller["kind"] == "qlearning" else 1,
            )
        )
    return FleetSpec(
        name="duty-cycle-farm-512",
        seed=seed,
        description="duty-cycled factory-floor harvester farm",
        devices=devices,
    )


@SCENARIOS.register(
    "megacity-1m",
    "1,000,000 city-scale devices — the scale-out target for "
    "repro.fleet.shards.  Cheap per-device workloads (short traces, few "
    "events, non-learning controllers) across four harvesting families; "
    "every 16th node is a SONIC-style intermittent baseline.  Supports "
    "device_range=(start, end) so shard workers materialize only their "
    "slice: per-device layout draws come from "
    "SeedSequence(seed, spawn_key=(0xC171, index)), making any slice "
    "O(slice length) instead of O(fleet).",
)
def megacity(
    num_devices: int = 1_000_000,
    seed: int = 101,
    duration: float = 900.0,
    device_range=None,
) -> FleetSpec:
    if device_range is None:
        device_range = (0, num_devices)
    start, end = (int(v) for v in device_range)
    if not 0 <= start < end <= num_devices:
        raise ConfigError(
            f"device_range must satisfy 0 <= start < end <= {num_devices}, "
            f"got ({start}, {end})"
        )
    controllers = (
        {"kind": "greedy", "reserve_fraction": 0.2},
        {"kind": "static-lut"},
        {"kind": "fixed", "exit_index": 0},
    )
    devices = []
    for i in range(start, end):
        # One independent layout stream per device (not one sequential
        # stream for the whole fleet) — the property that makes slices
        # independently computable by any shard worker.
        gen = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(0xC171, i))
        )
        family = ("solar", "rf", "piezo", "wind")[i % 4]
        if family == "solar":
            trace = {
                "family": "solar",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": 0.025 * float(gen.uniform(0.7, 1.3)),
            }
        elif family == "rf":
            trace = {
                "family": "rf",
                "duration": duration,
                "dt": 1.0,
                "mean_mw": float(gen.uniform(0.004, 0.012)),
            }
        elif family == "piezo":
            trace = {
                "family": "piezo",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.02, 0.05)),
                "duty_cycle": float(gen.uniform(0.3, 0.6)),
            }
        else:
            trace = {
                "family": "wind",
                "duration": duration,
                "dt": 1.0,
                "peak_mw": float(gen.uniform(0.03, 0.08)),
                "gust_rate_hz": float(gen.uniform(0.003, 0.01)),
            }
        if i % 16 == 15:
            profile, controller, execution = (
                "sonic-single-exit",
                {"kind": "fixed", "exit_index": 0},
                "intermittent",
            )
        else:
            profile, execution = "paper-multi-exit", "single-cycle"
            controller = dict(controllers[i % len(controllers)])
        devices.append(
            DeviceSpec(
                name=f"mc-{i:07d}",
                trace=trace,
                profile=profile,
                controller=controller,
                events={"kind": "uniform", "count": 8},
                execution=execution,
            )
        )
    return FleetSpec(
        name="megacity-1m",
        seed=seed,
        description="million-device megacity deployment (shard-by-shard)",
        devices=devices,
    )


@SCENARIOS.register(
    "dev-smoke",
    "5 tiny devices (one per harvesting family) for tests, docs, and CI.",
)
def dev_smoke(num_devices: int = 5, seed: int = 7, duration: float = 600.0) -> FleetSpec:
    families = ("solar", "kinetic", "rf", "piezo", "wind")
    devices = []
    for i in range(num_devices):
        family = families[i % len(families)]
        trace = {"family": family, "duration": duration, "dt": 1.0}
        if family == "solar":
            trace["peak_mw"] = 0.03
        devices.append(
            DeviceSpec(
                name=f"smoke-{family}-{i}",
                trace=trace,
                profile="paper-multi-exit",
                controller={"kind": "greedy", "reserve_fraction": 0.1},
                events={"kind": "uniform", "count": 20},
            )
        )
    return FleetSpec(
        name="dev-smoke",
        seed=seed,
        description="smoke-test fleet",
        devices=devices,
    )
