"""Multi-device fleet simulation.

The paper evaluates one device against one trace; real energy-harvesting
studies deploy *fleets* — hundreds of heterogeneous nodes with distinct
harvesters, capacitors, MCUs, deployed models, and runtime policies.  This
package layers that on top of :mod:`repro.sim`:

* :mod:`repro.fleet.spec` — declarative :class:`DeviceSpec` /
  :class:`FleetSpec` with JSON round-trip;
* :mod:`repro.fleet.scenarios` — the :data:`SCENARIOS` registry of named,
  parameterized fleets (``solar-farm-100``, ``indoor-rf-swarm``,
  ``mixed-harvester-city``, ``dev-smoke``);
* :mod:`repro.fleet.runner` — :class:`FleetRunner`, which executes devices
  through the lockstep batched engine (:mod:`repro.sim.batch`) or the
  per-device simulator (``engine="auto"|"batched"|"device"``, all
  bit-identical), serially or over ``multiprocessing`` in device batches,
  with deterministic per-device seeding (worker count never changes
  results) and a serial fallback whenever pool dispatch cannot win;
* :mod:`repro.fleet.results` — :class:`DeviceResult` / :class:`FleetResult`
  aggregation (fleet IEpmJ, miss-reason breakdowns, percentile spreads).

CLI: ``python -m repro.fleet run solar-farm-100 --workers 4 --json out.json``.
"""

from repro.fleet.results import DeviceFailure, DeviceResult, FleetResult
from repro.fleet.runner import (
    FleetRunner,
    run_device,
    run_device_batch,
    run_fleet,
    worker_pool,
)
from repro.fleet.scenarios import SCENARIOS, ScenarioRegistry
from repro.fleet.spec import DeviceSpec, FleetSpec

__all__ = [
    "DeviceFailure",
    "DeviceResult",
    "DeviceSpec",
    "FleetResult",
    "FleetRunner",
    "FleetSpec",
    "SCENARIOS",
    "ScenarioRegistry",
    "run_device",
    "run_device_batch",
    "run_fleet",
    "worker_pool",
]
