"""Multi-device fleet simulation.

The paper evaluates one device against one trace; real energy-harvesting
studies deploy *fleets* — hundreds of heterogeneous nodes with distinct
harvesters, capacitors, MCUs, deployed models, and runtime policies.  This
package layers that on top of :mod:`repro.sim`:

* :mod:`repro.fleet.spec` — declarative :class:`DeviceSpec` /
  :class:`FleetSpec` with JSON round-trip;
* :mod:`repro.fleet.scenarios` — the :data:`SCENARIOS` registry of named,
  parameterized fleets (``solar-farm-100``, ``indoor-rf-swarm``,
  ``mixed-harvester-city``, ``dev-smoke``);
* :mod:`repro.fleet.runner` — :class:`FleetRunner`, which executes devices
  through the lockstep batched engine (:mod:`repro.sim.batch`) or the
  per-device simulator (``engine="auto"|"batched"|"device"``, all
  bit-identical), serially or over ``multiprocessing`` in device batches,
  with deterministic per-device seeding (worker count never changes
  results) and a serial fallback whenever pool dispatch cannot win;
* :mod:`repro.fleet.results` — :class:`DeviceResult` / :class:`FleetResult`
  aggregation (fleet IEpmJ, miss-reason breakdowns, percentile spreads);
* :mod:`repro.fleet.shards` — crash-safe scale-out: split a fleet into
  device-shards executing through a durable, work-stealing shard ledger
  (:func:`run_sharded`), with byte-identical merged aggregates, resume
  after SIGKILL, and memory-bounded streaming toward ``megacity-1m``.

CLI: ``python -m repro.fleet run solar-farm-100 --workers 4 --json out.json``
or, sharded: ``python -m repro.fleet run brownout-grid-256 --shards 8
--ledger led/ --shard-workers 4``.
"""

from repro.fleet.results import (
    DeviceFailure,
    DeviceResult,
    FleetResult,
    ShardAggregator,
)
from repro.fleet.runner import (
    FleetRunner,
    run_device,
    run_device_batch,
    run_fleet,
    worker_pool,
)
from repro.fleet.scenarios import SCENARIOS, ScenarioRegistry
from repro.fleet.shards import (
    FleetShardSource,
    ScenarioShardSource,
    ShardedFleetResult,
    ShardLedger,
    ShardPlan,
    run_sharded,
)
from repro.fleet.spec import DeviceSpec, FleetSpec

__all__ = [
    "DeviceFailure",
    "DeviceResult",
    "DeviceSpec",
    "FleetResult",
    "FleetRunner",
    "FleetShardSource",
    "FleetSpec",
    "SCENARIOS",
    "ScenarioRegistry",
    "ScenarioShardSource",
    "ShardAggregator",
    "ShardedFleetResult",
    "ShardLedger",
    "ShardPlan",
    "run_device",
    "run_device_batch",
    "run_fleet",
    "run_sharded",
    "worker_pool",
]
