"""Deployable inference profiles.

An :class:`InferenceProfile` is everything the runtime needs to know about
a deployed network: per-exit accuracy, energy, FLOPs, and the marginal
costs of incremental inference.  It optionally carries the live network so
the simulator can run *real* forward passes per event ("dataset mode");
without it the simulator draws correctness from the measured per-exit
accuracies ("profile mode"), which is what the RL compression search uses
in its inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compress.compressor import CompressedModel
from repro.compress.evaluator import ExitEvaluation
from repro.errors import ConfigError
from repro.intermittent.mcu import MCUSpec
from repro.nn.flops import incremental_flops, profile_network
from repro.nn.network import MultiExitNetwork


@dataclass
class InferenceProfile:
    """Cost/accuracy description of one deployed (possibly multi-exit) net."""

    name: str
    exit_accuracies: list
    exit_energy_mj: list
    exit_flops: list
    incremental_energy_mj: list = field(default_factory=list)
    incremental_flops: list = field(default_factory=list)
    net: MultiExitNetwork = None

    def __post_init__(self):
        m = len(self.exit_accuracies)
        if m < 1:
            raise ConfigError("profile needs at least one exit")
        if len(self.exit_energy_mj) != m or len(self.exit_flops) != m:
            raise ConfigError("per-exit lists must have equal length")
        if len(self.incremental_energy_mj) != m - 1 or len(self.incremental_flops) != m - 1:
            raise ConfigError("incremental lists must have length num_exits - 1")
        if any(not 0.0 <= a <= 1.0 for a in self.exit_accuracies):
            raise ConfigError("accuracies must be in [0, 1]")
        if any(e < 0 for e in self.exit_energy_mj):
            raise ConfigError("energies must be non-negative")

    @property
    def num_exits(self) -> int:
        return len(self.exit_accuracies)

    @property
    def min_energy_mj(self) -> float:
        """Cheapest possible inference (the miss threshold)."""
        return min(self.exit_energy_mj)

    @classmethod
    def from_compressed(
        cls,
        model: CompressedModel,
        evaluation: ExitEvaluation,
        mcu: MCUSpec,
        name: str = None,
        attach_net: bool = True,
    ) -> "InferenceProfile":
        """Profile a compressed model using its evaluation results."""
        inc_flops = model.incremental_exit_flops()
        return cls(
            name=name or model.net.name,
            exit_accuracies=list(evaluation.accuracies),
            exit_energy_mj=[mcu.inference_energy_mj(f) for f in model.exit_flops],
            exit_flops=[float(f) for f in model.exit_flops],
            incremental_energy_mj=[mcu.inference_energy_mj(f) for f in inc_flops],
            incremental_flops=[float(f) for f in inc_flops],
            net=model.net if attach_net else None,
        )

    @classmethod
    def from_network(
        cls,
        net: MultiExitNetwork,
        accuracies,
        mcu: MCUSpec,
        input_shape=(3, 32, 32),
        name: str = None,
        attach_net: bool = True,
    ) -> "InferenceProfile":
        """Profile an uncompressed network from its static FLOPs."""
        prof = profile_network(net, input_shape)
        if len(accuracies) != len(prof.exits):
            raise ConfigError("need one accuracy per exit")
        inc = incremental_flops(prof)
        return cls(
            name=name or net.name,
            exit_accuracies=list(accuracies),
            exit_energy_mj=[mcu.inference_energy_mj(f) for f in prof.exit_flops],
            exit_flops=[float(f) for f in prof.exit_flops],
            incremental_energy_mj=[mcu.inference_energy_mj(f) for f in inc],
            incremental_flops=[float(f) for f in inc],
            net=net if attach_net else None,
        )
