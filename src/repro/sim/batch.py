"""Batched lockstep fleet engine: whole fleets as numpy device-arrays.

:class:`BatchedFleetEngine` simulates the profile-mode devices of a fleet
*inside one process*, holding every piece of mutable per-device state as a
numpy column — storage level / capacity / ledger totals, ``busy_until``,
the charge bookkeeping (``t_charged`` / ``cum_charged``), and per-device
event counts — and advancing all still-active devices one event-index
step at a time.  Decision-independent quantities are precomputed per
device up front exactly as :class:`~repro.sim.simulator.Simulator` does
(cumulative harvested energy at event times via ``PowerTrace._cum_bulk``,
windowed observed charge power via ``PowerTrace.mean_power``); the inner
step then applies controller decisions across the device axis with fancy
indexing through the batched controller groups of
:mod:`repro.runtime.batched`.

Three device classes vectorize (everything a fleet spec can express short
of csv traces):

* **single-cycle, incremental inference off** — the original lockstep
  form: one exit decision per event, records written in bulk;
* **single-cycle with a continue rule** — after the first result, the
  masked continuation loop asks the batched rule groups
  (:func:`repro.runtime.batched.batch_continue_rules`) "continue?" for
  every still-deciding device at once, drawing marginal energy and
  resampling confidence entropy exactly like the scalar loop;
* **intermittent execution** (the SONIC baseline) — the multi-power-cycle
  state machine runs through the shared
  :class:`~repro.intermittent.kernel.IntermittentFleetKernel`: all
  checkpoint/restore progress, power state, and partial-cycle energy
  accounting live in columns, and devices interleave micro-steps freely
  across their own event streams.

Determinism contract
--------------------
The engine is **bit-identical** to the per-device path
(:func:`repro.fleet.runner.run_device` looped over the same devices), and
``tests/golden/`` enforces it:

* every device's random streams stay pinned to
  ``SeedSequence(fleet_seed, spawn_key=(device_index,))`` — the same four
  child seeds (trace, events, simulator, controller) the per-device worker
  derives;
* pooled variates are consumed through :class:`~repro.utils.rng.DrawBatch`
  — per-device 256-wide pools refilled with the exact sampler calls
  :class:`~repro.utils.rng.PooledDraws` makes, in each device's own call
  order (difficulty before entropy, exploration before action, continue
  draws between entropy resamples), so the realized per-device streams
  are the scalar ones;
* all ledger arithmetic (charge / leak / draw, the 1e-12 affordability
  epsilon, the max() guard on cumulative-energy crossings) replicates the
  scalar operation sequence elementwise — float64 lanes round identically
  to the scalar ops they shadow.

Because devices never interact, lockstep order across devices is free;
only the within-device order matters, and the step loop preserves it.

Incremental execution
---------------------
:meth:`BatchedFleetEngine.run` is a thin driver over a resumable stepper:
:meth:`~BatchedFleetEngine.begin` initializes the live state columns,
:meth:`~BatchedFleetEngine.advance` executes up to N lockstep steps (an
episode with no single-cycle steps — an all-intermittent fleet — counts
as one step), and :meth:`~BatchedFleetEngine.finalize` freezes the
per-device results once :attr:`~BatchedFleetEngine.finished`.  Every
piece of mutable state lives in the engine (numpy columns, batched
controller tables, per-device RNG pools), so pausing between steps is
invisible to the arithmetic: ``advance(k)`` called any number of times
produces **bit-identical** results to one uninterrupted :meth:`run` —
the property the gateway service (:mod:`repro.gateway`) serves
interactive traffic on, enforced against the same goldens.

Eligibility: dataset mode (per-event forward passes through a live
network) and csv traces (file-backed, deliberately uncached) fall back to
the per-device path — see :func:`batch_ineligibility` and the ``engine``
knob on :class:`~repro.fleet.runner.FleetRunner`.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.intermittent.kernel import IntermittentFleetKernel
from repro.obs.recorder import get_recorder
from repro.runtime.batched import batch_continue_rules, batch_controllers, batchable
from repro.runtime.controller import CONTROLLER_KINDS
from repro.runtime.incremental import CONTINUE_RULE_KINDS
from repro.runtime.state import RuntimeStateBatch
from repro.sim.results import RecordColumns, SimulationResult, percentile_dict
from repro.utils.kernelmode import resolve_kernel_mode
from repro.utils.rng import DrawBatch, as_generator

#: miss_reason codes used in the packed record buffers (shared with
#: repro.intermittent.kernel's REASON_* codes).
_REASONS = ("", "busy", "energy")
_MISS_NONE, _MISS_BUSY, _MISS_ENERGY = 0, 1, 2

#: Execution models the lockstep engine can express.
_BATCHED_EXECUTIONS = ("single-cycle", "intermittent")


def _ineligibility(spec) -> Optional[tuple]:
    """``(code, reason)`` for an ineligible spec, or ``None`` when it can
    run under lockstep.

    Checks, in order: execution mode, trace family, controller family,
    continue rule.  (Duck-typed on the spec fields rather than importing
    the fleet layer — this module sits below it.)  ``code`` is a short
    stable slug used as a metrics-counter suffix
    (``fleet.fallback.<code>``); ``reason`` is the human sentence.
    """
    if spec.execution not in _BATCHED_EXECUTIONS:
        return (
            "execution",
            f"execution mode {spec.execution!r} has no lockstep form "
            f"(batched: {_BATCHED_EXECUTIONS})",
        )
    family = dict(spec.trace).get("family")
    if family == "csv":
        return (
            "trace-csv",
            "trace family 'csv' (file-backed, deliberately uncached; "
            "per-device under every REPRO_KERNEL mode)",
        )
    controller = dict(spec.controller)
    kind = controller.get("kind")
    if kind not in CONTROLLER_KINDS:
        return (
            "controller",
            f"controller kind {kind!r} has no batched twin "
            f"(batched: {CONTROLLER_KINDS})",
        )
    rule = controller.get("continue_rule")
    if rule is not None:
        rule_kind = dict(rule).get("kind") if isinstance(rule, dict) else None
        if rule_kind not in CONTINUE_RULE_KINDS:
            return (
                "continue-rule",
                f"controller continue_rule {rule!r} has no batched twin "
                f"(batched kinds: {CONTINUE_RULE_KINDS})",
            )
    return None


def batch_ineligibility(spec) -> Optional[str]:
    """Why this :class:`~repro.fleet.spec.DeviceSpec` cannot run under
    lockstep — or ``None`` when it can."""
    found = _ineligibility(spec)
    return None if found is None else found[1]


def batch_ineligibility_code(spec) -> Optional[str]:
    """Short stable slug for the first lockstep blocker (``None`` when
    eligible): ``execution`` / ``trace-csv`` / ``controller`` /
    ``continue-rule`` — the engine-selection telemetry key."""
    found = _ineligibility(spec)
    return None if found is None else found[0]


def batch_eligible(spec) -> bool:
    """Can this :class:`~repro.fleet.spec.DeviceSpec` run under lockstep?"""
    return batch_ineligibility(spec) is None


class _Device:
    """Materialized per-device objects + precomputed event-time queries."""

    __slots__ = (
        "index", "spec", "trace", "events", "profile", "storage", "mcu",
        "controller", "sim_rng", "intermittent", "cum_at_event",
        "charge_power", "exit_energy", "exit_time", "exit_acc",
        "inc_energy", "inc_time",
    )

    def __init__(self, index: int, spec: DeviceSpec, fleet_seed: int):
        # Lazy import: the fleet runner imports this module at top level,
        # so importing its builders here would be circular at import time.
        from repro.fleet.runner import (
            build_controller,
            build_events,
            build_mcu,
            build_storage,
            build_trace,
            resolve_profile,
        )

        self.index = int(index)
        self.spec = spec
        child = np.random.SeedSequence(fleet_seed, spawn_key=(int(index),))
        trace_seed, event_seed, sim_seed, ctrl_seed = (
            int(s) for s in child.generate_state(4, np.uint32)
        )
        self.trace = build_trace(spec.trace, trace_seed)
        self.events = np.asarray(
            build_events(spec.events, self.trace.duration, event_seed),
            dtype=np.float64,
        )
        if self.events.size and (
            np.any(np.diff(self.events) < 0) or self.events[0] < 0
        ):
            raise SimulationError("events must be sorted and non-negative")
        self.profile = resolve_profile(spec.profile)
        self.storage = build_storage(spec.storage)
        self.mcu = build_mcu(spec.mcu)
        self.controller = build_controller(
            spec.controller, self.profile, self.storage, ctrl_seed
        )
        self.sim_rng = as_generator(sim_seed)
        self.intermittent = spec.execution == "intermittent"
        trace = self.trace
        duration = trace.duration
        if self.events.size:
            clipped = np.minimum(duration, np.maximum(0.0, self.events))
            self.cum_at_event = trace._cum_bulk(clipped)
            if self.intermittent:
                # The SONIC baseline never consults the observed charging
                # power P, so skip the windowed query (like the scalar
                # simulator does).
                self.charge_power = np.zeros(self.events.size)
            else:
                # mean_power inlined so its _cum_bulk(t) shares the
                # event-time evaluation above (same clipped times, same
                # arithmetic).
                t0 = np.maximum(0.0, clipped - spec.power_window_s)
                span = clipped - t0
                degenerate = span <= 0.0
                windowed = (
                    self.cum_at_event - trace._cum_bulk(t0)
                ) / np.where(degenerate, 1.0, span)
                if degenerate.any():
                    windowed = np.where(
                        degenerate, trace.power(clipped), windowed
                    )
                self.charge_power = windowed
        else:
            self.cum_at_event = np.empty(0)
            self.charge_power = np.empty(0)
        self.exit_energy = [float(e) for e in self.profile.exit_energy_mj]
        self.exit_time = [
            self.mcu.inference_time_s(f) for f in self.profile.exit_flops
        ]
        self.exit_acc = [float(a) for a in self.profile.exit_accuracies]
        self.inc_energy = [
            float(e) for e in self.profile.incremental_energy_mj
        ]
        self.inc_time = [
            self.mcu.inference_time_s(f) for f in self.profile.incremental_flops
        ]


class _RunState:
    """Mutable lockstep execution state, alive between advance() slices.

    Everything ``run()`` used to keep in local variables lives here so
    execution can pause after any step and resume later — the stepper
    contract :mod:`repro.gateway` serves interactive traffic on.  The
    ``phase`` field is the tiny state machine: ``"open"`` (the next work
    is an episode reset), ``"step"`` (mid-episode, ``j`` is the next
    event index), ``"done"`` (every episode played, ``finalize()`` may
    freeze results).
    """

    __slots__ = (
        "prof", "t0", "ep", "j", "n_steps", "phase", "max_episodes",
        "steps_done", "level", "total_drawn", "t_charged", "cum_charged",
        "busy_until", "r_exit", "r_correct", "r_latency", "r_energy",
        "r_entropy", "r_reason", "r_first", "r_continued", "r_cycles",
        "results", "state", "part", "part_all", "n_passes", "n_full",
        "n_lanes", "n_busy", "n_emiss", "out",
    )

    def __init__(self):
        self.ep = 0
        self.j = 0
        self.n_steps = 0
        self.phase = "open"
        self.steps_done = 0
        self.n_passes = self.n_full = self.n_lanes = 0
        self.n_busy = self.n_emiss = 0
        self.out = None


class BatchedFleetEngine:
    """Runs a list of eligible ``(index, DeviceSpec, fleet_seed)`` tasks.

    Construction materializes every device (traces, profiles, controllers,
    per-event precomputations); :meth:`run` plays all episodes in lockstep
    and returns one :class:`~repro.fleet.results.DeviceResult` per task,
    in task order.  The incremental twin — :meth:`begin` /
    :meth:`advance` / :meth:`finalize` — executes the same instruction
    sequence in caller-sized slices; see the module docstring.
    """

    def __init__(self, tasks):
        if not tasks:
            raise ConfigError("BatchedFleetEngine needs at least one device")
        prof = get_recorder().profiler
        t_build = time.perf_counter() if prof is not None else 0.0
        # REPRO_KERNEL selection, resolved once per engine: "compiled"
        # falls back to the numpy lanes (with the reason in
        # ``kernel_detail``) when numba is missing, so the engine is
        # always runnable and its results never depend on the mode.
        self._kernel_mode, self._kernel_detail = resolve_kernel_mode()
        self._sim_compiled = None
        if self._kernel_mode == "compiled":
            try:
                from repro.sim import compiled as _sim_compiled

                if _sim_compiled.HAVE_NUMBA:
                    self._sim_compiled = _sim_compiled
                else:  # pragma: no cover - resolve() already probed numba
                    self._kernel_mode = "numpy"
            except Exception as exc:  # pragma: no cover - broken install
                self._kernel_mode = "numpy"
                self._kernel_detail = (
                    f"compiled requested but import failed ({exc!r}); "
                    "using numpy"
                )
        for _, spec, _ in tasks:
            reason = batch_ineligibility(spec)
            if reason is not None:
                raise ConfigError(
                    f"device {spec.name!r} is not batch-eligible: {reason}"
                )
        self.devices = [_Device(i, spec, seed) for i, spec, seed in tasks]
        for dev in self.devices:
            if not dev.intermittent and not batchable(dev.controller):
                raise ConfigError(
                    f"device {dev.spec.name!r}: controller cannot be batched"
                )
        m = len(self.devices)
        self._m = m
        max_ev = max(d.events.size for d in self.devices)
        max_exits = max(d.profile.num_exits for d in self.devices)
        self._n_events = np.array([d.events.size for d in self.devices], np.int64)
        self._episodes = np.array([d.spec.episodes for d in self.devices], np.int64)
        self._n_exits = np.array(
            [d.profile.num_exits for d in self.devices], np.int64
        )
        # Padded per-event and per-exit lookups.  Cost pads with +inf so a
        # padded exit can never look affordable; accuracy/time pad with 0.
        # Per-event matrices are (event, device) so the step loop reads
        # *contiguous* rows instead of strided columns.
        self._events = np.zeros((max_ev, m))
        self._cum_at_event = np.zeros((max_ev, m))
        self._charge_power = np.zeros((max_ev, m))
        self._exit_cost = np.full((m, max_exits), np.inf)
        self._exit_time = np.zeros((m, max_exits))
        self._exit_acc = np.zeros((m, max_exits))
        inc_width = max(max_exits - 1, 1)
        self._inc_cost = np.full((m, inc_width), np.inf)
        self._inc_time = np.zeros((m, inc_width))
        for i, d in enumerate(self.devices):
            n = d.events.size
            self._events[:n, i] = d.events
            self._cum_at_event[:n, i] = d.cum_at_event
            self._charge_power[:n, i] = d.charge_power
            k = d.profile.num_exits
            self._exit_cost[i, :k] = d.exit_energy
            self._exit_time[i, :k] = d.exit_time
            self._exit_acc[i, :k] = d.exit_acc
            self._inc_cost[i, :len(d.inc_energy)] = d.inc_energy
            self._inc_time[i, :len(d.inc_time)] = d.inc_time
        # Storage columns (reset per episode) + fixed environment columns.
        self._capacity = np.array([d.storage.capacity_mj for d in self.devices])
        self._efficiency = np.array([d.storage.efficiency for d in self.devices])
        self._leakage = np.array([d.storage.leakage_mw for d in self.devices])
        self._initial = np.array([d.storage._initial_mj for d in self.devices])
        self._peak = np.array(
            [float(np.max(d.trace.samples_mw)) for d in self.devices]
        )
        self._duration = np.array([d.trace.duration for d in self.devices])
        self._total_env = np.array(
            [d.trace.total_energy_mj for d in self.devices]
        )
        self._sim_draws = DrawBatch([d.sim_rng for d in self.devices])
        # Execution-model split: intermittent devices run through the
        # shared multi-cycle kernel and never consult a controller.
        self._exec_int = np.array([d.intermittent for d in self.devices], bool)
        self._has_int = bool(self._exec_int.any())
        self._sc = ~self._exec_int
        sc_rows = np.nonzero(self._sc)[0]
        controllers = [d.controller for d in self.devices]
        self._groups, self._group_of = batch_controllers(
            controllers, self._exit_cost, rows=sc_rows
        )
        self._rule_groups, self._rule_of = batch_continue_rules(
            controllers, max_steps=inc_width, rows=sc_rows
        )
        self._has_rules = bool(self._rule_groups)
        if self._has_int:
            int_rows = np.nonzero(self._exec_int)[0]
            self._int_rows = int_rows
            self._int_kernel = IntermittentFleetKernel(
                int_rows, [self.devices[r] for r in int_rows],
                mode=self._kernel_mode,
            )
            self._int_events = np.ascontiguousarray(self._events[:, int_rows])
            self._int_cum = np.ascontiguousarray(self._cum_at_event[:, int_rows])
            self._int_nev = self._n_events[int_rows]
        # Step-loop fast-path preconditions, hoisted out of the hot loop.
        # The whole-array fast paths write every device column at once, so
        # they are only sound when every engine row is a stepping
        # single-cycle device.
        self._all_rows = np.arange(m)
        active = np.arange(max_ev)[:, None] < self._n_events[None, :]
        self._active_sc = active & self._sc[None, :]
        self._full_ok = not self._has_int
        self._act_full = (
            self._active_sc.all(axis=1) if (max_ev and self._full_ok)
            else np.zeros(max_ev, bool)
        )
        self._no_leak = bool((self._leakage == 0.0).all())
        self._single = self._groups[0] if len(self._groups) == 1 else None
        #: Live stepper state (see :meth:`begin`); ``None`` until started.
        self._rs = None
        #: How many :meth:`advance` steps a full run takes: one per
        #: lockstep event-index step, and one for each episode that has
        #: no single-cycle steps at all (an all-intermittent fleet, whose
        #: whole episode executes inside the multi-cycle kernel).
        self.total_steps = 0
        for ep in range(int(self._episodes.max())):
            part_sc = (self._episodes > ep) & self._sc
            n = int(self._n_events[part_sc].max()) if part_sc.any() else 0
            self.total_steps += max(n, 1)
        if prof is not None:
            prof.add_wall("batch.build", time.perf_counter() - t_build)
            prof.memory_probe("batch.build")

    # ------------------------------------------------------------------ #
    def run(self):
        """Play every device's episodes; return DeviceResults in task order.

        Implemented as ``begin(); advance(); finalize()`` — the one-shot
        and incremental paths share every instruction, so they cannot
        drift apart (the goldens that pin this method pin the stepper).
        """
        self.begin()
        self.advance()
        return self.finalize()

    # ------------------------------------------------------------------ #
    # Incremental stepper (what the gateway's ``advance`` verb sits on)
    # ------------------------------------------------------------------ #
    @property
    def finished(self) -> bool:
        """``True`` once every episode of every device has been played."""
        return self._rs is not None and self._rs.phase == "done"

    @property
    def steps_done(self) -> int:
        """Lockstep steps executed so far (``0`` before :meth:`begin`)."""
        return 0 if self._rs is None else self._rs.steps_done

    def begin(self) -> None:
        """Allocate the live state columns and open incremental execution.

        Observability is fetched once per run here; every hot-loop touch
        downstream is guarded by ``prof is not None`` so the off path
        costs one local branch (the ≤2% no-op budget in
        ``benchmarks/test_p6_obs.py``).
        """
        if self._rs is not None:
            raise SimulationError(
                "engine already started: one begin() per BatchedFleetEngine"
            )
        rec = get_recorder()
        if rec.metrics is not None:
            rec.metrics.inc("batch.engine.runs")
            rec.metrics.inc("batch.engine.devices", self._m)
            rec.metrics.inc(
                "batch.engine.devices.intermittent", int(self._exec_int.sum())
            )
            rec.metrics.inc(f"batch.kernel.{self._kernel_mode}")
        rs = _RunState()
        rs.prof = rec.profiler
        rs.t0 = time.perf_counter()
        m, max_ev = self._m, self._events.shape[0]
        rs.level = np.zeros(m)
        rs.total_drawn = np.zeros(m)
        rs.t_charged = np.zeros(m)
        rs.cum_charged = np.zeros(m)
        rs.busy_until = np.zeros(m)
        # Record buffers, reused across episodes (finished devices are
        # snapshotted by copy before the next reset).  Without continue
        # rules the first exit always equals the final exit, and without
        # intermittent devices every record's power_cycles is 1, so those
        # columns only materialize when a device class needs them; the
        # storage waste/charge ledger is likewise not observable in any
        # result and is skipped entirely.  (event, device) layout like
        # the inputs: contiguous writes per step.
        rs.r_exit = np.empty((max_ev, m), np.int64)
        rs.r_correct = np.empty((max_ev, m), bool)
        rs.r_latency = np.empty((max_ev, m))
        rs.r_energy = np.empty((max_ev, m))
        rs.r_entropy = np.empty((max_ev, m))
        rs.r_reason = np.empty((max_ev, m), np.int8)
        rs.r_first = (
            np.empty((max_ev, m), np.int64) if self._has_rules else None
        )
        rs.r_continued = (
            np.empty((max_ev, m), np.int64) if self._has_rules else None
        )
        rs.r_cycles = (
            np.empty((max_ev, m), np.int64) if self._has_int else None
        )
        rs.results = [None] * m
        rs.max_episodes = int(self._episodes.max())
        self._rs = rs

    def advance(self, max_steps=None) -> int:
        """Execute up to ``max_steps`` lockstep steps; returns how many ran.

        ``None`` runs to completion.  One step is one event-index pass
        over the active single-cycle lanes; an episode with no
        single-cycle steps at all (an all-intermittent fleet, whose
        whole episode executes inside the multi-cycle kernel) costs one
        step, so advancing always makes progress.  Episode-boundary work
        — state resets, the intermittent kernel pass, trailing charge,
        controller end-of-episode hooks, result snapshots — rides along
        with the adjacent step.  Any K-way split of ``advance`` calls
        executes the exact instruction sequence of one uninterrupted
        :meth:`run`, so results are bit-identical.
        """
        if self._rs is None:
            self.begin()
        rs = self._rs
        if max_steps is not None:
            max_steps = int(max_steps)
            if max_steps < 0:
                raise ConfigError(
                    f"advance() needs max_steps >= 0 or None, got {max_steps}"
                )
        done = 0
        while rs.phase != "done" and (max_steps is None or done < max_steps):
            if rs.phase == "open":
                self._open_episode()
                if rs.n_steps == 0:
                    done += 1
                    rs.steps_done += 1
                    self._close_episode()
                    continue
                rs.phase = "step"
            t_step = time.perf_counter() if rs.prof is not None else 0.0
            self._lockstep_step()
            done += 1
            rs.steps_done += 1
            rs.j += 1
            if rs.prof is not None:
                rs.prof.add_wall(
                    "batch.lockstep", time.perf_counter() - t_step
                )
            if rs.j >= rs.n_steps:
                self._close_episode()
        return done

    def finalize(self):
        """Freeze per-device results; only valid once :attr:`finished`.

        Idempotent: repeated calls return the same DeviceResult list.
        """
        from repro.fleet.results import DeviceResult

        rs = self._rs
        if rs is None or rs.phase != "done":
            raise SimulationError(
                "finalize() before the engine finished: advance() to "
                "completion first (see the finished property)"
            )
        if rs.out is not None:
            return rs.out
        wall = time.perf_counter() - rs.t0
        prof = rs.prof
        if prof is not None:
            prof.add_wall("batch.run", wall)
            prof.tally("batch.lockstep.passes", rs.n_passes)
            prof.tally("batch.lockstep.full_passes", rs.n_full)
            prof.tally("batch.lockstep.lanes", rs.n_lanes)
            prof.tally("batch.lockstep.busy_misses", rs.n_busy)
            prof.tally("batch.lockstep.energy_misses", rs.n_emiss)
            prof.memory_probe("batch.run")
        out = []
        grid_cache: dict = {}
        for i, d in enumerate(self.devices):
            sim_result = rs.results[i]
            grid = grid_cache.get(d.trace.duration)
            if grid is None:
                grid = np.linspace(0.0, d.trace.duration, 512)
                grid_cache[d.trace.duration] = grid
            harvest = percentile_dict(d.trace.power(grid), qs=(10, 50, 90))
            out.append(
                DeviceResult.from_simulation(
                    d.index,
                    d.spec.name,
                    sim_result,
                    d.profile,
                    harvest_percentiles=harvest,
                    episodes=d.spec.episodes,
                    wall_s=wall / self._m,
                )
            )
        rs.out = out
        return out

    # ------------------------------------------------------------------ #
    def _open_episode(self) -> None:
        """Reset state columns for episode ``rs.ep`` and run participating
        intermittent devices' whole-episode kernel pass."""
        rs = self._rs
        part = self._episodes > rs.ep
        rs.part = part
        rs.part_all = bool(part.all())
        # reset_storage=True semantics at the top of every run().
        rs.level[part] = self._initial[part]
        rs.total_drawn[part] = 0.0
        rs.t_charged[part] = 0.0
        rs.cum_charged[part] = 0.0
        rs.busy_until[part] = 0.0
        rs.r_exit[:, part] = -1
        rs.r_correct[:, part] = False
        rs.r_latency[:, part] = 0.0
        rs.r_energy[:, part] = 0.0
        rs.r_entropy[:, part] = 1.0
        rs.r_reason[:, part] = _MISS_NONE
        if self._has_rules:
            rs.r_first[:, part] = -1
            rs.r_continued[:, part] = 0
        if self._has_int:
            rs.r_cycles[:, part] = 1
        rs.state = RuntimeStateBatch(
            time=None,
            energy_mj=rs.level,  # aliased: only ever mutated in place
            capacity_mj=self._capacity,
            charge_power_mw=None,
            peak_power_mw=self._peak,
        )
        if self._has_int:
            t_int = time.perf_counter() if rs.prof is not None else 0.0
            self._run_intermittent_pass(
                part, rs.level, rs.total_drawn, rs.t_charged,
                rs.cum_charged, rs.busy_until, rs.r_exit, rs.r_correct,
                rs.r_latency, rs.r_energy, rs.r_entropy, rs.r_reason,
                rs.r_cycles, prof=rs.prof,
            )
            if rs.prof is not None:
                rs.prof.add_wall(
                    "batch.intermittent", time.perf_counter() - t_int
                )
        part_sc = part & self._sc
        rs.n_steps = int(self._n_events[part_sc].max()) if part_sc.any() else 0
        rs.j = 0

    def _close_episode(self) -> None:
        """Trailing charge, end-of-episode controller hooks, and result
        snapshots for devices whose last episode just finished."""
        rs = self._rs
        part = rs.part
        # Trailing charge to the end of the trace, then episode close.
        tail = part & (self._duration > rs.t_charged)
        if tail.any():
            inc = np.where(
                tail, np.maximum(self._total_env - rs.cum_charged, 0.0), 0.0
            )
            banked = inc * self._efficiency
            stored = np.minimum(banked, self._capacity - rs.level)
            rs.level += stored
            if not self._no_leak:
                lost = np.where(
                    tail,
                    np.minimum(
                        rs.level,
                        self._leakage * (self._duration - rs.t_charged),
                    ),
                    0.0,
                )
                rs.level -= lost
        prows = self._all_rows[part]
        pgids = self._group_of[prows]
        for g, group in enumerate(self._groups):
            sub = prows[pgids == g]
            if len(sub):
                group.end_episode_batch(sub)
        for g, group in enumerate(self._rule_groups):
            sub = prows[self._rule_of[prows] == g]
            if len(sub):
                group.end_episode_batch(sub)
        finishing = part & (self._episodes == rs.ep + 1)
        for i in np.nonzero(finishing)[0].tolist():
            rs.results[i] = self._snapshot(
                i, rs.total_drawn[i], rs.r_exit, rs.r_correct, rs.r_latency,
                rs.r_energy, rs.r_entropy, rs.r_reason, rs.r_first,
                rs.r_continued, rs.r_cycles,
            )
        rs.ep += 1
        rs.phase = "done" if rs.ep >= rs.max_episodes else "open"

    def _lockstep_step(self) -> None:
        """One event-index pass over the active single-cycle lanes — the
        body of the original lockstep loop, executing at ``rs.j``."""
        rs = self._rs
        j = rs.j
        prof = rs.prof
        part, part_all = rs.part, rs.part_all
        has_rules = self._has_rules
        level = rs.level
        total_drawn = rs.total_drawn
        t_charged = rs.t_charged
        cum_charged = rs.cum_charged
        busy_until = rs.busy_until
        state = rs.state
        r_exit, r_correct = rs.r_exit, rs.r_correct
        r_latency, r_energy = rs.r_latency, rs.r_energy
        r_entropy, r_reason = rs.r_entropy, rs.r_reason
        r_first, r_continued = rs.r_first, rs.r_continued
        all_rows = self._all_rows
        single = self._single
        no_leak = self._no_leak
        te = self._events[j]
        act_full_j = (
            self._full_ok and part_all and bool(self._act_full[j])
        )
        act = (
            self._active_sc[j] if part_all
            else part & self._active_sc[j]
        )
        busy = (te < busy_until) if act_full_j else act & (te < busy_until)
        any_busy = bool(busy.any())
        if any_busy:
            r_reason[j][busy] = _MISS_BUSY
            proc = act & ~busy
            if prof is not None:
                rs.n_passes += 1
                rs.n_busy += int(np.count_nonzero(busy))
                rs.n_lanes += int(np.count_nonzero(proc))
            if not proc.any():
                return
        else:
            proc = act
            if prof is not None:
                rs.n_passes += 1
                rs.n_lanes += int(np.count_nonzero(proc))
        full = act_full_j and not any_busy
        if prof is not None and full:
            rs.n_full += 1
        # Storage charging up to the event (precomputed increment).
        cum_j = self._cum_at_event[j]
        charging = proc & (te > t_charged)
        if self._sim_compiled is not None:
            # REPRO_KERNEL=compiled: row loop with the identical
            # op sequence (non-charging rows only ever receive
            # exact +0.0 identities on the numpy branches, so
            # skipping them leaves the same bits).
            ch_rows = np.nonzero(charging)[0]
            if ch_rows.size:
                self._sim_compiled.charge_rows(
                    ch_rows, te, cum_j, t_charged, cum_charged,
                    level, self._efficiency, self._capacity,
                    self._leakage, no_leak,
                )
        elif full and charging.all():
            inc = np.maximum(cum_j - cum_charged, 0.0)
            banked = inc * self._efficiency
            stored = np.minimum(banked, self._capacity - level)
            level += stored
            if not no_leak:
                lost = np.minimum(
                    level, self._leakage * (te - t_charged)
                )
                level -= lost
            t_charged[:] = te
            cum_charged[:] = cum_j
        elif charging.any():
            inc = np.where(
                charging, np.maximum(cum_j - cum_charged, 0.0), 0.0
            )
            banked = inc * self._efficiency
            stored = np.minimum(banked, self._capacity - level)
            level += stored
            if not no_leak:
                lost = np.where(
                    charging,
                    np.minimum(level, self._leakage * (te - t_charged)),
                    0.0,
                )
                level -= lost
            # np.where rebinds (the one non-in-place update): write the
            # fresh arrays back so the next step sees them.
            rs.t_charged = t_charged = np.where(charging, te, t_charged)
            rs.cum_charged = cum_charged = np.where(
                charging, cum_j, cum_charged
            )
        # Controller decisions across the device axis.
        state.time = te
        state.charge_power_mw = self._charge_power[j]
        pidx = all_rows if full else np.nonzero(proc)[0]
        gids = None
        if single is not None:
            k_sel = single.select_exit_batch(pidx, state)
        else:
            k_sel = np.empty(len(pidx), np.int64)
            gids = self._group_of[pidx]
            for g, group in enumerate(self._groups):
                sub = gids == g
                if sub.any():
                    k_sel[sub] = group.select_exit_batch(pidx[sub], state)
        level_p = level if full else level[pidx]
        if single is not None and single.always_valid:
            cost = self._exit_cost[pidx, k_sel]
            afford = level_p >= cost - 1e-12
        else:
            valid = (k_sel >= 0) & (k_sel < self._n_exits[pidx])
            cost = self._exit_cost[pidx, np.where(valid, k_sel, 0)]
            afford = valid & (level_p >= cost - 1e-12)
        n_afford = int(np.count_nonzero(afford))
        aff_all = n_afford == len(pidx)
        rewards = None
        if not aff_all:
            mi = pidx[~afford]
            r_reason[j][mi] = _MISS_ENERGY
            busy_until[mi] = te[mi]
            rewards = np.zeros(len(pidx))
            if prof is not None:
                rs.n_emiss += len(mi)
        if n_afford:
            if aff_all:
                pi, kk, cost_p = pidx, k_sel, cost
            else:
                pi = pidx[afford]
                kk = k_sel[afford]
                cost_p = cost[afford]
            busy_s = self._exit_time[pi, kk]
            difficulty = self._sim_draws.random(pi)
            correct = difficulty < self._exit_acc[pi, kk]
            n_correct = int(np.count_nonzero(correct))
            if n_correct == len(pi):
                entropy = self._sim_draws.beta(2.0, 8.0, pi)
            elif not n_correct:
                entropy = self._sim_draws.beta(5.0, 3.0, pi)
            else:
                entropy = np.empty(len(pi))
                entropy[correct] = self._sim_draws.beta(
                    2.0, 8.0, pi[correct]
                )
                wrong = ~correct
                entropy[wrong] = self._sim_draws.beta(5.0, 3.0, pi[wrong])
            if has_rules:
                # Incremental-inference path: draw the base exit
                # now (the scalar order), then run the masked
                # continuation loop before any record writes.
                kk = kk.copy()
                busy_s = busy_s.copy()
                correct, entropy, energy_spent, first_k, continued = (
                    self._run_continue_loop(
                        pi, kk, busy_s, cost_p, difficulty,
                        correct, entropy, level, total_drawn,
                    )
                )
                r_exit[j][pi] = kk
                r_first[j][pi] = first_k
                r_correct[j][pi] = correct
                r_latency[j][pi] = busy_s
                r_energy[j][pi] = energy_spent
                r_entropy[j][pi] = entropy
                r_continued[j][pi] = continued
                busy_until[pi] = te[pi] + busy_s
            elif aff_all and full:
                # Whole fleet processed: contiguous row writes and
                # in-place ledger updates, no fancy indexing.
                np.subtract(level, cost_p, out=level)
                np.maximum(level, 0.0, out=level)
                total_drawn += cost_p
                r_exit[j] = kk
                r_correct[j] = correct
                r_latency[j] = busy_s
                r_energy[j] = cost_p
                r_entropy[j] = entropy
                np.add(te, busy_s, out=busy_until)
            else:
                level[pi] = np.maximum(0.0, level[pi] - cost_p)
                total_drawn[pi] += cost_p
                r_exit[j][pi] = kk
                r_correct[j][pi] = correct
                r_latency[j][pi] = busy_s
                r_energy[j][pi] = cost_p
                r_entropy[j][pi] = entropy
                busy_until[pi] = te[pi] + busy_s
            if aff_all:
                rewards = correct
            else:
                rewards[afford] = correct
            if has_rules:
                # Credit the recorded continue trajectories with
                # the event's realized correctness.
                for g, group in enumerate(self._rule_groups):
                    if not group.learns:
                        continue
                    sub = self._rule_of[pi] == g
                    if sub.any():
                        group.observe_batch(pi[sub], correct[sub])
        if single is not None:
            if single.wants_rewards:
                single.report_event_batch(pidx, rewards)
        else:
            for g, group in enumerate(self._groups):
                if not group.wants_rewards:
                    continue
                sub = gids == g
                if sub.any():
                    group.report_event_batch(pidx[sub], rewards[sub])

    # ------------------------------------------------------------------ #
    def _run_intermittent_pass(
        self, part, level, total_drawn, t_charged, cum_charged, busy_until,
        r_exit, r_correct, r_latency, r_energy, r_entropy, r_reason, r_cycles,
        prof=None,
    ) -> None:
        """One episode of every participating intermittent device, through
        the shared multi-cycle kernel; scatters records and writes the
        mutated state columns back."""
        rows = self._int_rows
        ipart = part[rows]
        if not ipart.any():
            return
        lvl = level[rows]
        drw = total_drawn[rows]
        tch = t_charged[rows]
        cch = cum_charged[rows]
        bsy = busy_until[rows]
        rec = self._int_kernel.run_episode(
            ipart, self._int_events, self._int_cum, self._int_nev,
            lvl, drw, tch, cch, bsy, self._sim_draws, prof=prof,
        )
        level[rows] = lvl
        total_drawn[rows] = drw
        t_charged[rows] = tch
        cum_charged[rows] = cch
        busy_until[rows] = bsy
        cols = rows[ipart]
        r_exit[:, cols] = rec["exit"][:, ipart]
        r_correct[:, cols] = rec["correct"][:, ipart]
        r_latency[:, cols] = rec["latency"][:, ipart]
        r_energy[:, cols] = rec["energy"][:, ipart]
        r_entropy[:, cols] = rec["entropy"][:, ipart]
        r_reason[:, cols] = rec["reason"][:, ipart]
        r_cycles[:, cols] = rec["cycles"][:, ipart]

    # ------------------------------------------------------------------ #
    def _run_continue_loop(
        self, pi, kk, busy_s, cost_p, difficulty, correct, entropy,
        level, total_drawn,
    ):
        """Masked incremental-inference loop for the processed devices.

        Mirrors the scalar ``while k < last_exit`` loop: draw the base
        exit's energy, then repeatedly ask each device's continue rule
        whether to advance to the next exit, drawing the marginal energy
        and resampling confidence entropy for the devices that do.
        ``kk`` / ``busy_s`` are mutated in place; returns the final
        record columns.
        """
        level[pi] = np.maximum(0.0, level[pi] - cost_p)
        total_drawn[pi] += cost_p
        energy_spent = cost_p.copy()
        first_k = kk.copy()
        continued = np.zeros(len(pi), np.int64)
        last = self._n_exits[pi] - 1
        cand = np.nonzero((self._rule_of[pi] >= 0) & (kk < last))[0]
        while cand.size:
            rows_c = pi[cand]
            k_c = kk[cand]
            marginal = self._inc_cost[rows_c, k_c]
            affordable = level[rows_c] >= marginal - 1e-12
            frac = level[rows_c] / self._capacity[rows_c]
            ent_c = entropy[cand]
            cont = np.zeros(len(cand), bool)
            gids = self._rule_of[rows_c]
            for g, group in enumerate(self._rule_groups):
                sub = gids == g
                if sub.any():
                    cont[sub] = group.decide_batch(
                        rows_c[sub], ent_c[sub], frac[sub], affordable[sub]
                    )
            go = cand[cont]
            if not go.size:
                break
            rows_g = pi[go]
            m_g = self._inc_cost[rows_g, kk[go]]
            level[rows_g] = np.maximum(0.0, level[rows_g] - m_g)
            total_drawn[rows_g] += m_g
            energy_spent[go] += m_g
            busy_s[go] += self._inc_time[rows_g, kk[go]]
            kk[go] += 1
            continued[go] += 1
            corr_g = difficulty[go] < self._exit_acc[rows_g, kk[go]]
            correct[go] = corr_g
            ent_new = np.empty(len(go))
            if corr_g.any():
                ent_new[corr_g] = self._sim_draws.beta(
                    2.0, 8.0, rows_g[corr_g]
                )
            wrong_g = ~corr_g
            if wrong_g.any():
                ent_new[wrong_g] = self._sim_draws.beta(
                    5.0, 3.0, rows_g[wrong_g]
                )
            entropy[go] = ent_new
            cand = go[kk[go] < last[go]]
        return correct, entropy, energy_spent, first_k, continued

    # ------------------------------------------------------------------ #
    def _snapshot(
        self, i, drawn, r_exit, r_correct, r_latency, r_energy, r_entropy,
        r_reason, r_first, r_continued, r_cycles,
    ) -> SimulationResult:
        """Freeze device ``i``'s final-episode rows into a SimulationResult."""
        n = int(self._n_events[i])
        columns = RecordColumns()
        reason = np.ascontiguousarray(r_reason[:n, i])
        exits = np.ascontiguousarray(r_exit[:n, i])
        columns.time = np.ascontiguousarray(self._events[:n, i])
        columns.exit_index = exits
        if r_first is None:
            # No continue rules in the fleet, so the first exit is always
            # the final one (and -1 for misses, like append_missed).
            columns.first_exit_index = exits
            columns.continued = np.zeros(n, np.int64)
        else:
            columns.first_exit_index = np.ascontiguousarray(r_first[:n, i])
            columns.continued = np.ascontiguousarray(r_continued[:n, i])
        columns.correct = np.ascontiguousarray(r_correct[:n, i])
        columns.latency_s = np.ascontiguousarray(r_latency[:n, i])
        columns.energy_mj = np.ascontiguousarray(r_energy[:n, i])
        columns.confidence_entropy = np.ascontiguousarray(r_entropy[:n, i])
        columns.missed = reason != _MISS_NONE
        columns.miss_reason = [_REASONS[c] for c in reason.tolist()]
        if r_cycles is None:
            columns.power_cycles = np.ones(n, np.int64)
        else:
            columns.power_cycles = np.ascontiguousarray(r_cycles[:n, i])
        return SimulationResult.from_columns(
            columns,
            total_env_energy_mj=float(self._total_env[i]),
            total_consumed_mj=float(drawn),
            duration_s=float(self._duration[i]),
            profile_name=self.devices[i].profile.name,
        )
